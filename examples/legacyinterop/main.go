// Legacy interoperability (property P5): an upgraded mbTLS client and
// its middlebox talk to a completely unmodified TLS 1.2 server, and an
// unmodified TLS client traverses a server-side middlebox to an mbTLS
// server. Neither legacy endpoint knows mbTLS exists.
//
//	go run ./examples/legacyinterop
package main

import (
	"fmt"
	"log"

	mbtls "repro"
	"repro/internal/httpx"
	"repro/internal/mbapps"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

func main() {
	ca, err := mbtls.NewCA("interop root")
	if err != nil {
		log.Fatal(err)
	}
	serverCert := mustIssue(ca, "origin.example")
	proxyCert := mustIssue(ca, "proxy.example")

	fmt.Println("=== Case 1: mbTLS client + middlebox → legacy TLS server ===")
	legacyServerCase(ca, serverCert, proxyCert)

	fmt.Println()
	fmt.Println("=== Case 2: legacy TLS client → middlebox → mbTLS server ===")
	legacyClientCase(ca, serverCert, proxyCert)
}

func legacyServerCase(ca *mbtls.CA, serverCert, proxyCert *mbtls.Certificate) {
	proxy, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:        mbtls.ClientSide,
		Certificate: proxyCert,
		NewProcessor: func() mbtls.Processor {
			return mbapps.NewHeaderInserter("Via", "1.1 mbtls-proxy")
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	clientEnd, proxyDown := netsim.Pipe()
	proxyUp, serverEnd := netsim.Pipe()
	go proxy.Handle(proxyDown, proxyUp) //nolint:errcheck

	// The legacy server: plain TLS 1.2, no mbTLS awareness at all.
	go func() {
		conn := tls12.NewServerConn(serverEnd, &tls12.Config{Certificate: serverCert})
		if err := conn.Handshake(); err != nil {
			log.Fatalf("legacy server: %v", err)
		}
		defer conn.Close()
		httpx.Serve(conn, func(req *httpx.Request) *httpx.Response { //nolint:errcheck
			return &httpx.Response{
				StatusCode: 200,
				Header:     httpx.Header{},
				Body:       []byte(fmt.Sprintf("legacy server saw Via: %q", req.Header.Get("Via"))),
			}
		})
	}()

	sess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
		TLS:          &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS: &mbtls.TLSConfig{RootCAs: ca.Pool()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("client: joined by %d middlebox(es); server is an unmodified TLS stack\n", len(sess.Middleboxes()))
	resp, err := httpx.Do(sess, &httpx.Request{Method: "GET", Path: "/", Host: "origin.example", Header: httpx.Header{}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: %d — %s\n", resp.StatusCode, resp.Body)
}

func legacyClientCase(ca *mbtls.CA, serverCert, proxyCert *mbtls.Certificate) {
	cdn, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:        mbtls.ServerSide,
		Certificate: proxyCert,
	})
	if err != nil {
		log.Fatal(err)
	}
	clientEnd, cdnDown := netsim.Pipe()
	cdnUp, serverEnd := netsim.Pipe()
	go cdn.Handle(cdnDown, cdnUp) //nolint:errcheck

	serverReady := make(chan *mbtls.Session, 1)
	go func() {
		sess, err := mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS:               &mbtls.TLSConfig{Certificate: serverCert},
			AcceptMiddleboxes: true,
			MiddleboxTLS:      &mbtls.TLSConfig{RootCAs: ca.Pool()},
		})
		if err != nil {
			log.Fatalf("mbTLS server: %v", err)
		}
		serverReady <- sess
	}()

	// The legacy client: plain TLS 1.2.
	conn := tls12.NewClientConn(clientEnd, &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"})
	if err := conn.Handshake(); err != nil {
		log.Fatalf("legacy client: %v", err)
	}
	defer conn.Close()
	server := <-serverReady
	defer server.Close()
	for _, mb := range server.Middleboxes() {
		fmt.Printf("server: middlebox %q joined via announcement; the legacy client never noticed\n", mb.Name)
	}

	go conn.Write([]byte("ping from the legacy client")) //nolint:errcheck
	buf := make([]byte, 64)
	n, err := server.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: received %q through the server-side middlebox\n", buf[:n])
}

func mustIssue(ca *mbtls.CA, name string) *mbtls.Certificate {
	cert, err := ca.Issue(name, []string{name}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return cert
}
