// Parental filter: the opt-in filtering service of the paper's trust
// discussion (§3.5: "the user might sign up for a service (e.g.,
// parental filtering from their ISP) and explicitly configure their
// browser to trust it"). A client-side middlebox inspects responses
// and blocks pages containing prohibited words; thanks to path
// integrity (P4), traffic cannot be routed around it without detection.
//
//	go run ./examples/parentalfilter
package main

import (
	"fmt"
	"log"

	mbtls "repro"
	"repro/internal/httpx"
	"repro/internal/mbapps"
	"repro/internal/netsim"
)

func main() {
	ca, err := mbtls.NewCA("isp root")
	if err != nil {
		log.Fatal(err)
	}
	serverCert := mustIssue(ca, "origin.example")
	filterCert := mustIssue(ca, "familyshield.isp.example")

	filter, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:        mbtls.ClientSide,
		Certificate: filterCert,
		NewProcessor: func() mbtls.Processor {
			return mbapps.NewWordFilter("gambling", "malware")
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	clientEnd, filterDown := netsim.Pipe()
	filterUp, serverEnd := netsim.Pipe()
	go filter.Handle(filterDown, filterUp) //nolint:errcheck

	pages := map[string]string{
		"/news":   "All quiet on the protocol front today.",
		"/casino": "Try our online gambling tables!",
	}
	go func() {
		sess, err := mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS: &mbtls.TLSConfig{Certificate: serverCert},
		})
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		defer sess.Close()
		httpx.Serve(sess, func(req *httpx.Request) *httpx.Response { //nolint:errcheck
			body, ok := pages[req.Path]
			if !ok {
				return &httpx.Response{StatusCode: 404, Header: httpx.Header{}}
			}
			return &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: []byte(body)}
		})
	}()

	// The user signed up for the service: the client recognizes the
	// filter by its certificate name and approves it.
	sess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
		TLS:          &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS: &mbtls.TLSConfig{RootCAs: ca.Pool()},
		Approve: func(mb mbtls.MiddleboxSummary) bool {
			approved := mb.Name == "familyshield.isp.example"
			fmt.Printf("client: middlebox %q discovered — approved=%v\n", mb.Name, approved)
			return approved
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	client := httpx.NewClient(sess)
	for _, path := range []string{"/news", "/casino"} {
		resp, err := client.Do(&httpx.Request{Method: "GET", Path: path, Host: "origin.example", Header: httpx.Header{}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-8s → %d %s: %q\n", path, resp.StatusCode, resp.Reason, resp.Body)
	}
}

func mustIssue(ca *mbtls.CA, name string) *mbtls.Certificate {
	cert, err := ca.Issue(name, []string{name}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return cert
}
