// Outsourced IDS: the paper's headline use case (§1, §3) end to end.
// An intrusion-detection middlebox is outsourced to an untrusted cloud
// provider: it runs inside a simulated SGX enclave (the infrastructure
// provider can read neither session data nor keys), attests its exact
// build to the client, and — using the §4.2 neighbor-keys mode — not
// even the endpoints hold its non-adjacent hop keys.
//
//	go run ./examples/outsourcedids
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"

	mbtls "repro"
	"repro/internal/httpx"
	"repro/internal/netsim"
)

func main() {
	ca, err := mbtls.NewCA("enterprise root")
	if err != nil {
		log.Fatal(err)
	}
	serverCert := mustIssue(ca, "origin.example")
	idsCert := mustIssue(ca, "ids.cloudprovider.example")

	authority, err := mbtls.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	platform, err := authority.NewPlatform() // the untrusted cloud's SGX machine
	if err != nil {
		log.Fatal(err)
	}
	idsImage := mbtls.CodeImage{Name: "sgx-ids", Version: "4.2.0", Config: "ruleset=2026-07"}
	encl := platform.CreateEnclave(idsImage)

	var alerts atomic.Int64
	ids, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:          mbtls.ClientSide,
		Certificate:   idsCert,
		Enclave:       encl,
		NeighborRoots: ca.Pool(),
		NewProcessor: func() mbtls.Processor {
			// The detection logic runs inside the enclave with the
			// plaintext; signatures here stand in for a Snort-style
			// ruleset.
			return mbtls.ProcessorFunc(func(dir mbtls.Direction, chunk []byte) ([]byte, error) {
				if strings.Contains(strings.ToLower(string(chunk)), "exploit-kit") {
					alerts.Add(1)
					fmt.Printf("  [ids] ALERT (%s): signature match in %d-byte chunk\n", dir, len(chunk))
				}
				return chunk, nil
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	clientEnd, idsDown := netsim.Pipe()
	idsUp, serverEnd := netsim.Pipe()
	go ids.Handle(idsDown, idsUp) //nolint:errcheck

	go func() {
		sess, err := mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS: &mbtls.TLSConfig{Certificate: serverCert},
		})
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		defer sess.Close()
		httpx.Serve(sess, func(req *httpx.Request) *httpx.Response { //nolint:errcheck
			return &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: []byte("served " + req.Path)}
		})
	}()

	sess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
		TLS:                         &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS:                &mbtls.TLSConfig{RootCAs: ca.Pool()},
		NeighborKeys:                true, // §4.2: endpoints keep only adjacent hop keys
		RequireMiddleboxAttestation: true,
		MiddleboxVerifier: &mbtls.Verifier{
			Authority: authority.PublicKey(),
			Allowed:   []mbtls.Measurement{idsImage.Measurement()},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	mb := sess.Middleboxes()[0]
	fmt.Printf("client: IDS %q attested (%s), neighbor-keyed hops active\n", mb.Name, mb.Measurement)

	client := httpx.NewClient(sess)
	for _, path := range []string{"/index.html", "/downloads/EXPLOIT-KIT-payload.bin", "/about"} {
		resp, err := client.Do(&httpx.Request{Method: "GET", Path: path, Host: "origin.example", Header: httpx.Header{}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client: GET %-36s → %d\n", path, resp.StatusCode)
	}

	fmt.Printf("\nids: %d alert(s) raised inside the enclave\n", alerts.Load())
	//lint:ignore enclaveboundary the demo's point is showing the provider's (empty) host-memory view
	fmt.Printf("cloud provider's view of IDS memory: %d secrets (SGX)\n", len(ids.Vault().DumpHostMemory()))
}

func mustIssue(ca *mbtls.CA, name string) *mbtls.Certificate {
	cert, err := ca.Issue(name, []string{name}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return cert
}
