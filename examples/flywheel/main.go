// Flywheel: a data-compression proxy outsourced to untrusted
// infrastructure — the paper's running example ("suppose Google
// implemented its Flywheel proxy using Apache httpd running on Amazon
// EC2", §3.1). The middlebox software (MS) compresses HTTP responses;
// it runs inside a simulated SGX enclave so the infrastructure
// provider (MIP) can neither read session data nor impersonate the
// proxy, and the client verifies the exact proxy build via remote
// attestation before granting it access.
//
//	go run ./examples/flywheel
package main

import (
	"fmt"
	"log"
	"strings"

	mbtls "repro"
	"repro/internal/httpx"
	"repro/internal/mbapps"
	"repro/internal/netsim"
)

func main() {
	ca, err := mbtls.NewCA("flywheel root")
	if err != nil {
		log.Fatal(err)
	}
	serverCert := mustIssue(ca, "origin.example")
	proxyCert := mustIssue(ca, "flywheel.example")

	// The attestation trust chain: an authority (Intel's role)
	// endorses the cloud platform; the proxy's code image defines the
	// measurement clients pin.
	authority, err := mbtls.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	proxyImage := mbtls.CodeImage{Name: "flywheel-proxy", Version: "2.3.1", Config: "deflate,best-speed"}
	encl := platform.CreateEnclave(proxyImage)

	proxy, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:        mbtls.ClientSide,
		Certificate: proxyCert,
		Enclave:     encl,
		NewProcessor: func() mbtls.Processor {
			return mbapps.NewCompressor(128) // compress bodies ≥ 128 bytes
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	clientEnd, proxyDown := netsim.Pipe()
	proxyUp, serverEnd := netsim.Pipe()
	go proxy.Handle(proxyDown, proxyUp) //nolint:errcheck

	// Origin server with a verbose, highly compressible page.
	page := strings.Repeat("mbTLS bridges end-to-end security and middleboxes. ", 80)
	go func() {
		sess, err := mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS: &mbtls.TLSConfig{Certificate: serverCert},
		})
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		defer sess.Close()
		httpx.Serve(sess, func(req *httpx.Request) *httpx.Response { //nolint:errcheck
			return &httpx.Response{
				StatusCode: 200,
				Header:     httpx.Header{"Content-Type": "text/plain"},
				Body:       []byte(page),
			}
		})
	}()

	// The client requires the proxy to attest as the exact Flywheel
	// build it expects.
	sess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
		TLS:                         &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS:                &mbtls.TLSConfig{RootCAs: ca.Pool()},
		RequireMiddleboxAttestation: true,
		MiddleboxVerifier: &mbtls.Verifier{
			Authority: authority.PublicKey(),
			Allowed:   []mbtls.Measurement{proxyImage.Measurement()},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	mb := sess.Middleboxes()[0]
	fmt.Printf("client: proxy %q attested with measurement %s\n", mb.Name, mb.Measurement)

	resp, err := httpx.Do(sess, &httpx.Request{Method: "GET", Path: "/article", Host: "origin.example", Header: httpx.Header{}})
	if err != nil {
		log.Fatal(err)
	}
	compressed := len(resp.Body)
	if err := mbapps.Decompress(resp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: received %d bytes on the wire for a %d-byte page (%.0f%% saved by the proxy)\n",
		compressed, len(resp.Body), 100*(1-float64(compressed)/float64(len(resp.Body))))
	if string(resp.Body) != page {
		log.Fatal("page corrupted in transit")
	}
	fmt.Println("client: page decompressed and verified byte-for-byte")
}

func mustIssue(ca *mbtls.CA, name string) *mbtls.Certificate {
	cert, err := ca.Issue(name, []string{name}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return cert
}
