// Quickstart: an mbTLS session between a client and a server with one
// discovered client-side middlebox, all over in-memory connections.
// Demonstrates the public API end to end: PKI setup, in-band middlebox
// discovery with application approval, per-hop keys, and data
// exchange.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"

	mbtls "repro"
	"repro/internal/netsim"
)

func main() {
	// 1. A deployment PKI: one root signs the server and the
	//    middlebox service provider.
	ca, err := mbtls.NewCA("quickstart root")
	if err != nil {
		log.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	proxyCert, err := ca.Issue("proxy.example", []string{"proxy.example"}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A middlebox on the path. It joins sessions whose ClientHello
	//    carries the MiddleboxSupport extension; all other traffic is
	//    relayed untouched.
	proxy, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:        mbtls.ClientSide,
		Certificate: proxyCert,
		NewProcessor: func() mbtls.Processor {
			return mbtls.ProcessorFunc(func(dir mbtls.Direction, chunk []byte) ([]byte, error) {
				fmt.Printf("  [proxy] %s: %d plaintext bytes\n", dir, len(chunk))
				return chunk, nil
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Wire client → proxy → server (in-memory stand-ins for TCP).
	clientEnd, proxyDown := netsim.Pipe()
	proxyUp, serverEnd := netsim.Pipe()
	go proxy.Handle(proxyDown, proxyUp) //nolint:errcheck

	// 4. The server accepts mbTLS sessions.
	serverReady := make(chan *mbtls.Session, 1)
	go func() {
		sess, err := mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS: &mbtls.TLSConfig{Certificate: serverCert},
		})
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		serverReady <- sess
	}()

	// 5. The client dials; the proxy announces itself during the
	//    handshake and the application approves it.
	sess, err := mbtls.Dial(net.Conn(clientEnd), &mbtls.ClientConfig{
		TLS:          &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS: &mbtls.TLSConfig{RootCAs: ca.Pool()},
		Approve: func(mb mbtls.MiddleboxSummary) bool {
			fmt.Printf("client: discovered middlebox %q — approving\n", mb.Name)
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	server := <-serverReady
	defer server.Close()

	// 6. Application data flows hop by hop under unique per-hop keys.
	fmt.Println("client: sending request")
	if _, err := sess.Write([]byte("GET /hello")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := server.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: received %q — replying\n", buf[:n])
	if _, err := server.Write([]byte("hello, multi-party world")); err != nil {
		log.Fatal(err)
	}
	n, err = sess.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: received %q\n", buf[:n])

	for _, mb := range sess.Middleboxes() {
		fmt.Printf("client: session middlebox %q (subchannel %d, attested=%v)\n",
			mb.Name, mb.Subchannel, mb.Attested)
	}
}
