package sessionhost

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Session IDs encode the owning shard in their low bits so a lookup
// routes straight to the right shard without any global lock:
//
//	id = seq<<shardIDBits | shardIndex
//
// seq is the shard-local monotonic counter, so IDs are unique across
// the host and monotonic within a shard.
const (
	shardIDBits = 10
	// MaxShards bounds Config.Shards (the ID encoding reserves
	// shardIDBits low bits for the shard index).
	MaxShards   = 1 << shardIDBits
	shardIDMask = MaxShards - 1
)

// ShardOfID extracts the owning shard index from a session ID.
func ShardOfID(id uint64) int { return int(id & shardIDMask) }

// shard is one slice of the host: its own admission slots, session
// map, ID space, handshake-gate slots, and counters. Nothing on the
// steady-state admission or teardown path touches state outside its
// shard, so shards scale with cores instead of convoying on one
// semaphore and one registry lock.
type shard struct {
	host *Host
	idx  int
	// sem holds this shard's share of MaxSessions admission slots.
	sem chan struct{}
	// gate bounds concurrent handshakes on this shard (nil when the
	// host runs ungated). Sessions queue here FIFO before their
	// handler starts, which keeps handshake latency ordered instead of
	// letting every admitted session thrash the CPU at once.
	gate chan struct{}

	nextSeq atomic.Uint64

	// mu guards only the session map and wg admission ordering; every
	// counter below is a lock-free atomic merged by Host.Snapshot.
	mu       sync.Mutex
	sessions map[uint64]*session
	wg       sync.WaitGroup

	accepted        atomic.Uint64
	completed       atomic.Uint64
	failed          atomic.Uint64
	overloaded      atomic.Uint64
	refusedDraining atomic.Uint64
	forceClosed     atomic.Uint64

	// Aggregated core.SessionStats deltas reported via
	// Control.ReportStats.
	recordsRelayed   atomic.Int64
	reseals          atomic.Int64
	faultsObserved   atomic.Int64
	resumedPrimary   atomic.Int64
	resumedHops      atomic.Int64
	attestSessions   atomic.Int64
	proxySigSessions atomic.Int64

	// drained flips once this shard's drain completed (all handlers
	// returned); drainTime is nanoseconds from Shutdown entry to that
	// point. A wedged session on another shard cannot hold these back.
	drained   atomic.Bool
	drainTime atomic.Int64
}

// register admits s into the shard under a claimed slot. It returns
// false when the host began draining, in which case the slot is
// released and the session was never registered.
func (sh *shard) register(s *session) bool {
	sh.mu.Lock()
	if sh.host.draining.Load() {
		sh.mu.Unlock()
		sh.refusedDraining.Add(1)
		<-sh.sem
		return false
	}
	seq := sh.nextSeq.Add(1)
	s.id = seq<<shardIDBits | uint64(sh.idx)
	s.sh = sh
	sh.sessions[s.id] = s
	sh.wg.Add(1)
	sh.mu.Unlock()
	sh.accepted.Add(1)
	return true
}

// run drives one admitted session to completion on its own goroutine.
func (sh *shard) run(s *session) {
	defer sh.wg.Done()
	h := sh.host
	if sh.gate != nil {
		// FIFO handshake gate: the expensive establishment work starts
		// only when a gate slot frees. During drain the gate is
		// bypassed — the handler fails fast against a closing session
		// and must not queue behind the deadline.
		select {
		case sh.gate <- struct{}{}:
			s.gated.Store(true)
		case <-h.drainCh:
		}
	}
	err := h.cfg.Handler.Serve(&Control{s: s}, s.conn)
	s.conn.Close()
	s.releaseGate()
	s.state.Store(int32(StateClosed))
	cls := core.ClassifyError(err)
	sh.mu.Lock()
	delete(sh.sessions, s.id)
	sh.mu.Unlock()
	if cls == core.ClassOK || cls == core.ClassCleanClose {
		sh.completed.Add(1)
	} else {
		sh.failed.Add(1)
	}
	<-sh.sem
	if cls != core.ClassOK {
		h.logf("sessionhost %s: session %d closed: %s (%v)", h.cfg.Name, s.id, cls, err)
	}
}

// drain is one shard's slice of Shutdown's fan-out: mark every live
// session draining, wait for handlers, and force-close survivors when
// ctx expires. It reports whether the deadline fired. Each shard
// drains independently — one shard's wedged handler delays only that
// shard's completion.
func (sh *shard) drain(ctx context.Context, start time.Time) (deadline bool) {
	sh.mu.Lock()
	for _, s := range sh.sessions {
		s.markDraining()
	}
	sh.mu.Unlock()

	done := make(chan struct{})
	go func() {
		sh.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		deadline = true
		sh.mu.Lock()
		forced := make([]*session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			forced = append(forced, s)
		}
		sh.mu.Unlock()
		sh.forceClosed.Add(uint64(len(forced)))
		for _, s := range forced {
			s.forceClose()
		}
		// Force-closing killed the transports, which unwinds the
		// handler goroutines; wait for them so no session outlives the
		// shard's drain.
		<-done
	}
	if sh.drained.CompareAndSwap(false, true) {
		sh.drainTime.Store(int64(time.Since(start)))
	}
	return deadline
}

// snapshotInto folds this shard's counters and gauges into m and
// appends the per-shard breakdown.
func (sh *shard) snapshotInto(m *Metrics) {
	sm := ShardMetrics{
		Index:           sh.idx,
		Accepted:        sh.accepted.Load(),
		Completed:       sh.completed.Load(),
		Failed:          sh.failed.Load(),
		Overloaded:      sh.overloaded.Load(),
		RefusedDraining: sh.refusedDraining.Load(),
		ForceClosed:     sh.forceClosed.Load(),
		Drained:         sh.drained.Load(),
		DrainTime:       time.Duration(sh.drainTime.Load()),
		Sessions: core.SessionStats{
			RecordsRelayed:   sh.recordsRelayed.Load(),
			Reseals:          sh.reseals.Load(),
			FaultsObserved:   sh.faultsObserved.Load(),
			ResumedPrimary:   sh.resumedPrimary.Load(),
			ResumedHops:      sh.resumedHops.Load(),
			AttestSessions:   sh.attestSessions.Load(),
			ProxySigSessions: sh.proxySigSessions.Load(),
		},
	}
	sh.mu.Lock()
	sm.ActiveSessions = len(sh.sessions)
	for _, s := range sh.sessions {
		if State(s.state.Load()) == StateHandshaking {
			sm.HandshakesInFlight++
		}
	}
	sh.mu.Unlock()

	m.Accepted += sm.Accepted
	m.Completed += sm.Completed
	m.Failed += sm.Failed
	m.Overloaded += sm.Overloaded
	m.RefusedDraining += sm.RefusedDraining
	m.ForceClosed += sm.ForceClosed
	m.ActiveSessions += sm.ActiveSessions
	m.HandshakesInFlight += sm.HandshakesInFlight
	m.Sessions.RecordsRelayed += sm.Sessions.RecordsRelayed
	m.Sessions.Reseals += sm.Sessions.Reseals
	m.Sessions.FaultsObserved += sm.Sessions.FaultsObserved
	m.Sessions.ResumedPrimary += sm.Sessions.ResumedPrimary
	m.Sessions.ResumedHops += sm.Sessions.ResumedHops
	m.Sessions.AttestSessions += sm.Sessions.AttestSessions
	m.Sessions.ProxySigSessions += sm.Sessions.ProxySigSessions
	if sm.DrainTime > m.DrainTime {
		m.DrainTime = sm.DrainTime
	}
	m.PerShard = append(m.PerShard, sm)
}
