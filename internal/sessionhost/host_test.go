package sessionhost_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sessionhost"
	"repro/internal/testutil/goleak"
	"repro/internal/tls12"
)

// hostEnv is the shared fixture: a simulated network and a PKI with a
// server and a middlebox certificate.
type hostEnv struct {
	net        *netsim.Network
	ca         *certs.CA
	serverCert *tls12.Certificate
	mbCert     *tls12.Certificate
}

func newHostEnv(t *testing.T) *hostEnv {
	t.Helper()
	ca, err := certs.NewCA("sessionhost test root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &hostEnv{net: netsim.NewNetwork(), ca: ca, serverCert: serverCert, mbCert: mbCert}
}

func (e *hostEnv) clientConfig() *core.ClientConfig {
	return &core.ClientConfig{
		TLS:              &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"},
		HandshakeTimeout: 10 * time.Second,
	}
}

func (e *hostEnv) serverConfig() *core.ServerConfig {
	return &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: e.serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: e.ca.Pool()},
		HandshakeTimeout:  10 * time.Second,
	}
}

// echoHandler serves echo sessions until the peer closes.
func (e *hostEnv) echoHandler() sessionhost.Handler {
	return sessionhost.NewServerHandler(e.serverConfig(), func(s *core.Session) error {
		buf := make([]byte, 256)
		for {
			n, err := s.Read(buf)
			if err != nil {
				return err
			}
			if _, err := s.Write(buf[:n]); err != nil {
				return err
			}
		}
	})
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitGoroutines pins the no-leak property via the shared accounting
// helper in internal/testutil/goleak (the same helper backs
// internal/core's fault tests and the transport conformance suite).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	goleak.Wait(t, base)
}

// TestShutdownDrainsInFlightAndRefusesNew is the graceful half of the
// drain contract: a session mid-transfer when Shutdown begins runs to
// completion (Shutdown returns nil, nothing force-closed), while a new
// dial during the drain is refused with the typed draining rejection —
// ClassOverload both for the local Submit caller and for a remote
// mbTLS client, which sees the plaintext draining alert.
func TestShutdownDrainsInFlightAndRefusesNew(t *testing.T) {
	base := goleak.Base()
	e := newHostEnv(t)
	ln, err := e.net.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	host, err := sessionhost.New(sessionhost.Config{Name: "drain-test", Handler: e.echoHandler()})
	if err != nil {
		t.Fatal(err)
	}
	go host.Serve(ln) //nolint:errcheck

	// Establish a session and leave it mid-transfer.
	conn, err := e.net.Dial("client", "server")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.Dial(conn, e.clientConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Write([]byte("first half")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := readFull(sess, buf); err != nil {
		t.Fatal(err)
	}

	// Begin the drain with a generous deadline; it must not need it.
	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutdownErr <- host.Shutdown(ctx) }()
	<-host.Draining()

	// A new remote dial during drain is refused with the draining
	// alert, which the client's classifier maps to ClassOverload.
	conn2, err := e.net.Dial("latecomer", "server")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Dial(conn2, e.clientConfig()); err == nil {
		t.Error("dial during drain produced a session, want refusal")
	} else {
		if cls := core.ClassifyError(err); cls != core.ClassOverload {
			t.Errorf("drain refusal classified %s (%v), want %s", cls, err, core.ClassOverload)
		}
		if !tls12.IsRemoteAlert(err, tls12.AlertDraining) {
			t.Errorf("drain refusal = %v, want remote draining alert", err)
		}
	}

	// A local Submit during drain returns the typed DrainingError.
	c1, c2 := net.Pipe()
	defer c2.Close()
	err = host.Submit(c1)
	var de *core.DrainingError
	if !errors.As(err, &de) {
		t.Fatalf("Submit during drain = %v, want DrainingError", err)
	}
	if de.Host != "drain-test" {
		t.Errorf("DrainingError.Host = %q", de.Host)
	}
	if cls := core.ClassifyError(err); cls != core.ClassOverload {
		t.Errorf("DrainingError classified %s, want %s", cls, core.ClassOverload)
	}
	c1.Close()

	// The in-flight session keeps working through the drain, then
	// finishes cleanly — and only then does Shutdown return.
	if _, err := sess.Write([]byte("second half")); err != nil {
		t.Fatalf("mid-transfer write during drain: %v", err)
	}
	buf = make([]byte, 11)
	if _, err := readFull(sess, buf); err != nil {
		t.Fatalf("mid-transfer read during drain: %v", err)
	}
	if string(buf) != "second half" {
		t.Fatalf("echo during drain = %q", buf)
	}
	sess.Close()

	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	m := host.Metrics()
	if m.Completed != 1 || m.ForceClosed != 0 {
		t.Errorf("completed=%d forceClosed=%d, want 1/0", m.Completed, m.ForceClosed)
	}
	if m.RefusedDraining < 2 {
		t.Errorf("refusedDraining = %d, want >= 2", m.RefusedDraining)
	}
	if m.DrainTime <= 0 {
		t.Error("drain time not recorded")
	}
	waitGoroutines(t, base)
}

// TestOverloadRefusal: at MaxSessions the host refuses admission with
// the typed OverloadError locally and the overloaded alert remotely,
// both feeding ClassOverload, and counts each refusal.
// TestServeListenersPartialFailureClosesSiblings: when one accept loop
// fails while the host is still up, ServeListeners must tear down the
// sibling listeners and return, instead of serving half-sharded
// forever with the failure invisible.
func TestServeListenersPartialFailureClosesSiblings(t *testing.T) {
	e := newHostEnv(t)
	host, err := sessionhost.New(sessionhost.Config{Name: "partial", Handler: e.echoHandler()})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	var lns []net.Listener
	for i := 0; i < 3; i++ {
		ln, err := e.net.Listen(fmt.Sprintf("server-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
	}
	done := make(chan error, 1)
	go func() { done <- host.ServeListeners(lns) }()
	// Let the loops start, then fail one listener out from under its
	// Serve loop (the host is not closed, so this is a real failure).
	waitFor(t, "listeners accepting", func() bool {
		c, err := e.net.Dial("probe", "server-2")
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
	lns[0].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ServeListeners returned nil after a listener failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListeners did not return after one listener failed")
	}
	// The siblings were closed by the cascade: new dials are refused.
	if _, err := e.net.Dial("client", "server-1"); err == nil {
		t.Fatal("sibling listener still accepting after partial failure")
	}
}

func TestOverloadRefusal(t *testing.T) {
	e := newHostEnv(t)
	release := make(chan struct{})
	host, err := sessionhost.New(sessionhost.Config{
		Name:        "tiny",
		MaxSessions: 1,
		Handler: sessionhost.HandlerFunc(func(ctl *sessionhost.Control, conn net.Conn) error {
			<-release
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot.
	c1, c1peer := net.Pipe()
	defer c1peer.Close()
	if err := host.Submit(c1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "slot occupied", func() bool { return host.Metrics().ActiveSessions == 1 })

	// Local Submit beyond the cap.
	c2, c2peer := net.Pipe()
	defer c2peer.Close()
	err = host.Submit(c2)
	var oe *core.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("Submit over cap = %v, want OverloadError", err)
	}
	if oe.Host != "tiny" || oe.Max != 1 {
		t.Errorf("OverloadError = %+v", oe)
	}
	if cls := core.ClassifyError(err); cls != core.ClassOverload {
		t.Errorf("OverloadError classified %s, want %s", cls, core.ClassOverload)
	}
	if !core.ClassOverload.Transient() {
		t.Error("ClassOverload must be transient: the client may retry elsewhere")
	}
	c2.Close()

	// Remote dial beyond the cap sees the overloaded alert.
	ln, err := e.net.Listen("tiny")
	if err != nil {
		t.Fatal(err)
	}
	go host.Serve(ln) //nolint:errcheck
	conn, err := e.net.Dial("client", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Dial(conn, e.clientConfig()); err == nil {
		t.Error("dial over cap produced a session, want refusal")
	} else {
		if cls := core.ClassifyError(err); cls != core.ClassOverload {
			t.Errorf("overload refusal classified %s (%v), want %s", cls, err, core.ClassOverload)
		}
		if !tls12.IsRemoteAlert(err, tls12.AlertOverloaded) {
			t.Errorf("overload refusal = %v, want remote overloaded alert", err)
		}
	}

	m := host.Metrics()
	if m.Overloaded < 2 {
		t.Errorf("overloaded = %d, want >= 2", m.Overloaded)
	}
	if m.Accepted != 1 || m.HandshakesInFlight != 1 {
		t.Errorf("accepted=%d handshaking=%d, want 1/1", m.Accepted, m.HandshakesInFlight)
	}

	close(release)
	if err := host.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestForceClosePastDeadlineLeaksNoGoroutines is the forced half of
// the drain contract: a full client → middlebox → server chain whose
// session never ends on its own is force-closed when the Shutdown
// deadline expires — the middlebox seals a close_notify toward both
// neighbors, the transports drop, every relay and handler goroutine
// unwinds, and nothing leaks.
func TestForceClosePastDeadlineLeaksNoGoroutines(t *testing.T) {
	base := goleak.Base()
	e := newHostEnv(t)

	srvLn, err := e.net.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	srvHost, err := sessionhost.New(sessionhost.Config{Name: "server", Handler: e.echoHandler()})
	if err != nil {
		t.Fatal(err)
	}
	go srvHost.Serve(srvLn) //nolint:errcheck

	pool := tls12.NewRecordBufPool(4)
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name: "mb.example", Mode: core.ClientSide, Certificate: e.mbCert, BufPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	mbLn, err := e.net.Listen("mb")
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:    "mb",
		BufPool: pool,
		Handler: sessionhost.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return e.net.Dial("mb", "server")
		}),
		MiddleboxStats: mb.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	go mbHost.Serve(mbLn) //nolint:errcheck

	// A client that establishes a session and then idles forever: the
	// session will never drain on its own.
	clientDone := make(chan error, 1)
	established := make(chan struct{})
	go func() {
		conn, err := e.net.Dial("client", "mb")
		if err != nil {
			clientDone <- err
			return
		}
		sess, err := core.Dial(conn, e.clientConfig())
		if err != nil {
			clientDone <- err
			return
		}
		close(established)
		sess.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
		buf := make([]byte, 16)
		_, err = sess.Read(buf) // blocks until the force-close reaches us
		sess.Close()
		clientDone <- fmt.Errorf("read after force-close: %w", err)
	}()
	<-established
	waitFor(t, "session registered on both hosts", func() bool {
		return mbHost.Metrics().ActiveSessions == 1 && srvHost.Metrics().ActiveSessions == 1
	})

	// Drain the middlebox host with a deadline the idle session cannot
	// meet: Shutdown must force-close it and report the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := mbHost.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown past deadline = %v, want deadline exceeded", err)
	}
	if got := mbHost.Metrics().ForceClosed; got != 1 {
		t.Errorf("forceClosed = %d, want 1", got)
	}

	// The force-close unwound the chain: the client's blocked read
	// returns, and the server host (whose transport the middlebox
	// dropped) now drains cleanly within its deadline.
	select {
	case err := <-clientDone:
		if cls := core.ClassifyError(err); !cls.Transient() && cls != core.ClassCleanClose {
			t.Errorf("client saw class %s (%v) after force-close", cls, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client still blocked after force-close")
	}
	srvCtx, srvCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer srvCancel()
	if err := srvHost.Shutdown(srvCtx); err != nil {
		t.Errorf("server host Shutdown after middlebox force-close = %v", err)
	}

	waitGoroutines(t, base)
}

// TestControlLifecycle pins the registry semantics handlers observe:
// monotonic session IDs, the handshaking → established transition, and
// the draining channel.
func TestControlLifecycle(t *testing.T) {
	type obs struct {
		id            uint64
		before, after sessionhost.State
	}
	seen := make(chan obs, 2)
	host, err := sessionhost.New(sessionhost.Config{
		Name: "ctl",
		Handler: sessionhost.HandlerFunc(func(ctl *sessionhost.Control, conn net.Conn) error {
			o := obs{id: ctl.ID(), before: ctl.State()}
			ctl.SessionEstablished()
			o.after = ctl.State()
			seen <- o
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 2; i++ {
		c, peer := net.Pipe()
		defer peer.Close()
		if err := host.Submit(c); err != nil {
			t.Fatal(err)
		}
		o := <-seen
		if o.before != sessionhost.StateHandshaking || o.after != sessionhost.StateEstablished {
			t.Errorf("session %d states = %s → %s, want handshaking → established", o.id, o.before, o.after)
		}
		ids = append(ids, o.id)
	}
	if ids[1] <= ids[0] {
		t.Errorf("session IDs not monotonic: %v", ids)
	}
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if m := host.Metrics(); m.Completed != 2 || m.ActiveSessions != 0 {
		t.Errorf("completed=%d active=%d, want 2/0", m.Completed, m.ActiveSessions)
	}
	select {
	case <-host.Draining():
	default:
		t.Error("Draining channel not closed after Close")
	}
}

// readFull reads exactly len(buf) bytes from an mbTLS session.
func readFull(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
