package sessionhost

import (
	"net"

	"repro/internal/core"
)

// NewMiddleboxHandler returns a Handler that relays each admitted
// connection through mb toward the next hop from dial. The Control is
// passed to the middlebox as its lifecycle hooks, so establishment and
// drain force-close flow through the registry, and the middlebox
// should be built with MiddleboxConfig.BufPool set to the host's
// BufPool so relay memory stays host-bounded.
func NewMiddleboxHandler(mb *core.Middlebox, dial func() (net.Conn, error)) Handler {
	return HandlerFunc(func(ctl *Control, down net.Conn) error {
		up, err := dial()
		if err != nil {
			return err
		}
		defer up.Close()
		return mb.HandleHosted(down, up, ctl)
	})
}

// NewServerHandler returns a Handler that establishes an mbTLS server
// session on each admitted connection and hands it to serve. The
// session registers Close as its force-closer (Close sends a sealed
// close_notify), and its stats are folded into the host aggregate at
// teardown.
func NewServerHandler(cfg *core.ServerConfig, serve func(*core.Session) error) Handler {
	return HandlerFunc(func(ctl *Control, conn net.Conn) error {
		sess, err := core.Accept(conn, cfg)
		if err != nil {
			return err
		}
		ctl.SessionEstablished()
		ctl.RegisterForceClose(func() { sess.Close() }) //nolint:errcheck
		err = serve(sess)
		sess.Close()
		ctl.ReportStats(sess.Stats())
		return err
	})
}
