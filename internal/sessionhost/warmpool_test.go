package sessionhost_test

import (
	"os"
	"testing"

	"repro/internal/core"
)

// TestMain warms the shared relay pool before any test snapshots a
// goroutine baseline: the pool's workers are process-lifetime by
// design, so the count-based goleak accounting must see them in its
// Base() rather than charge them to whichever test first relays
// application data.
func TestMain(m *testing.M) {
	core.SharedRelayPool()
	os.Exit(m.Run())
}
