// Package sessionhost is the shared per-connection lifecycle runtime
// for every mbTLS network role. The paper's evaluation (§5) treats a
// middlebox as a long-lived service relaying many sessions at once;
// this package is where that service shape lives, so that
// cmd/mbtls-proxy, cmd/mbtls-server, and the netsim-driven tests stop
// duplicating accept loops and instead share one implementation of:
//
//   - sharded bounded admission: the host is split into N shards
//     (default GOMAXPROCS), each owning its share of the MaxSessions
//     slots, its own session map, and its own ID space (the shard
//     index rides in the session ID's low bits, so lookups route
//     without a global lock). Connections beyond the cap are refused
//     with a typed OverloadError (and an overloaded alert on the wire)
//     rather than queued without bound;
//   - a handshake gate: at most MaxHandshakes sessions run their
//     establishment concurrently; later admissions queue FIFO, which
//     bounds handshake tail latency under bursts instead of letting
//     every admitted session contend at once;
//   - a session registry: shard-local monotonic session IDs with
//     per-session state (handshaking → established → draining →
//     closed);
//   - graceful fan-out drain: Shutdown drains every shard
//     independently under one force-close deadline, so a wedged
//     session on one shard cannot delay the others; survivors are
//     force-closed at the deadline (sealed close_notify when hop keys
//     exist, so endpoints see an orderly close instead of a reset);
//   - lock-free metrics: every counter is a per-shard atomic, merged
//     by Snapshot into one Metrics value (plus the SessionStats /
//     MiddleboxStats surfaces and the host gauges);
//   - a host-scoped record-buffer pool, bounding relay memory by the
//     pool rather than by session count.
package sessionhost

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hsfast"
	"repro/internal/tls12"
)

// State is a registered session's lifecycle state.
type State int32

// Session lifecycle states, in order.
const (
	// StateHandshaking covers admission through session establishment.
	StateHandshaking State = iota
	// StateEstablished is the steady state: data plane installed (or
	// the session settled into a transparent relay).
	StateEstablished
	// StateDraining marks a session that was in flight when Shutdown
	// began; it runs to completion or to the drain deadline.
	StateDraining
	// StateClosed is terminal.
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateHandshaking:
		return "handshaking"
	case StateEstablished:
		return "established"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return "state(?)"
}

// Handler runs one admitted connection to completion. The connection
// is closed by the host when Serve returns; Serve should use ctl to
// report establishment and register a force-closer so graceful drain
// can end the session cleanly at the deadline.
type Handler interface {
	Serve(ctl *Control, conn net.Conn) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctl *Control, conn net.Conn) error

// Serve implements Handler.
func (f HandlerFunc) Serve(ctl *Control, conn net.Conn) error { return f(ctl, conn) }

// Defaults for Config fields left zero.
const (
	DefaultMaxSessions  = 256
	DefaultDrainTimeout = 10 * time.Second
	// DefaultHandshakesPerShard sizes the handshake gate when
	// Config.MaxHandshakes is zero: enough concurrency to keep every
	// core busy through a handshake's round trips, small enough that a
	// burst of admissions queues instead of thrashing.
	DefaultHandshakesPerShard = 8
)

// Config configures a Host.
type Config struct {
	// Name identifies the host in typed rejection errors and metrics.
	Name string
	// MaxSessions caps concurrent sessions across all shards;
	// connections beyond the cap are refused with OverloadError. Zero
	// means DefaultMaxSessions.
	MaxSessions int
	// Shards is how many independent admission/registry shards the
	// host runs. Zero means runtime.GOMAXPROCS(0); values are clamped
	// to [1, MaxShards].
	Shards int
	// MaxHandshakes caps sessions concurrently running establishment
	// (admitted sessions beyond it queue FIFO before their handler
	// starts). Zero means DefaultHandshakesPerShard per shard;
	// negative disables the gate. The gate relies on the configured
	// handshake timeouts to reclaim slots from wedged peers.
	MaxHandshakes int
	// DrainTimeout bounds Close's implicit drain. Zero means
	// DefaultDrainTimeout. (Shutdown takes its deadline from its
	// context instead.)
	DrainTimeout time.Duration
	// Handler runs each admitted connection. Required.
	Handler Handler
	// BufPool is the host-scoped record-buffer pool handed to relay
	// code (see Host.BufPool). Nil allocates a bounded pool sized to
	// MaxSessions.
	BufPool *tls12.RecordBufPool
	// RelayPool registers an externally owned relay crypto worker pool
	// so its utilization/depth/stall counters merge into Metrics. The
	// caller keeps ownership of its lifecycle.
	RelayPool *core.RelayPool
	// RelayWorkers, when positive, makes the host create and own a
	// relay pool with that many workers (closed after the drain
	// completes). Callers wire Host.RelayPool() into their
	// MiddleboxConfig. Zero means no host-owned pool; use RelayPool to
	// register a shared one instead.
	RelayWorkers int
	// MiddleboxStats, when set, is snapshotted into Metrics so a host
	// fronting a Middlebox aggregates both stats surfaces in one
	// place.
	MiddleboxStats func() core.MiddleboxStats
	// KeySharePool, TicketKeys, and VerifyCache are the host-scoped
	// handshake fast-path resources (see internal/hsfast). The host
	// does not consume them itself — the caller wires the same
	// instances into its MiddleboxConfig / tls12.Config — but
	// registering them here folds their hit rates and rotation counts
	// into Metrics, one stats surface per host.
	KeySharePool *hsfast.KeySharePool
	TicketKeys   *hsfast.STEK
	VerifyCache  *hsfast.VerifyCache
	// Logf, when set, receives one line per session teardown and per
	// refused connection.
	Logf func(format string, args ...any)
}

// Host is the per-connection lifecycle runtime. Create with New, feed
// with Serve (own the accept loop) or Submit (bring your own), stop
// with Shutdown or Close.
type Host struct {
	cfg    Config
	shards []*shard
	bufs   *tls12.RecordBufPool
	// relayPool is the resolved relay crypto pool (cfg.RelayPool, or a
	// host-owned one when cfg.RelayWorkers > 0); ownedPool is non-nil
	// only in the latter case and is closed after the drain.
	relayPool *core.RelayPool
	ownedPool *core.RelayPool

	// rr rotates the home shard for admissions.
	rr atomic.Uint64

	// draining flips when drain begins; drainCh closes at the same
	// moment so handlers can select on it.
	draining atomic.Bool
	drainCh  chan struct{}

	lmu       sync.Mutex
	listeners map[net.Listener]struct{}
	closed    bool
}

// New builds a Host.
func New(cfg Config) (*Host, error) {
	if cfg.Handler == nil {
		return nil, errors.New("sessionhost: config requires a Handler")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards > MaxShards {
		cfg.Shards = MaxShards
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	bufs := cfg.BufPool
	if bufs == nil {
		// Two directions' worth of relay buffers per concurrent
		// session is the steady-state working set; everything beyond
		// that is allocation the GC reclaims.
		bufs = tls12.NewRecordBufPool(2 * cfg.MaxSessions)
	}
	h := &Host{
		cfg:       cfg,
		bufs:      bufs,
		drainCh:   make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
	h.relayPool = cfg.RelayPool
	if h.relayPool == nil && cfg.RelayWorkers > 0 {
		h.ownedPool = core.NewRelayPool(cfg.RelayWorkers)
		h.relayPool = h.ownedPool
	}
	gatePerShard := 0
	switch {
	case cfg.MaxHandshakes == 0:
		gatePerShard = DefaultHandshakesPerShard
	case cfg.MaxHandshakes > 0:
		gatePerShard = (cfg.MaxHandshakes + cfg.Shards - 1) / cfg.Shards
	}
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		// MaxSessions slots split exactly across shards (the first
		// MaxSessions%Shards shards take the remainder); admission
		// steals from sibling shards before refusing, so the host
		// refuses only when the whole cap is in use.
		slots := cfg.MaxSessions / cfg.Shards
		if i < cfg.MaxSessions%cfg.Shards {
			slots++
		}
		sh := &shard{
			host:     h,
			idx:      i,
			sem:      make(chan struct{}, slots),
			sessions: make(map[uint64]*session),
		}
		if gatePerShard > 0 {
			sh.gate = make(chan struct{}, gatePerShard)
		}
		h.shards[i] = sh
	}
	return h, nil
}

// Name returns the configured host name.
func (h *Host) Name() string { return h.cfg.Name }

// Shards returns how many shards the host runs.
func (h *Host) Shards() int { return len(h.shards) }

// BufPool returns the host-scoped record-buffer pool. Middleboxes
// served by this host should be built with MiddleboxConfig.BufPool set
// to it so relay memory is bounded by the pool, not by session count.
func (h *Host) BufPool() *tls12.RecordBufPool { return h.bufs }

// RelayPool returns the host's resolved relay crypto worker pool (the
// registered external one, or the host-owned one when the Config asked
// for RelayWorkers). Nil when the host has neither; middleboxes then
// fall back to the process-wide shared pool.
func (h *Host) RelayPool() *core.RelayPool { return h.relayPool }

// Draining returns a channel closed when drain begins.
func (h *Host) Draining() <-chan struct{} { return h.drainCh }

func (h *Host) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// Serve accepts connections from ln and submits each to the session
// pool until ln fails or the host shuts down. Refused connections
// (overload, draining) are answered with a plaintext fatal alert
// before closing, so a dialing mbTLS client observes a typed
// ClassOverload failure instead of a bare reset. Serve returns nil
// when the listener was closed by Shutdown/Close.
func (h *Host) Serve(ln net.Listener) error {
	h.lmu.Lock()
	if h.closed {
		h.lmu.Unlock()
		ln.Close()
		return errors.New("sessionhost: host is closed")
	}
	h.listeners[ln] = struct{}{}
	h.lmu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.lmu.Lock()
			closed := h.closed
			h.lmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if err := h.Submit(conn); err != nil {
			h.reject(conn, err)
		}
	}
}

// ServeListeners runs one Serve loop per listener and waits for all of
// them, returning the errors of the loops that failed. It pairs with
// tcpx.Transport.ListenShards: a host with N shards accepting on N
// SO_REUSEPORT listeners gets kernel-spread admission with no shared
// accept lock. Any listener count works — the slice does not have to
// match the shard count. If one loop fails while the host is still up,
// the sibling listeners are closed so the failure surfaces immediately
// instead of the host serving half-sharded indefinitely.
func (h *Host) ServeListeners(lns []net.Listener) error {
	var wg sync.WaitGroup
	var failed atomic.Bool
	errs := make([]error, len(lns))
	for i, ln := range lns {
		wg.Add(1)
		go func(i int, ln net.Listener) {
			defer wg.Done()
			err := h.Serve(ln)
			if err != nil {
				if failed.CompareAndSwap(false, true) {
					for j, other := range lns {
						if j != i {
							other.Close()
						}
					}
				} else if errors.Is(err, net.ErrClosed) {
					// Torn down above after the first failure; the
					// cascade is not itself an error.
					err = nil
				}
			}
			errs[i] = err
		}(i, ln)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Submit admits one connection into the session pool, spawning its
// handler on a tracked goroutine. It returns a typed DrainingError or
// OverloadError (both ClassOverload) when the connection is refused,
// in which case the caller keeps ownership of conn.
func (h *Host) Submit(conn net.Conn) error {
	home := h.shards[int(h.rr.Add(1)-1)%len(h.shards)]
	if h.draining.Load() {
		home.refusedDraining.Add(1)
		return &core.DrainingError{Host: h.cfg.Name}
	}
	sh, ok := h.reserve(home)
	if !ok {
		home.overloaded.Add(1)
		return &core.OverloadError{Host: h.cfg.Name, Active: h.cfg.MaxSessions, Max: h.cfg.MaxSessions}
	}
	s := &session{conn: conn}
	if !sh.register(s) {
		// Raced with Shutdown between the slot claim and registration.
		return &core.DrainingError{Host: h.cfg.Name}
	}
	go sh.run(s)
	return nil
}

// reserve claims an admission slot, preferring the home shard and
// stealing from siblings before giving up, so the host only refuses
// when every slot across every shard is in use.
func (h *Host) reserve(home *shard) (*shard, bool) {
	for i := 0; i < len(h.shards); i++ {
		sh := h.shards[(home.idx+i)%len(h.shards)]
		select {
		case sh.sem <- struct{}{}:
			return sh, true
		default:
		}
	}
	return nil, false
}

// Lookup returns a Control for a live session by ID. The shard index
// encoded in the ID routes the lookup to one shard's map.
func (h *Host) Lookup(id uint64) (*Control, bool) {
	idx := ShardOfID(id)
	if idx >= len(h.shards) {
		return nil, false
	}
	sh := h.shards[idx]
	sh.mu.Lock()
	s := sh.sessions[id]
	sh.mu.Unlock()
	if s == nil {
		return nil, false
	}
	return &Control{s: s}, true
}

// reject answers a refused connection with the matching plaintext
// fatal alert, then closes it. Best-effort: the alert races the
// client's own view of the connection by design.
func (h *Host) reject(conn net.Conn, err error) {
	desc := tls12.AlertOverloaded
	var de *core.DrainingError
	if errors.As(err, &de) {
		desc = tls12.AlertDraining
	}
	rec := tls12.RawRecord{
		Type:    tls12.TypeAlert,
		Payload: []byte{byte(tls12.AlertLevelFatal), byte(desc)},
	}
	conn.SetWriteDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	conn.Write(rec.Marshal())                          //nolint:errcheck
	conn.Close()
	h.logf("sessionhost %s: refused connection: %v", h.cfg.Name, err)
}

// Shutdown gracefully drains the host: new admissions are refused with
// DrainingError, in-flight sessions run to completion, and sessions
// still alive when ctx expires are force-closed (a hosted middlebox
// seals a close_notify toward both neighbors first). The drain fans
// out per shard under the one deadline — a wedged session on one
// shard delays only that shard's completion, never the others'.
// Listeners registered via Serve are closed once every shard drained.
// Shutdown returns ctx.Err() if the deadline forced any shard, nil
// after a clean drain.
func (h *Host) Shutdown(ctx context.Context) error {
	if h.draining.CompareAndSwap(false, true) {
		close(h.drainCh)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var deadline atomic.Bool
	for _, sh := range h.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			if sh.drain(ctx, start) {
				deadline.Store(true)
			}
		}(sh)
	}
	wg.Wait()

	h.lmu.Lock()
	firstClose := !h.closed
	h.closed = true
	lns := make([]net.Listener, 0, len(h.listeners))
	for ln := range h.listeners {
		lns = append(lns, ln)
	}
	h.listeners = make(map[net.Listener]struct{})
	h.lmu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	if firstClose && h.ownedPool != nil {
		// Every shard drained, so no session can submit more jobs; the
		// host-owned crypto workers can stop.
		h.ownedPool.Close()
	}
	var err error
	if deadline.Load() {
		err = ctx.Err()
	}
	if firstClose {
		m := h.Snapshot()
		h.logf("sessionhost %s: drained %d shard(s) in %v (forced %d)",
			h.cfg.Name, len(h.shards), time.Since(start), m.ForceClosed)
	}
	return err
}

// Close drains with the configured DrainTimeout.
func (h *Host) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.DrainTimeout)
	defer cancel()
	return h.Shutdown(ctx)
}

// ShardMetrics is one shard's slice of a Metrics snapshot.
type ShardMetrics struct {
	Index           int
	Accepted        uint64
	Completed       uint64
	Failed          uint64
	Overloaded      uint64
	RefusedDraining uint64
	ForceClosed     uint64

	ActiveSessions     int
	HandshakesInFlight int

	// Sessions is this shard's slice of the SessionStats aggregate.
	Sessions core.SessionStats

	// Drained reports that this shard's drain completed (all handlers
	// returned); DrainTime is how long that took from Shutdown entry.
	Drained   bool
	DrainTime time.Duration
}

// Metrics is a point-in-time snapshot of a Host, merged across shards.
type Metrics struct {
	Name   string
	Shards int
	// Admission counters (sums of the per-shard atomics).
	Accepted        uint64 // sessions admitted
	Completed       uint64 // sessions ended clean (ok / clean close)
	Failed          uint64 // sessions ended by a fault-classified error
	Overloaded      uint64 // connections refused at the session cap
	RefusedDraining uint64 // connections refused during drain
	ForceClosed     uint64 // sessions force-closed at a drain deadline
	// Gauges.
	ActiveSessions     int
	HandshakesInFlight int
	Draining           bool
	// DrainTime is the slowest shard's drain duration for the last
	// Shutdown (zero before one).
	DrainTime time.Duration
	// PerShard is the unmerged breakdown, one entry per shard.
	PerShard []ShardMetrics
	// Sessions aggregates the SessionStats handlers reported via
	// Control.ReportStats.
	Sessions core.SessionStats
	// Middlebox is the fronted middlebox's counters when the Config
	// wires a MiddleboxStats source.
	Middlebox *core.MiddleboxStats
	// BufPool snapshots the host-scoped record-buffer pool.
	BufPool tls12.RecordBufPoolStats
	// RelayPool snapshots the relay crypto worker pool (worker
	// utilization, pipeline depth, stalls, reseal latency quantiles)
	// when the host has one registered or owned.
	RelayPool *core.RelayPoolStats
	// Handshake fast-path surfaces, present when the Config registered
	// the corresponding resource.
	KeySharePool       *hsfast.KeySharePoolStats
	VerifyCache        *hsfast.VerifyCacheStats
	TicketKeyRotations int64
}

// Snapshot merges every shard's lock-free counters into one Metrics
// value. The sums are per-counter consistent (each counter is an
// atomic) but the snapshot is not a cross-counter fence: counters
// advancing mid-snapshot may land on either side.
func (h *Host) Snapshot() Metrics {
	m := Metrics{
		Name:     h.cfg.Name,
		Shards:   len(h.shards),
		Draining: h.draining.Load(),
		PerShard: make([]ShardMetrics, 0, len(h.shards)),
	}
	for _, sh := range h.shards {
		sh.snapshotInto(&m)
	}
	if h.cfg.MiddleboxStats != nil {
		st := h.cfg.MiddleboxStats()
		m.Middlebox = &st
	}
	m.BufPool = h.bufs.Stats()
	if h.relayPool != nil {
		st := h.relayPool.Stats()
		m.RelayPool = &st
	}
	if p := h.cfg.KeySharePool; p != nil {
		st := p.Stats()
		m.KeySharePool = &st
	}
	if c := h.cfg.VerifyCache; c != nil {
		st := c.Stats()
		m.VerifyCache = &st
	}
	if s := h.cfg.TicketKeys; s != nil {
		m.TicketKeyRotations = s.Rotations()
	}
	return m
}

// Metrics snapshots the host. Alias of Snapshot, kept for callers that
// predate sharding.
func (h *Host) Metrics() Metrics { return h.Snapshot() }
