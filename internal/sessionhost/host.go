// Package sessionhost is the shared per-connection lifecycle runtime
// for every mbTLS network role. The paper's evaluation (§5) treats a
// middlebox as a long-lived service relaying many sessions at once;
// this package is where that service shape lives, so that
// cmd/mbtls-proxy, cmd/mbtls-server, and the netsim-driven tests stop
// duplicating accept loops and instead share one implementation of:
//
//   - a bounded accept loop: at most MaxSessions sessions run
//     concurrently, and connections beyond the cap are refused with a
//     typed OverloadError (and an overloaded alert on the wire) rather
//     than queued without bound;
//   - a session registry: monotonic session IDs with per-session state
//     (handshaking → established → draining → closed);
//   - graceful drain: Shutdown lets in-flight sessions finish while
//     refusing new ones with a typed DrainingError, and force-closes
//     survivors at the deadline (sealed close_notify when hop keys
//     exist, so endpoints see an orderly close instead of a reset);
//   - one aggregation point for SessionStats/MiddleboxStats plus the
//     host gauges (active sessions, handshakes in flight, drain time);
//   - a host-scoped record-buffer pool, bounding relay memory by the
//     pool rather than by session count.
package sessionhost

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hsfast"
	"repro/internal/tls12"
)

// State is a registered session's lifecycle state.
type State int32

// Session lifecycle states, in order.
const (
	// StateHandshaking covers admission through session establishment.
	StateHandshaking State = iota
	// StateEstablished is the steady state: data plane installed (or
	// the session settled into a transparent relay).
	StateEstablished
	// StateDraining marks a session that was in flight when Shutdown
	// began; it runs to completion or to the drain deadline.
	StateDraining
	// StateClosed is terminal.
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateHandshaking:
		return "handshaking"
	case StateEstablished:
		return "established"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return "state(?)"
}

// Handler runs one admitted connection to completion. The connection
// is closed by the host when Serve returns; Serve should use ctl to
// report establishment and register a force-closer so graceful drain
// can end the session cleanly at the deadline.
type Handler interface {
	Serve(ctl *Control, conn net.Conn) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctl *Control, conn net.Conn) error

// Serve implements Handler.
func (f HandlerFunc) Serve(ctl *Control, conn net.Conn) error { return f(ctl, conn) }

// Defaults for Config fields left zero.
const (
	DefaultMaxSessions  = 256
	DefaultDrainTimeout = 10 * time.Second
)

// Config configures a Host.
type Config struct {
	// Name identifies the host in typed rejection errors and metrics.
	Name string
	// MaxSessions caps concurrent sessions; connections beyond the cap
	// are refused with OverloadError. Zero means DefaultMaxSessions.
	MaxSessions int
	// DrainTimeout bounds Close's implicit drain. Zero means
	// DefaultDrainTimeout. (Shutdown takes its deadline from its
	// context instead.)
	DrainTimeout time.Duration
	// Handler runs each admitted connection. Required.
	Handler Handler
	// BufPool is the host-scoped record-buffer pool handed to relay
	// code (see Host.BufPool). Nil allocates a bounded pool sized to
	// MaxSessions.
	BufPool *tls12.RecordBufPool
	// MiddleboxStats, when set, is snapshotted into Metrics so a host
	// fronting a Middlebox aggregates both stats surfaces in one
	// place.
	MiddleboxStats func() core.MiddleboxStats
	// KeySharePool, TicketKeys, and VerifyCache are the host-scoped
	// handshake fast-path resources (see internal/hsfast). The host
	// does not consume them itself — the caller wires the same
	// instances into its MiddleboxConfig / tls12.Config — but
	// registering them here folds their hit rates and rotation counts
	// into Metrics, one stats surface per host.
	KeySharePool *hsfast.KeySharePool
	TicketKeys   *hsfast.STEK
	VerifyCache  *hsfast.VerifyCache
	// Logf, when set, receives one line per session teardown and per
	// refused connection.
	Logf func(format string, args ...any)
}

// Host is the per-connection lifecycle runtime. Create with New, feed
// with Serve (own the accept loop) or Submit (bring your own), stop
// with Shutdown or Close.
type Host struct {
	cfg  Config
	sem  chan struct{}
	bufs *tls12.RecordBufPool

	// drainCh closes when drain begins; handlers can select on it.
	drainCh chan struct{}

	nextID atomic.Uint64

	mu        sync.Mutex
	sessions  map[uint64]*session
	listeners map[net.Listener]struct{}
	draining  bool
	closed    bool
	wg        sync.WaitGroup

	accepted        uint64
	completed       uint64
	failed          uint64
	overloaded      uint64
	refusedDraining uint64
	forceClosed     uint64
	agg             core.SessionStats
	drainTime       time.Duration
}

// New builds a Host.
func New(cfg Config) (*Host, error) {
	if cfg.Handler == nil {
		return nil, errors.New("sessionhost: config requires a Handler")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	bufs := cfg.BufPool
	if bufs == nil {
		// Two directions' worth of relay buffers per concurrent
		// session is the steady-state working set; everything beyond
		// that is allocation the GC reclaims.
		bufs = tls12.NewRecordBufPool(2 * cfg.MaxSessions)
	}
	return &Host{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxSessions),
		bufs:      bufs,
		drainCh:   make(chan struct{}),
		sessions:  make(map[uint64]*session),
		listeners: make(map[net.Listener]struct{}),
	}, nil
}

// Name returns the configured host name.
func (h *Host) Name() string { return h.cfg.Name }

// BufPool returns the host-scoped record-buffer pool. Middleboxes
// served by this host should be built with MiddleboxConfig.BufPool set
// to it so relay memory is bounded by the pool, not by session count.
func (h *Host) BufPool() *tls12.RecordBufPool { return h.bufs }

// Draining returns a channel closed when drain begins.
func (h *Host) Draining() <-chan struct{} { return h.drainCh }

func (h *Host) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// Serve accepts connections from ln and submits each to the session
// pool until ln fails or the host shuts down. Refused connections
// (overload, draining) are answered with a plaintext fatal alert
// before closing, so a dialing mbTLS client observes a typed
// ClassOverload failure instead of a bare reset. Serve returns nil
// when the listener was closed by Shutdown/Close.
func (h *Host) Serve(ln net.Listener) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ln.Close()
		return errors.New("sessionhost: host is closed")
	}
	h.listeners[ln] = struct{}{}
	h.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if err := h.Submit(conn); err != nil {
			h.reject(conn, err)
		}
	}
}

// Submit admits one connection into the session pool, spawning its
// handler on a tracked goroutine. It returns a typed DrainingError or
// OverloadError (both ClassOverload) when the connection is refused,
// in which case the caller keeps ownership of conn.
func (h *Host) Submit(conn net.Conn) error {
	if err := h.admit(); err != nil {
		return err
	}
	s := &session{id: h.nextID.Add(1), host: h, conn: conn}
	h.mu.Lock()
	if h.draining {
		// Raced with Shutdown between admit and registration.
		h.refusedDraining++
		h.mu.Unlock()
		<-h.sem
		return &core.DrainingError{Host: h.cfg.Name}
	}
	h.sessions[s.id] = s
	h.accepted++
	h.wg.Add(1)
	h.mu.Unlock()
	go h.runSession(s)
	return nil
}

// admit claims a session slot or returns the typed refusal.
func (h *Host) admit() error {
	h.mu.Lock()
	if h.draining {
		h.refusedDraining++
		h.mu.Unlock()
		return &core.DrainingError{Host: h.cfg.Name}
	}
	h.mu.Unlock()
	select {
	case h.sem <- struct{}{}:
		return nil
	default:
		h.mu.Lock()
		h.overloaded++
		h.mu.Unlock()
		return &core.OverloadError{Host: h.cfg.Name, Active: cap(h.sem), Max: cap(h.sem)}
	}
}

// reject answers a refused connection with the matching plaintext
// fatal alert, then closes it. Best-effort: the alert races the
// client's own view of the connection by design.
func (h *Host) reject(conn net.Conn, err error) {
	desc := tls12.AlertOverloaded
	var de *core.DrainingError
	if errors.As(err, &de) {
		desc = tls12.AlertDraining
	}
	rec := tls12.RawRecord{
		Type:    tls12.TypeAlert,
		Payload: []byte{byte(tls12.AlertLevelFatal), byte(desc)},
	}
	conn.SetWriteDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	conn.Write(rec.Marshal())                          //nolint:errcheck
	conn.Close()
	h.logf("sessionhost %s: refused connection: %v", h.cfg.Name, err)
}

// runSession drives one admitted session to completion.
func (h *Host) runSession(s *session) {
	defer h.wg.Done()
	err := h.cfg.Handler.Serve(&Control{s: s}, s.conn)
	s.conn.Close()
	s.state.Store(int32(StateClosed))
	cls := core.ClassifyError(err)
	h.mu.Lock()
	delete(h.sessions, s.id)
	if cls == core.ClassOK || cls == core.ClassCleanClose {
		h.completed++
	} else {
		h.failed++
	}
	h.mu.Unlock()
	<-h.sem
	if cls != core.ClassOK {
		h.logf("sessionhost %s: session %d closed: %s (%v)", h.cfg.Name, s.id, cls, err)
	}
}

// Shutdown gracefully drains the host: new admissions are refused with
// DrainingError, in-flight sessions run to completion, and sessions
// still alive when ctx expires are force-closed (a hosted middlebox
// seals a close_notify toward both neighbors first). Listeners
// registered via Serve are closed once the pool is empty. Shutdown
// returns ctx.Err() if the deadline forced any closes, nil after a
// clean drain.
func (h *Host) Shutdown(ctx context.Context) error {
	h.mu.Lock()
	alreadyDraining := h.draining
	h.draining = true
	for _, s := range h.sessions {
		s.markDraining()
	}
	h.mu.Unlock()
	if !alreadyDraining {
		close(h.drainCh)
	}

	start := time.Now()
	done := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		h.mu.Lock()
		forced := make([]*session, 0, len(h.sessions))
		for _, s := range h.sessions {
			forced = append(forced, s)
		}
		h.forceClosed += uint64(len(forced))
		h.mu.Unlock()
		for _, s := range forced {
			s.forceClose()
		}
		// Force-closing killed the transports, which unwinds the
		// handler goroutines; wait for them so no session outlives
		// Shutdown.
		<-done
	}

	h.mu.Lock()
	h.drainTime = time.Since(start)
	firstClose := !h.closed
	h.closed = true
	lns := make([]net.Listener, 0, len(h.listeners))
	for ln := range h.listeners {
		lns = append(lns, ln)
	}
	h.listeners = make(map[net.Listener]struct{})
	h.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	if firstClose {
		h.logf("sessionhost %s: drained in %v (forced %d)", h.cfg.Name, time.Since(start), h.forceClosed)
	}
	return err
}

// Close drains with the configured DrainTimeout.
func (h *Host) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.DrainTimeout)
	defer cancel()
	return h.Shutdown(ctx)
}

// Metrics is a point-in-time snapshot of a Host.
type Metrics struct {
	Name string
	// Admission counters.
	Accepted        uint64 // sessions admitted
	Completed       uint64 // sessions ended clean (ok / clean close)
	Failed          uint64 // sessions ended by a fault-classified error
	Overloaded      uint64 // connections refused at the session cap
	RefusedDraining uint64 // connections refused during drain
	ForceClosed     uint64 // sessions force-closed at a drain deadline
	// Gauges.
	ActiveSessions     int
	HandshakesInFlight int
	Draining           bool
	// DrainTime is how long the last Shutdown took (zero before one).
	DrainTime time.Duration
	// Sessions aggregates the SessionStats handlers reported via
	// Control.ReportStats.
	Sessions core.SessionStats
	// Middlebox is the fronted middlebox's counters when the Config
	// wires a MiddleboxStats source.
	Middlebox *core.MiddleboxStats
	// BufPool snapshots the host-scoped record-buffer pool.
	BufPool tls12.RecordBufPoolStats
	// Handshake fast-path surfaces, present when the Config registered
	// the corresponding resource.
	KeySharePool       *hsfast.KeySharePoolStats
	VerifyCache        *hsfast.VerifyCacheStats
	TicketKeyRotations int64
}

// Metrics snapshots the host.
func (h *Host) Metrics() Metrics {
	h.mu.Lock()
	m := Metrics{
		Name:            h.cfg.Name,
		Accepted:        h.accepted,
		Completed:       h.completed,
		Failed:          h.failed,
		Overloaded:      h.overloaded,
		RefusedDraining: h.refusedDraining,
		ForceClosed:     h.forceClosed,
		ActiveSessions:  len(h.sessions),
		Draining:        h.draining,
		DrainTime:       h.drainTime,
		Sessions:        h.agg,
	}
	for _, s := range h.sessions {
		if State(s.state.Load()) == StateHandshaking {
			m.HandshakesInFlight++
		}
	}
	h.mu.Unlock()
	if h.cfg.MiddleboxStats != nil {
		st := h.cfg.MiddleboxStats()
		m.Middlebox = &st
	}
	m.BufPool = h.bufs.Stats()
	if p := h.cfg.KeySharePool; p != nil {
		st := p.Stats()
		m.KeySharePool = &st
	}
	if c := h.cfg.VerifyCache; c != nil {
		st := c.Stats()
		m.VerifyCache = &st
	}
	if s := h.cfg.TicketKeys; s != nil {
		m.TicketKeyRotations = s.Rotations()
	}
	return m
}
