package sessionhost_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sessionhost"
	"repro/internal/testutil/goleak"
)

// TestShardOfIDRoundTrip pins the ID encoding: Lookup routes by the
// shard index in the low bits, and Control.Shard agrees with it.
func TestShardOfIDRoundTrip(t *testing.T) {
	const shards = 8
	ready := make(chan uint64, shards*2)
	release := make(chan struct{})
	host, err := sessionhost.New(sessionhost.Config{
		Name:   "route",
		Shards: shards,
		Handler: sessionhost.HandlerFunc(func(ctl *sessionhost.Control, conn net.Conn) error {
			if ctl.Shard() != sessionhost.ShardOfID(ctl.ID()) {
				t.Errorf("Control.Shard() = %d, ShardOfID(%d) = %d",
					ctl.Shard(), ctl.ID(), sessionhost.ShardOfID(ctl.ID()))
			}
			ctl.SessionEstablished()
			ready <- ctl.ID()
			<-release
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if host.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", host.Shards(), shards)
	}
	seen := make(map[int]bool)
	for i := 0; i < shards*2; i++ {
		c, peer := net.Pipe()
		defer peer.Close()
		if err := host.Submit(c); err != nil {
			t.Fatal(err)
		}
		id := <-ready
		seen[sessionhost.ShardOfID(id)] = true
		ctl, ok := host.Lookup(id)
		if !ok {
			t.Fatalf("Lookup(%d) missed a live session", id)
		}
		if ctl.ID() != id {
			t.Errorf("Lookup(%d).ID() = %d", id, ctl.ID())
		}
	}
	if len(seen) != shards {
		t.Errorf("round-robin admission touched %d/%d shards", len(seen), shards)
	}
	close(release)
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := host.Lookup(1 << 10); ok {
		t.Error("Lookup found a session after Close")
	}
}

// TestWedgedShardDoesNotDelayOtherShards is the drain-independence
// contract: one session that ignores the drain signal wedges its own
// shard until the force-close deadline, while every other shard
// reports Drained long before the deadline. Run under -race; goroutine
// accounting pins that even the wedged shard's session is fully
// reclaimed.
func TestWedgedShardDoesNotDelayOtherShards(t *testing.T) {
	base := goleak.Base()
	const shards = 4
	const sessions = 8

	var wedge atomic.Bool
	wedgedShard := make(chan int, 1)
	started := make(chan struct{}, sessions)
	handler := sessionhost.HandlerFunc(func(ctl *sessionhost.Control, conn net.Conn) error {
		ctl.SessionEstablished()
		killed := make(chan struct{})
		ctl.RegisterForceClose(func() { close(killed) })
		if wedge.CompareAndSwap(true, false) {
			// The wedged session: deaf to Draining, it exits only when
			// the deadline force-closes it.
			wedgedShard <- ctl.Shard()
			started <- struct{}{}
			<-killed
			return nil
		}
		started <- struct{}{}
		select {
		case <-ctl.Draining():
		case <-killed:
		}
		return nil
	})
	host, err := sessionhost.New(sessionhost.Config{
		Name:        "wedge",
		MaxSessions: sessions,
		Shards:      shards,
		Handler:     handler,
	})
	if err != nil {
		t.Fatal(err)
	}

	wedge.Store(true)
	for i := 0; i < sessions; i++ {
		c, peer := net.Pipe()
		defer peer.Close()
		if err := host.Submit(c); err != nil {
			t.Fatal(err)
		}
		<-started
	}
	wedged := <-wedgedShard

	const deadline = 1500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	shutdownErr := make(chan error, 1)
	shutdownStart := time.Now()
	go func() { shutdownErr <- host.Shutdown(ctx) }()

	// Long before the deadline, every shard but the wedged one must
	// have completed its drain.
	waitFor(t, "unwedged shards drained", func() bool {
		m := host.Snapshot()
		drained := 0
		for _, sm := range m.PerShard {
			if sm.Drained {
				if sm.Index == wedged {
					t.Fatal("wedged shard reported Drained before its session ended")
				}
				drained++
			}
		}
		return drained == shards-1
	})
	if waited := time.Since(shutdownStart); waited >= deadline {
		t.Fatalf("unwedged shards took %v to drain, deadline was %v", waited, deadline)
	}

	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded (wedged shard forced)", err)
	}
	m := host.Snapshot()
	if m.ForceClosed != 1 {
		t.Errorf("forceClosed = %d, want exactly the wedged session", m.ForceClosed)
	}
	for _, sm := range m.PerShard {
		if !sm.Drained {
			t.Errorf("shard %d not drained after Shutdown returned", sm.Index)
		}
		if sm.Index == wedged {
			if sm.ForceClosed != 1 {
				t.Errorf("wedged shard forceClosed = %d, want 1", sm.ForceClosed)
			}
			if sm.DrainTime < deadline {
				t.Errorf("wedged shard drained in %v, before the %v deadline", sm.DrainTime, deadline)
			}
			continue
		}
		if sm.ForceClosed != 0 {
			t.Errorf("shard %d forceClosed = %d, want 0", sm.Index, sm.ForceClosed)
		}
		if sm.DrainTime >= deadline/2 {
			t.Errorf("shard %d drain took %v, want well under the %v deadline", sm.Index, sm.DrainTime, deadline)
		}
	}
	waitGoroutines(t, base)
}

// TestSnapshotRace hammers every shard's lock-free counters from
// GOMAXPROCS-many reporting sessions while other goroutines snapshot
// continuously, then checks the merge invariants: in every snapshot
// (including mid-race ones) the merged totals equal the sum of the
// per-shard breakdown, aggregates only grow, and the final totals are
// exactly what the sessions reported. Run under -race.
func TestSnapshotRace(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	reporters := procs
	if reporters < 4 {
		reporters = 4
	}
	const reportsPer = 1000

	release := make(chan struct{})
	established := make(chan struct{}, reporters)
	handler := sessionhost.HandlerFunc(func(ctl *sessionhost.Control, conn net.Conn) error {
		ctl.SessionEstablished()
		established <- struct{}{}
		for i := 0; i < reportsPer; i++ {
			ctl.ReportStats(core.SessionStats{
				RecordsRelayed:   1,
				Reseals:          2,
				FaultsObserved:   1,
				ResumedPrimary:   1,
				ResumedHops:      3,
				AttestSessions:   1,
				ProxySigSessions: 1,
			})
		}
		<-release
		return nil
	})
	host, err := sessionhost.New(sessionhost.Config{
		Name:        "snap",
		MaxSessions: reporters,
		Shards:      procs,
		Handler:     handler,
	})
	if err != nil {
		t.Fatal(err)
	}

	checkMerge := func(m sessionhost.Metrics) {
		t.Helper()
		var sum sessionhost.ShardMetrics
		for _, sm := range m.PerShard {
			sum.Accepted += sm.Accepted
			sum.Completed += sm.Completed
			sum.Failed += sm.Failed
			sum.Overloaded += sm.Overloaded
			sum.RefusedDraining += sm.RefusedDraining
			sum.ForceClosed += sm.ForceClosed
			sum.ActiveSessions += sm.ActiveSessions
			sum.Sessions.RecordsRelayed += sm.Sessions.RecordsRelayed
			sum.Sessions.Reseals += sm.Sessions.Reseals
			sum.Sessions.FaultsObserved += sm.Sessions.FaultsObserved
			sum.Sessions.ResumedPrimary += sm.Sessions.ResumedPrimary
			sum.Sessions.ResumedHops += sm.Sessions.ResumedHops
			sum.Sessions.AttestSessions += sm.Sessions.AttestSessions
			sum.Sessions.ProxySigSessions += sm.Sessions.ProxySigSessions
		}
		if sum.Accepted != m.Accepted || sum.Completed != m.Completed || sum.Failed != m.Failed ||
			sum.Overloaded != m.Overloaded || sum.RefusedDraining != m.RefusedDraining ||
			sum.ForceClosed != m.ForceClosed || sum.ActiveSessions != m.ActiveSessions ||
			sum.Sessions != m.Sessions {
			t.Errorf("snapshot totals diverge from per-shard sums:\n totals %+v\n sums   %+v", m, sum)
		}
	}

	// Snapshotters race the reporters.
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for g := 0; g < 2; g++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			var lastRelayed int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := host.Snapshot()
				checkMerge(m)
				if m.Sessions.RecordsRelayed < lastRelayed {
					t.Errorf("RecordsRelayed went backwards: %d after %d", m.Sessions.RecordsRelayed, lastRelayed)
				}
				lastRelayed = m.Sessions.RecordsRelayed
			}
		}()
	}

	for i := 0; i < reporters; i++ {
		c, peer := net.Pipe()
		defer peer.Close()
		if err := host.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reporters; i++ {
		<-established
	}
	close(release)
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	snaps.Wait()

	m := host.Snapshot()
	checkMerge(m)
	n := int64(reporters) * reportsPer
	want := core.SessionStats{
		RecordsRelayed: n, Reseals: 2 * n, FaultsObserved: n,
		ResumedPrimary: n, ResumedHops: 3 * n,
		AttestSessions: n, ProxySigSessions: n,
	}
	if m.Sessions != want {
		t.Errorf("final SessionStats = %+v, want %+v", m.Sessions, want)
	}
	if m.Accepted != uint64(reporters) || m.Completed != uint64(reporters) || m.ActiveSessions != 0 {
		t.Errorf("final admission counters = accepted %d completed %d active %d, want %d/%d/0",
			m.Accepted, m.Completed, m.ActiveSessions, reporters, reporters)
	}
}
