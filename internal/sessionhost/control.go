package sessionhost

import (
	"net"
	"sync/atomic"

	"repro/internal/core"
)

// session is one registered connection's lifecycle record.
type session struct {
	id   uint64
	host *Host
	conn net.Conn

	state  atomic.Int32 // State
	closer atomic.Value // func(): handler-registered force-closer
}

// markDraining moves a live session into StateDraining.
func (s *session) markDraining() {
	for {
		cur := s.state.Load()
		if State(cur) == StateClosed || State(cur) == StateDraining {
			return
		}
		if s.state.CompareAndSwap(cur, int32(StateDraining)) {
			return
		}
	}
}

// forceClose ends the session at the drain deadline: the handler's
// registered closer runs first (sealing a close_notify when the
// session has hop or session keys to seal under), then the transport
// drops, which unwinds the handler goroutine either way.
func (s *session) forceClose() {
	if f, ok := s.closer.Load().(func()); ok && f != nil {
		f()
	}
	s.conn.Close()
}

// Control is a handler's interface back to the hosting runtime. It
// implements core.HostHooks, so a middlebox handler can pass it
// straight to Middlebox.HandleHosted.
type Control struct {
	s *session
}

var _ core.HostHooks = (*Control)(nil)

// ID returns the session's monotonic registry ID.
func (c *Control) ID() uint64 { return c.s.id }

// State returns the session's current lifecycle state.
func (c *Control) State() State { return State(c.s.state.Load()) }

// SessionEstablished implements core.HostHooks: the session finished
// establishing (handshaking → established). A session already marked
// draining or closed keeps that state.
func (c *Control) SessionEstablished() {
	c.s.state.CompareAndSwap(int32(StateHandshaking), int32(StateEstablished))
}

// RegisterForceClose implements core.HostHooks: f is invoked if the
// session is still alive at a drain deadline. Later registrations
// replace earlier ones.
func (c *Control) RegisterForceClose(f func()) {
	if f != nil {
		c.s.closer.Store(f)
	}
}

// Draining returns a channel closed when the host begins draining;
// long-running handlers select on it to stop accepting new work.
func (c *Control) Draining() <-chan struct{} { return c.s.host.drainCh }

// ReportStats folds a finished session's endpoint counters into the
// host's aggregate (TeardownReason, a per-session string, is not
// aggregated).
func (c *Control) ReportStats(st core.SessionStats) {
	h := c.s.host
	h.mu.Lock()
	h.agg.RecordsRelayed += st.RecordsRelayed
	h.agg.Reseals += st.Reseals
	h.agg.FaultsObserved += st.FaultsObserved
	h.agg.ResumedPrimary += st.ResumedPrimary
	h.agg.ResumedHops += st.ResumedHops
	h.mu.Unlock()
}
