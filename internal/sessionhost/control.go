package sessionhost

import (
	"net"
	"sync/atomic"

	"repro/internal/core"
)

// session is one registered connection's lifecycle record. It lives in
// exactly one shard's map; the shard index rides in the ID's low bits.
type session struct {
	id   uint64
	sh   *shard
	conn net.Conn

	state  atomic.Int32 // State
	gated  atomic.Bool  // holds a handshake-gate slot
	closer atomic.Value // func(): handler-registered force-closer
}

// markDraining moves a live session into StateDraining.
func (s *session) markDraining() {
	for {
		cur := s.state.Load()
		if State(cur) == StateClosed || State(cur) == StateDraining {
			return
		}
		if s.state.CompareAndSwap(cur, int32(StateDraining)) {
			return
		}
	}
}

// releaseGate returns the session's handshake-gate slot, if it holds
// one. Called on establishment (the expensive phase is over) and again
// unconditionally at teardown; the CAS makes the release exactly-once.
func (s *session) releaseGate() {
	if s.gated.CompareAndSwap(true, false) {
		<-s.sh.gate
	}
}

// forceClose ends the session at the drain deadline: the handler's
// registered closer runs first (sealing a close_notify when the
// session has hop or session keys to seal under), then the transport
// drops, which unwinds the handler goroutine either way.
func (s *session) forceClose() {
	if f, ok := s.closer.Load().(func()); ok && f != nil {
		f()
	}
	s.conn.Close()
}

// Control is a handler's interface back to the hosting runtime. It
// implements core.HostHooks, so a middlebox handler can pass it
// straight to Middlebox.HandleHosted.
type Control struct {
	s *session
}

var _ core.HostHooks = (*Control)(nil)

// ID returns the session's registry ID (shard-local sequence number in
// the high bits, owning shard index in the low shardIDBits).
func (c *Control) ID() uint64 { return c.s.id }

// Shard returns the index of the shard that owns the session.
func (c *Control) Shard() int { return ShardOfID(c.s.id) }

// State returns the session's current lifecycle state.
func (c *Control) State() State { return State(c.s.state.Load()) }

// SessionEstablished implements core.HostHooks: the session finished
// establishing (handshaking → established). A session already marked
// draining or closed keeps that state. Establishment releases the
// session's handshake-gate slot.
func (c *Control) SessionEstablished() {
	c.s.state.CompareAndSwap(int32(StateHandshaking), int32(StateEstablished))
	c.s.releaseGate()
}

// RegisterForceClose implements core.HostHooks: f is invoked if the
// session is still alive at a drain deadline. Later registrations
// replace earlier ones.
func (c *Control) RegisterForceClose(f func()) {
	if f != nil {
		c.s.closer.Store(f)
	}
}

// Draining returns a channel closed when the host begins draining;
// long-running handlers select on it to stop accepting new work.
func (c *Control) Draining() <-chan struct{} { return c.s.sh.host.drainCh }

// ReportStats folds a finished session's endpoint counters into its
// shard's lock-free aggregate (TeardownReason, a per-session string,
// is not aggregated).
func (c *Control) ReportStats(st core.SessionStats) {
	sh := c.s.sh
	sh.recordsRelayed.Add(st.RecordsRelayed)
	sh.reseals.Add(st.Reseals)
	sh.faultsObserved.Add(st.FaultsObserved)
	sh.resumedPrimary.Add(st.ResumedPrimary)
	sh.resumedHops.Add(st.ResumedHops)
	sh.attestSessions.Add(st.AttestSessions)
	sh.proxySigSessions.Add(st.ProxySigSessions)
}
