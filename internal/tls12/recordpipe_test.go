package tls12

import (
	"bytes"
	"io"
	"testing"
)

// countingWriter records every Write call's bytes separately, so tests
// can assert how records were coalesced onto the transport.
type countingWriter struct {
	writes [][]byte
}

func (w *countingWriter) Write(b []byte) (int, error) {
	w.writes = append(w.writes, append([]byte(nil), b...))
	return len(b), nil
}

func (w *countingWriter) all() []byte {
	var out []byte
	for _, b := range w.writes {
		out = append(out, b...)
	}
	return out
}

// readAllRecords decodes every record from a byte stream, optionally
// decrypting with open.
func readAllRecords(t *testing.T, data []byte, open *CipherState) []Record {
	t.Helper()
	rl := NewRecordLayerRW(bytes.NewReader(data), io.Discard)
	if open != nil {
		rl.SetReadCipher(open)
	}
	var recs []Record
	for {
		rec, err := rl.ReadRecord()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("record %d: %v", len(recs), err)
		}
		recs = append(recs, Record{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)})
	}
}

// TestWriteRecordFragmentBoundaries covers the exact fragmentation
// edges — empty, exactly maxPlaintext, and maxPlaintext+1 — in both
// plaintext and encrypted modes.
func TestWriteRecordFragmentBoundaries(t *testing.T) {
	cases := []struct {
		name      string
		size      int
		wantRecs  int
		wantSizes []int
	}{
		{"empty", 0, 1, []int{0}},
		{"maxPlaintext", maxPlaintext, 1, []int{maxPlaintext}},
		{"maxPlaintextPlus1", maxPlaintext + 1, 2, []int{maxPlaintext, 1}},
	}
	for _, encrypted := range []bool{false, true} {
		for _, tc := range cases {
			name := tc.name
			if encrypted {
				name += "/encrypted"
			}
			t.Run(name, func(t *testing.T) {
				payload := make([]byte, tc.size)
				for i := range payload {
					payload[i] = byte(i)
				}
				w := &countingWriter{}
				rl := NewRecordLayerRW(bytes.NewReader(nil), w)
				var open *CipherState
				if encrypted {
					var seal *CipherState
					seal, open = testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
					rl.SetWriteCipher(seal)
				}
				if err := rl.WriteRecord(TypeApplicationData, payload); err != nil {
					t.Fatal(err)
				}
				recs := readAllRecords(t, w.all(), open)
				if len(recs) != tc.wantRecs {
					t.Fatalf("got %d records, want %d", len(recs), tc.wantRecs)
				}
				var got []byte
				for i, rec := range recs {
					if len(rec.Payload) != tc.wantSizes[i] {
						t.Fatalf("record %d is %d bytes, want %d", i, len(rec.Payload), tc.wantSizes[i])
					}
					got = append(got, rec.Payload...)
				}
				if !bytes.Equal(got, payload) {
					t.Fatal("fragmentation corrupted the payload")
				}
			})
		}
	}
}

// TestWriteRecordsVectored: the batched write path must deliver all
// payloads intact while coalescing records into few transport writes,
// none exceeding the Encapsulated-wrappability limit.
func TestWriteRecordsVectored(t *testing.T) {
	seal, open := testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	w := &countingWriter{}
	rl := NewRecordLayerRW(bytes.NewReader(nil), w)
	rl.SetWriteCipher(seal)

	payloads := make([][]byte, 40)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, 100+i)
	}
	if err := rl.WriteRecords(TypeApplicationData, payloads); err != nil {
		t.Fatal(err)
	}
	if len(w.writes) >= len(payloads) {
		t.Fatalf("no coalescing: %d writes for %d records", len(w.writes), len(payloads))
	}
	for i, wr := range w.writes {
		if len(wr) > writeFlushLimit {
			t.Fatalf("write %d is %d bytes, exceeding the %d-byte flush limit", i, len(wr), writeFlushLimit)
		}
	}
	recs := readAllRecords(t, w.all(), open)
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Payload, payloads[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

// TestWriteRecordCoalescesFragments: when an oversized WriteRecord
// fragments and the tail fragment fits under the flush limit alongside
// its predecessor, both ship in a single transport write. Full-size
// fragments (16389 wire bytes) can never pair under the 18431-byte
// limit, so the small-tail case is the coalescing opportunity.
func TestWriteRecordCoalescesFragments(t *testing.T) {
	w := &countingWriter{}
	rl := NewRecordLayerRW(bytes.NewReader(nil), w)
	payload := make([]byte, maxPlaintext+100) // fragments: 16384 + 100
	if err := rl.WriteRecord(TypeApplicationData, payload); err != nil {
		t.Fatal(err)
	}
	if len(w.writes) != 1 {
		t.Fatalf("got %d writes, want 1 (both fragments coalesced)", len(w.writes))
	}
	if len(w.writes[0]) > writeFlushLimit {
		t.Fatalf("write is %d bytes, exceeding the %d-byte flush limit", len(w.writes[0]), writeFlushLimit)
	}
	recs := readAllRecords(t, w.all(), nil)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if len(recs[0].Payload) != maxPlaintext || len(recs[1].Payload) != 100 {
		t.Fatalf("fragment sizes %d/%d, want %d/100", len(recs[0].Payload), len(recs[1].Payload), maxPlaintext)
	}
}

// TestSealAppendOpenInPlace: the allocation-free seal/open pair must
// round-trip through a shared buffer, with OpenInPlace aliasing its
// input.
func TestSealAppendOpenInPlace(t *testing.T) {
	seal, open := testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	buf := make([]byte, 0, 4096)
	for round := 0; round < 5; round++ {
		msg := bytes.Repeat([]byte{byte('a' + round)}, 100*(round+1))
		buf = seal.SealAppend(buf[:0], TypeApplicationData, msg)
		if len(buf) != len(msg)+sealOverhead {
			t.Fatalf("sealed %d bytes into %d, want %d", len(msg), len(buf), len(msg)+sealOverhead)
		}
		plain, err := open.OpenInPlace(TypeApplicationData, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, msg) {
			t.Fatalf("round %d corrupted", round)
		}
		if &plain[0] != &buf[gcmExplicitNonceLen] {
			t.Fatal("OpenInPlace did not decrypt in place")
		}
	}
}

// TestOpenInPlaceFailureLeavesSeq: a failed in-place open must not
// advance the sequence number, so the next in-order record still opens.
func TestOpenInPlaceFailureLeavesSeq(t *testing.T) {
	seal, open := testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256)
	good := seal.Seal(TypeApplicationData, []byte("legit"))
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 1
	if _, err := open.OpenInPlace(TypeApplicationData, bad); err == nil {
		t.Fatal("tampered record accepted")
	}
	if _, err := open.OpenInPlace(TypeApplicationData, good); err != nil {
		t.Fatalf("in-order record rejected after failed open: %v", err)
	}
}

// TestOpenDoesNotDestroyInput: the non-in-place Open keeps the wire
// payload intact (mux and adversary code retain it).
func TestOpenDoesNotDestroyInput(t *testing.T) {
	seal, open := testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	sealed := seal.Seal(TypeApplicationData, []byte("payload"))
	orig := append([]byte(nil), sealed...)
	plain, err := open.Open(TypeApplicationData, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sealed, orig) {
		t.Fatal("Open destroyed its input")
	}
	if len(plain) > 0 && len(sealed) > gcmExplicitNonceLen && &plain[0] == &sealed[gcmExplicitNonceLen] {
		t.Fatal("Open returned an aliasing slice")
	}
}

// TestRecordUnreadLIFO: consecutive Unreads replay in LIFO order (the
// contract middlebox peeking depends on).
func TestRecordUnreadLIFO(t *testing.T) {
	rl := NewRecordLayerRW(bytes.NewReader(nil), io.Discard)
	rl.Unread(Record{Type: TypeHandshake, Payload: []byte("first-unread")})
	rl.Unread(Record{Type: TypeHandshake, Payload: []byte("second-unread")})
	r1, err := rl.ReadRecord()
	if err != nil || string(r1.Payload) != "second-unread" {
		t.Fatalf("LIFO broken: %v %q", err, r1.Payload)
	}
	r2, err := rl.ReadRecord()
	if err != nil || string(r2.Payload) != "first-unread" {
		t.Fatalf("LIFO broken: %v %q", err, r2.Payload)
	}
	if _, err := rl.ReadRecord(); err != io.EOF {
		t.Fatalf("queue not drained: %v", err)
	}
}

// TestRecordBufPool: pooled buffers have full record capacity and
// undersized buffers are rejected rather than pooled.
func TestRecordBufPool(t *testing.T) {
	b := GetRecordBuf()
	if len(b) != 0 || cap(b) < MaxRecordWireSize {
		t.Fatalf("len=%d cap=%d", len(b), cap(b))
	}
	PutRecordBuf(b)
	PutRecordBuf(make([]byte, 10)) // must not poison the pool
	b2 := GetRecordBuf()
	if cap(b2) < MaxRecordWireSize {
		t.Fatalf("pool returned undersized buffer: cap=%d", cap(b2))
	}
	PutRecordBuf(b2)
}

// TestReadRawRecordInto: reading into a caller buffer matches the
// allocating path and aliases the buffer.
func TestReadRawRecordInto(t *testing.T) {
	rec := RawRecord{Type: TypeApplicationData, Payload: []byte("hello, world")}
	buf := GetRecordBuf()
	defer PutRecordBuf(buf)
	got, err := ReadRawRecordInto(bytes.NewReader(rec.Marshal()), buf[:cap(buf)])
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != rec.Type || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("got %+v", got)
	}
}
