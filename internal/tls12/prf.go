package tls12

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/sha512"
	"hash"
)

// PRF labels from RFC 5246 §8.1 and §7.4.9.
const (
	labelMasterSecret   = "master secret"
	labelKeyExpansion   = "key expansion"
	labelClientFinished = "client finished"
	labelServerFinished = "server finished"
)

// masterSecretLen is the fixed length of a TLS 1.2 master secret.
const masterSecretLen = 48

// finishedVerifyLen is the length of the Finished verify_data.
const finishedVerifyLen = 12

// pHash implements P_hash from RFC 5246 §5: an HMAC expansion of secret
// over seed, writing len(result) bytes into result.
func pHash(newHash func() hash.Hash, result, secret, seed []byte) {
	h := hmac.New(newHash, secret)
	h.Write(seed)
	a := h.Sum(nil)

	for off := 0; off < len(result); {
		h.Reset()
		h.Write(a)
		h.Write(seed)
		off += copy(result[off:], h.Sum(nil))

		h.Reset()
		h.Write(a)
		a = h.Sum(nil)
	}
}

// prf computes the TLS 1.2 PRF with the given hash, filling result.
func prf(newHash func() hash.Hash, result, secret []byte, label string, seed []byte) {
	labelAndSeed := make([]byte, 0, len(label)+len(seed))
	labelAndSeed = append(labelAndSeed, label...)
	labelAndSeed = append(labelAndSeed, seed...)
	pHash(newHash, result, secret, labelAndSeed)
}

// suitePRFHash returns the hash constructor used by the suite's PRF
// (SHA-256 for the AES-128 suite, SHA-384 for AES-256, per RFC 5289).
func suitePRFHash(suiteID uint16) func() hash.Hash {
	if suiteID == TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 {
		return sha512.New384
	}
	return sha256.New
}

// computeMasterSecret derives the 48-byte master secret from the ECDHE
// pre-master secret and the session randoms (RFC 5246 §8.1).
func computeMasterSecret(suiteID uint16, preMaster, clientRandom, serverRandom []byte) []byte {
	seed := make([]byte, 0, len(clientRandom)+len(serverRandom))
	seed = append(seed, clientRandom...)
	seed = append(seed, serverRandom...)
	master := make([]byte, masterSecretLen)
	prf(suitePRFHash(suiteID), master, preMaster, labelMasterSecret, seed)
	return master
}

// keyBlock derives n bytes of key material from the master secret
// (RFC 5246 §6.3; note the server_random || client_random seed order).
func keyBlock(suiteID uint16, master, clientRandom, serverRandom []byte, n int) []byte {
	seed := make([]byte, 0, len(clientRandom)+len(serverRandom))
	seed = append(seed, serverRandom...)
	seed = append(seed, clientRandom...)
	kb := make([]byte, n)
	prf(suitePRFHash(suiteID), kb, master, labelKeyExpansion, seed)
	return kb
}

// finishedVerifyData computes the 12-byte Finished verify_data over the
// transcript hash (RFC 5246 §7.4.9).
func finishedVerifyData(suiteID uint16, master []byte, isClient bool, transcriptHash []byte) []byte {
	label := labelServerFinished
	if isClient {
		label = labelClientFinished
	}
	out := make([]byte, finishedVerifyLen)
	prf(suitePRFHash(suiteID), out, master, label, transcriptHash)
	return out
}

// transcript accumulates handshake messages and produces the running
// hash that anchors Finished verification and attestation report data.
type transcript struct {
	h hash.Hash
	// raw optionally retains the concatenated message bytes for
	// debugging; unused in production paths.
}

// newTranscript returns a transcript using the suite's PRF hash.
func newTranscript(suiteID uint16) *transcript {
	return &transcript{h: suitePRFHash(suiteID)()}
}

// add appends a marshaled handshake message to the transcript.
func (t *transcript) add(msg []byte) {
	t.h.Write(msg)
}

// sum returns the current transcript hash. hash.Hash.Sum does not
// disturb the running state, so the transcript can keep accumulating
// messages afterwards.
func (t *transcript) sum() []byte {
	return t.h.Sum(nil)
}
