package tls12

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestClientHelloRoundTrip(t *testing.T) {
	h := &ClientHello{
		SessionID:          []byte{1, 2, 3},
		CipherSuites:       []uint16{TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256},
		ServerName:         "origin.example",
		HasSessionTicket:   true,
		SessionTicket:      []byte("opaque ticket bytes"),
		RequestAttestation: true,
		MiddleboxSupport: &MiddleboxSupport{
			OptimisticHellos: [][]byte{[]byte("hello-one"), []byte("hello-two")},
			Middleboxes:      []string{"proxy-a.example:443", "proxy-b.example:443"},
		},
	}
	copy(h.Random[:], bytes.Repeat([]byte{0xAB}, 32))

	got, err := ParseClientHello(h.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Random != h.Random || got.ServerName != h.ServerName {
		t.Fatalf("basic fields corrupted: %+v", got)
	}
	if !reflect.DeepEqual(got.CipherSuites, h.CipherSuites) {
		t.Fatalf("suites = %v", got.CipherSuites)
	}
	if !got.HasSessionTicket || !bytes.Equal(got.SessionTicket, h.SessionTicket) {
		t.Fatal("ticket extension corrupted")
	}
	if !got.RequestAttestation {
		t.Fatal("attestation request lost")
	}
	ms := got.MiddleboxSupport
	if ms == nil || len(ms.OptimisticHellos) != 2 || len(ms.Middleboxes) != 2 {
		t.Fatalf("MiddleboxSupport = %+v", ms)
	}
	if string(ms.OptimisticHellos[1]) != "hello-two" || ms.Middleboxes[0] != "proxy-a.example:443" {
		t.Fatal("MiddleboxSupport contents corrupted")
	}
	if !bytes.Equal(got.SessionID, h.SessionID) {
		t.Fatal("session ID corrupted")
	}
}

// TestPropertyClientHelloRoundTrip fuzzes hello fields through
// marshal/parse.
func TestPropertyClientHelloRoundTrip(t *testing.T) {
	f := func(random [32]byte, serverName string, suites []uint16, mboxNames []string) bool {
		if len(serverName) > 200 {
			serverName = serverName[:200]
		}
		// Strip NULs and newlines that a hostname could not contain
		// (the codec is 8-bit clean; this keeps comparisons simple).
		if len(suites) == 0 {
			suites = []uint16{TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384}
		}
		if len(suites) > 50 {
			suites = suites[:50]
		}
		if len(mboxNames) > 20 {
			mboxNames = mboxNames[:20]
		}
		for i := range mboxNames {
			if len(mboxNames[i]) > 100 {
				mboxNames[i] = mboxNames[i][:100]
			}
		}
		h := &ClientHello{
			Random:       random,
			CipherSuites: suites,
			ServerName:   serverName,
		}
		if len(mboxNames) > 0 {
			h.MiddleboxSupport = &MiddleboxSupport{Middleboxes: mboxNames}
		}
		got, err := ParseClientHello(h.marshal())
		if err != nil {
			return false
		}
		if got.Random != random || got.ServerName != serverName {
			return false
		}
		if !reflect.DeepEqual(got.CipherSuites, suites) {
			return false
		}
		if len(mboxNames) > 0 && !reflect.DeepEqual(got.MiddleboxSupport.Middleboxes, mboxNames) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := &ServerHello{CipherSuite: TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256, TicketExpected: true}
	copy(sh.Random[:], bytes.Repeat([]byte{0xCD}, 32))
	typ, body, err := splitHandshake(sh.marshal())
	if err != nil || typ != TypeServerHello {
		t.Fatalf("split: %v %v", typ, err)
	}
	got, err := parseServerHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Random != sh.Random || got.CipherSuite != sh.CipherSuite || !got.TicketExpected {
		t.Fatalf("got %+v", got)
	}
}

func TestCertificateMsgRoundTrip(t *testing.T) {
	m := &certificateMsg{chain: [][]byte{bytes.Repeat([]byte{1}, 300), bytes.Repeat([]byte{2}, 500)}}
	typ, body, err := splitHandshake(m.marshal())
	if err != nil || typ != TypeCertificate {
		t.Fatal(err)
	}
	got, err := parseCertificateMsg(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.chain) != 2 || !bytes.Equal(got.chain[0], m.chain[0]) || !bytes.Equal(got.chain[1], m.chain[1]) {
		t.Fatal("chain corrupted")
	}
}

func TestServerKeyExchangeRoundTrip(t *testing.T) {
	m := &serverKeyExchange{
		publicKey: bytes.Repeat([]byte{7}, 32),
		signature: bytes.Repeat([]byte{8}, 64),
	}
	_, body, err := splitHandshake(m.marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseServerKeyExchange(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.publicKey, m.publicKey) || !bytes.Equal(got.signature, m.signature) {
		t.Fatal("SKE corrupted")
	}
}

func TestSGXAttestationRoundTrip(t *testing.T) {
	m := &sgxAttestationMsg{quote: bytes.Repeat([]byte{0x5A}, 600)}
	_, body, err := splitHandshake(m.marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseSGXAttestation(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.quote, m.quote) {
		t.Fatal("quote corrupted")
	}
}

// TestPropertyParsersNeverPanic: all message parsers survive arbitrary
// bytes.
func TestPropertyParsersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		ParseClientHello(data)       //nolint:errcheck
		parseServerHello(data)       //nolint:errcheck
		parseCertificateMsg(data)    //nolint:errcheck
		parseServerKeyExchange(data) //nolint:errcheck
		parseClientKeyExchange(data) //nolint:errcheck
		parseFinished(data)          //nolint:errcheck
		parseNewSessionTicket(data)  //nolint:errcheck
		parseSGXAttestation(data)    //nolint:errcheck
		parseMiddleboxSupport(data)  //nolint:errcheck
	}
}

// TestPropertyTruncatedHellosRejected: any strict prefix of a valid
// ClientHello fails to parse (no silent partial success).
func TestPropertyTruncatedHellosRejected(t *testing.T) {
	h := &ClientHello{
		CipherSuites:     []uint16{TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384},
		ServerName:       "origin.example",
		MiddleboxSupport: &MiddleboxSupport{Middleboxes: []string{"mbox.example"}},
	}
	full := h.marshal()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ParseClientHello(full[:cut]); err == nil {
			t.Fatalf("truncated hello (%d/%d bytes) parsed", cut, len(full))
		}
	}
}

func TestPRFProperties(t *testing.T) {
	secret := bytes.Repeat([]byte{0x11}, 48)
	seed := bytes.Repeat([]byte{0x22}, 64)

	// Deterministic.
	a := make([]byte, 100)
	b := make([]byte, 100)
	prf(suitePRFHash(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384), a, secret, "test label", seed)
	prf(suitePRFHash(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384), b, secret, "test label", seed)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	// Label-separated.
	prf(suitePRFHash(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384), b, secret, "other label", seed)
	if bytes.Equal(a, b) {
		t.Fatal("distinct labels produced identical output")
	}
	// Prefix-consistent: a longer expansion starts with the shorter.
	long := make([]byte, 200)
	prf(suitePRFHash(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384), long, secret, "test label", seed)
	if !bytes.Equal(long[:100], a) {
		t.Fatal("PRF expansion is not prefix-consistent")
	}
	// Suite hashes differ.
	c := make([]byte, 100)
	prf(suitePRFHash(TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256), c, secret, "test label", seed)
	if bytes.Equal(a, c) {
		t.Fatal("SHA-256 and SHA-384 PRFs agree")
	}
}

func TestKeysFromMasterSymmetry(t *testing.T) {
	master := bytes.Repeat([]byte{0x33}, 48)
	cr := bytes.Repeat([]byte{0x44}, 32)
	sr := bytes.Repeat([]byte{0x55}, 32)
	cwKey, swKey, cwIV, swIV := keysFromMaster(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master, cr, sr)
	if len(cwKey) != 32 || len(swKey) != 32 || len(cwIV) != 4 || len(swIV) != 4 {
		t.Fatalf("key block geometry: %d/%d/%d/%d", len(cwKey), len(swKey), len(cwIV), len(swIV))
	}
	if bytes.Equal(cwKey, swKey) {
		t.Fatal("client and server write keys identical")
	}
	cwKey2, _, _, _ := keysFromMaster(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master, cr, sr)
	if !bytes.Equal(cwKey, cwKey2) {
		t.Fatal("key derivation not deterministic")
	}
}

func TestFinishedVerifyDataRoles(t *testing.T) {
	master := bytes.Repeat([]byte{0x66}, 48)
	hash := bytes.Repeat([]byte{0x77}, 48)
	client := finishedVerifyData(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master, true, hash)
	server := finishedVerifyData(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master, false, hash)
	if len(client) != 12 || len(server) != 12 {
		t.Fatal("verify_data length wrong")
	}
	if bytes.Equal(client, server) {
		t.Fatal("client and server finished labels collide")
	}
}
