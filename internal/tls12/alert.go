package tls12

import "fmt"

// AlertLevel is the severity of a TLS alert.
type AlertLevel uint8

// Alert severities.
const (
	AlertLevelWarning AlertLevel = 1
	AlertLevelFatal   AlertLevel = 2
)

// AlertDescription identifies a TLS alert.
type AlertDescription uint8

// Alert descriptions used by this implementation (RFC 5246 §7.2).
const (
	AlertCloseNotify          AlertDescription = 0
	AlertUnexpectedMessage    AlertDescription = 10
	AlertBadRecordMAC         AlertDescription = 20
	AlertRecordOverflow       AlertDescription = 22
	AlertHandshakeFailure     AlertDescription = 40
	AlertBadCertificate       AlertDescription = 42
	AlertCertificateExpired   AlertDescription = 45
	AlertCertificateUnknown   AlertDescription = 46
	AlertIllegalParameter     AlertDescription = 47
	AlertUnknownCA            AlertDescription = 48
	AlertAccessDenied         AlertDescription = 49
	AlertDecodeError          AlertDescription = 50
	AlertDecryptError         AlertDescription = 51
	AlertProtocolVersion      AlertDescription = 70
	AlertInsufficientSecurity AlertDescription = 71
	AlertInternalError        AlertDescription = 80
	AlertUnsupportedExtension AlertDescription = 110
	// AlertAttestationFailure is an mbTLS-specific alert raised when a
	// required SGX attestation is missing or fails verification.
	AlertAttestationFailure AlertDescription = 113
	// AlertOverloaded is an mbTLS-specific alert a session host sends
	// before closing a connection it refuses because it is at its
	// max-concurrent-sessions cap.
	AlertOverloaded AlertDescription = 114
	// AlertDraining is an mbTLS-specific alert a session host sends
	// before closing a connection it refuses because it is draining
	// toward shutdown.
	AlertDraining AlertDescription = 115
	// AlertAccountabilityMismatch is an mbTLS-specific alert a
	// middlebox sends on its secondary subchannel when the
	// accountability mode the endpoint negotiated (MiddleboxSupport
	// flags octet) differs from the mode the middlebox is configured
	// to run.
	AlertAccountabilityMismatch AlertDescription = 116
)

func (d AlertDescription) String() string {
	switch d {
	case AlertCloseNotify:
		return "close_notify"
	case AlertUnexpectedMessage:
		return "unexpected_message"
	case AlertBadRecordMAC:
		return "bad_record_mac"
	case AlertRecordOverflow:
		return "record_overflow"
	case AlertHandshakeFailure:
		return "handshake_failure"
	case AlertBadCertificate:
		return "bad_certificate"
	case AlertCertificateExpired:
		return "certificate_expired"
	case AlertCertificateUnknown:
		return "certificate_unknown"
	case AlertIllegalParameter:
		return "illegal_parameter"
	case AlertUnknownCA:
		return "unknown_ca"
	case AlertAccessDenied:
		return "access_denied"
	case AlertDecodeError:
		return "decode_error"
	case AlertDecryptError:
		return "decrypt_error"
	case AlertProtocolVersion:
		return "protocol_version"
	case AlertInsufficientSecurity:
		return "insufficient_security"
	case AlertInternalError:
		return "internal_error"
	case AlertUnsupportedExtension:
		return "unsupported_extension"
	case AlertAttestationFailure:
		return "attestation_failure"
	case AlertOverloaded:
		return "overloaded"
	case AlertDraining:
		return "draining"
	case AlertAccountabilityMismatch:
		return "accountability_mismatch"
	}
	return fmt.Sprintf("alert(%d)", uint8(d))
}

// AlertError is returned when a connection fails due to a TLS alert,
// either received from the peer or generated locally before being sent.
type AlertError struct {
	// Description identifies the alert.
	Description AlertDescription
	// Remote is true if the alert was received from the peer rather
	// than generated locally.
	Remote bool
}

// Error implements the error interface.
func (e *AlertError) Error() string {
	side := "local"
	if e.Remote {
		side = "remote"
	}
	return fmt.Sprintf("tls12: %s alert: %s", side, e.Description)
}

// IsRemoteAlert reports whether err is an AlertError received from the
// peer with the given description.
func IsRemoteAlert(err error, d AlertDescription) bool {
	ae, ok := err.(*AlertError)
	return ok && ae.Remote && ae.Description == d
}
