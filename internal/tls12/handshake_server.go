package tls12

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"

	"repro/internal/secmem"
)

func (c *Conn) serverHandshake() error {
	cfg := c.config
	if cfg == nil {
		cfg = &Config{}
	}

	// ClientHello: either already received (middlebox secondary
	// handshake, paper §3.4) or read off the wire.
	helloRaw := c.receivedHelloRaw
	if helloRaw == nil {
		typ, _, raw, _, err := c.readHandshakeMsg(false)
		if err != nil {
			return err
		}
		if typ != TypeClientHello {
			return c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: expected client_hello, got %s", typ))
		}
		helloRaw = raw
	}
	hello, err := ParseClientHello(helloRaw)
	if err != nil {
		return c.fatal(AlertDecodeError, err)
	}
	c.state.ClientHello = hello
	c.clientRandom = hello.Random

	// Suite selection: server preference order.
	var suite uint16
	for _, s := range cfg.cipherSuites() {
		if containsSuite(hello.CipherSuites, s) {
			suite = s
			break
		}
	}
	if suite == 0 {
		return c.fatal(AlertHandshakeFailure, errors.New("tls12: no mutually supported cipher suite"))
	}
	c.state.CipherSuite = suite

	// Ticket resumption attempt. A named middlebox hop reads its
	// ticket from the ClientHello's MiddleboxSupport hop-ticket list
	// (mbTLS chain resumption) and acknowledges it by name; everyone
	// else uses the session_ticket extension (RFC 5077).
	var resumed *sessionState
	var resumedHop string
	if cfg.EnableTickets {
		ticket := hello.SessionTicket
		if cfg.HopTicketName != "" {
			ticket = hello.MiddleboxSupport.HopTicket(cfg.HopTicketName)
		}
		if len(ticket) > 0 {
			if st := openTicket(cfg, ticket); st != nil && containsSuite(hello.CipherSuites, st.suite) {
				resumed = st
				suite = st.suite
				c.state.CipherSuite = suite
				if cfg.HopTicketName != "" {
					resumedHop = cfg.HopTicketName
				}
			}
		}
	}

	sh := &ServerHello{
		CipherSuite:    suite,
		TicketExpected: cfg.EnableTickets && hello.HasSessionTicket,
		ResumedHop:     resumedHop,
	}
	c.state.ResumedHop = resumedHop
	if _, err := io.ReadFull(cfg.rand(), sh.Random[:]); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	c.serverRandom = sh.Random

	ts := newTranscript(suite)
	ts.add(helloRaw)
	shRaw := sh.marshal()
	if err := c.writeHandshakeMsg(shRaw); err != nil {
		return err
	}
	ts.add(shRaw)

	if resumed != nil {
		return c.serverResume(cfg, sh, resumed, ts)
	}

	if cfg.Certificate == nil || len(cfg.Certificate.Chain) == 0 {
		return c.fatal(AlertInternalError, errNoCertificate)
	}

	// Certificate.
	certMsg := &certificateMsg{chain: cfg.Certificate.Chain}
	certRaw := certMsg.marshal()
	if err := c.writeHandshakeMsg(certRaw); err != nil {
		return err
	}
	ts.add(certRaw)

	// ServerKeyExchange: ephemeral X25519 (precomputed when the config
	// has a keyshare pool), Ed25519-signed.
	priv, pub, err := cfg.keyShare()
	if err != nil {
		return c.fatal(AlertInternalError, err)
	}
	ske := &serverKeyExchange{publicKey: pub}
	sigInput := make([]byte, 0, 2*randomLen+64)
	sigInput = append(sigInput, c.clientRandom[:]...)
	sigInput = append(sigInput, c.serverRandom[:]...)
	sigInput = append(sigInput, ske.paramsBytes()...)
	if cfg.Certificate.PrivateKey == nil {
		return c.fatal(AlertInternalError, errors.New("tls12: certificate has no private key"))
	}
	ske.signature = ed25519.Sign(cfg.Certificate.PrivateKey, sigInput)
	skeRaw := ske.marshal()
	if err := c.writeHandshakeMsg(skeRaw); err != nil {
		return err
	}
	ts.add(skeRaw)

	// Optional SGXAttestation over the transcript so far (§3.4).
	if hello.RequestAttestation && cfg.Quoter != nil {
		quote, err := cfg.Quoter(AttestationReportData(ts.sum()))
		if err != nil {
			return c.fatal(AlertInternalError, err)
		}
		att := &sgxAttestationMsg{quote: quote}
		attRaw := att.marshal()
		if err := c.writeHandshakeMsg(attRaw); err != nil {
			return err
		}
		ts.add(attRaw)
		c.state.AttestationQuote = append([]byte(nil), quote...)
	}

	// ServerHelloDone.
	shdRaw := handshakeHeader(TypeServerHelloDone, nil)
	if err := c.writeHandshakeMsg(shdRaw); err != nil {
		return err
	}
	ts.add(shdRaw)

	// ClientKeyExchange.
	ckeBody, ckeRaw, err := c.expectHandshakeMsg(TypeClientKeyExchange)
	if err != nil {
		return err
	}
	cke, err := parseClientKeyExchange(ckeBody)
	if err != nil {
		return c.fatal(AlertDecodeError, err)
	}
	ts.add(ckeRaw)
	clientPub, err := ecdh.X25519().NewPublicKey(cke.publicKey)
	if err != nil {
		return c.fatal(AlertIllegalParameter, err)
	}
	preMaster, err := priv.ECDH(clientPub)
	if err != nil {
		return c.fatal(AlertIllegalParameter, err)
	}
	c.masterSecret = computeMasterSecret(suite, preMaster, c.clientRandom[:], c.serverRandom[:])
	secmem.Wipe(preMaster) // only the master secret survives key derivation

	// Client CCS + Finished.
	if err := c.readChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(suite, false, true); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	if err := c.verifyPeerFinished(suite, ts, true); err != nil {
		return err
	}

	// NewSessionTicket, then our CCS + Finished.
	if sh.TicketExpected {
		if err := c.sendNewTicket(cfg, suite, ts); err != nil {
			return err
		}
	}
	if err := c.writeChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(suite, true, false); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	fin := &finishedMsg{verifyData: finishedVerifyData(suite, c.masterSecret, false, ts.sum())}
	finRaw := fin.marshal()
	if err := c.writeHandshakeMsg(finRaw); err != nil {
		return err
	}
	ts.add(finRaw)
	return nil
}

// serverResume completes an abbreviated handshake from a valid ticket.
func (c *Conn) serverResume(cfg *Config, sh *ServerHello, st *sessionState, ts *transcript) error {
	c.masterSecret = append([]byte(nil), st.master...)
	st.wipe() // the conn owns its clone now
	c.state.Resumed = true
	suite := st.suite

	if sh.TicketExpected {
		if err := c.sendNewTicket(cfg, suite, ts); err != nil {
			return err
		}
	}
	if err := c.writeChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(suite, true, false); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	fin := &finishedMsg{verifyData: finishedVerifyData(suite, c.masterSecret, false, ts.sum())}
	finRaw := fin.marshal()
	if err := c.writeHandshakeMsg(finRaw); err != nil {
		return err
	}
	ts.add(finRaw)

	if err := c.readChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(suite, false, true); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	return c.verifyPeerFinished(suite, ts, true)
}

// sendNewTicket seals the current session into a ticket and sends it.
func (c *Conn) sendNewTicket(cfg *Config, suite uint16, ts *transcript) error {
	state := &sessionState{
		suite: suite,
		// Clone the master so the sealed state owns its copy: the
		// connection's slice lives on (key export, more tickets) while
		// this one is wiped once the ticket is sealed.
		master:    append([]byte(nil), c.masterSecret...),
		createdAt: uint64(cfg.time().Unix()),
	}
	ticket, err := sealTicket(cfg, state)
	state.wipe()
	if err != nil {
		return c.fatal(AlertInternalError, err)
	}
	nst := &newSessionTicketMsg{
		lifetimeHint: uint32(ticketLifetime.Seconds()),
		ticket:       ticket,
	}
	nstRaw := nst.marshal()
	if err := c.writeHandshakeMsg(nstRaw); err != nil {
		return err
	}
	ts.add(nstRaw)
	return nil
}
