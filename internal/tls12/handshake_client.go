package tls12

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/secmem"
)

// NewClientHello builds and marshals a ClientHello from the config.
// mbTLS clients call this directly so they can write the hello
// themselves (with the MiddleboxSupport extension attached) and reuse
// the bytes across the primary and secondary handshakes.
func NewClientHello(cfg *Config) (*ClientHello, []byte, error) {
	h := &ClientHello{
		CipherSuites:     cfg.cipherSuites(),
		ServerName:       cfg.ServerName,
		MiddleboxSupport: cfg.MiddleboxSupport,
	}
	if _, err := io.ReadFull(cfg.rand(), h.Random[:]); err != nil {
		return nil, nil, err
	}
	if cfg.EnableTickets || cfg.SessionTicket != nil {
		h.HasSessionTicket = true
		if cfg.SessionTicket != nil {
			h.SessionTicket = cfg.SessionTicket.Ticket
		}
	}
	if cfg.RequestAttestation || cfg.OfferAttestation {
		h.RequestAttestation = true
	}
	return h, h.marshal(), nil
}

func (c *Conn) clientHandshake() error {
	cfg := c.config
	if cfg == nil {
		cfg = &Config{}
	}

	hello := c.pendingHello
	helloRaw := c.pendingHelloRaw
	if hello == nil {
		var err error
		hello, helloRaw, err = NewClientHello(cfg)
		if err != nil {
			return c.fatal(AlertInternalError, err)
		}
		if err := c.writeHandshakeMsg(helloRaw); err != nil {
			return err
		}
	}
	c.clientRandom = hello.Random

	shBody, shRaw, err := c.expectHandshakeMsg(TypeServerHello)
	if err != nil {
		return err
	}
	sh, err := parseServerHello(shBody)
	if err != nil {
		return c.fatal(AlertDecodeError, err)
	}
	if !cfg.supportsSuite(sh.CipherSuite) || !containsSuite(hello.CipherSuites, sh.CipherSuite) {
		return c.fatal(AlertIllegalParameter, fmt.Errorf("tls12: server chose unoffered suite 0x%04X", sh.CipherSuite))
	}
	c.serverRandom = sh.Random
	c.state.CipherSuite = sh.CipherSuite

	ts := newTranscript(sh.CipherSuite)
	ts.add(helloRaw)
	ts.add(shRaw)

	// Resumption state for this handshake: a named middlebox hop
	// acknowledges its hop ticket explicitly in the ServerHello (mbTLS
	// chain resumption); the primary server signals RFC 5077
	// resumption implicitly by jumping straight to
	// [NewSessionTicket +] ChangeCipherSpec.
	var resumeTicket *SessionTicket
	if sh.ResumedHop != "" {
		resumeTicket = cfg.HopTickets[sh.ResumedHop]
		if resumeTicket == nil || hello.MiddleboxSupport.HopTicket(sh.ResumedHop) == nil {
			return c.fatal(AlertIllegalParameter, fmt.Errorf("tls12: server resumed unoffered hop %q", sh.ResumedHop))
		}
	} else if len(hello.SessionTicket) > 0 && cfg.SessionTicket != nil {
		resumeTicket = cfg.SessionTicket
	}
	typ, body, raw, ccs, err := c.readHandshakeMsg(resumeTicket != nil)
	if err != nil {
		return err
	}
	if resumeTicket != nil && (ccs || typ == TypeNewSessionTicket) {
		if resumeTicket.CipherSuite != sh.CipherSuite {
			return c.fatal(AlertIllegalParameter, errors.New("tls12: resumed session changed cipher suite"))
		}
		c.state.ResumedHop = sh.ResumedHop
		return c.clientResume(cfg, resumeTicket, sh, ts, typ, body, raw, ccs)
	}
	if ccs {
		return c.fatal(AlertUnexpectedMessage, errUnexpectedCCS)
	}

	// Full handshake: Certificate.
	if typ != TypeCertificate {
		return c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: expected certificate, got %s", typ))
	}
	certMsg, err := parseCertificateMsg(body)
	if err != nil {
		return c.fatal(AlertDecodeError, err)
	}
	ts.add(raw)
	chain, serverPub, err := c.verifyServerChain(cfg, certMsg.chain)
	if err != nil {
		return err
	}
	c.state.PeerCertificates = chain

	// ServerKeyExchange.
	skeBody, skeRaw, err := c.expectHandshakeMsg(TypeServerKeyExchange)
	if err != nil {
		return err
	}
	ske, err := parseServerKeyExchange(skeBody)
	if err != nil {
		return c.fatal(AlertDecodeError, err)
	}
	sigInput := make([]byte, 0, 2*randomLen+len(skeBody))
	sigInput = append(sigInput, c.clientRandom[:]...)
	sigInput = append(sigInput, c.serverRandom[:]...)
	sigInput = append(sigInput, ske.paramsBytes()...)
	if !ed25519.Verify(serverPub, sigInput, ske.signature) {
		return c.fatal(AlertDecryptError, errors.New("tls12: invalid server_key_exchange signature"))
	}
	ts.add(skeRaw)

	// Optional SGXAttestation, then ServerHelloDone. The report data
	// binds the transcript up to and including ServerKeyExchange, so a
	// quote replayed from another handshake cannot verify (§3.4).
	attestPoint := ts.sum()
	typ, body, raw, _, err = c.readHandshakeMsg(false)
	if err != nil {
		return err
	}
	if typ == TypeSGXAttestation {
		att, err := parseSGXAttestation(body)
		if err != nil {
			return c.fatal(AlertDecodeError, err)
		}
		ts.add(raw)
		if cfg.VerifyQuote != nil {
			if err := cfg.VerifyQuote(att.quote, AttestationReportData(attestPoint)); err != nil {
				return c.fatal(AlertAttestationFailure, err)
			}
		}
		c.state.AttestationQuote = append([]byte(nil), att.quote...)
		typ, body, raw, _, err = c.readHandshakeMsg(false)
		if err != nil {
			return err
		}
	} else if cfg.RequestAttestation {
		return c.fatal(AlertAttestationFailure, errors.New("tls12: peer did not attest"))
	}
	if typ != TypeServerHelloDone {
		return c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: expected server_hello_done, got %s", typ))
	}
	if len(body) != 0 {
		return c.fatal(AlertDecodeError, errors.New("tls12: malformed server_hello_done"))
	}
	ts.add(raw)

	// ClientKeyExchange: ephemeral X25519 (precomputed when the config
	// has a keyshare pool).
	priv, pub, err := cfg.keyShare()
	if err != nil {
		return c.fatal(AlertInternalError, err)
	}
	cke := &clientKeyExchange{publicKey: pub}
	ckeRaw := cke.marshal()
	if err := c.writeHandshakeMsg(ckeRaw); err != nil {
		return err
	}
	ts.add(ckeRaw)

	serverECDH, err := ecdh.X25519().NewPublicKey(ske.publicKey)
	if err != nil {
		return c.fatal(AlertIllegalParameter, err)
	}
	preMaster, err := priv.ECDH(serverECDH)
	if err != nil {
		return c.fatal(AlertIllegalParameter, err)
	}
	c.masterSecret = computeMasterSecret(sh.CipherSuite, preMaster, c.clientRandom[:], c.serverRandom[:])
	secmem.Wipe(preMaster) // only the master secret survives key derivation

	// Send ChangeCipherSpec under the old (plaintext) state, then
	// activate our write cipher and send Finished.
	if err := c.writeChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(sh.CipherSuite, true, false); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	fin := &finishedMsg{verifyData: finishedVerifyData(sh.CipherSuite, c.masterSecret, true, ts.sum())}
	finRaw := fin.marshal()
	if err := c.writeHandshakeMsg(finRaw); err != nil {
		return err
	}
	ts.add(finRaw)

	// NewSessionTicket (if negotiated), then server CCS + Finished.
	if sh.TicketExpected {
		nstBody, nstRaw, err := c.expectHandshakeMsg(TypeNewSessionTicket)
		if err != nil {
			return err
		}
		nst, err := parseNewSessionTicket(nstBody)
		if err != nil {
			return c.fatal(AlertDecodeError, err)
		}
		ts.add(nstRaw)
		c.deliverTicket(cfg, sh.CipherSuite, nst.ticket)
	}
	if err := c.readChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(sh.CipherSuite, false, true); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	return c.verifyPeerFinished(sh.CipherSuite, ts, false)
}

// clientResume completes an abbreviated (ticket-resumption) handshake
// from the given ticket (the primary session ticket or a hop ticket).
// The first post-ServerHello event has already been read and is passed
// in (either a NewSessionTicket message or a ChangeCipherSpec).
func (c *Conn) clientResume(cfg *Config, st *SessionTicket, sh *ServerHello, ts *transcript,
	typ HandshakeType, body, raw []byte, ccs bool) error {
	c.masterSecret = append([]byte(nil), st.MasterSecret...)
	c.state.Resumed = true

	if !ccs {
		nst, err := parseNewSessionTicket(body)
		if err != nil {
			return c.fatal(AlertDecodeError, err)
		}
		ts.add(raw)
		c.deliverTicket(cfg, sh.CipherSuite, nst.ticket)
		if err := c.readChangeCipherSpec(); err != nil {
			return err
		}
	}
	if err := c.activateCiphers(sh.CipherSuite, false, true); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	if err := c.verifyPeerFinished(sh.CipherSuite, ts, false); err != nil {
		return err
	}
	if err := c.writeChangeCipherSpec(); err != nil {
		return err
	}
	if err := c.activateCiphers(sh.CipherSuite, true, false); err != nil {
		return c.fatal(AlertInternalError, err)
	}
	fin := &finishedMsg{verifyData: finishedVerifyData(sh.CipherSuite, c.masterSecret, true, ts.sum())}
	finRaw := fin.marshal()
	if err := c.writeHandshakeMsg(finRaw); err != nil {
		return err
	}
	ts.add(finRaw)
	return nil
}

// deliverTicket hands a freshly issued ticket to the application.
func (c *Conn) deliverTicket(cfg *Config, suite uint16, ticket []byte) {
	if cfg.OnNewTicket == nil || len(ticket) == 0 {
		return
	}
	cfg.OnNewTicket(&SessionTicket{
		Ticket:       append([]byte(nil), ticket...),
		CipherSuite:  suite,
		MasterSecret: append([]byte(nil), c.masterSecret...),
	})
}

// verifyPeerFinished reads the peer Finished and checks its verify_data
// against the transcript, then adds it to the transcript.
func (c *Conn) verifyPeerFinished(suite uint16, ts *transcript, peerIsClient bool) error {
	finBody, finRaw, err := c.expectHandshakeMsg(TypeFinished)
	if err != nil {
		return err
	}
	fin, err := parseFinished(finBody)
	if err != nil {
		return c.fatal(AlertDecodeError, err)
	}
	want := finishedVerifyData(suite, c.masterSecret, peerIsClient, ts.sum())
	if subtle.ConstantTimeCompare(fin.verifyData, want) != 1 {
		return c.fatal(AlertDecryptError, errors.New("tls12: finished verification failed"))
	}
	ts.add(finRaw)
	return nil
}

// activateCiphers installs the session's write and/or read cipher
// derived from the master secret, honoring connection role.
func (c *Conn) activateCiphers(suite uint16, write, read bool) error {
	cwKey, swKey, cwIV, swIV := keysFromMaster(suite, c.masterSecret, c.clientRandom[:], c.serverRandom[:])
	// NewCipherState copies the key into its AES schedule, so the
	// expanded key block can be zeroized as soon as both states are
	// built (the four slices alias one buffer; wiping all four clears
	// the whole block).
	defer secmem.WipeAll(cwKey, swKey, cwIV, swIV)
	myWriteKey, myWriteIV := cwKey, cwIV
	myReadKey, myReadIV := swKey, swIV
	if !c.isClient {
		myWriteKey, myWriteIV = swKey, swIV
		myReadKey, myReadIV = cwKey, cwIV
	}
	if write {
		cs, err := NewCipherState(suite, myWriteKey, myWriteIV, 0)
		if err != nil {
			return err
		}
		c.rl.SetWriteCipher(cs)
	}
	if read {
		cs, err := NewCipherState(suite, myReadKey, myReadIV, 0)
		if err != nil {
			return err
		}
		c.rl.SetReadCipher(cs)
	}
	return nil
}

// verifyServerChain parses and verifies the server's certificate chain,
// returning the chain and the leaf's Ed25519 public key.
func (c *Conn) verifyServerChain(cfg *Config, der [][]byte) ([]*x509.Certificate, ed25519.PublicKey, error) {
	if len(der) == 0 {
		return nil, nil, c.fatal(AlertBadCertificate, errors.New("tls12: empty certificate chain"))
	}
	chain := make([]*x509.Certificate, 0, len(der))
	for _, d := range der {
		cert, err := x509.ParseCertificate(d)
		if err != nil {
			return nil, nil, c.fatal(AlertBadCertificate, err)
		}
		chain = append(chain, cert)
	}
	if !cfg.InsecureSkipVerify {
		verify := func() error {
			opts := x509.VerifyOptions{
				Roots:         cfg.RootCAs,
				DNSName:       cfg.ServerName,
				CurrentTime:   cfg.time(),
				Intermediates: x509.NewCertPool(),
			}
			for _, ic := range chain[1:] {
				opts.Intermediates.AddCert(ic)
			}
			_, err := chain[0].Verify(opts)
			return err
		}
		var err error
		if cfg.VerifyCache != nil {
			// The cache key binds the exact DER chain and the expected
			// name; the verdict's validity over time is bounded by the
			// cache's TTL rather than re-checking expiry per
			// connection.
			_, err = cfg.VerifyCache.Do(chainCacheKey(der, cfg.ServerName), verify)
		} else {
			err = verify()
		}
		if err != nil {
			desc := AlertBadCertificate
			var cie x509.CertificateInvalidError
			if errors.As(err, &cie) && cie.Reason == x509.Expired {
				desc = AlertCertificateExpired
			}
			var uae x509.UnknownAuthorityError
			if errors.As(err, &uae) {
				desc = AlertUnknownCA
			}
			return nil, nil, c.fatal(desc, err)
		}
	}
	if cfg.VerifyPeerCertificate != nil {
		if err := cfg.VerifyPeerCertificate(chain); err != nil {
			return nil, nil, c.fatal(AlertBadCertificate, err)
		}
	}
	pub, ok := chain[0].PublicKey.(ed25519.PublicKey)
	if !ok {
		return nil, nil, c.fatal(AlertBadCertificate, errors.New("tls12: leaf certificate key is not Ed25519"))
	}
	return chain, pub, nil
}

// chainCacheKey hashes a certificate chain's verification inputs: the
// DER chain (length-framed, so concatenation is unambiguous) and the
// expected DNS name. The trust roots are config state the cache is
// scoped to; a config swap should come with a cache Flush.
func chainCacheKey(der [][]byte, serverName string) [32]byte {
	h := sha256.New()
	var frame [8]byte
	binary.BigEndian.PutUint64(frame[:], uint64(len(serverName)))
	h.Write(frame[:])
	h.Write([]byte(serverName))
	for _, d := range der {
		binary.BigEndian.PutUint64(frame[:], uint64(len(d)))
		h.Write(frame[:])
		h.Write(d)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

func containsSuite(suites []uint16, id uint16) bool {
	for _, s := range suites {
		if s == id {
			return true
		}
	}
	return false
}
