package tls12

import (
	"bytes"
	"testing"
	"time"
)

func ticketConfig(now time.Time) *Config {
	cfg := &Config{EnableTickets: true, Time: func() time.Time { return now }}
	copy(cfg.TicketKey[:], bytes.Repeat([]byte{0x42}, 32))
	return cfg
}

func TestTicketSealOpenRoundTrip(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := ticketConfig(now)
	state := &sessionState{
		suite:     TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
		master:    bytes.Repeat([]byte{7}, 48),
		createdAt: uint64(now.Unix()),
	}
	ticket, err := sealTicket(cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	got := openTicket(cfg, ticket)
	if got == nil {
		t.Fatal("valid ticket rejected")
	}
	if got.suite != state.suite || !bytes.Equal(got.master, state.master) {
		t.Fatal("ticket state corrupted")
	}
}

func TestTicketWrongKeyRejected(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := ticketConfig(now)
	state := &sessionState{suite: TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256, master: make([]byte, 48), createdAt: uint64(now.Unix())}
	ticket, err := sealTicket(cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	other := ticketConfig(now)
	copy(other.TicketKey[:], bytes.Repeat([]byte{0x43}, 32))
	if openTicket(other, ticket) != nil {
		t.Fatal("ticket decrypted under the wrong STEK")
	}
}

func TestTicketExpiry(t *testing.T) {
	issued := time.Unix(1_700_000_000, 0)
	cfg := ticketConfig(issued)
	state := &sessionState{suite: TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master: make([]byte, 48), createdAt: uint64(issued.Unix())}
	ticket, err := sealTicket(cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh: accepted.
	if openTicket(cfg, ticket) == nil {
		t.Fatal("fresh ticket rejected")
	}
	// Past the lifetime: silently ignored (full handshake fallback).
	late := ticketConfig(issued.Add(ticketLifetime + time.Hour))
	if openTicket(late, ticket) != nil {
		t.Fatal("expired ticket accepted")
	}
	// From the future (clock skew / forged timestamp): ignored.
	early := ticketConfig(issued.Add(-time.Hour))
	if openTicket(early, ticket) != nil {
		t.Fatal("future-dated ticket accepted")
	}
}

func TestTicketTamperRejected(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := ticketConfig(now)
	state := &sessionState{suite: TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master: make([]byte, 48), createdAt: uint64(now.Unix())}
	ticket, err := sealTicket(cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ticket); i += 5 {
		tampered := append([]byte(nil), ticket...)
		tampered[i] ^= 0x80
		if openTicket(cfg, tampered) != nil {
			t.Fatalf("tampered ticket (byte %d) accepted", i)
		}
	}
	if openTicket(cfg, nil) != nil || openTicket(cfg, []byte("short")) != nil {
		t.Fatal("malformed ticket accepted")
	}
}

func TestTicketUnsupportedSuiteRejected(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := ticketConfig(now)
	state := &sessionState{suite: TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master: make([]byte, 48), createdAt: uint64(now.Unix())}
	ticket, err := sealTicket(cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	restricted := ticketConfig(now)
	restricted.CipherSuites = []uint16{TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256}
	if openTicket(restricted, ticket) != nil {
		t.Fatal("ticket for a now-disabled suite accepted")
	}
}

func TestSessionStateRoundTrip(t *testing.T) {
	s := &sessionState{suite: 0xC02C, master: bytes.Repeat([]byte{9}, 48), createdAt: 12345}
	got, err := parseSessionState(s.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.suite != s.suite || !bytes.Equal(got.master, s.master) || got.createdAt != s.createdAt {
		t.Fatal("session state corrupted")
	}
	if _, err := parseSessionState([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed state parsed")
	}
}
