package tls12

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzRecordHeader drives ParseRecordHeader — the first parser every
// wire byte meets, at endpoints and middlebox relays alike — with
// arbitrary headers. The invariants: never panic, never accept a
// header that violates the record grammar, classify every rejection as
// a typed AlertError (so the failure-path machinery in internal/core
// can turn it into the right alert), and round-trip every accepted
// header through RawRecord framing unchanged.
func FuzzRecordHeader(f *testing.F) {
	// One valid header per known content type, plus each rejection
	// class: short, unknown type, bad version, oversized body.
	for _, typ := range []ContentType{
		TypeChangeCipherSpec, TypeAlert, TypeHandshake, TypeApplicationData,
		TypeEncapsulated, TypeKeyMaterial, TypeMiddleboxAnnouncement,
	} {
		f.Add([]byte{byte(typ), 0x03, 0x03, 0x01, 0x00})
	}
	f.Add([]byte{22, 0x03, 0x03, 0x40, 0x00}) // max plaintext-sized body
	f.Add([]byte{22, 0x03, 0x03, 0x48, 0x00}) // max ciphertext
	f.Add([]byte{22, 0x03, 0x03, 0x48, 0x01}) // one past max ciphertext
	f.Add([]byte{22, 0x03})                   // short header
	f.Add([]byte{0x00, 0x03, 0x03, 0x00, 0x00})
	f.Add([]byte{0xff, 0x03, 0x03, 0x00, 0x05})
	f.Add([]byte{22, 0x03, 0x01, 0x00, 0x00}) // TLS 1.0 version
	f.Add([]byte{22, 0xfe, 0xfd, 0x00, 0x10}) // DTLS version

	f.Fuzz(func(t *testing.T, hdr []byte) {
		typ, length, err := ParseRecordHeader(hdr)
		if err != nil {
			// Every rejection of a complete header must carry a typed
			// local AlertError, so a Conn can answer with the right
			// fatal alert before tearing down.
			if len(hdr) >= RecordHeaderLen {
				var ae *AlertError
				if !errors.As(err, &ae) {
					t.Fatalf("rejection without AlertError: %v", err)
				}
				if ae.Remote {
					t.Fatalf("local parse failure classified as remote alert: %v", err)
				}
				switch ae.Description {
				case AlertDecodeError, AlertProtocolVersion, AlertRecordOverflow:
				default:
					t.Fatalf("unexpected alert class %s for %v", ae.Description, hdr[:RecordHeaderLen])
				}
			}
			return
		}
		// Accepted: re-derive every grammar rule independently.
		if len(hdr) < RecordHeaderLen {
			t.Fatalf("accepted a %d-byte header", len(hdr))
		}
		if !isKnownType(typ) {
			t.Fatalf("accepted unknown content type %d", typ)
		}
		if ContentType(hdr[0]) != typ {
			t.Fatalf("type %d does not match wire byte %d", typ, hdr[0])
		}
		if v := binary.BigEndian.Uint16(hdr[1:3]); v != VersionTLS12 {
			t.Fatalf("accepted version %#04x", v)
		}
		if length < 0 || length > MaxCiphertext {
			t.Fatalf("accepted body length %d", length)
		}
		if length != int(binary.BigEndian.Uint16(hdr[3:5])) {
			t.Fatalf("length %d does not match wire bytes", length)
		}
		// Round trip: a RawRecord built from the parse must frame back
		// to the same header and reparse identically.
		wire := RawRecord{Type: typ, Payload: make([]byte, length)}.Marshal()
		if !bytes.Equal(wire[:RecordHeaderLen], hdr[:RecordHeaderLen]) {
			t.Fatalf("reframed header %v != original %v", wire[:RecordHeaderLen], hdr[:RecordHeaderLen])
		}
		typ2, length2, err := ParseRecordHeader(wire)
		if err != nil || typ2 != typ || length2 != length {
			t.Fatalf("reparse: typ=%v length=%d err=%v", typ2, length2, err)
		}
	})
}
