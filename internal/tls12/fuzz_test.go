package tls12

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzRecordHeader drives ParseRecordHeader — the first parser every
// wire byte meets, at endpoints and middlebox relays alike — with
// arbitrary headers. The invariants: never panic, never accept a
// header that violates the record grammar, classify every rejection as
// a typed AlertError (so the failure-path machinery in internal/core
// can turn it into the right alert), and round-trip every accepted
// header through RawRecord framing unchanged.
func FuzzRecordHeader(f *testing.F) {
	// One valid header per known content type, plus each rejection
	// class: short, unknown type, bad version, oversized body.
	for _, typ := range []ContentType{
		TypeChangeCipherSpec, TypeAlert, TypeHandshake, TypeApplicationData,
		TypeEncapsulated, TypeKeyMaterial, TypeMiddleboxAnnouncement,
	} {
		f.Add([]byte{byte(typ), 0x03, 0x03, 0x01, 0x00})
	}
	f.Add([]byte{22, 0x03, 0x03, 0x40, 0x00}) // max plaintext-sized body
	f.Add([]byte{22, 0x03, 0x03, 0x48, 0x00}) // max ciphertext
	f.Add([]byte{22, 0x03, 0x03, 0x48, 0x01}) // one past max ciphertext
	f.Add([]byte{22, 0x03})                   // short header
	f.Add([]byte{0x00, 0x03, 0x03, 0x00, 0x00})
	f.Add([]byte{0xff, 0x03, 0x03, 0x00, 0x05})
	f.Add([]byte{22, 0x03, 0x01, 0x00, 0x00}) // TLS 1.0 version
	f.Add([]byte{22, 0xfe, 0xfd, 0x00, 0x10}) // DTLS version

	f.Fuzz(func(t *testing.T, hdr []byte) {
		typ, length, err := ParseRecordHeader(hdr)
		if err != nil {
			// Every rejection of a complete header must carry a typed
			// local AlertError, so a Conn can answer with the right
			// fatal alert before tearing down.
			if len(hdr) >= RecordHeaderLen {
				var ae *AlertError
				if !errors.As(err, &ae) {
					t.Fatalf("rejection without AlertError: %v", err)
				}
				if ae.Remote {
					t.Fatalf("local parse failure classified as remote alert: %v", err)
				}
				switch ae.Description {
				case AlertDecodeError, AlertProtocolVersion, AlertRecordOverflow:
				default:
					t.Fatalf("unexpected alert class %s for %v", ae.Description, hdr[:RecordHeaderLen])
				}
			}
			return
		}
		// Accepted: re-derive every grammar rule independently.
		if len(hdr) < RecordHeaderLen {
			t.Fatalf("accepted a %d-byte header", len(hdr))
		}
		if !isKnownType(typ) {
			t.Fatalf("accepted unknown content type %d", typ)
		}
		if ContentType(hdr[0]) != typ {
			t.Fatalf("type %d does not match wire byte %d", typ, hdr[0])
		}
		if v := binary.BigEndian.Uint16(hdr[1:3]); v != VersionTLS12 {
			t.Fatalf("accepted version %#04x", v)
		}
		if length < 0 || length > MaxCiphertext {
			t.Fatalf("accepted body length %d", length)
		}
		if length != int(binary.BigEndian.Uint16(hdr[3:5])) {
			t.Fatalf("length %d does not match wire bytes", length)
		}
		// Round trip: a RawRecord built from the parse must frame back
		// to the same header and reparse identically.
		wire := RawRecord{Type: typ, Payload: make([]byte, length)}.Marshal()
		if !bytes.Equal(wire[:RecordHeaderLen], hdr[:RecordHeaderLen]) {
			t.Fatalf("reframed header %v != original %v", wire[:RecordHeaderLen], hdr[:RecordHeaderLen])
		}
		typ2, length2, err := ParseRecordHeader(wire)
		if err != nil || typ2 != typ || length2 != length {
			t.Fatalf("reparse: typ=%v length=%d err=%v", typ2, length2, err)
		}
	})
}

// chunkReader delivers its stream in fixed-size chunks of at most n
// bytes per Read, forcing the maximally fragmented delivery a TCP
// transport is allowed to produce (the transport Conn contract
// guarantees only stream semantics, down to 1-byte reads).
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data) {
		n = len(c.data)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// drainRecords parses records off r until a terminal error, returning
// the records plus the error that ended the stream.
func drainRecords(r io.Reader) ([]RawRecord, error) {
	var recs []RawRecord
	for {
		rec, err := ReadRawRecord(r)
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// fuzzErrKey collapses a terminal error to its identity class so the
// differential check can demand sameness without demanding pointer
// equality: a given byte stream must end the same way no matter how
// the transport segmented it.
func fuzzErrKey(err error) string {
	var ae *AlertError
	switch {
	case err == nil:
		return "nil"
	case errors.As(err, &ae):
		return "alert:" + ae.Description.String()
	case errors.Is(err, io.ErrUnexpectedEOF):
		return "unexpected_eof"
	case errors.Is(err, io.EOF):
		return "eof"
	default:
		return err.Error()
	}
}

// FuzzRecordReader is the differential segmentation fuzzer: an
// arbitrary byte stream is parsed as a record sequence twice — once
// from a whole-stream reader, once through a chunkReader delivering at
// most 1..32 bytes per Read — and both passes must produce identical
// records and the same terminal error. Any divergence means record
// parsing depends on delivery segmentation, which the transport
// contract forbids. Accepted records must also re-marshal to exactly
// the bytes they were parsed from.
func FuzzRecordReader(f *testing.F) {
	// Seeds: multi-record streams, every truncation position class,
	// header-grammar rejections mid-stream, and the empty stream.
	valid := RawRecord{Type: TypeHandshake, Payload: []byte{1, 0, 0, 0}}.Marshal()
	two := append(RawRecord{Type: TypeAlert, Payload: []byte{2, 40}}.Marshal(),
		RawRecord{Type: TypeApplicationData, Payload: []byte("hello")}.Marshal()...)
	f.Add([]byte{}, byte(1))
	f.Add(valid, byte(1))
	f.Add(two, byte(3))
	f.Add(two[:len(two)-3], byte(2))          // truncated mid-body
	f.Add(valid[:3], byte(1))                 // truncated mid-header
	f.Add([]byte{22, 3, 3, 0x48, 1}, byte(1)) // oversize length
	f.Add([]byte{22, 3, 1, 0, 0}, byte(4))    // bad version mid-grammar
	f.Add(append(append([]byte{}, valid...), 0xff, 3, 3, 0, 0), byte(5))

	f.Fuzz(func(t *testing.T, stream []byte, chunk byte) {
		want, wantErr := drainRecords(bytes.NewReader(stream))
		size := int(chunk)%32 + 1
		got, gotErr := drainRecords(&chunkReader{data: stream, n: size})

		if fuzzErrKey(gotErr) != fuzzErrKey(wantErr) {
			t.Fatalf("terminal error diverged under %d-byte chunks: whole=%v chunked=%v",
				size, wantErr, gotErr)
		}
		if len(got) != len(want) {
			t.Fatalf("record count diverged under %d-byte chunks: whole=%d chunked=%d",
				size, len(want), len(got))
		}
		offset := 0
		for i := range want {
			if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
				t.Fatalf("record %d diverged under %d-byte chunks", i, size)
			}
			// Re-marshaling must reproduce the exact wire bytes the
			// record was parsed from.
			wire := want[i].Marshal()
			if !bytes.Equal(wire, stream[offset:offset+len(wire)]) {
				t.Fatalf("record %d does not round-trip to its wire form", i)
			}
			offset += len(wire)
		}
	})
}
