package tls12

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"io"
	"time"

	"repro/internal/secmem"
	"repro/internal/timing"
)

// Certificate is a leaf certificate chain plus its Ed25519 private key.
type Certificate struct {
	// Chain is the DER-encoded certificate chain, leaf first.
	Chain [][]byte
	// PrivateKey signs ServerKeyExchange messages.
	PrivateKey ed25519.PrivateKey
	// Leaf is the parsed leaf certificate (optional; parsed on demand).
	Leaf *x509.Certificate
}

// Wipe zeroizes the certificate's private key. An application wipes its
// Certificate when the identity is retired; the chain and leaf are
// public and stay readable.
func (cert *Certificate) Wipe() {
	if cert == nil {
		return
	}
	secmem.Wipe(cert.PrivateKey)
	cert.PrivateKey = nil
}

// SessionTicket is the client-side state needed to resume a session
// (RFC 5077). The server's state travels inside the opaque Ticket.
type SessionTicket struct {
	Ticket       []byte
	CipherSuite  uint16
	MasterSecret []byte
}

// Wipe zeroizes the resumption master secret. A client wipes a ticket
// when it will not be redeemed again (each redemption needs the master,
// so wiping is the application's retire-this-ticket signal).
func (st *SessionTicket) Wipe() {
	if st == nil {
		return
	}
	secmem.Wipe(st.MasterSecret)
	st.MasterSecret = nil
}

// Config configures a Conn. A Config may be reused across connections.
// The zero value is not usable; at minimum CipherSuites defaults are
// applied by the connection.
type Config struct {
	// Rand is the entropy source; nil means crypto/rand.Reader.
	Rand io.Reader
	// Time returns the current time for certificate validation; nil
	// means time.Now.
	Time func() time.Time

	// Certificate authenticates the server side of a handshake.
	Certificate *Certificate
	// RootCAs are the trust anchors for peer certificate verification.
	RootCAs *x509.CertPool
	// ServerName is the expected peer hostname (client side) and the
	// SNI value sent in the ClientHello.
	ServerName string
	// InsecureSkipVerify disables certificate verification. Used only
	// in tests and attack demonstrations.
	InsecureSkipVerify bool
	// VerifyPeerCertificate, if set, runs after standard verification
	// with the verified chain (or the raw leaf when verification is
	// skipped).
	VerifyPeerCertificate func(chain []*x509.Certificate) error

	// CipherSuites restricts the offered/accepted suites; nil means
	// both supported AES-GCM suites. The paper's prototype supported
	// only AES-256-GCM — the legacy-interop experiment (§5.1)
	// reproduces that restriction through this knob.
	CipherSuites []uint16

	// EnableTickets makes a server issue session tickets and a client
	// request them.
	EnableTickets bool
	// TicketKey encrypts server-issued tickets. Required when
	// EnableTickets is set on a server.
	TicketKey [32]byte
	// SessionTicket, when set on a client, attempts an abbreviated
	// resumption handshake.
	SessionTicket *SessionTicket
	// OnNewTicket, when set on a client, receives tickets issued by
	// the server.
	OnNewTicket func(*SessionTicket)

	// MiddleboxSupport, when set on a client, is attached to the
	// ClientHello to invite on-path middleboxes (mbTLS, paper §3.4).
	MiddleboxSupport *MiddleboxSupport

	// RequestAttestation makes a client require an SGXAttestation
	// message from the server; VerifyQuote must also be set.
	RequestAttestation bool
	// OfferAttestation puts the attestation-request extension in the
	// ClientHello without making it mandatory for this session. mbTLS
	// clients set it on the primary handshake so that discovered
	// middleboxes (whose secondary sessions reuse the primary
	// ClientHello) are invited to attest even when the origin server
	// does not (paper §3.4).
	OfferAttestation bool
	// VerifyQuote validates a received quote against the report data
	// this connection computed (the transcript binding, paper §3.4
	// "Secure Environment Attestation").
	VerifyQuote func(quote, reportData []byte) error
	// Quoter, when set on a server, produces an SGX quote over the
	// given 64-byte report data if the client requests attestation.
	Quoter func(reportData []byte) ([]byte, error)

	// Stopwatch, when set, accumulates this connection's handshake
	// compute time, excluding time blocked on network reads (the
	// quantity reported by the paper's Figure 5).
	Stopwatch *timing.Stopwatch

	// LenientUnknownRecords makes a server skip mbTLS record types it
	// does not understand (Encapsulated, MiddleboxAnnouncement) instead
	// of failing the handshake. The paper (§3.4) observes legacy
	// stacks do one or the other; both behaviors are reproduced.
	LenientUnknownRecords bool
}

func (c *Config) rand() io.Reader {
	if c == nil || c.Rand == nil {
		return rand.Reader
	}
	return c.Rand
}

func (c *Config) time() time.Time {
	if c == nil || c.Time == nil {
		return time.Now()
	}
	return c.Time()
}

func (c *Config) cipherSuites() []uint16 {
	if c != nil && len(c.CipherSuites) > 0 {
		return c.CipherSuites
	}
	return []uint16{
		TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
		TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
	}
}

func (c *Config) supportsSuite(id uint16) bool {
	for _, s := range c.cipherSuites() {
		if s == id {
			return true
		}
	}
	return false
}

// errNoCertificate is returned when a server config lacks a certificate.
var errNoCertificate = errors.New("tls12: server config has no certificate")
