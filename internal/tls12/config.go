package tls12

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"io"
	"time"

	"repro/internal/secmem"
	"repro/internal/timing"
)

// Certificate is a leaf certificate chain plus its Ed25519 private key.
type Certificate struct {
	// Chain is the DER-encoded certificate chain, leaf first.
	Chain [][]byte
	// PrivateKey signs ServerKeyExchange messages.
	PrivateKey ed25519.PrivateKey
	// Leaf is the parsed leaf certificate (optional; parsed on demand).
	Leaf *x509.Certificate
}

// Wipe zeroizes the certificate's private key. An application wipes its
// Certificate when the identity is retired; the chain and leaf are
// public and stay readable.
func (cert *Certificate) Wipe() {
	if cert == nil {
		return
	}
	secmem.Wipe(cert.PrivateKey)
	cert.PrivateKey = nil
}

// SessionTicket is the client-side state needed to resume a session
// (RFC 5077). The server's state travels inside the opaque Ticket.
type SessionTicket struct {
	Ticket       []byte
	CipherSuite  uint16
	MasterSecret []byte
}

// Wipe zeroizes the resumption master secret. A client wipes a ticket
// when it will not be redeemed again (each redemption needs the master,
// so wiping is the application's retire-this-ticket signal).
func (st *SessionTicket) Wipe() {
	if st == nil {
		return
	}
	secmem.Wipe(st.MasterSecret)
	st.MasterSecret = nil
}

// TicketKeySource supplies rotating session-ticket encryption keys
// (STEKs). SealKey returns the key new tickets are sealed under;
// OpenKeys returns every key a received ticket may open under
// (typically the current generation plus a one-generation grace
// window). internal/hsfast.STEK is the standard implementation.
type TicketKeySource interface {
	SealKey() [32]byte
	OpenKeys() [][32]byte
}

// KeyShareSource supplies ephemeral X25519 keys for handshakes, so a
// host can precompute them on idle workers (internal/hsfast
// .KeySharePool). public must equal priv.PublicKey().Bytes(); it is
// passed separately so a precomputed public point is not re-derived.
type KeyShareSource interface {
	X25519KeyShare() (priv *ecdh.PrivateKey, public []byte, err error)
}

// ChainCache memoizes certificate-chain verification verdicts. Do
// returns the cached verdict for key or runs verify (once across
// concurrent callers for the same key) and caches its success.
// internal/hsfast.VerifyCache is the standard implementation.
type ChainCache interface {
	Do(key [32]byte, verify func() error) (cached bool, err error)
}

// Config configures a Conn. A Config may be reused across connections.
// The zero value is not usable; at minimum CipherSuites defaults are
// applied by the connection.
type Config struct {
	// Rand is the entropy source; nil means crypto/rand.Reader.
	Rand io.Reader
	// Time returns the current time for certificate validation; nil
	// means time.Now.
	Time func() time.Time

	// Certificate authenticates the server side of a handshake.
	Certificate *Certificate
	// RootCAs are the trust anchors for peer certificate verification.
	RootCAs *x509.CertPool
	// ServerName is the expected peer hostname (client side) and the
	// SNI value sent in the ClientHello.
	ServerName string
	// InsecureSkipVerify disables certificate verification. Used only
	// in tests and attack demonstrations.
	InsecureSkipVerify bool
	// VerifyPeerCertificate, if set, runs after standard verification
	// with the verified chain (or the raw leaf when verification is
	// skipped).
	VerifyPeerCertificate func(chain []*x509.Certificate) error

	// CipherSuites restricts the offered/accepted suites; nil means
	// both supported AES-GCM suites. The paper's prototype supported
	// only AES-256-GCM — the legacy-interop experiment (§5.1)
	// reproduces that restriction through this knob.
	CipherSuites []uint16

	// EnableTickets makes a server issue session tickets and a client
	// request them.
	EnableTickets bool
	// TicketKey encrypts server-issued tickets. Required when
	// EnableTickets is set on a server and TicketKeys is nil.
	TicketKey [32]byte
	// TicketKeys, when set, supplies rotating ticket keys and takes
	// precedence over TicketKey.
	TicketKeys TicketKeySource
	// SessionTicket, when set on a client, attempts an abbreviated
	// resumption handshake.
	SessionTicket *SessionTicket
	// OnNewTicket, when set on a client, receives tickets issued by
	// the server.
	OnNewTicket func(*SessionTicket)
	// HopTickets, when set on a client, holds resumption state for
	// named middlebox hops (mbTLS chain resumption): when a secondary
	// handshake's ServerHello names a resumed hop, the master secret
	// comes from the matching entry.
	HopTickets map[string]*SessionTicket
	// HopTicketName, when set on a server, identifies this party as a
	// named middlebox hop: ticket resumption reads the hop ticket with
	// this name from the ClientHello's MiddleboxSupport extension
	// (instead of the session_ticket extension) and the ServerHello
	// echoes the name when resuming.
	HopTicketName string

	// MiddleboxSupport, when set on a client, is attached to the
	// ClientHello to invite on-path middleboxes (mbTLS, paper §3.4).
	MiddleboxSupport *MiddleboxSupport

	// RequestAttestation makes a client require an SGXAttestation
	// message from the server; VerifyQuote must also be set.
	RequestAttestation bool
	// OfferAttestation puts the attestation-request extension in the
	// ClientHello without making it mandatory for this session. mbTLS
	// clients set it on the primary handshake so that discovered
	// middleboxes (whose secondary sessions reuse the primary
	// ClientHello) are invited to attest even when the origin server
	// does not (paper §3.4).
	OfferAttestation bool
	// VerifyQuote validates a received quote against the report data
	// this connection computed (the transcript binding, paper §3.4
	// "Secure Environment Attestation").
	VerifyQuote func(quote, reportData []byte) error
	// Quoter, when set on a server, produces an SGX quote over the
	// given 64-byte report data if the client requests attestation.
	Quoter func(reportData []byte) ([]byte, error)

	// KeyShares, when set, supplies precomputed ephemeral X25519 keys
	// for ServerKeyExchange/ClientKeyExchange; nil generates inline.
	KeyShares KeyShareSource
	// VerifyCache, when set on a client, memoizes certificate-chain
	// verification verdicts across connections (keyed by a hash of the
	// DER chain and the expected name). The VerifyPeerCertificate hook
	// still runs on every connection.
	VerifyCache ChainCache

	// Stopwatch, when set, accumulates this connection's handshake
	// compute time, excluding time blocked on network reads (the
	// quantity reported by the paper's Figure 5).
	Stopwatch *timing.Stopwatch

	// LenientUnknownRecords makes a server skip mbTLS record types it
	// does not understand (Encapsulated, MiddleboxAnnouncement) instead
	// of failing the handshake. The paper (§3.4) observes legacy
	// stacks do one or the other; both behaviors are reproduced.
	LenientUnknownRecords bool
}

func (c *Config) rand() io.Reader {
	if c == nil || c.Rand == nil {
		return rand.Reader
	}
	return c.Rand
}

func (c *Config) time() time.Time {
	if c == nil || c.Time == nil {
		return time.Now()
	}
	return c.Time()
}

func (c *Config) cipherSuites() []uint16 {
	if c != nil && len(c.CipherSuites) > 0 {
		return c.CipherSuites
	}
	return []uint16{
		TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
		TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
	}
}

// sealTicketKey returns the key new tickets are sealed under.
func (c *Config) sealTicketKey() [32]byte {
	if c.TicketKeys != nil {
		return c.TicketKeys.SealKey()
	}
	return c.TicketKey
}

// openTicketKeys returns every key a received ticket may open under.
func (c *Config) openTicketKeys() [][32]byte {
	if c.TicketKeys != nil {
		return c.TicketKeys.OpenKeys()
	}
	return [][32]byte{c.TicketKey}
}

// keyShare returns an ephemeral X25519 key for this handshake, from
// the precompute pool when one is configured.
func (c *Config) keyShare() (*ecdh.PrivateKey, []byte, error) {
	if c.KeyShares != nil {
		return c.KeyShares.X25519KeyShare()
	}
	priv, err := ecdh.X25519().GenerateKey(c.rand())
	if err != nil {
		return nil, nil, err
	}
	return priv, priv.PublicKey().Bytes(), nil
}

// Wipe zeroizes the config's static ticket key. An application wipes
// a server config when retiring it; rotating keys live behind
// TicketKeys and are wiped by their source.
func (c *Config) Wipe() {
	if c == nil {
		return
	}
	secmem.Wipe(c.TicketKey[:])
}

func (c *Config) supportsSuite(id uint16) bool {
	for _, s := range c.cipherSuites() {
		if s == id {
			return true
		}
	}
	return false
}

// errNoCertificate is returned when a server config lacks a certificate.
var errNoCertificate = errors.New("tls12: server config has no certificate")
