package tls12

import (
	"bytes"
	"testing"
	"time"
)

func TestMiddleboxSupportHopTicketsRoundTrip(t *testing.T) {
	ms := &MiddleboxSupport{
		Middleboxes:  []string{"mb1.example:8444"},
		NeighborKeys: true,
		HopTickets: []HopTicket{
			{Name: "mb1", Ticket: []byte{1, 2, 3}},
			{Name: "mb2", Ticket: []byte{4}},
		},
	}
	got, err := parseMiddleboxSupport(ms.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.HopTickets) != 2 ||
		got.HopTickets[0].Name != "mb1" || !bytes.Equal(got.HopTickets[0].Ticket, []byte{1, 2, 3}) ||
		got.HopTickets[1].Name != "mb2" || !bytes.Equal(got.HopTickets[1].Ticket, []byte{4}) {
		t.Fatalf("hop tickets corrupted: %+v", got.HopTickets)
	}
	if !got.NeighborKeys {
		t.Fatal("flags octet lost")
	}
	if got.HopTicket("mb2") == nil || got.HopTicket("nope") != nil {
		t.Fatal("HopTicket lookup wrong")
	}

	// Backward compatibility: the pre-hop-ticket format (flags octet
	// last) and the Appendix A original (no flags octet) still parse.
	plain := &MiddleboxSupport{Middleboxes: []string{"a"}}
	raw := plain.marshal()
	if _, err := parseMiddleboxSupport(raw); err != nil {
		t.Fatalf("flags-only format rejected: %v", err)
	}
	if _, err := parseMiddleboxSupport(raw[:len(raw)-1]); err != nil {
		t.Fatalf("Appendix A format rejected: %v", err)
	}
}

func TestServerHelloResumedHopRoundTrip(t *testing.T) {
	sh := &ServerHello{
		CipherSuite:    TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
		TicketExpected: true,
		ResumedHop:     "mb1",
	}
	_, body, err := splitHandshake(sh.marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseServerHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ResumedHop != "mb1" || !got.TicketExpected {
		t.Fatalf("server hello corrupted: %+v", got)
	}

	// Absent when not resuming a hop.
	sh.ResumedHop = ""
	_, body, _ = splitHandshake(sh.marshal())
	if got, _ := parseServerHello(body); got.ResumedHop != "" {
		t.Fatal("phantom resumed hop")
	}
}

// fakeSTEK is a fixed TicketKeySource for grace-window tests.
type fakeSTEK struct {
	seal [32]byte
	open [][32]byte
}

func (f *fakeSTEK) SealKey() [32]byte    { return f.seal }
func (f *fakeSTEK) OpenKeys() [][32]byte { return f.open }

// TestTicketKeySourceGrace pins the multi-key open contract: a ticket
// sealed under an old STEK generation opens while that key is in the
// source's open set (grace window) and silently fails once retired.
func TestTicketKeySourceGrace(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var genA, genB [32]byte
	genA[0], genB[0] = 0xA, 0xB

	sealer := &Config{EnableTickets: true, Time: func() time.Time { return now },
		TicketKeys: &fakeSTEK{seal: genA, open: [][32]byte{genA}}}
	state := &sessionState{suite: TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, master: make([]byte, 48), createdAt: uint64(now.Unix())}
	ticket, err := sealTicket(sealer, state)
	if err != nil {
		t.Fatal(err)
	}

	grace := &Config{EnableTickets: true, Time: func() time.Time { return now },
		TicketKeys: &fakeSTEK{seal: genB, open: [][32]byte{genB, genA}}}
	if openTicket(grace, ticket) == nil {
		t.Fatal("ticket refused during the grace window")
	}

	retired := &Config{EnableTickets: true, Time: func() time.Time { return now },
		TicketKeys: &fakeSTEK{seal: genB, open: [][32]byte{genB}}}
	if openTicket(retired, ticket) != nil {
		t.Fatal("ticket accepted after its key generation was retired")
	}
}
