// Package tls12 implements the subset of TLS 1.2 (RFC 5246) that mbTLS
// builds on, plus the mbTLS wire extensions from the paper's Appendix A:
// the Encapsulated, MBTLSKeyMaterial, and MiddleboxAnnouncement record
// types, the MiddleboxSupport ClientHello extension, and the
// SGXAttestation handshake message.
//
// The package is self-contained on the Go standard library: X25519 ECDHE
// key exchange, Ed25519 certificate signatures, AES-GCM record
// protection, and the TLS 1.2 PRF. It is not a general-purpose TLS
// stack — it exists so the mbTLS layer (internal/core) has full control
// over handshake interleaving, record routing, and key export, which
// crypto/tls does not expose.
package tls12

import "fmt"

// VersionTLS12 is the only protocol version this package speaks.
const VersionTLS12 uint16 = 0x0303

// ContentType identifies the payload carried by a TLS record.
type ContentType uint8

// Record content types. Types 20–23 are standard TLS 1.2; types 30–32
// are the mbTLS additions (paper Appendix A.1).
const (
	TypeChangeCipherSpec      ContentType = 20
	TypeAlert                 ContentType = 21
	TypeHandshake             ContentType = 22
	TypeApplicationData       ContentType = 23
	TypeEncapsulated          ContentType = 30
	TypeKeyMaterial           ContentType = 31
	TypeMiddleboxAnnouncement ContentType = 32
)

// String returns the RFC-style name of the content type.
func (t ContentType) String() string {
	switch t {
	case TypeChangeCipherSpec:
		return "change_cipher_spec"
	case TypeAlert:
		return "alert"
	case TypeHandshake:
		return "handshake"
	case TypeApplicationData:
		return "application_data"
	case TypeEncapsulated:
		return "mbtls_encapsulated"
	case TypeKeyMaterial:
		return "mbtls_key_material"
	case TypeMiddleboxAnnouncement:
		return "mbtls_middlebox_announcement"
	}
	return fmt.Sprintf("content_type(%d)", uint8(t))
}

// isKnownType reports whether t is a content type this implementation
// understands at all (used to reject garbage framing early).
func isKnownType(t ContentType) bool {
	switch t {
	case TypeChangeCipherSpec, TypeAlert, TypeHandshake, TypeApplicationData,
		TypeEncapsulated, TypeKeyMaterial, TypeMiddleboxAnnouncement:
		return true
	}
	return false
}

// typeBypassesCipher reports whether records of type t are exempt from
// record-layer protection. Encapsulated records carry an inner record
// with its own protection (the secondary session's), and announcements
// are sent before any keys exist, so both must remain readable by
// on-path middleboxes regardless of the carrying session's cipher state.
func typeBypassesCipher(t ContentType) bool {
	return t == TypeEncapsulated || t == TypeMiddleboxAnnouncement
}

// HandshakeType identifies a handshake protocol message.
type HandshakeType uint8

// Handshake message types. sgx_attestation(17) is the mbTLS addition
// (paper Appendix A.2).
const (
	TypeClientHello       HandshakeType = 1
	TypeServerHello       HandshakeType = 2
	TypeNewSessionTicket  HandshakeType = 4
	TypeCertificate       HandshakeType = 11
	TypeServerKeyExchange HandshakeType = 12
	TypeServerHelloDone   HandshakeType = 14
	TypeClientKeyExchange HandshakeType = 16
	TypeSGXAttestation    HandshakeType = 17
	TypeFinished          HandshakeType = 20
)

// String returns the RFC-style name of the handshake message type.
func (t HandshakeType) String() string {
	switch t {
	case TypeClientHello:
		return "client_hello"
	case TypeServerHello:
		return "server_hello"
	case TypeNewSessionTicket:
		return "new_session_ticket"
	case TypeCertificate:
		return "certificate"
	case TypeServerKeyExchange:
		return "server_key_exchange"
	case TypeServerHelloDone:
		return "server_hello_done"
	case TypeClientKeyExchange:
		return "client_key_exchange"
	case TypeSGXAttestation:
		return "sgx_attestation"
	case TypeFinished:
		return "finished"
	}
	return fmt.Sprintf("handshake_type(%d)", uint8(t))
}

// Cipher suites. The identifiers are the IANA ECDHE_ECDSA AES-GCM codes;
// this implementation authenticates servers with Ed25519 certificates,
// which RFC 8422 folds under the ECDSA-capable suites.
const (
	TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 uint16 = 0xC02B
	TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 uint16 = 0xC02C
)

// CipherSuiteName returns a human-readable suite name.
func CipherSuiteName(id uint16) string {
	switch id {
	case TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256:
		return "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256"
	case TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384:
		return "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384"
	}
	return fmt.Sprintf("cipher_suite(0x%04X)", id)
}

// TLS extension identifiers carried in ClientHello/ServerHello.
const (
	extServerName        uint16 = 0
	extSessionTicket     uint16 = 35
	extRenegotiationInfo uint16 = 0xFF01
	// ExtMiddleboxSupport is the mbTLS MiddleboxSupport extension
	// (paper Appendix A.2). Exported so middleboxes outside this
	// package can detect mbTLS-capable ClientHellos.
	ExtMiddleboxSupport uint16 = 0xFFB0
	// extAttestationRequest asks the peer to include an
	// SGXAttestation message in its handshake flight.
	extAttestationRequest uint16 = 0xFFB1
	// extResumedHop, in a ServerHello, names the middlebox hop whose
	// ticket (from the MiddleboxSupport hop-ticket list) the server is
	// resuming. Absent on full handshakes and on primary (RFC 5077)
	// resumption, which stays signaled by the abbreviated flight.
	extResumedHop uint16 = 0xFFB2
)

// Named curve and signature identifiers (RFC 8422 / RFC 8446 registry).
const (
	curveX25519      uint16 = 29
	sigSchemeEd25519 uint16 = 0x0807
	curveTypeNamed   uint8  = 3
)

// Record-size limits. A TLS plaintext fragment is at most 2^14 bytes; an
// encrypted record may exceed that by the AEAD expansion. Inner records
// carried inside Encapsulated records additionally lose one byte to the
// subchannel ID (paper Appendix A.1).
const (
	maxPlaintext    = 16384
	maxCiphertext   = maxPlaintext + 2048
	recordHeaderLen = 5
	// MaxEncapsulatedPlaintext is the largest plaintext fragment that,
	// after AEAD sealing and inner framing, still fits in the payload
	// of an outer Encapsulated record.
	MaxEncapsulatedPlaintext = maxPlaintext - recordHeaderLen - 1 - 8 - 16 - 64
)
