package tls12

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"io"
	"time"

	"repro/internal/secmem"
	"repro/internal/wire"
)

// ticketLifetime is the advertised session ticket lifetime.
const ticketLifetime = 24 * time.Hour

// sessionState is the server-side session state sealed inside a ticket.
type sessionState struct {
	suite     uint16
	master    []byte
	createdAt uint64 // unix seconds
}

// wipe zeroizes the sealed-in master secret. Callers wipe a
// sessionState as soon as the ticket is sealed or the resumed
// connection has cloned the master.
func (s *sessionState) wipe() {
	if s == nil {
		return
	}
	secmem.Wipe(s.master)
	s.master = nil
}

func (s *sessionState) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint16(s.suite)
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(s.master) })
	b.AddUint64(s.createdAt)
	return b.Bytes()
}

func parseSessionState(data []byte) (*sessionState, error) {
	p := wire.NewParser(data)
	var s sessionState
	var master []byte
	if !p.ReadUint16(&s.suite) || !p.ReadUint8Prefixed(&master) || !p.ReadUint64(&s.createdAt) || !p.Empty() {
		return nil, errors.New("tls12: malformed session state")
	}
	s.master = append([]byte(nil), master...)
	return &s, nil
}

// ticketAEAD builds the AES-256-GCM AEAD for one ticket key.
func ticketAEAD(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// sealTicket encrypts session state under the config's current ticket
// key (the rotating STEK's seal generation when TicketKeys is set)
// using AES-256-GCM with a random nonce prepended.
func sealTicket(cfg *Config, state *sessionState) ([]byte, error) {
	aead, err := ticketAEAD(cfg.sealTicketKey())
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(cfg.rand(), nonce); err != nil {
		return nil, err
	}
	plain := state.marshal()
	sealed := aead.Seal(nonce, nonce, plain, nil)
	secmem.Wipe(plain) // the plaintext holds the master secret
	return sealed, nil
}

// openTicket decrypts and validates a session ticket, trying every
// open-eligible ticket key (the current STEK generation plus the grace
// window). It returns nil (no error) for tickets that do not decrypt
// under any key or have expired, signaling a fallback to a full
// handshake rather than a protocol failure — this is how tickets
// sealed under a retired STEK generation die quietly.
func openTicket(cfg *Config, ticket []byte) *sessionState {
	var plain []byte
	for _, key := range cfg.openTicketKeys() {
		aead, err := ticketAEAD(key)
		if err != nil {
			continue
		}
		if len(ticket) < aead.NonceSize() {
			return nil
		}
		plain, err = aead.Open(nil, ticket[:aead.NonceSize()], ticket[aead.NonceSize():], nil)
		if err == nil {
			break
		}
		plain = nil
	}
	if plain == nil {
		return nil
	}
	state, err := parseSessionState(plain)
	secmem.Wipe(plain) // parseSessionState cloned the master out
	if err != nil {
		return nil
	}
	created := time.Unix(int64(state.createdAt), 0)
	now := cfg.time()
	if now.Before(created) || now.Sub(created) > ticketLifetime {
		state.wipe()
		return nil
	}
	if !cfg.supportsSuite(state.suite) {
		state.wipe()
		return nil
	}
	return state
}
