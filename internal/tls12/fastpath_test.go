package tls12_test

import (
	"testing"
	"time"

	"repro/internal/hsfast"
	"repro/internal/tls12"
)

// The hsfast implementations must satisfy the tls12 fast-path hooks.
var (
	_ tls12.TicketKeySource = (*hsfast.STEK)(nil)
	_ tls12.KeyShareSource  = (*hsfast.KeySharePool)(nil)
	_ tls12.ChainCache      = (*hsfast.VerifyCache)(nil)
)

// hopSetup runs a full handshake against a named-hop server with a
// rotating STEK and returns both configs (sharing one CA) plus the
// issued ticket.
func hopSetup(t *testing.T) (*tls12.Config, *tls12.Config, *hsfast.STEK, *tls12.SessionTicket) {
	t.Helper()
	_, clientCfg, serverCfg := testPKI(t, "mb1")
	stek, err := hsfast.NewSTEK(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	serverCfg.EnableTickets = true
	serverCfg.TicketKeys = stek
	serverCfg.HopTicketName = "mb1"

	var issued *tls12.SessionTicket
	clientCfg.EnableTickets = true
	clientCfg.OnNewTicket = func(st *tls12.SessionTicket) { issued = st }
	_, _, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cErr, sErr)
	}
	if issued == nil {
		t.Fatal("no ticket issued")
	}
	return clientCfg, serverCfg, stek, issued
}

// hopResumeClient clones a client config into one that offers the hop
// ticket for "mb1" through the MiddleboxSupport extension, the way a
// chain resumption carries it inside the shared primary ClientHello.
func hopResumeClient(base *tls12.Config, ticket *tls12.SessionTicket) *tls12.Config {
	cfg := *base
	cfg.OnNewTicket = nil
	cfg.HopTickets = map[string]*tls12.SessionTicket{"mb1": ticket}
	cfg.MiddleboxSupport = &tls12.MiddleboxSupport{
		HopTickets: []tls12.HopTicket{{Name: "mb1", Ticket: ticket.Ticket}},
	}
	return &cfg
}

// TestHopTicketResumption pins the chain-resumption mechanics at the
// tls12 layer: a server configured as a named hop reads its ticket
// from the MiddleboxSupport extension, resumes, and names the hop in
// its ServerHello; the client maps that name back to its hop ticket.
func TestHopTicketResumption(t *testing.T) {
	baseCfg, serverCfg, _, issued := hopSetup(t)

	var reissued *tls12.SessionTicket
	clientCfg := hopResumeClient(baseCfg, issued)
	clientCfg.OnNewTicket = func(st *tls12.SessionTicket) { reissued = st }
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("resumed handshake: client=%v server=%v", cErr, sErr)
	}
	cs, ss := client.ConnectionState(), server.ConnectionState()
	if !cs.Resumed || cs.ResumedHop != "mb1" {
		t.Fatalf("client state not hop-resumed: %+v", cs)
	}
	if !ss.Resumed || ss.ResumedHop != "mb1" {
		t.Fatalf("server state not hop-resumed: %+v", ss)
	}
	if len(cs.PeerCertificates) != 0 {
		t.Fatal("resumed handshake carried certificates")
	}
	if reissued == nil {
		t.Fatal("resumed handshake issued no fresh ticket")
	}
}

// TestHopResumptionStaleSTEKFallsBack pins the rotation contract end
// to end: after the issuing generation leaves the grace window the hop
// ticket dies quietly — the handshake completes as a full one.
func TestHopResumptionStaleSTEKFallsBack(t *testing.T) {
	baseCfg, serverCfg, stek, issued := hopSetup(t)

	// One rotation: grace window, still resumes.
	if err := stek.Rotate(); err != nil {
		t.Fatal(err)
	}
	client, _, cErr, sErr := runHandshake(t, hopResumeClient(baseCfg, issued), serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("grace-window handshake: client=%v server=%v", cErr, sErr)
	}
	if cs := client.ConnectionState(); !cs.Resumed {
		t.Fatalf("grace-window ticket did not resume: %+v", cs)
	}

	// Second rotation: retired. Falls back to a full handshake, never
	// an error.
	if err := stek.Rotate(); err != nil {
		t.Fatal(err)
	}
	client, _, cErr, sErr = runHandshake(t, hopResumeClient(baseCfg, issued), serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("post-grace handshake: client=%v server=%v", cErr, sErr)
	}
	if cs := client.ConnectionState(); cs.Resumed || cs.ResumedHop != "" {
		t.Fatalf("stale ticket resumed: %+v", cs)
	}
}

// TestHandshakeWithKeySharePool runs full handshakes with both sides
// drawing ephemeral keys from a precompute pool.
func TestHandshakeWithKeySharePool(t *testing.T) {
	pool := hsfast.NewKeySharePool(8, 1)
	defer pool.Close()
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	clientCfg.KeyShares = pool
	serverCfg.KeyShares = pool

	for i := 0; i < 3; i++ {
		client, _, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
		if cErr != nil || sErr != nil {
			t.Fatalf("handshake %d: client=%v server=%v", i, cErr, sErr)
		}
		if !client.ConnectionState().HandshakeComplete {
			t.Fatal("handshake incomplete")
		}
	}
	s := pool.Stats()
	if s.Hits+s.Misses != 6 {
		t.Fatalf("pool served %d keyshares, want 6 (stats %+v)", s.Hits+s.Misses, s)
	}
}

// TestHandshakeWithVerifyCache pins that repeat connections to the
// same server verify its chain once and still produce working
// sessions — and that a hostile chain is still rejected when offered
// under a different cache key.
func TestHandshakeWithVerifyCache(t *testing.T) {
	cache := hsfast.NewVerifyCache(16, time.Hour, nil)
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	clientCfg.VerifyCache = cache

	for i := 0; i < 3; i++ {
		_, _, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
		if cErr != nil || sErr != nil {
			t.Fatalf("handshake %d: client=%v server=%v", i, cErr, sErr)
		}
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss + 2 hits", s)
	}

	// A different server (different chain bytes) must not hit the
	// cached verdict — and must still fail verification against this
	// client's roots.
	_, _, otherServer := testPKI(t, "example.com")
	_, _, cErr, _ := runHandshake(t, clientCfg, otherServer)
	if cErr == nil {
		t.Fatal("chain from an untrusted CA accepted with cache enabled")
	}
}
