package tls12

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// handshakeHeader frames a handshake message body with its type and
// 24-bit length.
func handshakeHeader(typ HandshakeType, body []byte) []byte {
	b := wire.NewBuilder(make([]byte, 0, 4+len(body)))
	b.AddUint8(uint8(typ))
	b.AddUint24(uint32(len(body)))
	b.AddBytes(body)
	return b.Bytes()
}

// splitHandshake splits a marshaled handshake message into its type and
// body, verifying the length.
func splitHandshake(msg []byte) (HandshakeType, []byte, error) {
	p := wire.NewParser(msg)
	var typ uint8
	var body []byte
	if !p.ReadUint8(&typ) || !p.ReadUint24Prefixed(&body) || !p.Empty() {
		return 0, nil, errors.New("tls12: malformed handshake message")
	}
	return HandshakeType(typ), body, nil
}

// randomLen is the length of the hello random values.
const randomLen = 32

// MiddleboxSupport is the mbTLS MiddleboxSupport ClientHello extension
// (paper Appendix A.2). Its presence invites on-path middleboxes to
// announce themselves and join the session (paper §3.4).
type MiddleboxSupport struct {
	// OptimisticHellos carries one or more ClientHellos that discovered
	// middleboxes may respond to with their own ServerHello, letting
	// the secondary handshake piggyback on the primary one (P7).
	OptimisticHellos [][]byte
	// Middleboxes lists middleboxes known to the client a priori, as
	// dial addresses.
	Middleboxes []string
	// NeighborKeys selects the alternative key-establishment mode the
	// paper sketches as the state-poisoning mitigation (§4.2): each
	// hop's keys are negotiated between the hop's two parties rather
	// than generated and distributed by the endpoint, so "each party
	// only knows the key(s) for the hop(s) adjacent to it". Carried as
	// a trailing flags octet — an extension beyond the Appendix A
	// format.
	NeighborKeys bool
	// HopTickets carries per-middlebox resumption tickets for chain
	// resumption: client-side middleboxes reuse the primary
	// ClientHello for their secondary handshakes, so the only place a
	// reconnecting client can offer each hop its ticket is inside this
	// extension. Carried after the flags octet — a further extension
	// beyond the Appendix A format; parsers that stop at the flags
	// octet ignore it.
	HopTickets []HopTicket
	// ProxySig selects the mdTLS-style proxy-signature accountability
	// mode for the secondary handshakes this hello starts: instead of
	// per-hop enclave attestation, the endpoint delegates to each
	// middlebox with a signed warrant and collects signed evidence of
	// the middlebox's modifications at close. Carried as a flags-octet
	// bit, so the attestation default adds no bytes to the wire.
	ProxySig bool
}

// HopTicket is one named middlebox's resumption ticket as carried in
// the MiddleboxSupport extension. Name is the middlebox identity the
// ticket was issued by (its certificate CN on the original session);
// Ticket is opaque to everyone but that middlebox.
type HopTicket struct {
	Name   string
	Ticket []byte
}

// Flag bits of the trailing MiddleboxSupport flags octet.
const (
	msFlagNeighborKeys = 0x01
	msFlagProxySig     = 0x02
)

func (m *MiddleboxSupport) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint8(uint8(len(m.OptimisticHellos)))
	for _, h := range m.OptimisticHellos {
		b.AddUint16(uint16(len(h)))
	}
	for _, h := range m.OptimisticHellos {
		b.AddBytes(h)
	}
	b.AddUint8(uint8(len(m.Middleboxes)))
	for _, mb := range m.Middleboxes {
		b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes([]byte(mb)) })
	}
	var flags uint8
	if m.NeighborKeys {
		flags |= msFlagNeighborKeys
	}
	if m.ProxySig {
		flags |= msFlagProxySig
	}
	b.AddUint8(flags)
	if len(m.HopTickets) > 0 {
		b.AddUint8(uint8(len(m.HopTickets)))
		for _, ht := range m.HopTickets {
			b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes([]byte(ht.Name)) })
			b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(ht.Ticket) })
		}
	}
	return b.Bytes()
}

func parseMiddleboxSupport(data []byte) (*MiddleboxSupport, error) {
	p := wire.NewParser(data)
	var m MiddleboxSupport
	var numHellos uint8
	if !p.ReadUint8(&numHellos) {
		return nil, errors.New("tls12: malformed MiddleboxSupport extension")
	}
	lens := make([]uint16, numHellos)
	for i := range lens {
		if !p.ReadUint16(&lens[i]) {
			return nil, errors.New("tls12: malformed MiddleboxSupport extension")
		}
	}
	for _, n := range lens {
		var h []byte
		if !p.ReadBytes(&h, int(n)) {
			return nil, errors.New("tls12: malformed MiddleboxSupport extension")
		}
		m.OptimisticHellos = append(m.OptimisticHellos, h)
	}
	var numMboxes uint8
	if !p.ReadUint8(&numMboxes) {
		return nil, errors.New("tls12: malformed MiddleboxSupport extension")
	}
	for i := 0; i < int(numMboxes); i++ {
		var mb []byte
		if !p.ReadUint16Prefixed(&mb) {
			return nil, errors.New("tls12: malformed MiddleboxSupport extension")
		}
		m.Middleboxes = append(m.Middleboxes, string(mb))
	}
	// Trailing flags octet (absent in Appendix A originals).
	if p.Len() > 0 {
		var flags uint8
		if !p.ReadUint8(&flags) {
			return nil, errors.New("tls12: malformed MiddleboxSupport extension")
		}
		m.NeighborKeys = flags&msFlagNeighborKeys != 0
		m.ProxySig = flags&msFlagProxySig != 0
	}
	// Hop tickets (absent unless the client resumes a chain).
	if p.Len() > 0 {
		var numTickets uint8
		if !p.ReadUint8(&numTickets) {
			return nil, errors.New("tls12: malformed MiddleboxSupport extension")
		}
		for i := 0; i < int(numTickets); i++ {
			var name, ticket []byte
			if !p.ReadUint8Prefixed(&name) || !p.ReadUint16Prefixed(&ticket) {
				return nil, errors.New("tls12: malformed MiddleboxSupport extension")
			}
			m.HopTickets = append(m.HopTickets, HopTicket{
				Name:   string(name),
				Ticket: append([]byte(nil), ticket...),
			})
		}
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return &m, nil
}

// HopTicket returns the hop ticket offered for the named middlebox, or
// nil when none was offered.
func (m *MiddleboxSupport) HopTicket(name string) []byte {
	if m == nil {
		return nil
	}
	for _, ht := range m.HopTickets {
		if ht.Name == name {
			return ht.Ticket
		}
	}
	return nil
}

// ClientHello is the parsed form of a ClientHello message.
type ClientHello struct {
	Random             [randomLen]byte
	SessionID          []byte
	CipherSuites       []uint16
	ServerName         string
	SessionTicket      []byte // nil: no ext; empty: ext present, no ticket
	HasSessionTicket   bool
	RequestAttestation bool
	MiddleboxSupport   *MiddleboxSupport
}

func (m *ClientHello) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint16(VersionTLS12)
	b.AddBytes(m.Random[:])
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(m.SessionID) })
	b.AddUint16Prefixed(func(b *wire.Builder) {
		for _, s := range m.CipherSuites {
			b.AddUint16(s)
		}
	})
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddUint8(0) }) // null compression

	b.AddUint16Prefixed(func(b *wire.Builder) {
		if m.ServerName != "" {
			b.AddUint16(extServerName)
			b.AddUint16Prefixed(func(b *wire.Builder) {
				// server_name_list with one host_name entry.
				b.AddUint16Prefixed(func(b *wire.Builder) {
					b.AddUint8(0) // name_type host_name
					b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes([]byte(m.ServerName)) })
				})
			})
		}
		if m.HasSessionTicket {
			b.AddUint16(extSessionTicket)
			b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(m.SessionTicket) })
		}
		if m.RequestAttestation {
			b.AddUint16(extAttestationRequest)
			b.AddUint16Prefixed(func(b *wire.Builder) {})
		}
		if m.MiddleboxSupport != nil {
			b.AddUint16(ExtMiddleboxSupport)
			b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(m.MiddleboxSupport.marshal()) })
		}
		b.AddUint16(extRenegotiationInfo)
		b.AddUint16Prefixed(func(b *wire.Builder) { b.AddUint8(0) })
	})
	return handshakeHeader(TypeClientHello, b.Bytes())
}

// ParseClientHello parses the body of a ClientHello handshake message
// (msg must include the 4-byte handshake header). It is exported because
// middleboxes sniff ClientHellos for the MiddleboxSupport extension.
func ParseClientHello(msg []byte) (*ClientHello, error) {
	typ, body, err := splitHandshake(msg)
	if err != nil {
		return nil, err
	}
	if typ != TypeClientHello {
		return nil, fmt.Errorf("tls12: expected client_hello, got %s", typ)
	}
	p := wire.NewParser(body)
	var m ClientHello
	var vers uint16
	var sessionID, suites, compression []byte
	if !p.ReadUint16(&vers) || !p.CopyBytes(m.Random[:]) ||
		!p.ReadUint8Prefixed(&sessionID) ||
		!p.ReadUint16Prefixed(&suites) ||
		!p.ReadUint8Prefixed(&compression) {
		return nil, errors.New("tls12: malformed client_hello")
	}
	if vers != VersionTLS12 {
		return nil, &AlertError{Description: AlertProtocolVersion}
	}
	m.SessionID = append([]byte(nil), sessionID...)
	if len(suites)%2 != 0 {
		return nil, errors.New("tls12: malformed cipher suite list")
	}
	for i := 0; i+1 < len(suites); i += 2 {
		m.CipherSuites = append(m.CipherSuites, uint16(suites[i])<<8|uint16(suites[i+1]))
	}
	if p.Len() == 0 {
		return &m, nil // extensions are optional
	}
	var exts *wire.Parser
	if !p.ReadParser(2, &exts) || !p.Empty() {
		return nil, errors.New("tls12: malformed client_hello extensions")
	}
	for !exts.Empty() {
		var extType uint16
		var extData []byte
		if !exts.ReadUint16(&extType) || !exts.ReadUint16Prefixed(&extData) {
			return nil, errors.New("tls12: malformed extension")
		}
		switch extType {
		case extServerName:
			ep := wire.NewParser(extData)
			var list *wire.Parser
			if !ep.ReadParser(2, &list) {
				return nil, errors.New("tls12: malformed server_name extension")
			}
			for !list.Empty() {
				var nameType uint8
				var name []byte
				if !list.ReadUint8(&nameType) || !list.ReadUint16Prefixed(&name) {
					return nil, errors.New("tls12: malformed server_name entry")
				}
				if nameType == 0 {
					m.ServerName = string(name)
				}
			}
		case extSessionTicket:
			m.HasSessionTicket = true
			m.SessionTicket = append([]byte(nil), extData...)
		case extAttestationRequest:
			m.RequestAttestation = true
		case ExtMiddleboxSupport:
			ms, err := parseMiddleboxSupport(extData)
			if err != nil {
				return nil, err
			}
			m.MiddleboxSupport = ms
		}
	}
	return &m, nil
}

// ServerHello is the parsed form of a ServerHello message.
type ServerHello struct {
	Random         [randomLen]byte
	SessionID      []byte
	CipherSuite    uint16
	TicketExpected bool // server acknowledged the session_ticket extension
	// ResumedHop, when non-empty, names the middlebox hop ticket this
	// server is resuming from (mbTLS chain resumption).
	ResumedHop string
}

func (m *ServerHello) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint16(VersionTLS12)
	b.AddBytes(m.Random[:])
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(m.SessionID) })
	b.AddUint16(m.CipherSuite)
	b.AddUint8(0) // null compression
	b.AddUint16Prefixed(func(b *wire.Builder) {
		if m.TicketExpected {
			b.AddUint16(extSessionTicket)
			b.AddUint16Prefixed(func(b *wire.Builder) {})
		}
		if m.ResumedHop != "" {
			b.AddUint16(extResumedHop)
			b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes([]byte(m.ResumedHop)) })
		}
		b.AddUint16(extRenegotiationInfo)
		b.AddUint16Prefixed(func(b *wire.Builder) { b.AddUint8(0) })
	})
	return handshakeHeader(TypeServerHello, b.Bytes())
}

func parseServerHello(body []byte) (*ServerHello, error) {
	p := wire.NewParser(body)
	var m ServerHello
	var vers uint16
	var sessionID []byte
	var compression uint8
	if !p.ReadUint16(&vers) || !p.CopyBytes(m.Random[:]) ||
		!p.ReadUint8Prefixed(&sessionID) ||
		!p.ReadUint16(&m.CipherSuite) ||
		!p.ReadUint8(&compression) {
		return nil, errors.New("tls12: malformed server_hello")
	}
	if vers != VersionTLS12 {
		return nil, &AlertError{Description: AlertProtocolVersion}
	}
	m.SessionID = append([]byte(nil), sessionID...)
	if p.Len() > 0 {
		var exts *wire.Parser
		if !p.ReadParser(2, &exts) || !p.Empty() {
			return nil, errors.New("tls12: malformed server_hello extensions")
		}
		for !exts.Empty() {
			var extType uint16
			var extData []byte
			if !exts.ReadUint16(&extType) || !exts.ReadUint16Prefixed(&extData) {
				return nil, errors.New("tls12: malformed extension")
			}
			switch extType {
			case extSessionTicket:
				m.TicketExpected = true
			case extResumedHop:
				m.ResumedHop = string(extData)
			}
		}
	}
	return &m, nil
}

// certificateMsg carries the sender's DER certificate chain.
type certificateMsg struct {
	chain [][]byte
}

func (m *certificateMsg) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint24Prefixed(func(b *wire.Builder) {
		for _, cert := range m.chain {
			b.AddUint24Prefixed(func(b *wire.Builder) { b.AddBytes(cert) })
		}
	})
	return handshakeHeader(TypeCertificate, b.Bytes())
}

func parseCertificateMsg(body []byte) (*certificateMsg, error) {
	p := wire.NewParser(body)
	var list *wire.Parser
	if !p.ReadParser(3, &list) || !p.Empty() {
		return nil, errors.New("tls12: malformed certificate message")
	}
	var m certificateMsg
	for !list.Empty() {
		var cert []byte
		if !list.ReadUint24Prefixed(&cert) {
			return nil, errors.New("tls12: malformed certificate entry")
		}
		m.chain = append(m.chain, cert)
	}
	return &m, nil
}

// serverKeyExchange carries signed ephemeral ECDHE parameters
// (RFC 8422 §5.4): named-curve X25519 plus an Ed25519 signature over
// client_random || server_random || params.
type serverKeyExchange struct {
	publicKey []byte // X25519 public key
	signature []byte
}

// paramsBytes returns the ServerECDHParams portion that the signature
// covers.
func (m *serverKeyExchange) paramsBytes() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint8(curveTypeNamed)
	b.AddUint16(curveX25519)
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(m.publicKey) })
	return b.Bytes()
}

func (m *serverKeyExchange) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddBytes(m.paramsBytes())
	b.AddUint16(sigSchemeEd25519)
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(m.signature) })
	return handshakeHeader(TypeServerKeyExchange, b.Bytes())
}

func parseServerKeyExchange(body []byte) (*serverKeyExchange, error) {
	p := wire.NewParser(body)
	var curveType uint8
	var curve uint16
	var m serverKeyExchange
	var scheme uint16
	if !p.ReadUint8(&curveType) || !p.ReadUint16(&curve) ||
		!p.ReadUint8Prefixed(&m.publicKey) ||
		!p.ReadUint16(&scheme) || !p.ReadUint16Prefixed(&m.signature) || !p.Empty() {
		return nil, errors.New("tls12: malformed server_key_exchange")
	}
	if curveType != curveTypeNamed || curve != curveX25519 {
		return nil, &AlertError{Description: AlertIllegalParameter}
	}
	if scheme != sigSchemeEd25519 {
		return nil, &AlertError{Description: AlertIllegalParameter}
	}
	return &m, nil
}

// clientKeyExchange carries the client's ephemeral X25519 public key.
type clientKeyExchange struct {
	publicKey []byte
}

func (m *clientKeyExchange) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(m.publicKey) })
	return handshakeHeader(TypeClientKeyExchange, b.Bytes())
}

func parseClientKeyExchange(body []byte) (*clientKeyExchange, error) {
	p := wire.NewParser(body)
	var m clientKeyExchange
	if !p.ReadUint8Prefixed(&m.publicKey) || !p.Empty() {
		return nil, errors.New("tls12: malformed client_key_exchange")
	}
	return &m, nil
}

// finishedMsg carries the 12-byte PRF verify_data.
type finishedMsg struct {
	verifyData []byte
}

func (m *finishedMsg) marshal() []byte {
	return handshakeHeader(TypeFinished, m.verifyData)
}

func parseFinished(body []byte) (*finishedMsg, error) {
	if len(body) != finishedVerifyLen {
		return nil, errors.New("tls12: malformed finished message")
	}
	return &finishedMsg{verifyData: body}, nil
}

// newSessionTicketMsg carries a session ticket (RFC 5077).
type newSessionTicketMsg struct {
	lifetimeHint uint32
	ticket       []byte
}

func (m *newSessionTicketMsg) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint32(m.lifetimeHint)
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(m.ticket) })
	return handshakeHeader(TypeNewSessionTicket, b.Bytes())
}

func parseNewSessionTicket(body []byte) (*newSessionTicketMsg, error) {
	p := wire.NewParser(body)
	var m newSessionTicketMsg
	if !p.ReadUint32(&m.lifetimeHint) || !p.ReadUint16Prefixed(&m.ticket) || !p.Empty() {
		return nil, errors.New("tls12: malformed new_session_ticket")
	}
	return &m, nil
}

// sgxAttestationMsg carries an SGX quote (paper Appendix A.2):
// opaque sgx_quote<0..2^14-1>.
type sgxAttestationMsg struct {
	quote []byte
}

func (m *sgxAttestationMsg) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(m.quote) })
	return handshakeHeader(TypeSGXAttestation, b.Bytes())
}

func parseSGXAttestation(body []byte) (*sgxAttestationMsg, error) {
	p := wire.NewParser(body)
	var m sgxAttestationMsg
	if !p.ReadUint16Prefixed(&m.quote) || !p.Empty() {
		return nil, errors.New("tls12: malformed sgx_attestation")
	}
	if len(m.quote) >= 1<<14 {
		return nil, errors.New("tls12: oversized sgx quote")
	}
	return &m, nil
}
