package tls12

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// Suite key-material geometry. Both supported suites are AES-GCM with a
// 4-byte implicit nonce salt and an 8-byte explicit nonce (RFC 5288).
const (
	gcmImplicitNonceLen = 4
	gcmExplicitNonceLen = 8
	gcmTagLen           = 16
)

// sealOverhead is the number of bytes sealing adds to a plaintext:
// explicit nonce plus AEAD tag.
const sealOverhead = gcmExplicitNonceLen + gcmTagLen

// suiteKeyLen returns the AEAD key length for a cipher suite.
func suiteKeyLen(suiteID uint16) (int, error) {
	switch suiteID {
	case TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256:
		return 16, nil
	case TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384:
		return 32, nil
	}
	return 0, fmt.Errorf("tls12: unsupported cipher suite 0x%04X", suiteID)
}

// suiteIVLen returns the implicit-IV length for a cipher suite.
func suiteIVLen(suiteID uint16) int { return gcmImplicitNonceLen }

// CipherState holds one direction of record protection: an AES-GCM AEAD,
// the 4-byte implicit nonce salt, and the 64-bit record sequence number.
// mbTLS exposes it because per-hop keys (paper §3.4, Figure 4) are
// installed directly into record layers at arbitrary starting sequence
// numbers carried by MBTLSKeyMaterial messages.
//
// A CipherState is not safe for concurrent use: sealing and opening
// advance the sequence number and share scratch buffers. Each user (a
// record layer direction, a data-plane hop) must drive it from one
// goroutine at a time, which the record layer's I/O mutexes and the
// relay's one-goroutine-per-direction structure guarantee.
type CipherState struct {
	aead cipher.AEAD
	seq  uint64

	// salt is the 4-byte implicit nonce part, fixed at construction and
	// never written afterwards. The explicit-sequence variants
	// (OpenInPlaceAt, SealAppendAt) read it concurrently, so it must stay
	// immutable; the serial path keeps its own copy in nonceBuf.
	salt [gcmImplicitNonceLen]byte

	// nonceBuf holds the assembled 12-byte GCM nonce: the implicit salt
	// (fixed at construction) followed by the per-record explicit part.
	nonceBuf [gcmImplicitNonceLen + gcmExplicitNonceLen]byte
	// adBuf holds the 13-byte AEAD associated data, reused per record so
	// the steady-state seal/open paths allocate nothing.
	adBuf [13]byte
}

// NewCipherState builds a CipherState for the given suite from raw key
// material. key must be the suite's key length and iv the 4-byte
// implicit salt. seq is the starting record sequence number.
func NewCipherState(suiteID uint16, key, iv []byte, seq uint64) (*CipherState, error) {
	keyLen, err := suiteKeyLen(suiteID)
	if err != nil {
		return nil, err
	}
	if len(key) != keyLen {
		return nil, fmt.Errorf("tls12: suite %s needs %d-byte key, got %d", CipherSuiteName(suiteID), keyLen, len(key))
	}
	if len(iv) != gcmImplicitNonceLen {
		return nil, fmt.Errorf("tls12: need %d-byte implicit IV, got %d", gcmImplicitNonceLen, len(iv))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	cs := &CipherState{aead: aead, seq: seq}
	copy(cs.salt[:], iv)
	copy(cs.nonceBuf[:gcmImplicitNonceLen], iv)
	return cs, nil
}

// Seq returns the next record sequence number to be used.
func (cs *CipherState) Seq() uint64 { return cs.seq }

// additionalData fills the reusable AEAD associated-data buffer:
// seq(8) || type(1) || version(2) || plaintext length(2), RFC 5246 §6.2.3.3.
func (cs *CipherState) additionalData(seq uint64, typ ContentType, plaintextLen int) []byte {
	binary.BigEndian.PutUint64(cs.adBuf[:8], seq)
	cs.adBuf[8] = byte(typ)
	binary.BigEndian.PutUint16(cs.adBuf[9:11], VersionTLS12)
	binary.BigEndian.PutUint16(cs.adBuf[11:13], uint16(plaintextLen))
	return cs.adBuf[:]
}

// SealAppend encrypts a record payload and appends its wire form —
// explicit_nonce(8) || ciphertext || tag — to dst, advancing the
// sequence number. When dst has sufficient capacity the call performs
// zero allocations; dst must not overlap plaintext. The explicit nonce
// is the sequence number, as TLS implementations conventionally do.
func (cs *CipherState) SealAppend(dst []byte, typ ContentType, plaintext []byte) []byte {
	binary.BigEndian.PutUint64(cs.nonceBuf[gcmImplicitNonceLen:], cs.seq)
	dst = append(dst, cs.nonceBuf[gcmImplicitNonceLen:]...)
	dst = cs.aead.Seal(dst, cs.nonceBuf[:], plaintext, cs.additionalData(cs.seq, typ, len(plaintext)))
	cs.seq++
	return dst
}

// Seal encrypts a record payload into a freshly allocated buffer. It is
// SealAppend without buffer reuse, kept for callers off the hot path.
func (cs *CipherState) Seal(typ ContentType, plaintext []byte) []byte {
	return cs.SealAppend(make([]byte, 0, len(plaintext)+sealOverhead), typ, plaintext)
}

// OpenInPlace decrypts a record payload in wire form, reusing payload's
// own storage for the plaintext (the returned slice aliases payload).
// On success the sequence number advances; on failure it is unchanged,
// an error is returned, and payload's contents are destroyed — the
// connection must be torn down with a bad_record_mac alert (this is
// what enforces path integrity, paper P4), so the clobbered buffer is
// never observed.
func (cs *CipherState) OpenInPlace(typ ContentType, payload []byte) ([]byte, error) {
	if len(payload) < sealOverhead {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	copy(cs.nonceBuf[gcmImplicitNonceLen:], payload[:gcmExplicitNonceLen])
	ciphertext := payload[gcmExplicitNonceLen:]
	plaintextLen := len(ciphertext) - gcmTagLen
	plaintext, err := cs.aead.Open(ciphertext[:0], cs.nonceBuf[:], ciphertext, cs.additionalData(cs.seq, typ, plaintextLen))
	if err != nil {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	cs.seq++
	return plaintext, nil
}

// Open decrypts a record payload in wire form into a fresh buffer,
// leaving payload intact, and advances the sequence number on success.
// A failure leaves the sequence number unchanged and returns an error.
func (cs *CipherState) Open(typ ContentType, payload []byte) ([]byte, error) {
	if len(payload) < sealOverhead {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	copy(cs.nonceBuf[gcmImplicitNonceLen:], payload[:gcmExplicitNonceLen])
	ciphertext := payload[gcmExplicitNonceLen:]
	plaintextLen := len(ciphertext) - gcmTagLen
	out := make([]byte, 0, plaintextLen)
	plaintext, err := cs.aead.Open(out, cs.nonceBuf[:], ciphertext, cs.additionalData(cs.seq, typ, plaintextLen))
	if err != nil {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	cs.seq++
	return plaintext, nil
}

// Overhead returns the number of bytes Seal adds to a plaintext.
func (cs *CipherState) Overhead() int { return sealOverhead }

// ReserveSeq atomically-with-respect-to-its-caller claims the next n
// sequence numbers and returns the first. It must be called from the
// single goroutine that owns the serial path (the relay's intake
// stage); after reservation the claimed range may be consumed
// concurrently via the At variants. Interleaving serial Seal/Open calls
// with outstanding reservations would double-spend sequence numbers, so
// callers must not mix the two for the same range.
func (cs *CipherState) ReserveSeq(n uint64) uint64 {
	seq := cs.seq
	cs.seq += n
	return seq
}

// SetSeq rewinds (or advances) the next sequence number. It exists for
// the fault path: when a reserved range is abandoned mid-batch, the
// owner rewinds to the last committed sequence so a subsequently sealed
// alert verifies at the peer. Like ReserveSeq it must be called from
// the goroutine that owns the serial path, with no reservations in
// flight past the new value.
func (cs *CipherState) SetSeq(seq uint64) { cs.seq = seq }

// CryptoScratch holds the per-call scratch buffers the explicit-sequence
// variants use instead of the CipherState's own (serial-only) scratch.
// Each pipeline worker owns one heap-resident scratch: arrays declared
// on the stack would escape through the cipher.AEAD interface call and
// cost an allocation per record.
type CryptoScratch struct {
	nonceBuf [gcmImplicitNonceLen + gcmExplicitNonceLen]byte
	adBuf    [13]byte
}

// additionalDataAt is additionalData against caller-owned scratch.
func additionalDataAt(sc *CryptoScratch, seq uint64, typ ContentType, plaintextLen int) []byte {
	binary.BigEndian.PutUint64(sc.adBuf[:8], seq)
	sc.adBuf[8] = byte(typ)
	binary.BigEndian.PutUint16(sc.adBuf[9:11], VersionTLS12)
	binary.BigEndian.PutUint16(sc.adBuf[11:13], uint16(plaintextLen))
	return sc.adBuf[:]
}

// SealAppendAt is SealAppend at an explicit sequence number, using
// caller-owned scratch and leaving the CipherState's own sequence and
// scratch untouched. It reads only the AEAD and the immutable salt, so
// any number of SealAppendAt/OpenInPlaceAt calls (with distinct scratch)
// may run concurrently with each other and with the serial path —
// provided the serial path is not sealing the same direction, which the
// relay's reservation discipline guarantees. Output is byte-identical
// to SealAppend at the same sequence number.
func (cs *CipherState) SealAppendAt(sc *CryptoScratch, dst []byte, seq uint64, typ ContentType, plaintext []byte) []byte {
	copy(sc.nonceBuf[:gcmImplicitNonceLen], cs.salt[:])
	binary.BigEndian.PutUint64(sc.nonceBuf[gcmImplicitNonceLen:], seq)
	dst = append(dst, sc.nonceBuf[gcmImplicitNonceLen:]...)
	return cs.aead.Seal(dst, sc.nonceBuf[:], plaintext, additionalDataAt(sc, seq, typ, len(plaintext)))
}

// OpenInPlaceAt is OpenInPlace at an explicit sequence number, using
// caller-owned scratch. The CipherState's own sequence is never
// consulted or advanced — success and failure are reported identically,
// and the caller's reservation discipline decides what a failure means
// for the stream. The same concurrency contract as SealAppendAt
// applies.
func (cs *CipherState) OpenInPlaceAt(sc *CryptoScratch, seq uint64, typ ContentType, payload []byte) ([]byte, error) {
	if len(payload) < sealOverhead {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	copy(sc.nonceBuf[:gcmImplicitNonceLen], cs.salt[:])
	copy(sc.nonceBuf[gcmImplicitNonceLen:], payload[:gcmExplicitNonceLen])
	ciphertext := payload[gcmExplicitNonceLen:]
	plaintextLen := len(ciphertext) - gcmTagLen
	plaintext, err := cs.aead.Open(ciphertext[:0], sc.nonceBuf[:], ciphertext, additionalDataAt(sc, seq, typ, plaintextLen))
	if err != nil {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	return plaintext, nil
}
