package tls12

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// Suite key-material geometry. Both supported suites are AES-GCM with a
// 4-byte implicit nonce salt and an 8-byte explicit nonce (RFC 5288).
const (
	gcmImplicitNonceLen = 4
	gcmExplicitNonceLen = 8
	gcmTagLen           = 16
)

// suiteKeyLen returns the AEAD key length for a cipher suite.
func suiteKeyLen(suiteID uint16) (int, error) {
	switch suiteID {
	case TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256:
		return 16, nil
	case TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384:
		return 32, nil
	}
	return 0, fmt.Errorf("tls12: unsupported cipher suite 0x%04X", suiteID)
}

// suiteIVLen returns the implicit-IV length for a cipher suite.
func suiteIVLen(suiteID uint16) int { return gcmImplicitNonceLen }

// CipherState holds one direction of record protection: an AES-GCM AEAD,
// the 4-byte implicit nonce salt, and the 64-bit record sequence number.
// mbTLS exposes it because per-hop keys (paper §3.4, Figure 4) are
// installed directly into record layers at arbitrary starting sequence
// numbers carried by MBTLSKeyMaterial messages.
type CipherState struct {
	aead cipher.AEAD
	iv   [gcmImplicitNonceLen]byte
	seq  uint64
}

// NewCipherState builds a CipherState for the given suite from raw key
// material. key must be the suite's key length and iv the 4-byte
// implicit salt. seq is the starting record sequence number.
func NewCipherState(suiteID uint16, key, iv []byte, seq uint64) (*CipherState, error) {
	keyLen, err := suiteKeyLen(suiteID)
	if err != nil {
		return nil, err
	}
	if len(key) != keyLen {
		return nil, fmt.Errorf("tls12: suite %s needs %d-byte key, got %d", CipherSuiteName(suiteID), keyLen, len(key))
	}
	if len(iv) != gcmImplicitNonceLen {
		return nil, fmt.Errorf("tls12: need %d-byte implicit IV, got %d", gcmImplicitNonceLen, len(iv))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	cs := &CipherState{aead: aead, seq: seq}
	copy(cs.iv[:], iv)
	return cs, nil
}

// Seq returns the next record sequence number to be used.
func (cs *CipherState) Seq() uint64 { return cs.seq }

// nonce assembles the 12-byte GCM nonce: implicit salt || explicit part.
func (cs *CipherState) nonce(explicit []byte) []byte {
	n := make([]byte, 0, gcmImplicitNonceLen+gcmExplicitNonceLen)
	n = append(n, cs.iv[:]...)
	n = append(n, explicit...)
	return n
}

// additionalData builds the AEAD associated data for a record:
// seq(8) || type(1) || version(2) || plaintext length(2), RFC 5246 §6.2.3.3.
func additionalData(seq uint64, typ ContentType, plaintextLen int) []byte {
	var ad [13]byte
	binary.BigEndian.PutUint64(ad[:8], seq)
	ad[8] = byte(typ)
	binary.BigEndian.PutUint16(ad[9:11], VersionTLS12)
	binary.BigEndian.PutUint16(ad[11:13], uint16(plaintextLen))
	return ad[:]
}

// Seal encrypts a record payload, producing the wire form:
// explicit_nonce(8) || ciphertext || tag. It advances the sequence
// number. The explicit nonce is the sequence number, as TLS
// implementations conventionally do.
func (cs *CipherState) Seal(typ ContentType, plaintext []byte) []byte {
	var explicit [gcmExplicitNonceLen]byte
	binary.BigEndian.PutUint64(explicit[:], cs.seq)

	out := make([]byte, gcmExplicitNonceLen, gcmExplicitNonceLen+len(plaintext)+gcmTagLen)
	copy(out, explicit[:])
	out = cs.aead.Seal(out, cs.nonce(explicit[:]), plaintext, additionalData(cs.seq, typ, len(plaintext)))
	cs.seq++
	return out
}

// Open decrypts a record payload in wire form and advances the sequence
// number on success. A failure leaves the sequence number unchanged and
// returns an error; the connection must be torn down with a
// bad_record_mac alert (this is what enforces path integrity, paper P4).
func (cs *CipherState) Open(typ ContentType, payload []byte) ([]byte, error) {
	if len(payload) < gcmExplicitNonceLen+gcmTagLen {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	explicit := payload[:gcmExplicitNonceLen]
	ciphertext := payload[gcmExplicitNonceLen:]
	plaintextLen := len(ciphertext) - gcmTagLen
	plaintext, err := cs.aead.Open(nil, cs.nonce(explicit), ciphertext, additionalData(cs.seq, typ, plaintextLen))
	if err != nil {
		return nil, &AlertError{Description: AlertBadRecordMAC}
	}
	cs.seq++
	return plaintext, nil
}

// Overhead returns the number of bytes Seal adds to a plaintext.
func (cs *CipherState) Overhead() int { return gcmExplicitNonceLen + gcmTagLen }
