package tls12

import (
	"bytes"
	"crypto/rand"
	"sync"
	"testing"
)

// newTestCipherPair builds matching seal/open cipher states sharing one
// key and salt, starting at seq.
func newTestCipherPair(t *testing.T, seq uint64) (seal, open *CipherState) {
	t.Helper()
	key := make([]byte, 16)
	iv := make([]byte, 4)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	if _, err := rand.Read(iv); err != nil {
		t.Fatal(err)
	}
	seal, err := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256, key, iv, seq)
	if err != nil {
		t.Fatal(err)
	}
	open, err = NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256, key, iv, seq)
	if err != nil {
		t.Fatal(err)
	}
	return seal, open
}

// TestSealAppendAtMatchesSerial pins the explicit-sequence seal to the
// serial path byte for byte, across a range of sequence numbers and
// plaintext lengths (including empty).
func TestSealAppendAtMatchesSerial(t *testing.T) {
	serial, _ := newTestCipherPair(t, 7)
	parallel := *serial // same AEAD and salt, independent seq
	var sc CryptoScratch

	for i, n := range []int{0, 1, 13, 256, 16384} {
		pt := make([]byte, n)
		rand.Read(pt)
		seq := serial.Seq()
		want := serial.SealAppend(nil, TypeApplicationData, pt)
		got := parallel.SealAppendAt(&sc, nil, seq, TypeApplicationData, pt)
		if !bytes.Equal(want, got) {
			t.Fatalf("record %d: SealAppendAt output differs from SealAppend at seq %d", i, seq)
		}
		if parallel.Seq() != 7 {
			t.Fatalf("SealAppendAt advanced the cipher state sequence to %d", parallel.Seq())
		}
	}
}

// TestOpenInPlaceAtMatchesSerial checks that the explicit-sequence open
// accepts exactly what the serial open accepts, returns the same
// plaintext, and never advances the cipher state.
func TestOpenInPlaceAtMatchesSerial(t *testing.T) {
	seal, open := newTestCipherPair(t, 3)
	openAt := *open
	var sc CryptoScratch

	for i := 0; i < 5; i++ {
		pt := make([]byte, 64+i)
		rand.Read(pt)
		wire := seal.SealAppend(nil, TypeApplicationData, pt)

		seq := open.Seq()
		atCopy := append([]byte(nil), wire...)
		gotAt, err := openAt.OpenInPlaceAt(&sc, seq, TypeApplicationData, atCopy)
		if err != nil {
			t.Fatalf("record %d: OpenInPlaceAt: %v", i, err)
		}
		gotSerial, err := open.OpenInPlace(TypeApplicationData, wire)
		if err != nil {
			t.Fatalf("record %d: OpenInPlace: %v", i, err)
		}
		if !bytes.Equal(gotSerial, gotAt) || !bytes.Equal(pt, gotAt) {
			t.Fatalf("record %d: plaintext mismatch", i)
		}
		if openAt.Seq() != 3 {
			t.Fatalf("OpenInPlaceAt advanced the cipher state sequence to %d", openAt.Seq())
		}
	}

	// Wrong sequence number must fail (AAD mismatch), as must a
	// truncated payload.
	wire := seal.SealAppend(nil, TypeApplicationData, []byte("hello"))
	if _, err := openAt.OpenInPlaceAt(&sc, open.Seq()+1, TypeApplicationData, append([]byte(nil), wire...)); err == nil {
		t.Fatal("OpenInPlaceAt accepted a record at the wrong sequence number")
	}
	if _, err := openAt.OpenInPlaceAt(&sc, open.Seq(), TypeApplicationData, wire[:sealOverhead-1]); err == nil {
		t.Fatal("OpenInPlaceAt accepted a truncated payload")
	}
}

// TestReserveSeqAndSetSeq checks the reservation arithmetic and the
// fault-path rewind.
func TestReserveSeqAndSetSeq(t *testing.T) {
	cs, _ := newTestCipherPair(t, 100)
	if got := cs.ReserveSeq(4); got != 100 {
		t.Fatalf("ReserveSeq returned %d, want 100", got)
	}
	if cs.Seq() != 104 {
		t.Fatalf("after ReserveSeq(4), Seq() = %d, want 104", cs.Seq())
	}
	cs.SetSeq(102)
	if cs.Seq() != 102 {
		t.Fatalf("after SetSeq(102), Seq() = %d", cs.Seq())
	}
	// A record sealed after the rewind must verify at a peer whose
	// serial state sits at the committed position.
	_, open := newTestCipherPair(t, 100)
	cs2, open2 := newTestCipherPair(t, 0)
	_ = open
	cs2.ReserveSeq(5)
	cs2.SetSeq(0)
	wire := cs2.SealAppend(nil, TypeAlert, []byte{1, 0})
	if _, err := open2.OpenInPlace(TypeAlert, wire); err != nil {
		t.Fatalf("alert sealed after rewind failed to open: %v", err)
	}
}

// TestExplicitSeqConcurrent hammers SealAppendAt/OpenInPlaceAt from many
// goroutines against one shared CipherState (distinct scratch each) and
// verifies every result against a serial reference. Run under -race
// this also proves the At variants touch no shared mutable state.
func TestExplicitSeqConcurrent(t *testing.T) {
	seal, open := newTestCipherPair(t, 0)
	ref := *seal // serial reference with its own seq

	const records = 64
	plains := make([][]byte, records)
	wants := make([][]byte, records)
	for i := range plains {
		plains[i] = make([]byte, 128+i)
		rand.Read(plains[i])
		wants[i] = ref.SealAppend(nil, TypeApplicationData, plains[i])
	}

	got := make([][]byte, records)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc CryptoScratch
			for i := w; i < records; i += 8 {
				got[i] = seal.SealAppendAt(&sc, nil, uint64(i), TypeApplicationData, plains[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range got {
		if !bytes.Equal(got[i], wants[i]) {
			t.Fatalf("record %d: concurrent SealAppendAt output differs from serial", i)
		}
	}

	// Concurrent opens of the serial outputs.
	var wg2 sync.WaitGroup
	errs := make([]error, records)
	for w := 0; w < 8; w++ {
		wg2.Add(1)
		go func(w int) {
			defer wg2.Done()
			var sc CryptoScratch
			for i := w; i < records; i += 8 {
				buf := append([]byte(nil), wants[i]...)
				pt, err := open.OpenInPlaceAt(&sc, uint64(i), TypeApplicationData, buf)
				if err == nil && !bytes.Equal(pt, plains[i]) {
					err = &AlertError{Description: AlertBadRecordMAC}
				}
				errs[i] = err
			}
		}(w)
	}
	wg2.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("record %d: concurrent OpenInPlaceAt: %v", i, err)
		}
	}
}
