package tls12

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// A Record is one TLS record: a content type and its (decrypted, if a
// read cipher is installed) payload.
type Record struct {
	Type    ContentType
	Payload []byte
}

// RecordLayer frames, protects, and de-protects TLS records over a byte
// stream. It is used at three places in an mbTLS deployment:
//
//   - directly over a TCP connection (ordinary TLS, or the outer mbTLS
//     stream),
//   - over a subchannel pipe, where each written record is wrapped into
//     an Encapsulated outer record by the pipe (paper §3.4, "Control
//     Messaging"),
//   - on each side of a middlebox's data plane, where per-hop
//     CipherStates installed from MBTLSKeyMaterial protect application
//     records (paper Figure 4).
//
// Reads and writes are independently safe for one concurrent reader and
// one concurrent writer; WriteRecord is additionally safe for multiple
// concurrent writers.
type RecordLayer struct {
	r io.Reader
	w io.Writer

	readMu  sync.Mutex
	hdr     [recordHeaderLen]byte
	pending []Record // records decoded but not yet returned

	writeMu sync.Mutex

	// cipherMu guards the cipher-state pointers separately from the
	// I/O mutexes, so key export and rekeying never wait behind a
	// reader blocked on the network.
	cipherMu sync.Mutex
	read     *CipherState // nil until ChangeCipherSpec / key install
	write    *CipherState
}

// NewRecordLayer returns a RecordLayer over the given stream. Both
// directions start unprotected.
func NewRecordLayer(rw io.ReadWriter) *RecordLayer {
	return &RecordLayer{r: rw, w: rw}
}

// NewRecordLayerRW returns a RecordLayer with distinct read and write
// streams (used by middlebox relays and tests).
func NewRecordLayerRW(r io.Reader, w io.Writer) *RecordLayer {
	return &RecordLayer{r: r, w: w}
}

// SetReadCipher installs (or clears) record protection for inbound
// records. Pass nil to return to plaintext (never done in-protocol; used
// by tests).
func (rl *RecordLayer) SetReadCipher(cs *CipherState) {
	rl.cipherMu.Lock()
	rl.read = cs
	rl.cipherMu.Unlock()
}

// SetWriteCipher installs record protection for outbound records.
func (rl *RecordLayer) SetWriteCipher(cs *CipherState) {
	rl.cipherMu.Lock()
	rl.write = cs
	rl.cipherMu.Unlock()
}

// ReadCipher returns the current inbound CipherState (nil if plaintext).
func (rl *RecordLayer) ReadCipher() *CipherState {
	rl.cipherMu.Lock()
	defer rl.cipherMu.Unlock()
	return rl.read
}

// WriteCipher returns the current outbound CipherState.
func (rl *RecordLayer) WriteCipher() *CipherState {
	rl.cipherMu.Lock()
	defer rl.cipherMu.Unlock()
	return rl.write
}

// ReadRecord reads and, if protected, decrypts the next record.
func (rl *RecordLayer) ReadRecord() (Record, error) {
	rl.readMu.Lock()
	defer rl.readMu.Unlock()
	return rl.readRecordLocked()
}

func (rl *RecordLayer) readRecordLocked() (Record, error) {
	if n := len(rl.pending); n > 0 {
		rec := rl.pending[0]
		rl.pending = rl.pending[1:]
		return rec, nil
	}
	if _, err := io.ReadFull(rl.r, rl.hdr[:]); err != nil {
		return Record{}, err
	}
	typ := ContentType(rl.hdr[0])
	version := binary.BigEndian.Uint16(rl.hdr[1:3])
	length := int(binary.BigEndian.Uint16(rl.hdr[3:5]))
	if !isKnownType(typ) {
		return Record{}, fmt.Errorf("tls12: unknown record type %d", rl.hdr[0])
	}
	if version != VersionTLS12 {
		return Record{}, &AlertError{Description: AlertProtocolVersion}
	}
	if length > maxCiphertext {
		return Record{}, &AlertError{Description: AlertRecordOverflow}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(rl.r, payload); err != nil {
		return Record{}, err
	}
	if cs := rl.ReadCipher(); cs != nil && !typeBypassesCipher(typ) {
		var err error
		payload, err = cs.Open(typ, payload)
		if err != nil {
			return Record{}, err
		}
	}
	return Record{Type: typ, Payload: payload}, nil
}

// Unread pushes a record back so the next ReadRecord returns it first.
// Middleboxes use this after peeking at handshake traffic.
func (rl *RecordLayer) Unread(rec Record) {
	rl.readMu.Lock()
	rl.pending = append([]Record{rec}, rl.pending...)
	rl.readMu.Unlock()
}

// WriteRecord frames, protects, and writes a record. Oversized payloads
// are split into maximum-size fragments (only legal for stream types;
// handshake and application data both are). Each fragment is written
// with a single Write call so subchannel pipes see whole records.
func (rl *RecordLayer) WriteRecord(typ ContentType, payload []byte) error {
	rl.writeMu.Lock()
	defer rl.writeMu.Unlock()
	for first := true; first || len(payload) > 0; first = false {
		frag := payload
		if len(frag) > maxPlaintext {
			frag = frag[:maxPlaintext]
		}
		payload = payload[len(frag):]
		if err := rl.writeFragmentLocked(typ, frag); err != nil {
			return err
		}
	}
	return nil
}

func (rl *RecordLayer) writeFragmentLocked(typ ContentType, frag []byte) error {
	body := frag
	if cs := rl.WriteCipher(); cs != nil && !typeBypassesCipher(typ) {
		body = cs.Seal(typ, frag)
	}
	if len(body) > maxCiphertext {
		return &AlertError{Description: AlertRecordOverflow}
	}
	msg := make([]byte, recordHeaderLen+len(body))
	msg[0] = byte(typ)
	binary.BigEndian.PutUint16(msg[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(msg[3:5], uint16(len(body)))
	copy(msg[recordHeaderLen:], body)
	_, err := rl.w.Write(msg)
	return err
}

// RawRecord is an undecrypted record as read off the wire, with its
// 5-byte header preserved. Middleboxes relay primary-session records
// they cannot (and must not) decrypt in this form.
type RawRecord struct {
	Type    ContentType
	Payload []byte // record body, still protected if the sender protects it
}

// WireSize returns the full on-the-wire size of the raw record.
func (r RawRecord) WireSize() int { return recordHeaderLen + len(r.Payload) }

// Marshal reassembles the wire form of the raw record.
func (r RawRecord) Marshal() []byte {
	msg := make([]byte, recordHeaderLen+len(r.Payload))
	msg[0] = byte(r.Type)
	binary.BigEndian.PutUint16(msg[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(msg[3:5], uint16(len(r.Payload)))
	copy(msg[recordHeaderLen:], r.Payload)
	return msg
}

// ReadRawRecord reads the next record without applying record
// protection, returning the body exactly as received. It shares the
// pending queue and read lock with ReadRecord; the two must not be mixed
// on the same stream except by tests.
func ReadRawRecord(r io.Reader) (RawRecord, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return RawRecord{}, err
	}
	typ := ContentType(hdr[0])
	if !isKnownType(typ) {
		return RawRecord{}, fmt.Errorf("tls12: unknown record type %d", hdr[0])
	}
	if binary.BigEndian.Uint16(hdr[1:3]) != VersionTLS12 {
		return RawRecord{}, &AlertError{Description: AlertProtocolVersion}
	}
	length := int(binary.BigEndian.Uint16(hdr[3:5]))
	if length > maxCiphertext {
		return RawRecord{}, &AlertError{Description: AlertRecordOverflow}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return RawRecord{}, err
	}
	return RawRecord{Type: typ, Payload: payload}, nil
}
