package tls12

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Exported record-geometry limits, for relay and data-plane buffer
// sizing outside this package.
const (
	// MaxPlaintext is the largest record plaintext fragment (2^14).
	MaxPlaintext = maxPlaintext
	// MaxCiphertext is the largest record body accepted off the wire.
	MaxCiphertext = maxCiphertext
	// RecordHeaderLen is the record header size.
	RecordHeaderLen = recordHeaderLen
	// MaxRecordWireSize is the largest framed record: header plus
	// maximum body.
	MaxRecordWireSize = recordHeaderLen + maxCiphertext
)

// recordBufPool recycles maximum-record-size buffers across record
// layers, relay batches, and data planes, so steady-state record
// processing performs no heap allocation.
var recordBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxRecordWireSize)
		return &b
	},
}

// GetRecordBuf returns a zero-length buffer with capacity for one
// maximum-size wire record. Return it with PutRecordBuf when done; it
// is also fine to keep it for the lifetime of a long-lived owner (a
// record layer does exactly that).
func GetRecordBuf() []byte {
	return (*recordBufPool.Get().(*[]byte))[:0]
}

// PutRecordBuf returns a buffer obtained from GetRecordBuf to the pool.
// The caller must not use b afterwards.
func PutRecordBuf(b []byte) {
	if cap(b) < MaxRecordWireSize {
		return // never pool undersized buffers
	}
	b = b[:0]
	recordBufPool.Put(&b)
}

// RecordBufPoolStats is a point-in-time snapshot of a RecordBufPool.
type RecordBufPoolStats struct {
	// Gets counts GetRecordBuf calls; Hits counts the subset served
	// from the bounded free list rather than a fresh allocation.
	Gets, Hits uint64
	// Retained is the number of buffers currently parked in the free
	// list; Capacity is the retention bound (0 for the shared pool,
	// whose retention the runtime manages).
	Retained, Capacity int
}

// RecordBufPool is a bounded record-buffer pool: at most the configured
// number of max-record-size buffers are retained, so a host serving N
// sessions bounds relay memory by the pool, not by session count.
// Excess Puts drop their buffer for the GC; Gets past the retained set
// allocate. The zero value (and SharedRecordBufPool) delegates to the
// process-wide unbounded pool — same call shape, no bound.
//
// The ownership discipline is the same as the package-level
// GetRecordBuf/PutRecordBuf (and is checked by the same mbtls-lint
// bufownership analyzer, which matches these methods by name).
type RecordBufPool struct {
	free chan *[]byte
	gets atomic.Uint64
	hits atomic.Uint64
}

// sharedRecordBufPool adapts the process-wide sync.Pool to the
// RecordBufPool shape for callers configured without their own pool.
var sharedRecordBufPool RecordBufPool

// SharedRecordBufPool returns a *RecordBufPool backed by the unbounded
// process-wide pool.
func SharedRecordBufPool() *RecordBufPool { return &sharedRecordBufPool }

// NewRecordBufPool returns a pool retaining at most maxRetained
// buffers (at least 1).
func NewRecordBufPool(maxRetained int) *RecordBufPool {
	if maxRetained < 1 {
		maxRetained = 1
	}
	return &RecordBufPool{free: make(chan *[]byte, maxRetained)}
}

// GetRecordBuf returns a zero-length buffer with capacity for one
// maximum-size wire record, reusing a retained buffer when one is free.
func (p *RecordBufPool) GetRecordBuf() []byte {
	p.gets.Add(1)
	if p.free == nil {
		p.hits.Add(1) // the shared pool recycles internally
		return GetRecordBuf()
	}
	select {
	case b := <-p.free:
		p.hits.Add(1)
		return (*b)[:0]
	default:
		return make([]byte, 0, MaxRecordWireSize)
	}
}

// PutRecordBuf returns a buffer obtained from GetRecordBuf. When the
// retention bound is reached the buffer is dropped for the GC. The
// caller must not use b afterwards.
func (p *RecordBufPool) PutRecordBuf(b []byte) {
	if cap(b) < MaxRecordWireSize {
		return // never pool undersized buffers
	}
	if p.free == nil {
		PutRecordBuf(b)
		return
	}
	b = b[:0]
	select {
	case p.free <- &b:
	default:
	}
}

// Stats returns a snapshot of the pool's counters.
func (p *RecordBufPool) Stats() RecordBufPoolStats {
	return RecordBufPoolStats{
		Gets:     p.gets.Load(),
		Hits:     p.hits.Load(),
		Retained: len(p.free),
		Capacity: cap(p.free),
	}
}

// ParseRecordHeader validates a 5-byte record header and returns the
// content type and body length. The errors match ReadRawRecord's.
func ParseRecordHeader(hdr []byte) (ContentType, int, error) {
	if len(hdr) < recordHeaderLen {
		return 0, 0, fmt.Errorf("tls12: short record header (%d bytes)", len(hdr))
	}
	typ := ContentType(hdr[0])
	if !isKnownType(typ) {
		return 0, 0, fmt.Errorf("tls12: unknown record type %d: %w",
			hdr[0], &AlertError{Description: AlertDecodeError})
	}
	if binary.BigEndian.Uint16(hdr[1:3]) != VersionTLS12 {
		return 0, 0, &AlertError{Description: AlertProtocolVersion}
	}
	length := int(binary.BigEndian.Uint16(hdr[3:5]))
	if length > maxCiphertext {
		return 0, 0, &AlertError{Description: AlertRecordOverflow}
	}
	return typ, length, nil
}

// A Record is one TLS record: a content type and its (decrypted, if a
// read cipher is installed) payload.
type Record struct {
	Type    ContentType
	Payload []byte
}

// RecordLayer frames, protects, and de-protects TLS records over a byte
// stream. It is used at three places in an mbTLS deployment:
//
//   - directly over a TCP connection (ordinary TLS, or the outer mbTLS
//     stream),
//   - over a subchannel pipe, where each written record is wrapped into
//     an Encapsulated outer record by the pipe (paper §3.4, "Control
//     Messaging"),
//   - on each side of a middlebox's data plane, where per-hop
//     CipherStates installed from MBTLSKeyMaterial protect application
//     records (paper Figure 4).
//
// Reads and writes are independently safe for one concurrent reader and
// one concurrent writer; WriteRecord is additionally safe for multiple
// concurrent writers.
//
// Buffer ownership: ReadRecord decrypts into an internal pooled buffer
// and the returned payload aliases it. The payload is valid until the
// next ReadRecord call on this layer; callers that retain a payload
// across reads must copy it. Unread-ing the most recently read record
// is safe (the buffer is not touched while the record sits in the
// pending queue at the front).
type RecordLayer struct {
	r io.Reader
	w io.Writer

	readMu sync.Mutex
	hdr    [recordHeaderLen]byte
	// pending is a deque of records decoded but not yet returned;
	// pendingHead indexes its first live entry so Unread never copies
	// the whole queue.
	pending     []Record
	pendingHead int
	// readBuf is the pooled buffer records are read and decrypted into.
	readBuf []byte

	writeMu sync.Mutex
	// writeBuf coalesces framed records between flushes so one transport
	// Write carries as many records as size limits allow.
	writeBuf []byte
	// bw is non-nil when the write stream supports vectored flushes
	// (transport.BuffersWriter, e.g. a tcpx conn). Full write chunks
	// are then parked in wqueue instead of flushed eagerly, and one
	// writev carries the whole batch; vbufs is the reused iovec slice.
	bw     buffersWriter
	wqueue [][]byte
	vbufs  net.Buffers

	// Cipher-state pointers are atomic, separate from the I/O mutexes,
	// so key export and rekeying never wait behind a reader blocked on
	// the network, and the steady-state record path takes no lock to
	// load them.
	read  atomic.Pointer[CipherState] // nil until ChangeCipherSpec / key install
	write atomic.Pointer[CipherState]

	// Record counters, feeding the SessionStats surface. recordsIn
	// counts records successfully read off the wire (an Unread record
	// is not recounted when replayed); recordsOut counts records
	// framed for the wire. Both depend only on the record stream, not
	// on write coalescing or batch boundaries.
	recordsIn  atomic.Int64
	recordsOut atomic.Int64
}

// buffersWriter mirrors transport.BuffersWriter structurally so the
// record layer can use vectored flushes without importing the
// transport package.
type buffersWriter interface {
	WriteBuffers(bufs net.Buffers) (int64, error)
}

// NewRecordLayer returns a RecordLayer over the given stream. Both
// directions start unprotected.
func NewRecordLayer(rw io.ReadWriter) *RecordLayer {
	rl := &RecordLayer{r: rw, w: rw}
	rl.bw, _ = rw.(buffersWriter)
	return rl
}

// NewRecordLayerRW returns a RecordLayer with distinct read and write
// streams (used by middlebox relays and tests).
func NewRecordLayerRW(r io.Reader, w io.Writer) *RecordLayer {
	rl := &RecordLayer{r: r, w: w}
	rl.bw, _ = w.(buffersWriter)
	return rl
}

// SetReadCipher installs (or clears) record protection for inbound
// records. Pass nil to return to plaintext (never done in-protocol; used
// by tests).
func (rl *RecordLayer) SetReadCipher(cs *CipherState) { rl.read.Store(cs) }

// SetWriteCipher installs record protection for outbound records.
func (rl *RecordLayer) SetWriteCipher(cs *CipherState) { rl.write.Store(cs) }

// ReadCipher returns the current inbound CipherState (nil if plaintext).
func (rl *RecordLayer) ReadCipher() *CipherState { return rl.read.Load() }

// WriteCipher returns the current outbound CipherState.
func (rl *RecordLayer) WriteCipher() *CipherState { return rl.write.Load() }

// ReadRecord reads and, if protected, decrypts the next record. The
// returned payload aliases the layer's internal buffer; see the type
// comment for ownership rules.
func (rl *RecordLayer) ReadRecord() (Record, error) {
	rl.readMu.Lock()
	defer rl.readMu.Unlock()
	return rl.readRecordLocked()
}

func (rl *RecordLayer) readRecordLocked() (Record, error) {
	if rl.pendingHead < len(rl.pending) {
		rec := rl.pending[rl.pendingHead]
		rl.pending[rl.pendingHead] = Record{}
		rl.pendingHead++
		if rl.pendingHead == len(rl.pending) {
			rl.pending = rl.pending[:0]
			rl.pendingHead = 0
		}
		return rec, nil
	}
	if _, err := io.ReadFull(rl.r, rl.hdr[:]); err != nil {
		return Record{}, err
	}
	typ, length, err := ParseRecordHeader(rl.hdr[:])
	if err != nil {
		return Record{}, err
	}
	if rl.readBuf == nil {
		rl.readBuf = GetRecordBuf()
	}
	payload := rl.readBuf[:length]
	if _, err := io.ReadFull(rl.r, payload); err != nil {
		return Record{}, err
	}
	if cs := rl.read.Load(); cs != nil && !typeBypassesCipher(typ) {
		payload, err = cs.OpenInPlace(typ, payload)
		if err != nil {
			return Record{}, err
		}
	}
	rl.recordsIn.Add(1)
	return Record{Type: typ, Payload: payload}, nil
}

// Counters reports how many records this layer has read off the wire
// and framed for it since creation.
func (rl *RecordLayer) Counters() (in, out int64) {
	return rl.recordsIn.Load(), rl.recordsOut.Load()
}

// Unread pushes a record back so the next ReadRecord returns it first.
// Middleboxes use this after peeking at handshake traffic. Consecutive
// Unreads replay in LIFO order. The caller keeps ownership of the
// payload; unread-ing the record ReadRecord just returned is safe.
func (rl *RecordLayer) Unread(rec Record) {
	rl.readMu.Lock()
	defer rl.readMu.Unlock()
	if rl.pendingHead > 0 {
		rl.pendingHead--
		rl.pending[rl.pendingHead] = rec
		return
	}
	if len(rl.pending) == 0 {
		rl.pending = append(rl.pending, rec)
		return
	}
	// Front of a dense queue: shift once (rare — requires interleaving
	// Unreads with queued records, which no steady-state path does).
	rl.pending = append(rl.pending, Record{})
	copy(rl.pending[1:], rl.pending)
	rl.pending[0] = rec
}

// writeFlushLimit caps how many framed bytes accumulate before a flush.
// It must stay below maxCiphertext so a coalesced Write, wrapped into a
// single Encapsulated record by a subchannel pipe (one extra byte for
// the subchannel ID), still fits an outer record body.
const writeFlushLimit = maxCiphertext - 1

// maxWriteChunks caps how many full write chunks a vectored flush
// batches into one writev before falling back to an eager flush; with
// chunks near writeFlushLimit this bounds a single syscall's payload
// to ~144 KiB while still amortizing syscall cost across a large
// WriteRecords batch.
const maxWriteChunks = 8

// WriteRecord frames, protects, and writes a record. Oversized payloads
// are split into maximum-size fragments (only legal for stream types;
// handshake and application data both are). Fragments are coalesced
// into as few transport Writes as the record-size limits allow, and
// everything is flushed before WriteRecord returns.
func (rl *RecordLayer) WriteRecord(typ ContentType, payload []byte) error {
	rl.writeMu.Lock()
	defer rl.writeMu.Unlock()
	if err := rl.appendRecordLocked(typ, payload); err != nil {
		return err
	}
	return rl.flushLocked()
}

// TryWriteRecord is WriteRecord, except it gives up immediately when
// another writer already holds the layer. Teardown paths use it for
// best-effort alerts: a goroutine wedged mid-Write on a stalled
// transport holds the write lock, and a Close that queued behind it
// would deadlock — the transport close that would unwedge the writer
// is sequenced after the alert. Reports whether the record was
// written.
func (rl *RecordLayer) TryWriteRecord(typ ContentType, payload []byte) bool {
	if !rl.writeMu.TryLock() {
		return false
	}
	defer rl.writeMu.Unlock()
	if err := rl.appendRecordLocked(typ, payload); err != nil {
		return false
	}
	return rl.flushLocked() == nil
}

// WriteRecords frames and protects several payloads of the same content
// type, coalescing them into as few transport Writes as the record-size
// limits allow — a net.Buffers-style vectored write path for callers
// that produce records in batches.
func (rl *RecordLayer) WriteRecords(typ ContentType, payloads [][]byte) error {
	rl.writeMu.Lock()
	defer rl.writeMu.Unlock()
	for _, p := range payloads {
		if err := rl.appendRecordLocked(typ, p); err != nil {
			return err
		}
	}
	return rl.flushLocked()
}

// appendRecordLocked fragments one payload into the write buffer,
// flushing whenever the coalescing limit would be exceeded.
func (rl *RecordLayer) appendRecordLocked(typ ContentType, payload []byte) error {
	for first := true; first || len(payload) > 0; first = false {
		frag := payload
		if len(frag) > maxPlaintext {
			frag = frag[:maxPlaintext]
		}
		payload = payload[len(frag):]
		if err := rl.appendFragmentLocked(typ, frag); err != nil {
			return err
		}
	}
	return nil
}

func (rl *RecordLayer) appendFragmentLocked(typ ContentType, frag []byte) error {
	projected := recordHeaderLen + len(frag) + sealOverhead
	if len(rl.writeBuf) > 0 && len(rl.writeBuf)+projected > writeFlushLimit {
		// A vectored writer lets us park the full chunk and keep
		// framing into a fresh buffer; the whole batch goes out in one
		// writev at flush time instead of one Write per chunk.
		if rl.bw != nil && len(rl.wqueue) < maxWriteChunks {
			rl.wqueue = append(rl.wqueue, rl.writeBuf)
			rl.writeBuf = nil
		} else if err := rl.flushLocked(); err != nil {
			return err
		}
	}
	if rl.writeBuf == nil {
		rl.writeBuf = GetRecordBuf()
	}
	start := len(rl.writeBuf)
	rl.writeBuf = append(rl.writeBuf, byte(typ), byte(VersionTLS12>>8), byte(VersionTLS12&0xff), 0, 0)
	if cs := rl.write.Load(); cs != nil && !typeBypassesCipher(typ) {
		rl.writeBuf = cs.SealAppend(rl.writeBuf, typ, frag)
	} else {
		rl.writeBuf = append(rl.writeBuf, frag...)
	}
	body := len(rl.writeBuf) - start - recordHeaderLen
	if body > maxCiphertext {
		rl.writeBuf = rl.writeBuf[:start]
		return &AlertError{Description: AlertRecordOverflow}
	}
	binary.BigEndian.PutUint16(rl.writeBuf[start+3:start+5], uint16(body))
	rl.recordsOut.Add(1)
	return nil
}

// flushLocked writes the coalesced records in one transport operation:
// a single Write for one chunk, one vectored writev when chunks were
// parked for a BuffersWriter.
func (rl *RecordLayer) flushLocked() error {
	if len(rl.wqueue) == 0 {
		if len(rl.writeBuf) == 0 {
			return nil
		}
		_, err := rl.w.Write(rl.writeBuf)
		rl.writeBuf = rl.writeBuf[:0]
		return err
	}
	rl.vbufs = append(rl.vbufs[:0], rl.wqueue...)
	if len(rl.writeBuf) > 0 {
		rl.vbufs = append(rl.vbufs, rl.writeBuf)
	}
	_, err := rl.bw.WriteBuffers(rl.vbufs)
	// WriteBuffers consumed the iovec; the byte slices are ours again.
	// Parked chunks go back to the pool, the live buffer is reused, and
	// the iovec slice drops its aliases so the pool stays single-owner.
	for i, b := range rl.wqueue {
		PutRecordBuf(b)
		rl.wqueue[i] = nil
	}
	rl.wqueue = rl.wqueue[:0]
	if rl.writeBuf != nil {
		rl.writeBuf = rl.writeBuf[:0]
	}
	for i := range rl.vbufs {
		rl.vbufs[i] = nil
	}
	rl.vbufs = rl.vbufs[:0]
	return err
}

// Release returns the layer's pooled buffers. Call only when the layer
// is done: after the transport is closed and no ReadRecord payload is
// still referenced (payloads alias the read buffer). Lock acquisition
// is best-effort — a reader or writer still parked on dead transport
// I/O holds its mutex, and its buffer is then simply left to the GC
// rather than deadlocking teardown. Safe to call more than once.
func (rl *RecordLayer) Release() {
	rl.ReleaseWrite()
	rl.ReleaseRead()
}

// ReleaseWrite returns the write-side pooled buffers (the coalescing
// buffer and any chunks parked for a vectored flush). Safe whenever no
// further writes will flush them; a writer still parked on dead
// transport I/O keeps its buffer (left to the GC).
func (rl *RecordLayer) ReleaseWrite() {
	if rl.writeMu.TryLock() {
		for i, b := range rl.wqueue {
			PutRecordBuf(b)
			rl.wqueue[i] = nil
		}
		rl.wqueue = rl.wqueue[:0]
		if rl.writeBuf != nil {
			PutRecordBuf(rl.writeBuf)
			rl.writeBuf = nil
		}
		rl.writeMu.Unlock()
	}
}

// ReleaseRead returns the pooled read buffer. The caller must guarantee
// that no ReadRecord payload is still referenced — every payload this
// layer has handed out aliases that buffer — and that no further
// ReadRecord call is coming. A reader still parked on dead transport
// I/O holds readMu, in which case the buffer is left to the GC rather
// than re-pooled while the reader might still stash an alias.
func (rl *RecordLayer) ReleaseRead() {
	if rl.readMu.TryLock() {
		if rl.readBuf != nil {
			PutRecordBuf(rl.readBuf)
			rl.readBuf = nil
		}
		rl.readMu.Unlock()
	}
}

// RawRecord is an undecrypted record as read off the wire, with its
// 5-byte header preserved. Middleboxes relay primary-session records
// they cannot (and must not) decrypt in this form.
type RawRecord struct {
	Type    ContentType
	Payload []byte // record body, still protected if the sender protects it
}

// WireSize returns the full on-the-wire size of the raw record.
func (r RawRecord) WireSize() int { return recordHeaderLen + len(r.Payload) }

// AppendWire appends the wire form of the raw record to dst.
func (r RawRecord) AppendWire(dst []byte) []byte {
	var hdr [recordHeaderLen]byte
	hdr[0] = byte(r.Type)
	binary.BigEndian.PutUint16(hdr[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(hdr[3:5], uint16(len(r.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Payload...)
}

// Marshal reassembles the wire form of the raw record.
func (r RawRecord) Marshal() []byte {
	return r.AppendWire(make([]byte, 0, recordHeaderLen+len(r.Payload)))
}

// ReadRawRecord reads the next record without applying record
// protection, returning the body exactly as received in a freshly
// allocated buffer. It shares the pending queue and read lock with
// ReadRecord; the two must not be mixed on the same stream except by
// tests.
func ReadRawRecord(r io.Reader) (RawRecord, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return RawRecord{}, err
	}
	typ, length, err := ParseRecordHeader(hdr[:])
	if err != nil {
		return RawRecord{}, err
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return RawRecord{}, err
	}
	return RawRecord{Type: typ, Payload: payload}, nil
}

// ReadRawRecordInto reads the next record into buf, which must have
// capacity for a maximum-size record (e.g. from GetRecordBuf). The
// returned payload aliases buf; the caller owns both and decides when
// the buffer may be reused.
func ReadRawRecordInto(r io.Reader, buf []byte) (RawRecord, error) {
	hdr := buf[:recordHeaderLen:recordHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return RawRecord{}, err
	}
	typ, length, err := ParseRecordHeader(hdr)
	if err != nil {
		return RawRecord{}, err
	}
	payload := buf[recordHeaderLen : recordHeaderLen+length]
	if _, err := io.ReadFull(r, payload); err != nil {
		return RawRecord{}, err
	}
	return RawRecord{Type: typ, Payload: payload}, nil
}
