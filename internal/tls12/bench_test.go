package tls12

import (
	"fmt"
	"testing"
)

// Record-layer micro-benchmarks: the per-record costs underlying the
// Figure 7 plateaus.
func BenchmarkSealOpen(b *testing.B) {
	for _, suite := range []uint16{
		TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
		TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
	} {
		for _, size := range []int{512, 4096, 16384} {
			b.Run(fmt.Sprintf("%s/%d", CipherSuiteName(suite), size), func(b *testing.B) {
				keyLen, _ := suiteKeyLen(suite)
				seal, err := NewCipherState(suite, make([]byte, keyLen), make([]byte, 4), 0)
				if err != nil {
					b.Fatal(err)
				}
				open, err := NewCipherState(suite, make([]byte, keyLen), make([]byte, 4), 0)
				if err != nil {
					b.Fatal(err)
				}
				payload := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sealed := seal.Seal(TypeApplicationData, payload)
					if _, err := open.Open(TypeApplicationData, sealed); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPRF measures master-secret and key-block derivation.
func BenchmarkPRF(b *testing.B) {
	secret := make([]byte, 48)
	cr := make([]byte, 32)
	sr := make([]byte, 32)
	b.Run("master-secret", func(b *testing.B) {
		pre := make([]byte, 32)
		for i := 0; i < b.N; i++ {
			computeMasterSecret(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, pre, cr, sr)
		}
	})
	b.Run("key-block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			keysFromMaster(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, secret, cr, sr)
		}
	})
}

// BenchmarkClientHelloCodec measures hello marshal/parse.
func BenchmarkClientHelloCodec(b *testing.B) {
	h := &ClientHello{
		CipherSuites:     []uint16{TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256},
		ServerName:       "origin.example",
		MiddleboxSupport: &MiddleboxSupport{Middleboxes: []string{"proxy.example:3128"}},
	}
	raw := h.marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseClientHello(raw); err != nil {
			b.Fatal(err)
		}
	}
}
