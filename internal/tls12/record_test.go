package tls12

import (
	"bytes"
	"crypto/rand"
	"io"
	"testing"
	"testing/quick"
)

func testCipherPair(t *testing.T, suite uint16) (*CipherState, *CipherState) {
	t.Helper()
	keyLen, err := suiteKeyLen(suite)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, keyLen)
	iv := make([]byte, 4)
	io.ReadFull(rand.Reader, key) //nolint:errcheck
	io.ReadFull(rand.Reader, iv)  //nolint:errcheck
	seal, err := NewCipherState(suite, key, iv, 0)
	if err != nil {
		t.Fatal(err)
	}
	open, err := NewCipherState(suite, key, iv, 0)
	if err != nil {
		t.Fatal(err)
	}
	return seal, open
}

// TestPropertyCipherRoundTrip: Seal→Open is the identity for arbitrary
// payloads under both suites.
func TestPropertyCipherRoundTrip(t *testing.T) {
	for _, suite := range []uint16{
		TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
		TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
	} {
		seal, open := testCipherPair(t, suite)
		f := func(payload []byte) bool {
			sealed := seal.Seal(TypeApplicationData, payload)
			plain, err := open.Open(TypeApplicationData, sealed)
			return err == nil && bytes.Equal(plain, payload)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", CipherSuiteName(suite), err)
		}
	}
}

// TestPropertyCipherTamperDetected: flipping any single byte of a
// sealed record makes Open fail.
func TestPropertyCipherTamperDetected(t *testing.T) {
	payload := []byte("a payload worth protecting")
	keyLen, _ := suiteKeyLen(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	key := make([]byte, keyLen)
	iv := make([]byte, 4)
	sealer, _ := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, key, iv, 0)
	sealed := sealer.Seal(TypeApplicationData, payload)
	for i := range sealed {
		opener, _ := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, key, iv, 0)
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, err := opener.Open(TypeApplicationData, tampered); err == nil {
			t.Fatalf("byte %d flip went undetected", i)
		}
	}
}

func TestCipherSequenceBinding(t *testing.T) {
	seal, open := testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	r1 := seal.Seal(TypeApplicationData, []byte("first"))
	r2 := seal.Seal(TypeApplicationData, []byte("second"))
	// Delivering r2 before r1 must fail: the AAD binds seq numbers.
	if _, err := open.Open(TypeApplicationData, r2); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	// The failed Open must not advance state: r1 then r2 still works.
	if _, err := open.Open(TypeApplicationData, r1); err != nil {
		t.Fatalf("in-order record rejected after failed attempt: %v", err)
	}
	if _, err := open.Open(TypeApplicationData, r2); err != nil {
		t.Fatalf("second record rejected: %v", err)
	}
	// Replay of r2 fails.
	if _, err := open.Open(TypeApplicationData, r2); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestCipherTypeBinding(t *testing.T) {
	seal, open := testCipherPair(t, TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256)
	sealed := seal.Seal(TypeApplicationData, []byte("data"))
	// Re-labeling the record as an alert must fail: AAD binds the type.
	if _, err := open.Open(TypeAlert, sealed); err == nil {
		t.Fatal("type confusion accepted")
	}
}

func TestCipherStateValidation(t *testing.T) {
	if _, err := NewCipherState(0x9999, make([]byte, 32), make([]byte, 4), 0); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if _, err := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, make([]byte, 16), make([]byte, 4), 0); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, make([]byte, 32), make([]byte, 12), 0); err == nil {
		t.Fatal("wrong IV length accepted")
	}
}

// pipeRW is a minimal in-memory duplex for record-layer tests.
type pipeRW struct {
	buf bytes.Buffer
}

func (p *pipeRW) Read(b []byte) (int, error)  { return p.buf.Read(b) }
func (p *pipeRW) Write(b []byte) (int, error) { return p.buf.Write(b) }

func TestRecordLayerPlaintextRoundTrip(t *testing.T) {
	rw := &pipeRW{}
	rl := NewRecordLayer(rw)
	if err := rl.WriteRecord(TypeHandshake, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	rec, err := rl.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != TypeHandshake || string(rec.Payload) != "hello" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestRecordLayerFragmentsLargeWrites(t *testing.T) {
	rw := &pipeRW{}
	rl := NewRecordLayer(rw)
	payload := make([]byte, 3*maxPlaintext+100)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := rl.WriteRecord(TypeApplicationData, payload); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := 0; i < 4; i++ {
		rec, err := rl.ReadRecord()
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if len(rec.Payload) > maxPlaintext {
			t.Fatalf("fragment %d oversized: %d", i, len(rec.Payload))
		}
		got = append(got, rec.Payload...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fragmentation corrupted the payload")
	}
}

func TestRecordLayerEncryptedRoundTrip(t *testing.T) {
	rw := &pipeRW{}
	sender := NewRecordLayer(rw)
	receiver := NewRecordLayerRW(rw, io.Discard)

	key := make([]byte, 32)
	iv := make([]byte, 4)
	sealCS, _ := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, key, iv, 0)
	openCS, _ := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, key, iv, 0)
	sender.SetWriteCipher(sealCS)
	receiver.SetReadCipher(openCS)

	if err := sender.WriteRecord(TypeApplicationData, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	rec, err := receiver.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Payload) != "secret" {
		t.Fatalf("payload = %q", rec.Payload)
	}
}

// TestRecordLayerBypassTypes: Encapsulated and announcement records
// skip record protection even with active ciphers (middleboxes must be
// able to read them before keys exist).
func TestRecordLayerBypassTypes(t *testing.T) {
	rw := &pipeRW{}
	sender := NewRecordLayer(rw)
	key := make([]byte, 32)
	iv := make([]byte, 4)
	cs, _ := NewCipherState(TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, key, iv, 0)
	sender.SetWriteCipher(cs)

	inner := []byte{5, 1, 2, 3}
	if err := sender.WriteRecord(TypeEncapsulated, inner); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadRawRecord(rw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw.Payload, inner) {
		t.Fatal("Encapsulated record was encrypted")
	}
	// KeyMaterial, by contrast, IS protected (it carries hop keys).
	if err := sender.WriteRecord(TypeKeyMaterial, []byte("keys")); err != nil {
		t.Fatal(err)
	}
	raw, err = ReadRawRecord(rw)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw.Payload, []byte("keys")) {
		t.Fatal("KeyMaterial record was sent unprotected")
	}
}

func TestRecordLayerRejectsGarbage(t *testing.T) {
	rw := &pipeRW{}
	rw.Write([]byte{0x99, 0x03, 0x03, 0x00, 0x01, 0x00}) //nolint:errcheck
	rl := NewRecordLayer(rw)
	if _, err := rl.ReadRecord(); err == nil {
		t.Fatal("unknown record type accepted")
	}

	rw2 := &pipeRW{}
	rw2.Write([]byte{0x16, 0x02, 0x00, 0x00, 0x01, 0x00}) //nolint:errcheck
	rl2 := NewRecordLayer(rw2)
	if _, err := rl2.ReadRecord(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestRecordUnread(t *testing.T) {
	rw := &pipeRW{}
	rl := NewRecordLayer(rw)
	rl.WriteRecord(TypeHandshake, []byte("one")) //nolint:errcheck
	rl.WriteRecord(TypeHandshake, []byte("two")) //nolint:errcheck
	rec, _ := rl.ReadRecord()
	rl.Unread(rec)
	again, err := rl.ReadRecord()
	if err != nil || string(again.Payload) != "one" {
		t.Fatalf("unread record not replayed: %v %q", err, again.Payload)
	}
	next, _ := rl.ReadRecord()
	if string(next.Payload) != "two" {
		t.Fatalf("stream order broken: %q", next.Payload)
	}
}

func TestRawRecordMarshalRoundTrip(t *testing.T) {
	f := func(typ uint8, payload []byte) bool {
		ct := ContentType(20 + typ%4) // a standard type
		if len(payload) > maxCiphertext {
			payload = payload[:maxCiphertext]
		}
		rec := RawRecord{Type: ct, Payload: payload}
		got, err := ReadRawRecord(bytes.NewReader(rec.Marshal()))
		return err == nil && got.Type == ct && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
