package tls12_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/enclave"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// attestFixture wires an enclave-backed server for tls12-level
// attestation tests. The SGXAttestation handshake extension is
// independent of mbTLS (paper §3.4: "This extension is independent of
// mbTLS and could be used in standard client/server handshakes").
type attestFixture struct {
	authority *enclave.Authority
	image     enclave.CodeImage
	enclave   *enclave.Enclave
}

func newAttestFixture(t *testing.T) *attestFixture {
	t.Helper()
	authority, err := enclave.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	image := enclave.CodeImage{Name: "attested-server", Version: "2.0"}
	return &attestFixture{authority: authority, image: image, enclave: platform.CreateEnclave(image)}
}

func (f *attestFixture) quoter() func([]byte) ([]byte, error) {
	return func(reportData []byte) (quote []byte, err error) {
		f.enclave.Enter(func(mem enclave.Memory) {
			var q *enclave.Quote
			q, err = mem.Quote(reportData)
			if err == nil {
				quote = q.Marshal()
			}
		})
		return quote, err
	}
}

func TestPlainTLSWithAttestation(t *testing.T) {
	fx := newAttestFixture(t)
	_, clientCfg, serverCfg := testPKI(t, "attested.example")
	serverCfg.Quoter = fx.quoter()
	clientCfg.RequestAttestation = true
	verifier := &enclave.Verifier{
		Authority: fx.authority.PublicKey(),
		Allowed:   []enclave.Measurement{fx.image.Measurement()},
	}
	clientCfg.VerifyQuote = verifier.VerifyQuote

	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("attested handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()
	if len(client.ConnectionState().AttestationQuote) == 0 {
		t.Fatal("client state lacks the attestation quote")
	}
}

func TestAttestationRequiredButServerCannot(t *testing.T) {
	fx := newAttestFixture(t)
	_, clientCfg, serverCfg := testPKI(t, "attested.example")
	// Server has no Quoter.
	clientCfg.RequestAttestation = true
	clientCfg.VerifyQuote = (&enclave.Verifier{Authority: fx.authority.PublicKey()}).VerifyQuote
	_, _, cErr, _ := runHandshake(t, clientCfg, serverCfg)
	if cErr == nil {
		t.Fatal("client accepted a handshake without the required attestation")
	}
	if !strings.Contains(cErr.Error(), "attest") {
		t.Fatalf("failure does not name attestation: %v", cErr)
	}
}

func TestAttestationNotRequestedNotSent(t *testing.T) {
	fx := newAttestFixture(t)
	_, clientCfg, serverCfg := testPKI(t, "attested.example")
	serverCfg.Quoter = fx.quoter()
	// Client does not request attestation; a quote-capable server must
	// not volunteer one.
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()
	if len(client.ConnectionState().AttestationQuote) != 0 {
		t.Fatal("server attested without being asked")
	}
}

// TestAttestationBindsTranscript: the report data covers the handshake
// transcript, so a quoter producing a quote for different report data
// (a replay) is rejected.
func TestAttestationBindsTranscript(t *testing.T) {
	fx := newAttestFixture(t)
	_, clientCfg, serverCfg := testPKI(t, "attested.example")

	// A malicious host replays a quote from a previous handshake.
	staleReport := make([]byte, enclave.ReportDataLen)
	copy(staleReport, []byte("some other handshake"))
	var staleQuote []byte
	fx.enclave.Enter(func(mem enclave.Memory) {
		q, err := mem.Quote(staleReport)
		if err != nil {
			t.Error(err)
			return
		}
		staleQuote = q.Marshal()
	})
	serverCfg.Quoter = func(reportData []byte) ([]byte, error) {
		return staleQuote, nil // ignore the fresh report data
	}
	clientCfg.RequestAttestation = true
	clientCfg.VerifyQuote = (&enclave.Verifier{
		Authority: fx.authority.PublicKey(),
		Allowed:   []enclave.Measurement{fx.image.Measurement()},
	}).VerifyQuote

	_, _, cErr, _ := runHandshake(t, clientCfg, serverCfg)
	if cErr == nil {
		t.Fatal("client accepted a replayed quote (transcript binding broken)")
	}
}

func TestLenientServerSkipsAnnouncementRecords(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	serverCfg.LenientUnknownRecords = true

	cp, sp := netsim.Pipe()
	client := tls12.NewClientConn(cp, clientCfg)
	server := tls12.NewServerConn(sp, serverCfg)

	// Inject an announcement ahead of the handshake, as an announcing
	// middlebox would.
	ann := tls12.RawRecord{Type: tls12.TypeMiddleboxAnnouncement}
	if _, err := cp.Write(ann.Marshal()); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("lenient server rejected announcement: %v", err)
	}
	client.Close()
	server.Close()
}

func TestStrictServerRejectsAnnouncementRecords(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	cp, sp := netsim.Pipe()
	client := tls12.NewClientConn(cp, clientCfg)
	server := tls12.NewServerConn(sp, serverCfg)

	ann := tls12.RawRecord{Type: tls12.TypeMiddleboxAnnouncement}
	if _, err := cp.Write(ann.Marshal()); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- server.Handshake() }()
	cErr := client.Handshake()
	sErr := <-errc
	if sErr == nil {
		t.Fatal("strict server accepted an announcement record")
	}
	if cErr == nil {
		t.Fatal("client did not observe the strict server's failure")
	}
}

func TestKeyMaterialRecordAPI(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatal(cErr, sErr)
	}
	defer client.Close()
	defer server.Close()

	payload := []byte("opaque key material payload")
	done := make(chan error, 1)
	go func() { done <- client.WriteKeyMaterial(payload) }()
	got, err := server.ReadKeyMaterial()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Application data written before key material must be preserved
	// for later Reads.
	go func() {
		client.Write([]byte("early app data")) //nolint:errcheck
		client.WriteKeyMaterial(payload)       //nolint:errcheck
	}()
	if _, err := server.ReadKeyMaterial(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 14)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "early app data" {
		t.Fatalf("buffered data = %q", buf)
	}
}
