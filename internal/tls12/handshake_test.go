package tls12_test

import (
	"bytes"
	"crypto/x509"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/certs"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// testPKI builds a CA, a server certificate, and matching configs.
func testPKI(t *testing.T, serverName string) (*certs.CA, *tls12.Config, *tls12.Config) {
	t.Helper()
	ca, err := certs.NewCA("test root")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	cert, err := ca.Issue(serverName, []string{serverName}, nil)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	clientCfg := &tls12.Config{RootCAs: ca.Pool(), ServerName: serverName}
	serverCfg := &tls12.Config{Certificate: cert}
	return ca, clientCfg, serverCfg
}

// runHandshake performs a full handshake over net.Pipe and returns both
// connections with any handshake errors.
func runHandshake(t *testing.T, clientCfg, serverCfg *tls12.Config) (*tls12.Conn, *tls12.Conn, error, error) {
	t.Helper()
	cp, sp := netsim.Pipe()
	client := tls12.NewClientConn(cp, clientCfg)
	server := tls12.NewServerConn(sp, serverCfg)
	var wg sync.WaitGroup
	var cErr, sErr error
	wg.Add(2)
	go func() { defer wg.Done(); cErr = client.Handshake() }()
	go func() { defer wg.Done(); sErr = server.Handshake() }()
	wg.Wait()
	return client, server, cErr, sErr
}

func TestFullHandshakeAndData(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()

	cs := client.ConnectionState()
	if !cs.HandshakeComplete || cs.Resumed {
		t.Fatalf("bad client state: %+v", cs)
	}
	if len(cs.PeerCertificates) == 0 || cs.PeerCertificates[0].Subject.CommonName != "example.com" {
		t.Fatalf("client did not capture peer certificates: %+v", cs.PeerCertificates)
	}

	msg := []byte("hello from client")
	done := make(chan error, 1)
	go func() {
		_, err := client.Write(msg)
		done <- err
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("client write: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("server got %q, want %q", buf, msg)
	}

	reply := []byte("hello from server, a somewhat longer reply to exercise framing")
	go func() {
		_, err := server.Write(reply)
		done <- err
	}()
	buf = make([]byte, len(reply))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server write: %v", err)
	}
	if !bytes.Equal(buf, reply) {
		t.Fatalf("client got %q, want %q", buf, reply)
	}
}

// TestCloseDropsUndeliveredAppBuf: a partially consumed application
// record aliases the record layer's pooled read buffer; Close returns
// that buffer to the pool, so a Read after Close must fail cleanly
// instead of serving bytes from a buffer another connection may now
// own.
func TestCloseDropsUndeliveredAppBuf(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer server.Close()

	msg := bytes.Repeat([]byte("secret-payload! "), 8)
	done := make(chan error, 1)
	go func() {
		_, err := server.Write(msg)
		done <- err
	}()
	// Consume a prefix, leaving the rest parked in the client's appBuf
	// (which aliases the pooled read buffer).
	small := make([]byte, 10)
	if _, err := io.ReadFull(client, small); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server write: %v", err)
	}
	client.Close()
	n, err := client.Read(make([]byte, len(msg)))
	if n != 0 || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Read after Close = (%d, %v), want (0, net.ErrClosed)", n, err)
	}
}

func TestCipherSuiteNegotiation(t *testing.T) {
	for _, suite := range []uint16{
		tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
		tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
	} {
		_, clientCfg, serverCfg := testPKI(t, "example.com")
		clientCfg.CipherSuites = []uint16{suite}
		client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
		if cErr != nil || sErr != nil {
			t.Fatalf("%s: handshake: client=%v server=%v", tls12.CipherSuiteName(suite), cErr, sErr)
		}
		if got := client.ConnectionState().CipherSuite; got != suite {
			t.Fatalf("negotiated 0x%04X, want 0x%04X", got, suite)
		}
		client.Close()
		server.Close()
	}
}

func TestNoCommonCipherSuite(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	clientCfg.CipherSuites = []uint16{tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384}
	serverCfg.CipherSuites = []uint16{tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256}
	_, _, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if sErr == nil {
		t.Fatal("server accepted handshake without a common suite")
	}
	if cErr == nil {
		t.Fatal("client did not observe the failure")
	}
	if !tls12.IsRemoteAlert(cErr, tls12.AlertHandshakeFailure) {
		t.Fatalf("client error = %v, want remote handshake_failure alert", cErr)
	}
}

func TestWrongHostname(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	clientCfg.ServerName = "other.com"
	_, _, cErr, _ := runHandshake(t, clientCfg, serverCfg)
	if cErr == nil {
		t.Fatal("client accepted certificate for the wrong host")
	}
}

func TestUntrustedCA(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	otherCA, err := certs.NewCA("other root")
	if err != nil {
		t.Fatal(err)
	}
	clientCfg.RootCAs = otherCA.Pool()
	_, _, cErr, _ := runHandshake(t, clientCfg, serverCfg)
	if cErr == nil {
		t.Fatal("client accepted certificate from untrusted CA")
	}
}

func TestExpiredCertificate(t *testing.T) {
	ca, err := certs.NewCA("test root")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueExpired("example.com", []string{"example.com"})
	if err != nil {
		t.Fatal(err)
	}
	clientCfg := &tls12.Config{RootCAs: ca.Pool(), ServerName: "example.com"}
	serverCfg := &tls12.Config{Certificate: cert}
	_, _, cErr, _ := runHandshake(t, clientCfg, serverCfg)
	if cErr == nil {
		t.Fatal("client accepted expired certificate")
	}
}

func TestSessionResumption(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	serverCfg.EnableTickets = true
	if _, err := io.ReadFull(bytes.NewReader(bytes.Repeat([]byte{7}, 32)), serverCfg.TicketKey[:]); err != nil {
		t.Fatal(err)
	}
	var ticket *tls12.SessionTicket
	clientCfg.EnableTickets = true
	clientCfg.OnNewTicket = func(tk *tls12.SessionTicket) { ticket = tk }

	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cErr, sErr)
	}
	client.Close()
	server.Close()
	if ticket == nil {
		t.Fatal("client did not receive a session ticket")
	}

	clientCfg.SessionTicket = ticket
	client, server, cErr, sErr = runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("abbreviated handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()
	if !client.ConnectionState().Resumed {
		t.Fatal("client session was not resumed")
	}
	if !server.ConnectionState().Resumed {
		t.Fatal("server session was not resumed")
	}

	// Resumed sessions must still carry data.
	done := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("resumed data"))
		done <- err
	}()
	buf := make([]byte, 12)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("server read after resumption: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestResumptionWithBogusTicketFallsBack(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	serverCfg.EnableTickets = true
	clientCfg.EnableTickets = true
	clientCfg.SessionTicket = &tls12.SessionTicket{
		Ticket:       []byte("not a real ticket"),
		CipherSuite:  tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
		MasterSecret: make([]byte, 48),
	}
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()
	if client.ConnectionState().Resumed {
		t.Fatal("session resumed from a bogus ticket")
	}
}

func TestExportSessionKeys(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()

	ck, err := client.ExportSessionKeys()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := server.ExportSessionKeys()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck.ClientWriteKey, sk.ClientWriteKey) || !bytes.Equal(ck.ServerWriteKey, sk.ServerWriteKey) {
		t.Fatal("endpoints exported different session keys")
	}
	if !bytes.Equal(ck.ClientWriteIV, sk.ClientWriteIV) || !bytes.Equal(ck.ServerWriteIV, sk.ServerWriteIV) {
		t.Fatal("endpoints exported different IVs")
	}
	if ck.ClientSeq != sk.ClientSeq || ck.ServerSeq != sk.ServerSeq {
		t.Fatalf("sequence mismatch: client exports (%d,%d), server (%d,%d)",
			ck.ClientSeq, ck.ServerSeq, sk.ClientSeq, sk.ServerSeq)
	}
	// Exactly one protected record (Finished) has flowed each way.
	if ck.ClientSeq != 1 || ck.ServerSeq != 1 {
		t.Fatalf("unexpected starting sequences: (%d,%d)", ck.ClientSeq, ck.ServerSeq)
	}
}

func TestVerifyPeerCertificateHook(t *testing.T) {
	called := false
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	clientCfg.VerifyPeerCertificate = func(chain []*x509.Certificate) error {
		called = true
		return nil
	}
	_, _, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	if !called {
		t.Fatal("VerifyPeerCertificate was not called")
	}
}

func TestLargeTransfer(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer client.Close()
	defer server.Close()

	// 100 KiB forces fragmentation across many records.
	payload := make([]byte, 100<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Write(payload)
		done <- err
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted data")
	}
}

func TestCloseNotify(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := server.Read(buf)
		readDone <- err
	}()
	client.Close()
	if err := <-readDone; err != io.EOF {
		t.Fatalf("server read after close = %v, want io.EOF", err)
	}
	server.Close()
}
