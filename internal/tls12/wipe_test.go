package tls12_test

import (
	"strings"
	"testing"
	"time"
)

// TestCloseWipesExportedSecrets pins the teardown contract: after
// Close, the master secret is gone and key export fails — the wipe
// methods the keywipe analyzer proves complete are actually invoked.
func TestCloseWipesExportedSecrets(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer server.Close()

	if _, err := client.ExportSessionKeys(); err != nil {
		t.Fatalf("ExportSessionKeys before Close: %v", err)
	}
	client.Close()
	if _, err := client.ExportSessionKeys(); err == nil {
		t.Fatal("ExportSessionKeys succeeded after Close")
	} else if !strings.Contains(err.Error(), "wiped") {
		t.Fatalf("ExportSessionKeys after Close: %v, want wiped error", err)
	}
}

// TestCloseWithParkedReader pins that Close (and the Wipe it runs)
// never queues behind a reader blocked in Read: the reader holds
// readMu until the transport fails it, so the wipe must not contend
// for that lock. Regression test for a teardown deadlock.
func TestCloseWithParkedReader(t *testing.T) {
	_, clientCfg, serverCfg := testPKI(t, "example.com")
	client, server, cErr, sErr := runHandshake(t, clientCfg, serverCfg)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	defer server.Close()

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]byte, 64)
		client.Read(buf) // parks: the server never writes
	}()
	// Give the reader time to park inside readRecord holding readMu.
	time.Sleep(20 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		client.Close()
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked behind a parked reader")
	}
	select {
	case <-readerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("parked reader never unblocked after Close")
	}
}
