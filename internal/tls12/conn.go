package tls12

import (
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/secmem"
	"repro/internal/timing"
)

// ConnectionState summarizes a completed handshake.
type ConnectionState struct {
	HandshakeComplete bool
	CipherSuite       uint16
	Resumed           bool
	// ResumedHop names the middlebox hop ticket this connection
	// resumed from (mbTLS chain resumption); empty for full handshakes
	// and primary resumption. Resumed secondary handshakes carry no
	// certificates, so this is how the endpoint maps the connection
	// back to the chain-ticket entry (and its cached identity).
	ResumedHop string
	// PeerCertificates is the verified (or, with InsecureSkipVerify,
	// merely parsed) peer chain, leaf first.
	PeerCertificates []*x509.Certificate
	// AttestationQuote is the raw SGX quote received during the
	// handshake, if any.
	AttestationQuote []byte
	// ClientHello is the peer's parsed ClientHello (server side only);
	// mbTLS servers use it to learn about middlebox support.
	ClientHello *ClientHello
}

// SessionKeys exports one session's record-protection material. mbTLS
// endpoints export their primary session's keys as the "bridge" key
// K(C-S) handed to the outermost middleboxes (paper Figure 4), together
// with the current sequence numbers as required by the
// MBTLSKeyMaterial format (Appendix A.1).
type SessionKeys struct {
	Suite          uint16
	ClientWriteKey []byte
	ClientWriteIV  []byte
	ServerWriteKey []byte
	ServerWriteIV  []byte
	// ClientSeq and ServerSeq are the next record sequence numbers in
	// the client-to-server and server-to-client directions.
	ClientSeq uint64
	ServerSeq uint64
}

// Wipe zeroizes the exported key material. Callers wipe a SessionKeys
// once the bridge hop built from it is installed (BridgeHopKeys aliases
// these slices, so wiping either view clears both).
func (sk *SessionKeys) Wipe() {
	if sk == nil {
		return
	}
	secmem.WipeAll(sk.ClientWriteKey, sk.ClientWriteIV, sk.ServerWriteKey, sk.ServerWriteIV)
}

// Conn is one endpoint of a TLS 1.2 session over a RecordLayer. It is
// used both for ordinary two-party TLS and, by internal/core, for the
// primary and secondary sessions of an mbTLS handshake.
type Conn struct {
	rl       *RecordLayer
	config   *Config
	isClient bool

	// closer, if non-nil, is closed with the connection (typically the
	// underlying net.Conn).
	closer io.Closer

	hsMu          sync.Mutex
	handshakeDone bool
	handshakeErr  error

	// mbTLS interleaving hooks: a client may have already sent its
	// ClientHello (shared with the primary handshake), and a server
	// (middlebox) may have already received one.
	pendingHello     *ClientHello
	pendingHelloRaw  []byte
	receivedHelloRaw []byte

	// hsBuf accumulates handshake-record payloads until a complete
	// message is available.
	hsBuf []byte

	readMu     sync.Mutex
	appBuf     []byte
	readErr    error
	peerClosed bool
	// closed is set by Close under readMu; once set, no read path may
	// touch the record layer again (its pooled read buffer has been
	// released) and any undelivered appBuf has been dropped.
	closed bool

	// kmMu guards keyMatBuf and is never held across blocking I/O:
	// readers park holding readMu indefinitely (Read has no deadline),
	// and Wipe must not queue behind them at teardown.
	kmMu      sync.Mutex
	keyMatBuf [][]byte // MBTLSKeyMaterial payloads awaiting ReadKeyMaterial

	alertMu   sync.Mutex
	sentAlert bool

	state ConnectionState

	// masterSecret is retained for key export and resumption.
	masterSecret []byte
	clientRandom [randomLen]byte
	serverRandom [randomLen]byte
}

// Client returns a client-side Conn over rl.
func Client(rl *RecordLayer, config *Config) *Conn {
	return &Conn{rl: rl, config: config, isClient: true}
}

// Server returns a server-side Conn over rl.
func Server(rl *RecordLayer, config *Config) *Conn {
	return &Conn{rl: rl, config: config}
}

// ClientWithSentHello returns a client-side Conn whose ClientHello was
// already written to the wire by the caller. mbTLS uses this twice: the
// core client writes the primary ClientHello itself (so it can attach
// the MiddleboxSupport extension and reuse the bytes), and every
// secondary session with a discovered middlebox reuses the primary
// ClientHello as its first flight (paper §3.4, P7).
func ClientWithSentHello(rl *RecordLayer, config *Config, hello *ClientHello, raw []byte) *Conn {
	return &Conn{rl: rl, config: config, isClient: true, pendingHello: hello, pendingHelloRaw: raw}
}

// ServerWithReceivedHello returns a server-side Conn that treats raw as
// the already-received ClientHello. Middleboxes use this to run their
// secondary handshake against the sniffed primary ClientHello.
func ServerWithReceivedHello(rl *RecordLayer, config *Config, raw []byte) *Conn {
	return &Conn{rl: rl, config: config, receivedHelloRaw: raw}
}

// NewClientConn dials TLS over an existing net.Conn, owning its
// lifetime.
func NewClientConn(nc net.Conn, config *Config) *Conn {
	c := Client(NewRecordLayer(nc), config)
	c.closer = nc
	return c
}

// NewServerConn accepts TLS over an existing net.Conn, owning its
// lifetime.
func NewServerConn(nc net.Conn, config *Config) *Conn {
	c := Server(NewRecordLayer(nc), config)
	c.closer = nc
	return c
}

// SetCloser attaches an io.Closer closed alongside the Conn.
func (c *Conn) SetCloser(cl io.Closer) { c.closer = cl }

// RecordLayer exposes the connection's record layer so mbTLS can
// install per-hop data-plane ciphers after key distribution.
func (c *Conn) RecordLayer() *RecordLayer { return c.rl }

// ConnectionState returns the post-handshake connection state.
func (c *Conn) ConnectionState() ConnectionState {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	return c.state
}

// Handshake runs the handshake if it has not run yet.
func (c *Conn) Handshake() error {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	return c.handshakeLocked()
}

// sw returns the configured handshake stopwatch (nil-safe).
func (c *Conn) sw() *timing.Stopwatch {
	if c.config == nil {
		return nil
	}
	return c.config.Stopwatch
}

func (c *Conn) handshakeLocked() error {
	if c.handshakeDone {
		return c.handshakeErr
	}
	c.handshakeDone = true
	c.sw().Enter()
	defer c.sw().Exit()
	if c.isClient {
		c.handshakeErr = c.clientHandshake()
	} else {
		c.handshakeErr = c.serverHandshake()
	}
	if c.handshakeErr == nil {
		c.state.HandshakeComplete = true
	}
	return c.handshakeErr
}

// errUnexpectedCCS reports a ChangeCipherSpec at an illegal point.
var errUnexpectedCCS = errors.New("tls12: unexpected change_cipher_spec")

// handleAlert processes an alert record payload and returns the
// resulting terminal error (nil for ignorable warnings).
func (c *Conn) handleAlert(payload []byte) error {
	if len(payload) != 2 {
		return c.fatal(AlertDecodeError, errors.New("tls12: malformed alert"))
	}
	level, desc := AlertLevel(payload[0]), AlertDescription(payload[1])
	if desc == AlertCloseNotify {
		c.peerClosed = true
		return io.EOF
	}
	if level == AlertLevelFatal {
		return &AlertError{Description: desc, Remote: true}
	}
	return nil // ignore warnings
}

// fatal sends a fatal alert (best effort) and returns an AlertError
// wrapping cause.
func (c *Conn) fatal(desc AlertDescription, cause error) error {
	c.sendAlert(AlertLevelFatal, desc)
	if cause == nil {
		return &AlertError{Description: desc}
	}
	return fmt.Errorf("%w (%s)", cause, desc)
}

// SendAlert sends a fatal alert to the peer (best effort, sealed under
// the current write cipher). Middleboxes use it to refuse a session
// with a protocol-visible reason — e.g. an expired or malformed
// accountability delegation — instead of a silent transport close.
func (c *Conn) SendAlert(desc AlertDescription) {
	c.sendAlert(AlertLevelFatal, desc)
}

func (c *Conn) sendAlert(level AlertLevel, desc AlertDescription) {
	c.alertMu.Lock()
	defer c.alertMu.Unlock()
	if c.sentAlert && level == AlertLevelFatal {
		return
	}
	if level == AlertLevelFatal || desc == AlertCloseNotify {
		c.sentAlert = true
	}
	// Best-effort: if another goroutine is wedged mid-write on a dead or
	// stalled transport it holds the record layer's write lock, and
	// queueing behind it would deadlock the teardown path that is about
	// to close that transport. Dropping the alert is always legal —
	// peers must treat transport loss as an implicit failure anyway.
	_ = c.rl.TryWriteRecord(TypeAlert, []byte{byte(level), byte(desc)})
}

// readRecord reads the next record, answering a locally detected
// record-layer violation (bad version, length overflow, decode
// failure, MAC failure) with a fatal alert before surfacing the
// error. Without this, a peer — or an intermediate middlebox relay —
// watching the reverse direction would only ever see a silent
// transport close and could not distinguish an integrity failure from
// a crash (DESIGN.md §7). Remote alerts are not echoed back.
func (c *Conn) readRecord() (Record, error) {
	rec, err := c.rl.ReadRecord()
	if err != nil {
		var ae *AlertError
		if errors.As(err, &ae) && !ae.Remote {
			c.sendAlert(AlertLevelFatal, ae.Description)
		}
	}
	return rec, err
}

// RecordCounts reports how many records this connection's record
// layer has read and written, feeding core.SessionStats.
func (c *Conn) RecordCounts() (in, out int64) { return c.rl.Counters() }

// readHandshakeMsg returns the next complete handshake message. If
// allowCCS is true and a ChangeCipherSpec record arrives on a message
// boundary, it returns ccs=true with no message.
func (c *Conn) readHandshakeMsg(allowCCS bool) (typ HandshakeType, body, raw []byte, ccs bool, err error) {
	for {
		if len(c.hsBuf) >= 4 {
			n := int(c.hsBuf[1])<<16 | int(c.hsBuf[2])<<8 | int(c.hsBuf[3])
			if len(c.hsBuf) >= 4+n {
				raw = c.hsBuf[:4+n]
				c.hsBuf = c.hsBuf[4+n:]
				typ = HandshakeType(raw[0])
				body = raw[4 : 4+n]
				return typ, body, raw, false, nil
			}
		}
		c.sw().Pause()
		rec, err := c.readRecord()
		c.sw().Resume()
		if err != nil {
			return 0, nil, nil, false, err
		}
		switch rec.Type {
		case TypeHandshake:
			if len(rec.Payload) == 0 {
				return 0, nil, nil, false, c.fatal(AlertDecodeError, errors.New("tls12: empty handshake record"))
			}
			c.hsBuf = append(c.hsBuf, rec.Payload...)
		case TypeAlert:
			if err := c.handleAlert(rec.Payload); err != nil {
				return 0, nil, nil, false, err
			}
		case TypeChangeCipherSpec:
			if !allowCCS || len(c.hsBuf) != 0 {
				return 0, nil, nil, false, c.fatal(AlertUnexpectedMessage, errUnexpectedCCS)
			}
			if len(rec.Payload) != 1 || rec.Payload[0] != 1 {
				return 0, nil, nil, false, c.fatal(AlertDecodeError, errors.New("tls12: malformed change_cipher_spec"))
			}
			return 0, nil, nil, true, nil
		case TypeEncapsulated, TypeMiddleboxAnnouncement, TypeKeyMaterial:
			// A legacy endpoint confronted with mbTLS record types
			// either skips them or fails the handshake (paper §3.4,
			// "Server-Side Middleboxes").
			if c.config != nil && c.config.LenientUnknownRecords {
				continue
			}
			return 0, nil, nil, false, c.fatal(AlertUnexpectedMessage,
				fmt.Errorf("tls12: unexpected %s record during handshake", rec.Type))
		default:
			return 0, nil, nil, false, c.fatal(AlertUnexpectedMessage,
				fmt.Errorf("tls12: unexpected %s record during handshake", rec.Type))
		}
	}
}

// expectHandshakeMsg reads the next handshake message and checks its
// type.
func (c *Conn) expectHandshakeMsg(want HandshakeType) (body, raw []byte, err error) {
	typ, body, raw, _, err := c.readHandshakeMsg(false)
	if err != nil {
		return nil, nil, err
	}
	if typ != want {
		return nil, nil, c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: expected %s, got %s", want, typ))
	}
	return body, raw, nil
}

// readChangeCipherSpec consumes a CCS record.
func (c *Conn) readChangeCipherSpec() error {
	_, _, _, ccs, err := c.readHandshakeMsg(true)
	if err != nil {
		return err
	}
	if !ccs {
		return c.fatal(AlertUnexpectedMessage, errors.New("tls12: expected change_cipher_spec"))
	}
	return nil
}

func (c *Conn) writeHandshakeMsg(raw []byte) error {
	return c.rl.WriteRecord(TypeHandshake, raw)
}

func (c *Conn) writeChangeCipherSpec() error {
	return c.rl.WriteRecord(TypeChangeCipherSpec, []byte{1})
}

// Read reads application data, running the handshake first if needed.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	for len(c.appBuf) == 0 {
		if c.readErr != nil {
			return 0, c.readErr
		}
		rec, err := c.readRecord()
		if err != nil {
			c.readErr = err
			return 0, err
		}
		switch rec.Type {
		case TypeApplicationData:
			c.appBuf = rec.Payload
		case TypeAlert:
			if err := c.handleAlert(rec.Payload); err != nil {
				c.readErr = err
				return 0, err
			}
		case TypeKeyMaterial:
			// Retained across further ReadRecord calls, which reuse the
			// record layer's buffer — copy out of it.
			c.pushKeyMat(append([]byte(nil), rec.Payload...))
		case TypeEncapsulated, TypeMiddleboxAnnouncement:
			if c.config != nil && c.config.LenientUnknownRecords {
				continue
			}
			c.readErr = c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: unexpected %s record", rec.Type))
			return 0, c.readErr
		default:
			c.readErr = c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: unexpected %s record", rec.Type))
			return 0, c.readErr
		}
	}
	n := copy(p, c.appBuf)
	c.appBuf = c.appBuf[n:]
	return n, nil
}

// Write writes application data, running the handshake first if needed.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	if err := c.rl.WriteRecord(TypeApplicationData, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteKeyMaterial sends an MBTLSKeyMaterial record, protected by this
// session's cipher. mbTLS endpoints call this on their secondary
// sessions to hand per-hop keys to middleboxes (paper §3.4).
func (c *Conn) WriteKeyMaterial(payload []byte) error {
	if err := c.Handshake(); err != nil {
		return err
	}
	return c.rl.WriteRecord(TypeKeyMaterial, payload)
}

// ReadKeyMaterial blocks until an MBTLSKeyMaterial record arrives.
// Application data arriving first is buffered for later Reads.
func (c *Conn) ReadKeyMaterial() ([]byte, error) {
	if err := c.Handshake(); err != nil {
		return nil, err
	}
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	// Undelivered application data may alias the record layer's reused
	// buffer; detach it before reading more records over it.
	if len(c.appBuf) > 0 {
		c.appBuf = append([]byte(nil), c.appBuf...)
	}
	for {
		if km, ok := c.popKeyMat(); ok {
			return km, nil
		}
		if c.readErr != nil {
			return nil, c.readErr
		}
		rec, err := c.readRecord()
		if err != nil {
			c.readErr = err
			return nil, err
		}
		switch rec.Type {
		case TypeKeyMaterial:
			c.pushKeyMat(append([]byte(nil), rec.Payload...))
		case TypeApplicationData:
			c.appBuf = append(c.appBuf, rec.Payload...)
		case TypeAlert:
			if err := c.handleAlert(rec.Payload); err != nil {
				c.readErr = err
				return nil, err
			}
		default:
			c.readErr = c.fatal(AlertUnexpectedMessage, fmt.Errorf("tls12: unexpected %s record", rec.Type))
			return nil, c.readErr
		}
	}
}

// Close sends a close_notify alert, zeroizes the connection's retained
// key material, and closes the underlying transport if the Conn owns
// one. After Close, ExportSessionKeys fails: the master secret is gone.
func (c *Conn) Close() error {
	c.sendAlert(AlertLevelWarning, AlertCloseNotify)
	// Close the transport before wiping: a reader parked in readRecord
	// holds readMu until the transport fails it, and Wipe needs that
	// lock — teardown must never queue behind a blocked read.
	var err error
	if c.closer != nil {
		err = c.closer.Close()
	}
	c.Wipe()
	// The write-side pooled buffers are done: the transport is closed,
	// so nothing will flush the coalesced output again.
	c.rl.ReleaseWrite()
	// The read side needs the reader lock: an undelivered appBuf aliases
	// the pooled read buffer (Read stashes rec.Payload without copying),
	// so it must be dropped before that buffer can go back to the pool,
	// and future reads must be fenced off the record layer. If a reader
	// is parked in readRecord it holds readMu until the closed transport
	// fails it; its buffer is then left to the GC — never re-pooled while
	// an alias might still be served.
	if c.readMu.TryLock() {
		c.appBuf = nil
		c.closed = true
		if c.readErr == nil {
			c.readErr = net.ErrClosed
		}
		c.readMu.Unlock()
		// Safe outside the lock: closed is set, so no read path will
		// touch the record layer again.
		c.rl.ReleaseRead()
	}
	return err
}

// Wipe zeroizes the connection's long-lived secrets: the master secret
// retained for key export and resumption, and any buffered
// MBTLSKeyMaterial payloads not yet consumed by ReadKeyMaterial. It is
// called by Close and may be called early by an endpoint that has
// finished exporting keys (paper §3.1: secrets must not outlive their
// session in adversary-readable memory).
func (c *Conn) Wipe() {
	// hsMu is safe to take here: handshakes run under phase deadlines
	// (DESIGN.md §7), so it is never held indefinitely. readMu is NOT —
	// a reader parked in readRecord holds it until the transport fails,
	// which is why keyMatBuf lives under kmMu instead.
	c.hsMu.Lock()
	secmem.Wipe(c.masterSecret)
	c.masterSecret = nil
	c.hsMu.Unlock()
	c.kmMu.Lock()
	for _, p := range c.keyMatBuf {
		secmem.Wipe(p)
	}
	c.keyMatBuf = nil
	c.kmMu.Unlock()
}

// pushKeyMat and popKeyMat are the only accessors of keyMatBuf; kmMu
// is never held across blocking I/O so Wipe cannot deadlock against a
// parked reader.
func (c *Conn) pushKeyMat(p []byte) {
	c.kmMu.Lock()
	c.keyMatBuf = append(c.keyMatBuf, p)
	c.kmMu.Unlock()
}

func (c *Conn) popKeyMat() ([]byte, bool) {
	c.kmMu.Lock()
	defer c.kmMu.Unlock()
	if len(c.keyMatBuf) == 0 {
		return nil, false
	}
	km := c.keyMatBuf[0]
	c.keyMatBuf = c.keyMatBuf[1:]
	return km, true
}

// SetDeadline forwards to the underlying net.Conn when one is attached.
func (c *Conn) SetDeadline(t time.Time) error {
	if nc, ok := c.closer.(net.Conn); ok {
		return nc.SetDeadline(t)
	}
	return errors.New("tls12: no deadline support on this transport")
}

// ExportSessionKeys exports the session's record keys and current
// sequence numbers. It is only valid after a completed handshake.
func (c *Conn) ExportSessionKeys() (*SessionKeys, error) {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	if !c.state.HandshakeComplete {
		return nil, errors.New("tls12: handshake not complete")
	}
	if len(c.masterSecret) == 0 {
		return nil, errors.New("tls12: master secret already wiped")
	}
	cwKey, swKey, cwIV, swIV := keysFromMaster(c.state.CipherSuite, c.masterSecret, c.clientRandom[:], c.serverRandom[:])
	sk := &SessionKeys{
		Suite:          c.state.CipherSuite,
		ClientWriteKey: cwKey,
		ClientWriteIV:  cwIV,
		ServerWriteKey: swKey,
		ServerWriteIV:  swIV,
	}
	write := c.rl.WriteCipher()
	read := c.rl.ReadCipher()
	if write == nil || read == nil {
		return nil, errors.New("tls12: record protection not active")
	}
	if c.isClient {
		sk.ClientSeq = write.Seq()
		sk.ServerSeq = read.Seq()
	} else {
		sk.ClientSeq = read.Seq()
		sk.ServerSeq = write.Seq()
	}
	return sk, nil
}

// InstallDataCiphers replaces the connection's record protection with
// mbTLS per-hop cipher states. Endpoints call this after distributing
// MBTLSKeyMaterial so their adjacent hop uses its fresh key (paper
// Figure 4) instead of the end-to-end session key.
func (c *Conn) InstallDataCiphers(read, write *CipherState) {
	c.rl.SetReadCipher(read)
	c.rl.SetWriteCipher(write)
}

// keysFromMaster expands the master secret into the suite's GCM keys
// and implicit IVs (RFC 5246 §6.3 key block, MAC keys elided for AEAD).
func keysFromMaster(suite uint16, master, clientRandom, serverRandom []byte) (cwKey, swKey, cwIV, swIV []byte) {
	keyLen, err := suiteKeyLen(suite)
	if err != nil {
		panic(err) // suite validated during negotiation
	}
	ivLen := suiteIVLen(suite)
	kb := keyBlock(suite, master, clientRandom, serverRandom, 2*keyLen+2*ivLen)
	cwKey, kb = kb[:keyLen], kb[keyLen:]
	swKey, kb = kb[:keyLen], kb[keyLen:]
	cwIV, kb = kb[:ivLen], kb[ivLen:]
	swIV = kb[:ivLen]
	return cwKey, swKey, cwIV, swIV
}

// AttestationReportData maps a transcript hash into the 64-byte SGX
// report data field, binding a quote to one specific handshake
// (paper §3.4, "Secure Environment Attestation").
func AttestationReportData(transcriptHash []byte) []byte {
	rd := make([]byte, 64)
	copy(rd, transcriptHash)
	return rd
}
