package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sessionhost"
	"repro/internal/tls12"
)

// SessionsLevels is the default concurrency sweep for the session-host
// bench: how many clients establish-and-use full mbTLS sessions at
// once through one shared middlebox host.
var SessionsLevels = []int{4, 16, 64}

// SessionsRow is one concurrency level's measurement.
type SessionsRow struct {
	// Concurrency is how many workers ran sessions at once.
	Concurrency int `json:"concurrency"`
	// Sessions is the total number of completed sessions at this level.
	Sessions int `json:"sessions"`
	// SessionsPerSec is the sustained full-session throughput
	// (handshake + echo round-trip + teardown).
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// HandshakeP50Ms / HandshakeP99Ms are client-observed handshake
	// latency percentiles in milliseconds.
	HandshakeP50Ms float64 `json:"handshake_p50_ms"`
	HandshakeP99Ms float64 `json:"handshake_p99_ms"`
	// PoolHitRate is the fraction of relay buffer requests served from
	// the host-scoped pool rather than freshly allocated.
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// SessionsOptions tunes the run.
type SessionsOptions struct {
	// Levels overrides the concurrency sweep.
	Levels []int
	// SessionsPerWorker is how many sequential sessions each worker
	// runs per level (default 8).
	SessionsPerWorker int
	// PayloadBytes is the echo payload per session (default 4096).
	PayloadBytes int
}

// RunSessions measures the sessionhost runtime under concurrent
// session churn: for each concurrency level, that many workers each
// run full mbTLS sessions back to back — dial, handshake (timed),
// one echo round trip, close — through one shared middlebox host and
// one shared origin host, both fronted by the bounded session pool and
// the host-scoped record-buffer pool. The row reports session
// throughput and handshake latency percentiles, the two numbers that
// move when the runtime's admission or registry serializes badly.
func RunSessions(opts SessionsOptions) ([]SessionsRow, error) {
	levels := opts.Levels
	if len(levels) == 0 {
		levels = SessionsLevels
	}
	perWorker := opts.SessionsPerWorker
	if perWorker <= 0 {
		perWorker = 8
	}
	payloadBytes := opts.PayloadBytes
	if payloadBytes <= 0 {
		payloadBytes = 4096
	}
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}

	ca, err := certs.NewCA("sessions root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		return nil, err
	}

	n := netsim.NewNetwork()
	srvLn, err := n.Listen("server")
	if err != nil {
		return nil, err
	}
	mbLn, err := n.Listen("mb")
	if err != nil {
		return nil, err
	}

	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  30 * time.Second,
	}
	srvHost, err := sessionhost.New(sessionhost.Config{
		Name:        "sessions-server",
		MaxSessions: 2 * maxLevel,
		Handler: sessionhost.NewServerHandler(scfg, func(s *core.Session) error {
			buf := make([]byte, 64<<10)
			for {
				nr, err := s.Read(buf)
				if err != nil {
					return err
				}
				if _, err := s.Write(buf[:nr]); err != nil {
					return err
				}
			}
		}),
	})
	if err != nil {
		return nil, err
	}
	go srvHost.Serve(srvLn) //nolint:errcheck
	defer srvHost.Close()   //nolint:errcheck

	pool := tls12.NewRecordBufPool(2 * maxLevel)
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name: "mb.example", Mode: core.ClientSide, Certificate: mbCert, BufPool: pool,
	})
	if err != nil {
		return nil, err
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:        "sessions-mb",
		MaxSessions: 2 * maxLevel,
		BufPool:     pool,
		Handler: sessionhost.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return n.Dial("mb", "server")
		}),
		MiddleboxStats: mb.Stats,
	})
	if err != nil {
		return nil, err
	}
	go mbHost.Serve(mbLn) //nolint:errcheck
	defer mbHost.Close()  //nolint:errcheck

	payload := core.RandomPlaintext(payloadBytes)
	var rows []SessionsRow
	for _, level := range levels {
		row, err := sessionsLevel(n, ca, pool, level, perWorker, payload)
		if err != nil {
			return nil, fmt.Errorf("sessions level %d: %w", level, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sessionsLevel drives one concurrency level and reduces its timings.
func sessionsLevel(n *netsim.Network, ca *certs.CA, pool *tls12.RecordBufPool,
	level, perWorker int, payload []byte) (SessionsRow, error) {

	row := SessionsRow{Concurrency: level}
	handshakes := make([]time.Duration, 0, level*perWorker)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, level)

	poolBefore := pool.Stats()
	start := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				hs, err := oneSession(n, ca, fmt.Sprintf("worker-%d-%d", w, i), payload)
				if err != nil {
					select {
					case errs <- fmt.Errorf("worker %d session %d: %w", w, i, err):
					default:
					}
					return
				}
				local = append(local, hs)
			}
			mu.Lock()
			handshakes = append(handshakes, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return row, err
	default:
	}
	poolAfter := pool.Stats()

	sort.Slice(handshakes, func(i, j int) bool { return handshakes[i] < handshakes[j] })
	row.Sessions = len(handshakes)
	row.SessionsPerSec = float64(row.Sessions) / elapsed.Seconds()
	row.HandshakeP50Ms = float64(percentileDuration(handshakes, 0.50)) / float64(time.Millisecond)
	row.HandshakeP99Ms = float64(percentileDuration(handshakes, 0.99)) / float64(time.Millisecond)
	if gets := poolAfter.Gets - poolBefore.Gets; gets > 0 {
		row.PoolHitRate = float64(poolAfter.Hits-poolBefore.Hits) / float64(gets)
	}
	return row, nil
}

// oneSession runs a complete client session through the middlebox host
// and returns the handshake latency.
func oneSession(n *netsim.Network, ca *certs.CA, clientName string, payload []byte) (time.Duration, error) {
	conn, err := n.Dial(clientName, "mb")
	if err != nil {
		return 0, err
	}
	start := time.Now()
	sess, err := core.Dial(conn, &core.ClientConfig{
		TLS:              &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
		HandshakeTimeout: 30 * time.Second,
	})
	if err != nil {
		return 0, err
	}
	hs := time.Since(start)
	defer sess.Close()
	if _, err := sess.Write(payload); err != nil {
		return 0, err
	}
	buf := make([]byte, len(payload))
	for total := 0; total < len(buf); {
		nr, err := sess.Read(buf[total:])
		total += nr
		if err != nil {
			return 0, err
		}
	}
	return hs, nil
}

// percentileDuration returns the p-quantile of an already-sorted
// slice (nearest-rank).
func percentileDuration(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteSessionsJSON writes the rows as a machine-readable baseline
// (BENCH_sessions.json) so future runtime changes can track the
// concurrency trajectory.
func WriteSessionsJSON(path string, rows []SessionsRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSessions renders the sweep.
func FormatSessions(rows []SessionsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Session host: concurrent full-session throughput\n")
	fmt.Fprintf(&b, "%-12s | %9s | %13s | %9s | %9s | %9s\n",
		"Concurrency", "Sessions", "Sessions/sec", "HS p50", "HS p99", "Pool hit")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 76))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d | %9d | %13.1f | %7.2fms | %7.2fms | %8.0f%%\n",
			r.Concurrency, r.Sessions, r.SessionsPerSec,
			r.HandshakeP50Ms, r.HandshakeP99Ms, 100*r.PoolHitRate)
	}
	return b.String()
}
