package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/hsfast"
	"repro/internal/netsim"
	"repro/internal/sessionhost"
	"repro/internal/tls12"
	"repro/internal/transport"
	"repro/internal/transport/tcpx"
)

// SessionsLevels is the default concurrency sweep for the session-host
// bench: how many clients establish-and-use full mbTLS sessions at
// once through one shared middlebox host. The high levels (256, 1024)
// oversubscribe any realistic core count, so they measure how the
// sharded admission path and the handshake gate behave when the host
// is the bottleneck, not the clients.
var SessionsLevels = []int{4, 16, 64, 256, 1024}

// SessionsRow is one concurrency level's measurement.
type SessionsRow struct {
	// Concurrency is how many workers ran sessions at once.
	Concurrency int `json:"concurrency"`
	// Sessions is the total number of completed sessions at this level.
	Sessions int `json:"sessions"`
	// SessionsPerSec is the sustained full-session throughput
	// (establishment + echo round-trip + teardown).
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// HandshakeP50Ms / HandshakeP99Ms are client-observed chain
	// establishment latency percentiles in milliseconds.
	HandshakeP50Ms float64 `json:"handshake_p50_ms"`
	HandshakeP99Ms float64 `json:"handshake_p99_ms"`
	// ResumedPrimary / ResumedHops count sessions that rode the
	// chain-ticket fast path in the measured window. The sweep runs the
	// host under its production configuration — STEKs, chain tickets,
	// keyshare pool, verify cache — so steady-state rows are
	// resumption-dominated; the counters make that explicit instead of
	// hiding it.
	ResumedPrimary int64 `json:"resumed_primary"`
	ResumedHops    int64 `json:"resumed_hops"`
	// KeyShareHitRate is the middlebox keyshare pool's hit rate over
	// this level (seeding burst included); VerifyCacheHitRate is the
	// client-side chain-verification cache's.
	KeyShareHitRate    float64 `json:"keyshare_hit_rate"`
	VerifyCacheHitRate float64 `json:"verify_cache_hit_rate"`
	// PoolHitRate is the fraction of relay record-buffer requests
	// served from the host-scoped pool rather than freshly allocated.
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// SessionsOptions tunes the run.
type SessionsOptions struct {
	// Levels overrides the concurrency sweep.
	Levels []int
	// SessionsPerWorker is how many sequential sessions each worker
	// runs per level (default 8).
	SessionsPerWorker int
	// PayloadBytes is the echo payload per session (default 4096).
	PayloadBytes int
	// Shards overrides the hosts' shard count (default GOMAXPROCS).
	Shards int
	// Transport selects the byte-moving backend: TransportNetsim
	// (default) or TransportTCP, which runs the same topology over
	// loopback kernel sockets with SO_REUSEPORT per-shard listeners.
	Transport string
	// Quick shrinks the run to a smoke test (one small level, few
	// sessions) and skips the keyshare hit-rate gate.
	Quick bool
}

// SessionsReport is everything one `mbtls-bench sessions` run
// measured: the concurrency sweep and, when requested, the idle-soak
// result. BENCH_sessions.json holds exactly this shape.
type SessionsReport struct {
	// Shards is the hosts' shard count for the sweep.
	Shards int `json:"shards"`
	// Transport is the backend the sweep ran over.
	Transport string `json:"transport"`
	// Sweep is one row per concurrency level.
	Sweep []SessionsRow `json:"sweep"`
	// Soak is the live-idle-session soak result (nil unless -soak).
	Soak *SoakRow `json:"soak,omitempty"`
}

// echoBufs pools the bench origin's echo buffers. The echo handler is
// per-session; allocating (and zeroing) a fresh 64 KiB buffer for each
// of tens of thousands of sessions was a measurable slice of bench CPU
// that said nothing about the protocol under test.
var echoBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

// echoSession echoes everything read back to the peer through a pooled
// buffer until the session ends.
func echoSession(s *core.Session) error {
	bp := echoBufs.Get().(*[]byte)
	defer echoBufs.Put(bp)
	buf := *bp
	for {
		nr, err := s.Read(buf)
		if err != nil {
			return err
		}
		if _, err := s.Write(buf[:nr]); err != nil {
			return err
		}
	}
}

// sessionsEnv is the sweep's shared topology, configured the way a
// production deployment runs: a ticket-issuing origin host behind a
// middlebox host with a hop STEK and a shard-sized keyshare pool, and
// the chain-verification cache every client worker shares. (The
// handshake bench isolates these fast-path pieces one by one; this
// bench runs the whole host with all of them on, because that is the
// configuration whose session throughput the runtime has to sustain.)
type sessionsEnv struct {
	trName string
	// dialMB opens a client connection to the middlebox host; dialSrv
	// is what the middlebox uses to reach the origin. Both are bound to
	// the backend chosen at env construction.
	dialMB  func() (net.Conn, error)
	ca      *certs.CA
	ksPool  *hsfast.KeySharePool
	chainVC *hsfast.VerifyCache
	bufPool *tls12.RecordBufPool
	hosts   []*sessionhost.Host
}

func (e *sessionsEnv) Close() {
	for _, h := range e.hosts {
		h.Close() //nolint:errcheck
	}
	e.ksPool.Close()
}

// sessionsFabric builds the sweep's listeners and dial functions on the
// chosen backend. Netsim keeps the named-node topology; TCP binds
// loopback listeners — one per shard via SO_REUSEPORT for the
// middlebox host, so kernel connection spreading pairs with the
// sharded admission path — and dials by bound address.
func sessionsFabric(trName string, shards int, pool *tls12.RecordBufPool) (
	srvLns, mbLns []net.Listener, dialMB, dialSrv func() (net.Conn, error), err error) {

	switch trName {
	case "", TransportNetsim:
		n := netsim.NewNetwork()
		srvLn, err := n.Listen("server")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mbLn, err := n.Listen("mb")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		clientTr := transport.NewNetsim(n, "client")
		mbTr := transport.NewNetsim(n, "mb")
		return []net.Listener{srvLn}, []net.Listener{mbLn},
			func() (net.Conn, error) { return clientTr.Dial("mb") },
			func() (net.Conn, error) { return mbTr.Dial("server") },
			nil
	case TransportTCP:
		tr := tcpx.New(tcpx.Config{ReusePort: true, Pool: pool})
		srvLns, err := tr.ListenShards("127.0.0.1:0", shards)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mbLns, err := tr.ListenShards("127.0.0.1:0", shards)
		if err != nil {
			closeAll(srvLns)
			return nil, nil, nil, nil, err
		}
		srvAddr := srvLns[0].Addr().String()
		mbAddr := mbLns[0].Addr().String()
		return srvLns, mbLns,
			func() (net.Conn, error) { return tr.Dial(mbAddr) },
			func() (net.Conn, error) { return tr.Dial(srvAddr) },
			nil
	default:
		return nil, nil, nil, nil, fmt.Errorf("experiments: unknown transport %q (want %s or %s)",
			trName, TransportNetsim, TransportTCP)
	}
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		ln.Close()
	}
}

func newSessionsEnv(maxLevel, shards int, trName string) (*sessionsEnv, error) {
	ca, err := certs.NewCA("sessions root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		return nil, err
	}

	pool := tls12.NewRecordBufPool(2 * maxLevel)
	srvLns, mbLns, dialMB, dialSrv, err := sessionsFabric(trName, shards, pool)
	if err != nil {
		return nil, err
	}

	srvSTEK, err := hsfast.NewSTEK(time.Hour, nil)
	if err != nil {
		return nil, err
	}
	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert, EnableTickets: true, TicketKeys: srvSTEK},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  30 * time.Second,
	}
	srvHost, err := sessionhost.New(sessionhost.Config{
		Name:        "sessions-server",
		MaxSessions: 2 * maxLevel,
		Shards:      shards,
		Handler:     sessionhost.NewServerHandler(scfg, echoSession),
		TicketKeys:  srvSTEK,
	})
	if err != nil {
		closeAll(srvLns)
		closeAll(mbLns)
		return nil, err
	}
	go srvHost.ServeListeners(srvLns) //nolint:errcheck

	mbSTEK, err := hsfast.NewSTEK(time.Hour, nil)
	if err != nil {
		srvHost.Close() //nolint:errcheck
		closeAll(mbLns)
		return nil, err
	}
	ksPool := hsfast.NewKeySharePoolForShards(shards)
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name:        "mb.example",
		Mode:        core.ClientSide,
		Certificate: mbCert,
		BufPool:     pool,
		TicketKeys:  mbSTEK,
		KeyShares:   ksPool,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		closeAll(mbLns)
		ksPool.Close()
		return nil, err
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:           "sessions-mb",
		MaxSessions:    2 * maxLevel,
		Shards:         shards,
		BufPool:        pool,
		Handler:        sessionhost.NewMiddleboxHandler(mb, dialSrv),
		MiddleboxStats: mb.Stats,
		KeySharePool:   ksPool,
		TicketKeys:     mbSTEK,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		closeAll(mbLns)
		ksPool.Close()
		return nil, err
	}
	go mbHost.ServeListeners(mbLns) //nolint:errcheck

	if trName == "" {
		trName = TransportNetsim
	}
	return &sessionsEnv{
		trName:  trName,
		dialMB:  dialMB,
		ca:      ca,
		ksPool:  ksPool,
		chainVC: hsfast.NewVerifyCache(64, time.Hour, nil),
		bufPool: pool,
		hosts:   []*sessionhost.Host{srvHost, mbHost},
	}, nil
}

// clientConfig builds one session's client config. ct (optional) is
// the chain ticket to redeem; onTicket receives the reissued one.
func (e *sessionsEnv) clientConfig(ct *core.ChainTicket, onTicket func(*core.ChainTicket)) *core.ClientConfig {
	return &core.ClientConfig{
		TLS: &tls12.Config{
			RootCAs:     e.ca.Pool(),
			ServerName:  "origin.example",
			VerifyCache: e.chainVC,
		},
		HandshakeTimeout: 30 * time.Second,
		ChainTicket:      ct,
		OnNewChainTicket: onTicket,
	}
}

// RunSessions measures the sessionhost runtime under concurrent
// session churn: for each concurrency level, that many workers each
// run full mbTLS sessions back to back — dial, establish (timed), one
// echo round trip, close — through one shared middlebox host and one
// shared origin host. Each worker's first session per level is a full
// handshake run before the clock starts; the measured sessions redeem
// and re-collect chain tickets the way a production client does, so
// the rows exercise admission, the handshake gate, resumption, and
// teardown together. The keyshare pool's whole-run hit rate gates the
// result: a sag there means the pool is under-provisioned for the
// shard count.
func RunSessions(opts SessionsOptions) (*SessionsReport, error) {
	levels := opts.Levels
	if len(levels) == 0 {
		levels = SessionsLevels
	}
	perWorker := opts.SessionsPerWorker
	if perWorker <= 0 {
		perWorker = 8
	}
	payloadBytes := opts.PayloadBytes
	if payloadBytes <= 0 {
		payloadBytes = 4096
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if opts.Quick {
		levels = []int{4}
		perWorker = 2
	}
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}

	env, err := newSessionsEnv(maxLevel, shards, opts.Transport)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	payload := core.RandomPlaintext(payloadBytes)
	rep := &SessionsReport{Shards: shards, Transport: env.trName}
	for _, level := range levels {
		row, err := sessionsLevel(env, level, perWorker, payload)
		if err != nil {
			return nil, fmt.Errorf("sessions level %d: %w", level, err)
		}
		rep.Sweep = append(rep.Sweep, row)
	}
	if st := env.ksPool.Stats(); !opts.Quick && st.Hits+st.Misses > 0 && st.HitRate() < 0.90 {
		return nil, fmt.Errorf("sessions: keyshare pool hit rate %.3f below the 0.90 gate "+
			"(capacity %d, workers %d — pool under-provisioned for %d shard(s))",
			st.HitRate(), st.Capacity, st.Workers, shards)
	}
	return rep, nil
}

// sessionsLevel drives one concurrency level and reduces its timings.
func sessionsLevel(env *sessionsEnv, level, perWorker int, payload []byte) (SessionsRow, error) {
	row := SessionsRow{Concurrency: level}
	latencies := make([]time.Duration, 0, level*perWorker)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, level)

	// Stats deltas start before seeding: the seed burst is exactly the
	// load the keyshare pool exists to absorb, so it belongs in the
	// level's hit rate even though its latency is not measured.
	ksBefore := env.ksPool.Stats()
	vcBefore := env.chainVC.Stats()
	poolBefore := env.bufPool.Stats()

	// Seed every worker's chain ticket with one full session before the
	// clock starts; each measured session then redeems the previous
	// one's reissue.
	seeds := make([]*core.ChainTicket, level)
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, _, err := env.oneSession(fmt.Sprintf("seed-%d", w), nil, &seeds[w], payload); err != nil {
				select {
				case errs <- fmt.Errorf("worker %d seed: %w", w, err):
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return row, err
	default:
	}

	start := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ct := seeds[w]
			local := make([]time.Duration, 0, perWorker)
			var rp, rh int64
			for i := 0; i < perWorker; i++ {
				hs, st, err := env.oneSession(fmt.Sprintf("worker-%d-%d", w, i), ct, &ct, payload)
				if err != nil {
					select {
					case errs <- fmt.Errorf("worker %d session %d: %w", w, i, err):
					default:
					}
					return
				}
				local = append(local, hs)
				rp += st.ResumedPrimary
				rh += st.ResumedHops
			}
			mu.Lock()
			latencies = append(latencies, local...)
			row.ResumedPrimary += rp
			row.ResumedHops += rh
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return row, err
	default:
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	row.Sessions = len(latencies)
	row.SessionsPerSec = float64(row.Sessions) / elapsed.Seconds()
	row.HandshakeP50Ms = float64(percentileDuration(latencies, 0.50)) / float64(time.Millisecond)
	row.HandshakeP99Ms = float64(percentileDuration(latencies, 0.99)) / float64(time.Millisecond)
	ksAfter := env.ksPool.Stats()
	if served := (ksAfter.Hits + ksAfter.Misses) - (ksBefore.Hits + ksBefore.Misses); served > 0 {
		row.KeyShareHitRate = float64(ksAfter.Hits-ksBefore.Hits) / float64(served)
	}
	vcAfter := env.chainVC.Stats()
	if looked := (vcAfter.Hits + vcAfter.Misses) - (vcBefore.Hits + vcBefore.Misses); looked > 0 {
		row.VerifyCacheHitRate = float64(vcAfter.Hits-vcBefore.Hits) / float64(looked)
	}
	poolAfter := env.bufPool.Stats()
	if gets := poolAfter.Gets - poolBefore.Gets; gets > 0 {
		row.PoolHitRate = float64(poolAfter.Hits-poolBefore.Hits) / float64(gets)
	}
	return row, nil
}

// oneSession runs a complete client session through the middlebox
// host: redeem (optional), establish (timed), echo round trip, close.
// *ctOut receives the session's reissued chain ticket.
func (e *sessionsEnv) oneSession(clientName string, redeem *core.ChainTicket,
	ctOut **core.ChainTicket, payload []byte) (time.Duration, core.SessionStats, error) {

	conn, err := e.dialMB()
	if err != nil {
		return 0, core.SessionStats{}, fmt.Errorf("%s: %w", clientName, err)
	}
	ccfg := e.clientConfig(redeem, func(c *core.ChainTicket) { *ctOut = c })
	start := time.Now()
	sess, err := core.Dial(conn, ccfg)
	if err != nil {
		conn.Close()
		return 0, core.SessionStats{}, err
	}
	hs := time.Since(start)
	defer sess.Close()
	if _, err := sess.Write(payload); err != nil {
		return 0, core.SessionStats{}, err
	}
	buf := make([]byte, len(payload))
	for total := 0; total < len(buf); {
		nr, err := sess.Read(buf[total:])
		total += nr
		if err != nil {
			return 0, core.SessionStats{}, err
		}
	}
	return hs, sess.Stats(), nil
}

// percentileDuration returns the p-quantile of an already-sorted
// slice (nearest-rank).
func percentileDuration(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteSessionsJSON writes the report as the machine-readable baseline
// (BENCH_sessions.json) so future runtime changes can track the
// concurrency trajectory and the soak envelope.
func WriteSessionsJSON(path string, rep *SessionsReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSessions renders the report.
func FormatSessions(rep *SessionsReport) string {
	var b strings.Builder
	tr := rep.Transport
	if tr == "" {
		tr = TransportNetsim
	}
	fmt.Fprintf(&b, "Session host: concurrent full-session throughput (%d shard(s), %s transport)\n", rep.Shards, tr)
	fmt.Fprintf(&b, "%-12s | %9s | %13s | %9s | %9s | %8s | %7s | %7s | %9s\n",
		"Concurrency", "Sessions", "Sessions/sec", "HS p50", "HS p99", "Resumed", "KS hit", "VC hit", "Pool hit")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 110))
	for _, r := range rep.Sweep {
		fmt.Fprintf(&b, "%-12d | %9d | %13.1f | %7.2fms | %7.2fms | %8d | %6.0f%% | %6.0f%% | %8.0f%%\n",
			r.Concurrency, r.Sessions, r.SessionsPerSec,
			r.HandshakeP50Ms, r.HandshakeP99Ms, r.ResumedPrimary,
			100*r.KeyShareHitRate, 100*r.VerifyCacheHitRate, 100*r.PoolHitRate)
	}
	if rep.Soak != nil {
		b.WriteString("\n")
		b.WriteString(FormatSoak(rep.Soak))
	}
	return b.String()
}
