package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/hsfast"
	"repro/internal/netsim"
	"repro/internal/sessionhost"
	"repro/internal/tls12"
)

// HandshakeLevels is the default concurrency sweep for the handshake
// fast-path bench. The 16-way level is the acceptance point: resumed
// chains must sustain at least twice the sessions/sec of full chains
// at half the p50.
var HandshakeLevels = []int{4, 16}

// HandshakeRow is one (accountability, mode, concurrency) cell of the
// fast-path bench.
type HandshakeRow struct {
	// Accountability is the negotiated accountability mode: "attest"
	// (enclave quotes during the secondary handshake) or "proxysig"
	// (delegation warrants at establishment, signed evidence at close).
	Accountability string `json:"accountability"`
	// Mode is "full" (complete chain handshakes) or "resumed"
	// (chain-ticket resumption of primary and hop).
	Mode string `json:"mode"`
	// Concurrency is how many workers ran sessions at once.
	Concurrency int `json:"concurrency"`
	// Sessions is the total number of completed sessions.
	Sessions int `json:"sessions"`
	// SessionsPerSec is sustained session throughput (handshake + one
	// echo round trip + teardown).
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// HandshakeP50Ms / HandshakeP99Ms are client-observed chain
	// establishment latency percentiles in milliseconds.
	HandshakeP50Ms float64 `json:"handshake_p50_ms"`
	HandshakeP99Ms float64 `json:"handshake_p99_ms"`
	// ResumedPrimary / ResumedHops count how many sessions actually
	// took the fast path (zero in full mode by construction).
	ResumedPrimary int64 `json:"resumed_primary"`
	ResumedHops    int64 `json:"resumed_hops"`
	// KeyShareHitRate is the middlebox keyshare pool's hit rate over
	// this cell; VerifyCacheHitRate is the client's chain-verification
	// cache hit rate.
	KeyShareHitRate    float64 `json:"keyshare_hit_rate"`
	VerifyCacheHitRate float64 `json:"verify_cache_hit_rate"`
	// SpeedupVsFull and P50RatioVsFull compare a resumed row against
	// the full row at the same concurrency (zero on full rows). The
	// acceptance gate: Speedup ≥ 2.0 and P50Ratio ≤ 0.5 at 16-way.
	SpeedupVsFull  float64 `json:"speedup_vs_full,omitempty"`
	P50RatioVsFull float64 `json:"p50_ratio_vs_full,omitempty"`
}

// HandshakeOptions tunes the run.
type HandshakeOptions struct {
	// Levels overrides the concurrency sweep.
	Levels []int
	// SessionsPerWorker is how many sequential sessions each worker
	// runs per cell (default 16).
	SessionsPerWorker int
	// Quick shrinks the run to a smoke test (one small level, few
	// sessions) for CI gating; ratios are still computed but not
	// meaningful at that scale.
	Quick bool
}

// handshakeEnv is the shared topology: one middlebox host per
// accountability mode (attest at "mb", proxysig at "mbp", each with its
// own STEK, sharing one keyshare pool) in front of one ticket-issuing
// origin host, plus the client-side caches every worker shares.
type handshakeEnv struct {
	n        *netsim.Network
	ca       *certs.CA
	verifier *enclave.Verifier
	ksPool   *hsfast.KeySharePool
	chainVC  *hsfast.VerifyCache
	mb       *core.Middlebox
	mbProxy  *core.Middlebox
	hosts    []*sessionhost.Host
}

// mbAddr is the netsim address of the middlebox running acct.
func mbAddr(acct core.Accountability) string {
	if acct == core.AccountProxySig {
		return "mbp"
	}
	return "mb"
}

func (e *handshakeEnv) Close() {
	for _, h := range e.hosts {
		h.Close() //nolint:errcheck
	}
	e.ksPool.Close()
}

func newHandshakeEnv(maxLevel int) (*handshakeEnv, error) {
	ca, err := certs.NewCA("handshake root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		return nil, err
	}
	authority, err := enclave.NewAuthority()
	if err != nil {
		return nil, err
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return nil, err
	}
	encl := platform.CreateEnclave(enclave.CodeImage{Name: "mbtls-proxy", Version: "1.0"})

	n := netsim.NewNetwork()
	srvLn, err := n.Listen("server")
	if err != nil {
		return nil, err
	}
	mbLn, err := n.Listen("mb")
	if err != nil {
		return nil, err
	}
	mbpLn, err := n.Listen("mbp")
	if err != nil {
		return nil, err
	}

	// Origin: issues primary tickets under its own rotating STEK.
	srvSTEK, err := hsfast.NewSTEK(time.Hour, nil)
	if err != nil {
		return nil, err
	}
	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert, EnableTickets: true, TicketKeys: srvSTEK},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  30 * time.Second,
	}
	srvHost, err := sessionhost.New(sessionhost.Config{
		Name:        "handshake-server",
		MaxSessions: 2 * maxLevel,
		Handler:     sessionhost.NewServerHandler(scfg, echoSession),
	})
	if err != nil {
		return nil, err
	}
	go srvHost.Serve(srvLn) //nolint:errcheck

	// Middlebox: enclave-attested, hop tickets under a host STEK,
	// ephemeral keys from the precompute pool.
	mbSTEK, err := hsfast.NewSTEK(time.Hour, nil)
	if err != nil {
		srvHost.Close() //nolint:errcheck
		return nil, err
	}
	ksPool := hsfast.NewKeySharePool(4*maxLevel, 2)
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name:        "mb.example",
		Mode:        core.ClientSide,
		Certificate: mbCert,
		Enclave:     encl,
		TicketKeys:  mbSTEK,
		KeyShares:   ksPool,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		ksPool.Close()
		return nil, err
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:        "handshake-mb",
		MaxSessions: 2 * maxLevel,
		Handler: sessionhost.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return n.Dial("mb", "server")
		}),
		MiddleboxStats: mb.Stats,
		KeySharePool:   ksPool,
		TicketKeys:     mbSTEK,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		ksPool.Close()
		return nil, err
	}
	go mbHost.Serve(mbLn) //nolint:errcheck

	// Proxysig twin: same certificate and keyshare pool, no enclave —
	// accountability comes from delegation warrants and signed evidence.
	mbpSTEK, err := hsfast.NewSTEK(time.Hour, nil)
	if err != nil {
		srvHost.Close() //nolint:errcheck
		mbHost.Close()  //nolint:errcheck
		ksPool.Close()
		return nil, err
	}
	mbProxy, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name:           "mb.example",
		Mode:           core.ClientSide,
		Certificate:    mbCert,
		Accountability: core.AccountProxySig,
		TicketKeys:     mbpSTEK,
		KeyShares:      ksPool,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		mbHost.Close()  //nolint:errcheck
		ksPool.Close()
		return nil, err
	}
	mbpHost, err := sessionhost.New(sessionhost.Config{
		Name:        "handshake-mbp",
		MaxSessions: 2 * maxLevel,
		Handler: sessionhost.NewMiddleboxHandler(mbProxy, func() (net.Conn, error) {
			return n.Dial("mbp", "server")
		}),
		MiddleboxStats: mbProxy.Stats,
		KeySharePool:   ksPool,
		TicketKeys:     mbpSTEK,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		mbHost.Close()  //nolint:errcheck
		ksPool.Close()
		return nil, err
	}
	go mbpHost.Serve(mbpLn) //nolint:errcheck

	return &handshakeEnv{
		n:  n,
		ca: ca,
		verifier: &enclave.Verifier{
			Authority: authority.PublicKey(),
			Cache:     hsfast.NewVerifyCache(64, time.Hour, nil),
		},
		ksPool:  ksPool,
		chainVC: hsfast.NewVerifyCache(64, time.Hour, nil),
		mb:      mb,
		mbProxy: mbProxy,
		hosts:   []*sessionhost.Host{srvHost, mbHost, mbpHost},
	}, nil
}

// clientConfig builds one session's client config for the given
// accountability mode. ct (optional) is the chain ticket to redeem;
// onTicket receives the reissued one.
func (e *handshakeEnv) clientConfig(acct core.Accountability, ct *core.ChainTicket, onTicket func(*core.ChainTicket)) *core.ClientConfig {
	cfg := &core.ClientConfig{
		TLS: &tls12.Config{
			RootCAs:     e.ca.Pool(),
			ServerName:  "origin.example",
			VerifyCache: e.chainVC,
		},
		Accountability:   acct,
		HandshakeTimeout: 30 * time.Second,
		ChainTicket:      ct,
		OnNewChainTicket: onTicket,
	}
	if acct == core.AccountAttest {
		cfg.RequireMiddleboxAttestation = true
		cfg.MiddleboxVerifier = e.verifier
	}
	return cfg
}

// handshakeAccts is the accountability-mode axis of the sweep.
var handshakeAccts = []core.Accountability{core.AccountAttest, core.AccountProxySig}

// RunHandshake measures the handshake fast path: full chain
// establishment (primary + middlebox hop, every signature and
// verification live) against chain-ticket resumption of the same
// topology, at each concurrency level and under each accountability
// mode. All cells share the running hosts, so the numbers isolate the
// handshake work itself; the attest-vs-proxysig comparison shows what
// each trust mechanism costs at establishment time.
func RunHandshake(opts HandshakeOptions) ([]HandshakeRow, error) {
	levels := opts.Levels
	if len(levels) == 0 {
		levels = HandshakeLevels
	}
	perWorker := opts.SessionsPerWorker
	if perWorker <= 0 {
		perWorker = 16
	}
	if opts.Quick {
		levels = []int{4}
		perWorker = 2
	}
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}

	env, err := newHandshakeEnv(maxLevel)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	payload := core.RandomPlaintext(256)
	var rows []HandshakeRow
	for _, acct := range handshakeAccts {
		for _, level := range levels {
			full, err := handshakeCell(env, acct, "full", level, perWorker, payload)
			if err != nil {
				return nil, fmt.Errorf("handshake %s/full@%d: %w", acct, level, err)
			}
			resumed, err := handshakeCell(env, acct, "resumed", level, perWorker, payload)
			if err != nil {
				return nil, fmt.Errorf("handshake %s/resumed@%d: %w", acct, level, err)
			}
			if resumed.ResumedPrimary == 0 || resumed.ResumedHops == 0 {
				return nil, fmt.Errorf("handshake %s/resumed@%d: no session took the fast path (%+v)", acct, level, resumed)
			}
			if full.SessionsPerSec > 0 {
				resumed.SpeedupVsFull = resumed.SessionsPerSec / full.SessionsPerSec
			}
			if full.HandshakeP50Ms > 0 {
				resumed.P50RatioVsFull = resumed.HandshakeP50Ms / full.HandshakeP50Ms
			}
			rows = append(rows, full, resumed)
		}
	}
	// Every proxysig session audits its middlebox at close; a cell that
	// completed without signed evidence would mean the mode silently
	// degraded, so fail loudly here rather than report hollow numbers.
	if env.mbProxy.Stats().EvidenceSigned == 0 {
		return nil, fmt.Errorf("handshake proxysig: no middlebox evidence was signed")
	}
	return rows, nil
}

// handshakeCell drives one (accountability, mode, concurrency) cell.
func handshakeCell(env *handshakeEnv, acct core.Accountability, mode string, level, perWorker int, payload []byte) (HandshakeRow, error) {
	row := HandshakeRow{Accountability: acct.String(), Mode: mode, Concurrency: level}
	latencies := make([]time.Duration, 0, level*perWorker)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, level)

	// Resumed mode: seed every worker's chain ticket with one full
	// session before the clock starts, so the measured window holds
	// only fast-path establishments; each resumed session then redeems
	// the previous one's reissue.
	seeds := make([]*core.ChainTicket, level)
	if mode == "resumed" {
		for w := 0; w < level; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, _, err := oneChainSession(env, acct, fmt.Sprintf("seed-%s-%d", acct, w), nil, &seeds[w], payload); err != nil {
					select {
					case errs <- fmt.Errorf("worker %d seed: %w", w, err):
					default:
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return row, err
		default:
		}
	}

	ksBefore := env.ksPool.Stats()
	vcBefore := env.chainVC.Stats()
	start := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ct := seeds[w]
			local := make([]time.Duration, 0, perWorker)
			var rp, rh int64
			for i := 0; i < perWorker; i++ {
				redeem := ct
				if mode != "resumed" {
					redeem = nil
				}
				hs, st, err := oneChainSession(env, acct, fmt.Sprintf("worker-%s-%s-%d-%d", acct, mode, w, i), redeem, &ct, payload)
				if err != nil {
					select {
					case errs <- fmt.Errorf("worker %d session %d: %w", w, i, err):
					default:
					}
					return
				}
				local = append(local, hs)
				rp += st.ResumedPrimary
				rh += st.ResumedHops
			}
			mu.Lock()
			latencies = append(latencies, local...)
			row.ResumedPrimary += rp
			row.ResumedHops += rh
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return row, err
	default:
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	row.Sessions = len(latencies)
	row.SessionsPerSec = float64(row.Sessions) / elapsed.Seconds()
	row.HandshakeP50Ms = float64(percentileDuration(latencies, 0.50)) / float64(time.Millisecond)
	row.HandshakeP99Ms = float64(percentileDuration(latencies, 0.99)) / float64(time.Millisecond)
	ksAfter := env.ksPool.Stats()
	if served := (ksAfter.Hits + ksAfter.Misses) - (ksBefore.Hits + ksBefore.Misses); served > 0 {
		row.KeyShareHitRate = float64(ksAfter.Hits-ksBefore.Hits) / float64(served)
	}
	vcAfter := env.chainVC.Stats()
	if looked := (vcAfter.Hits + vcAfter.Misses) - (vcBefore.Hits + vcBefore.Misses); looked > 0 {
		row.VerifyCacheHitRate = float64(vcAfter.Hits-vcBefore.Hits) / float64(looked)
	}
	return row, nil
}

// oneChainSession runs one complete client session under the given
// accountability mode, returning the chain establishment latency and
// the session's resumption counters. *ctOut is updated with the
// session's reissued chain ticket.
func oneChainSession(env *handshakeEnv, acct core.Accountability, clientName string, redeem *core.ChainTicket,
	ctOut **core.ChainTicket, payload []byte) (time.Duration, core.SessionStats, error) {

	conn, err := env.n.Dial(clientName, mbAddr(acct))
	if err != nil {
		return 0, core.SessionStats{}, err
	}
	ccfg := env.clientConfig(acct, redeem, func(c *core.ChainTicket) { *ctOut = c })
	start := time.Now()
	sess, err := core.Dial(conn, ccfg)
	if err != nil {
		conn.Close()
		return 0, core.SessionStats{}, err
	}
	hs := time.Since(start)
	defer sess.Close()
	if _, err := sess.Write(payload); err != nil {
		return 0, core.SessionStats{}, err
	}
	buf := make([]byte, len(payload))
	for total := 0; total < len(buf); {
		nr, err := sess.Read(buf[total:])
		total += nr
		if err != nil {
			return 0, core.SessionStats{}, err
		}
	}
	return hs, sess.Stats(), nil
}

// WriteHandshakeJSON writes the rows as the machine-readable baseline
// (BENCH_handshake.json) gating the fast path's ≥2× throughput and
// ≤0.5× p50 acceptance at 16-way concurrency.
func WriteHandshakeJSON(path string, rows []HandshakeRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatHandshake renders the sweep.
func FormatHandshake(rows []HandshakeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Handshake fast path: full vs chain-ticket-resumed establishment, attest vs proxysig\n")
	fmt.Fprintf(&b, "%-8s | %-8s | %-11s | %8s | %13s | %9s | %9s | %7s | %7s | %8s\n",
		"Acct", "Mode", "Concurrency", "Sessions", "Sessions/sec", "HS p50", "HS p99", "KS hit", "VC hit", "Speedup")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 114))
	for _, r := range rows {
		speedup := ""
		if r.SpeedupVsFull > 0 {
			speedup = fmt.Sprintf("%.2fx", r.SpeedupVsFull)
		}
		fmt.Fprintf(&b, "%-8s | %-8s | %-11d | %8d | %13.1f | %7.2fms | %7.2fms | %6.0f%% | %6.0f%% | %8s\n",
			r.Accountability, r.Mode, r.Concurrency, r.Sessions, r.SessionsPerSec,
			r.HandshakeP50Ms, r.HandshakeP99Ms,
			100*r.KeyShareHitRate, 100*r.VerifyCacheHitRate, speedup)
	}
	return b.String()
}
