package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// TransportSessionsRow compares one concurrency level of the sessions
// sweep across backends.
type TransportSessionsRow struct {
	Concurrency          int     `json:"concurrency"`
	NetsimSessionsPerSec float64 `json:"netsim_sessions_per_sec"`
	TCPSessionsPerSec    float64 `json:"tcp_sessions_per_sec"`
	NetsimHandshakeP50Ms float64 `json:"netsim_handshake_p50_ms"`
	TCPHandshakeP50Ms    float64 `json:"tcp_handshake_p50_ms"`
	// Ratio is real/simulated session throughput — how much of the
	// in-memory rate survives kernel sockets.
	Ratio float64 `json:"tcp_over_netsim"`
}

// TransportFig7Row compares one fig7 data-plane cell across backends.
type TransportFig7Row struct {
	Encryption bool    `json:"encryption"`
	BufSize    int     `json:"buf_size"`
	NetsimGbps float64 `json:"netsim_gbps"`
	TCPGbps    float64 `json:"tcp_gbps"`
	Ratio      float64 `json:"tcp_over_netsim"`
}

// TransportReport is the simulated-vs-real comparison
// BENCH_transport.json holds: the same session and data-plane sweeps
// run over netsim pipes and over loopback kernel TCP.
type TransportReport struct {
	Shards   int                    `json:"shards"`
	Sessions []TransportSessionsRow `json:"sessions"`
	Fig7     []TransportFig7Row     `json:"fig7"`
}

// RunTransportCompare runs restricted sessions and fig7 sweeps on both
// backends and pairs the rows. The sweeps are the same code paths as
// `mbtls-bench sessions` / `fig7` — only the levels are narrowed, so
// the comparison stays cheap enough for verify.sh's -quick smoke.
func RunTransportCompare(quick bool) (*TransportReport, error) {
	levels := []int{16, 64}
	perWorker := 4
	bufSizes := []int{2048, 8192}
	window := 150 * time.Millisecond
	if quick {
		levels = []int{4}
		perWorker = 2
		bufSizes = []int{4096}
		window = 60 * time.Millisecond
	}

	rep := &TransportReport{Shards: runtime.GOMAXPROCS(0)}

	bySessions := map[string]*SessionsReport{}
	for _, tr := range []string{TransportNetsim, TransportTCP} {
		r, err := RunSessions(SessionsOptions{
			Levels:            levels,
			SessionsPerWorker: perWorker,
			Transport:         tr,
			Quick:             quick,
		})
		if err != nil {
			return nil, fmt.Errorf("transport compare: sessions over %s: %w", tr, err)
		}
		bySessions[tr] = r
	}
	sim, real := bySessions[TransportNetsim], bySessions[TransportTCP]
	for i := range sim.Sweep {
		if i >= len(real.Sweep) {
			break
		}
		row := TransportSessionsRow{
			Concurrency:          sim.Sweep[i].Concurrency,
			NetsimSessionsPerSec: sim.Sweep[i].SessionsPerSec,
			TCPSessionsPerSec:    real.Sweep[i].SessionsPerSec,
			NetsimHandshakeP50Ms: sim.Sweep[i].HandshakeP50Ms,
			TCPHandshakeP50Ms:    real.Sweep[i].HandshakeP50Ms,
		}
		if row.NetsimSessionsPerSec > 0 {
			row.Ratio = row.TCPSessionsPerSec / row.NetsimSessionsPerSec
		}
		rep.Sessions = append(rep.Sessions, row)
	}

	byFig7 := map[string][]Fig7Cell{}
	for _, tr := range []string{TransportNetsim, TransportTCP} {
		cells, err := RunFig7(Fig7Options{
			Window:    window,
			BufSizes:  bufSizes,
			Transport: tr,
		})
		if err != nil {
			return nil, fmt.Errorf("transport compare: fig7 over %s: %w", tr, err)
		}
		byFig7[tr] = cells
	}
	find := func(cells []Fig7Cell, enc bool, size int) *Fig7Cell {
		for i := range cells {
			if cells[i].Encryption == enc && !cells[i].Enclave && cells[i].BufSize == size {
				return &cells[i]
			}
		}
		return nil
	}
	for _, enc := range []bool{false, true} {
		for _, size := range bufSizes {
			s := find(byFig7[TransportNetsim], enc, size)
			r := find(byFig7[TransportTCP], enc, size)
			if s == nil || r == nil {
				continue
			}
			row := TransportFig7Row{
				Encryption: enc,
				BufSize:    size,
				NetsimGbps: s.Gbps,
				TCPGbps:    r.Gbps,
			}
			if row.NetsimGbps > 0 {
				row.Ratio = row.TCPGbps / row.NetsimGbps
			}
			rep.Fig7 = append(rep.Fig7, row)
		}
	}
	return rep, nil
}

// WriteTransportJSON writes the comparison as the machine-readable
// baseline (BENCH_transport.json).
func WriteTransportJSON(path string, rep *TransportReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatTransport renders the comparison.
func FormatTransport(rep *TransportReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transport: simulated (netsim) vs real (loopback TCP), %d shard(s)\n\n", rep.Shards)
	fmt.Fprintf(&b, "Sessions sweep (full establish + echo + teardown)\n")
	fmt.Fprintf(&b, "%-12s | %16s | %13s | %12s | %9s | %6s\n",
		"Concurrency", "netsim sess/s", "tcp sess/s", "netsim p50", "tcp p50", "ratio")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 84))
	for _, r := range rep.Sessions {
		fmt.Fprintf(&b, "%-12d | %16.1f | %13.1f | %10.2fms | %7.2fms | %5.2fx\n",
			r.Concurrency, r.NetsimSessionsPerSec, r.TCPSessionsPerSec,
			r.NetsimHandshakeP50Ms, r.TCPHandshakeP50Ms, r.Ratio)
	}
	fmt.Fprintf(&b, "\nFig7 data plane (middlebox throughput, no enclave)\n")
	fmt.Fprintf(&b, "%-14s | %8s | %12s | %9s | %6s\n",
		"Encryption", "Buffer", "netsim Gbps", "tcp Gbps", "ratio")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 62))
	for _, r := range rep.Fig7 {
		fmt.Fprintf(&b, "%-14v | %8s | %12.2f | %9.2f | %5.2fx\n",
			r.Encryption, byteSize(r.BufSize), r.NetsimGbps, r.TCPGbps, r.Ratio)
	}
	return b.String()
}
