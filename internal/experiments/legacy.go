package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/mbapps"
	"repro/internal/netsim"
	"repro/internal/population"
	"repro/internal/tls12"
)

// LegacyResult aggregates the §5.1 legacy-interoperability run.
type LegacyResult struct {
	Counts map[population.Outcome]int
	Total  int
}

// LegacyOptions tunes the run.
type LegacyOptions struct {
	// Parallelism bounds concurrent fetches (0 = 16).
	Parallelism int
}

// RunLegacy reproduces §5.1 "Legacy Interoperability": an mbTLS client,
// restricted to AES-256-GCM like the paper's prototype, fetches the
// root document of each of 385 synthetic HTTPS sites through the
// prototype header-inserting proxy middlebox. Sites are unmodified
// legacy TLS servers; the population reproduces the paper's failure
// classes.
func RunLegacy(opts LegacyOptions) (*LegacyResult, error) {
	ca, err := certs.NewCA("legacy experiment root")
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("proxy.example", []string{"proxy.example"}, nil)
	if err != nil {
		return nil, err
	}

	par := opts.Parallelism
	if par <= 0 {
		par = 16
	}
	sem := make(chan struct{}, par)

	sites := population.Sites()
	result := &LegacyResult{Counts: make(map[population.Outcome]int), Total: len(sites)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, site := range sites {
		wg.Add(1)
		go func(site population.Site) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcome := fetchSite(ca, mbCert, site)
			mu.Lock()
			result.Counts[outcome]++
			mu.Unlock()
		}(site)
	}
	wg.Wait()
	return result, nil
}

// fetchSite performs one fetch through the proxy middlebox and
// classifies the outcome the way the paper's client did.
func fetchSite(ca *certs.CA, mbCert *tls12.Certificate, site population.Site) population.Outcome {
	behavior, err := population.Materialize(ca, site)
	if err != nil {
		return population.OutcomeUnknown
	}

	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Mode:        core.ClientSide,
		Certificate: mbCert,
		NewProcessor: func() core.Processor {
			return mbapps.NewHeaderInserter("Via", "1.1 mbtls-proxy")
		},
	})
	if err != nil {
		return population.OutcomeUnknown
	}
	clientEnd, mbDown := netsim.Pipe()
	mbUp, serverEnd := netsim.Pipe()
	go mb.Handle(mbDown, mbUp) //nolint:errcheck

	// The legacy site.
	go func() {
		defer serverEnd.Close()
		if behavior.Broken {
			// Reset mid-handshake: read a little, then vanish.
			buf := make([]byte, 64)
			serverEnd.Read(buf) //nolint:errcheck
			return
		}
		conn := tls12.NewServerConn(serverEnd, &tls12.Config{
			Certificate:  behavior.Certificate,
			CipherSuites: behavior.CipherSuites,
		})
		if err := conn.Handshake(); err != nil {
			return
		}
		httpx.Serve(conn, func(req *httpx.Request) *httpx.Response { //nolint:errcheck
			if behavior.Redirect != "" && req.Path == "/" {
				return &httpx.Response{
					StatusCode: 302,
					Header:     httpx.Header{"Location": behavior.Redirect},
				}
			}
			return &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: behavior.Body}
		})
	}()

	// The paper's prototype client: mbTLS with AES-256-GCM only.
	sess, err := core.Dial(clientEnd, &core.ClientConfig{
		TLS: &tls12.Config{
			RootCAs:      ca.Pool(),
			ServerName:   site.Name,
			CipherSuites: []uint16{tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384},
		},
	})
	if err != nil {
		return classifyDialError(err)
	}
	defer sess.Close()

	resp, err := httpx.Do(sess, &httpx.Request{Method: "GET", Path: "/", Host: site.Name, Header: httpx.Header{}})
	if err != nil {
		return population.OutcomeUnknown
	}
	switch {
	case resp.StatusCode == 200 && len(resp.Body) > 0:
		return population.OutcomeSuccess
	case resp.StatusCode == 301 || resp.StatusCode == 302:
		// The experiment's simple proxy plumbing does not follow
		// cross-host redirects — the same limitation as the paper's
		// SOCKS implementation.
		return population.OutcomeRedirect
	default:
		return population.OutcomeUnknown
	}
}

// classifyDialError maps handshake failures onto §5.1's categories.
func classifyDialError(err error) population.Outcome {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "certificate") || strings.Contains(msg, "x509") ||
		strings.Contains(msg, "unknown_ca") || strings.Contains(msg, "expired"):
		return population.OutcomeBadCert
	case strings.Contains(msg, "handshake_failure") || strings.Contains(msg, "cipher suite"):
		return population.OutcomeNoCipher
	default:
		return population.OutcomeUnknown
	}
}

// FormatLegacy renders the outcome breakdown next to the paper's.
func FormatLegacy(r *LegacyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.1 Legacy Interoperability — Alexa-style population fetch via mbTLS proxy\n")
	fmt.Fprintf(&b, "%-38s | %-8s | %-8s\n", "Outcome", "Measured", "Paper")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 62))
	rows := []struct {
		o     population.Outcome
		paper int
	}{
		{population.OutcomeSuccess, population.ExpectSuccess},
		{population.OutcomeBadCert, population.ExpectBadCert},
		{population.OutcomeNoCipher, population.ExpectNoCipher},
		{population.OutcomeRedirect, population.ExpectRedirect},
		{population.OutcomeUnknown, population.ExpectUnknown},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-38s | %8d | %8d\n", row.o, r.Counts[row.o], row.paper)
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 62))
	fmt.Fprintf(&b, "%-38s | %8d | %8d\n", "Total HTTPS sites", r.Total, population.HTTPSSites)
	return b.String()
}
