package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sessionhost"
)

// SoakOptions tunes the idle-session soak.
type SoakOptions struct {
	// Sessions is how many live idle sessions to hold (default 20000).
	Sessions int
	// Shards overrides the host's shard count (default GOMAXPROCS).
	Shards int
}

// SoakRow is the soak's result: can the sharded host hold tens of
// thousands of live idle sessions with flat admission latency and
// bounded per-session memory, and then drain them all promptly?
type SoakRow struct {
	// Sessions is how many sessions were admitted and held live.
	Sessions int `json:"sessions"`
	// Shards is the host's shard count.
	Shards int `json:"shards"`
	// AdmitP50Us / AdmitP99Us are per-Submit admission latency
	// percentiles in microseconds, measured across every admission
	// while the registry grows to its full size.
	AdmitP50Us float64 `json:"admit_p50_us"`
	AdmitP99Us float64 `json:"admit_p99_us"`
	// BytesPerSession is steady-state heap growth divided by session
	// count (GC-settled before and after admission).
	BytesPerSession float64 `json:"bytes_per_session"`
	// HeapSteadyMB is the absolute GC-settled heap with every session
	// live, for eyeballing the envelope.
	HeapSteadyMB float64 `json:"heap_steady_mb"`
	// DrainMs is how long Shutdown took to drain every live session.
	DrainMs float64 `json:"drain_ms"`
	// ForceClosed counts sessions the drain deadline had to kill
	// (zero: idle handlers exit on the drain signal).
	ForceClosed uint64 `json:"force_closed"`
	// LeakedGoroutines is the goroutine-count delta once the host shut
	// down (zero after a clean drain).
	LeakedGoroutines int `json:"leaked_goroutines"`
}

// soakConn is the cheapest possible net.Conn: the soak measures the
// host's registry, admission path, and drain fan-out, so the transport
// under each session is deliberately inert.
type soakConn struct{}

type soakAddr struct{}

func (soakAddr) Network() string { return "soak" }
func (soakAddr) String() string  { return "soak" }

func (soakConn) Read([]byte) (int, error)        { return 0, io.EOF }
func (soakConn) Write(p []byte) (int, error)     { return len(p), nil }
func (soakConn) Close() error                    { return nil }
func (soakConn) LocalAddr() net.Addr             { return soakAddr{} }
func (soakConn) RemoteAddr() net.Addr            { return soakAddr{} }
func (soakConn) SetDeadline(time.Time) error     { return nil }
func (soakConn) SetReadDeadline(time.Time) error { return nil }
func (soakConn) SetWriteDeadline(time.Time) error {
	return nil
}

// RunSoak admits opts.Sessions idle sessions into one sharded host and
// holds them all live: each handler establishes immediately and then
// parks until released or draining, standing in for the long-lived
// mostly-idle sessions (§5) a deployed middlebox accumulates. It
// reports admission latency percentiles across the fill, GC-settled
// memory per session, and the drain time for the full registry. The
// admission-latency and leak numbers are asserted here — a soak that
// can't admit in microseconds or leaks goroutines is a failure, not a
// data point.
func RunSoak(opts SoakOptions) (*SoakRow, error) {
	count := opts.Sessions
	if count <= 0 {
		count = 20000
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	release := make(chan struct{})
	var established sync.WaitGroup
	handler := sessionhost.HandlerFunc(func(ctl *sessionhost.Control, conn net.Conn) error {
		ctl.SessionEstablished()
		established.Done()
		select {
		case <-release:
		case <-ctl.Draining():
		}
		return nil
	})
	host, err := sessionhost.New(sessionhost.Config{
		Name:        "soak",
		MaxSessions: count,
		Shards:      shards,
		Handler:     handler,
	})
	if err != nil {
		return nil, err
	}

	gBefore := runtime.NumGoroutine()
	var before runtime.MemStats
	gcSettle()
	runtime.ReadMemStats(&before)

	admits := make([]time.Duration, count)
	established.Add(count)
	for i := 0; i < count; i++ {
		t0 := time.Now()
		err := host.Submit(soakConn{})
		admits[i] = time.Since(t0)
		if err != nil {
			close(release)
			host.Close() //nolint:errcheck
			return nil, fmt.Errorf("soak: admission %d/%d refused: %w", i+1, count, err)
		}
	}
	established.Wait()

	var steady runtime.MemStats
	gcSettle()
	runtime.ReadMemStats(&steady)

	m := host.Snapshot()
	if m.ActiveSessions != count {
		close(release)
		host.Close() //nolint:errcheck
		return nil, fmt.Errorf("soak: %d sessions live at steady state, want %d", m.ActiveSessions, count)
	}

	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = host.Shutdown(ctx)
	cancel()
	drain := time.Since(drainStart)
	close(release)
	if err != nil {
		return nil, fmt.Errorf("soak: drain of %d idle sessions hit the deadline: %w", count, err)
	}

	// The host guarantees no session goroutine survives Shutdown; give
	// unrelated runtime goroutines a beat to settle before accounting.
	leaked := 0
	for wait := time.Now(); ; {
		leaked = runtime.NumGoroutine() - gBefore
		if leaked <= 0 || time.Since(wait) > 5*time.Second {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if leaked > 0 {
		return nil, fmt.Errorf("soak: %d goroutine(s) leaked past Shutdown", leaked)
	}

	sort.Slice(admits, func(i, j int) bool { return admits[i] < admits[j] })
	row := &SoakRow{
		Sessions:     count,
		Shards:       host.Shards(),
		AdmitP50Us:   float64(percentileDuration(admits, 0.50)) / float64(time.Microsecond),
		AdmitP99Us:   float64(percentileDuration(admits, 0.99)) / float64(time.Microsecond),
		HeapSteadyMB: float64(steady.HeapAlloc) / (1 << 20),
		DrainMs:      float64(drain) / float64(time.Millisecond),
		ForceClosed:  host.Snapshot().ForceClosed,
	}
	if steady.HeapAlloc > before.HeapAlloc {
		row.BytesPerSession = float64(steady.HeapAlloc-before.HeapAlloc) / float64(count)
	}
	if p99 := time.Duration(row.AdmitP99Us * float64(time.Microsecond)); p99 >= 5*time.Millisecond {
		return nil, fmt.Errorf("soak: admission p99 %v breaches the 5ms bound", p99)
	}
	return row, nil
}

// gcSettle runs two GC cycles so sync.Pool victim caches (which
// survive exactly one cycle) don't inflate a heap baseline taken right
// after a churn-heavy phase.
func gcSettle() {
	runtime.GC()
	runtime.GC()
}

// FormatSoak renders the soak result.
func FormatSoak(r *SoakRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Session host: idle-session soak (%d shard(s))\n", r.Shards)
	fmt.Fprintf(&b, "%-10s | %10s | %10s | %10s | %10s | %9s | %7s\n",
		"Sessions", "Admit p50", "Admit p99", "B/session", "Heap", "Drain", "Leaked")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 84))
	fmt.Fprintf(&b, "%-10d | %8.1fus | %8.1fus | %10.0f | %8.1fMB | %7.1fms | %7d\n",
		r.Sessions, r.AdmitP50Us, r.AdmitP99Us, r.BytesPerSession,
		r.HeapSteadyMB, r.DrainMs, r.LeakedGoroutines)
	return b.String()
}
