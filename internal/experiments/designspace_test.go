package experiments

import (
	"strings"
	"testing"
)

// TestDesignSpaceConsistency checks every protocol has a position on
// every dimension and positions come from the dimension's options.
func TestDesignSpaceConsistency(t *testing.T) {
	dims := DesignSpace()
	if len(dims) < 9 {
		t.Fatalf("design space has %d dimensions, want the paper's 9", len(dims))
	}
	for _, d := range dims {
		for _, proto := range DesignProtocols {
			pos, ok := d.Position[proto]
			if !ok {
				t.Errorf("%s: no position for %s", d.Name, proto)
				continue
			}
			found := false
			for _, opt := range d.Options {
				if strings.HasPrefix(pos, opt) || strings.HasPrefix(opt, strings.SplitN(pos, " ", 2)[0]) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: position %q for %s not among options %v", d.Name, pos, proto, d.Options)
			}
		}
	}
}

// TestDesignSpaceProbes runs every live probe; all probed cells must
// be verified by the implementations.
func TestDesignSpaceProbes(t *testing.T) {
	probes := 0
	for _, d := range DesignSpace() {
		for proto, probe := range d.Probes {
			probes++
			ok, detail := probe()
			if !ok {
				t.Errorf("%s / %s: probe failed: %s", d.Name, proto, detail)
			}
		}
	}
	if probes < 7 {
		t.Fatalf("only %d live probes; expected at least 7 cells backed by experiments", probes)
	}
}

// TestDesignSpaceTradeoffs encodes §2.2's takeaway: no protocol wins
// every dimension — each one gives something up.
func TestDesignSpaceTradeoffs(t *testing.T) {
	dims := DesignSpace()
	best := map[string]string{
		"Granularity of data access": "RW/RO/None",
		"Path integrity":             "yes",
		"Legacy endpoints":           "both legacy",
		"In-band discovery":          "yes",
		"Computation":                "arbitrary",
	}
	for _, proto := range DesignProtocols {
		winsAll := true
		for _, d := range dims {
			want, tracked := best[d.Name]
			if !tracked {
				continue
			}
			if !strings.HasPrefix(d.Position[proto], want) {
				winsAll = false
				break
			}
		}
		if winsAll {
			t.Fatalf("%s occupies the best option on every tracked dimension — contradicts the paper's 'no one-size-fits-all' takeaway", proto)
		}
	}
}

func TestFormatDesignSpace(t *testing.T) {
	out := FormatDesignSpace(DesignSpace())
	for _, want := range []string{"Path integrity", "mbTLS", "BlindBox", "verified live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PROBE FAILED") {
		t.Fatalf("design-space probe failed:\n%s", out)
	}
}
