// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5). Each driver runs the experiment against the
// real protocol implementation over the simulated substrates and
// returns structured results plus a formatted report matching the
// paper's presentation. The cmd/mbtls-bench binary and the test suite
// both consume these drivers; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"time"
)

// Stat is a mean with a 95% confidence interval, the form the paper's
// Figures 5 and 6 report ("error bars show a 95% confidence interval
// of the mean"). Min is retained as the noise-robust estimator for
// latency comparisons: scheduler interference only ever adds latency,
// so minima compare protocols cleanly even on loaded machines.
type Stat struct {
	Mean time.Duration
	CI95 time.Duration
	Min  time.Duration
	N    int
}

// newStat computes mean, normal-approximation 95% CI, and minimum.
func newStat(samples []time.Duration) Stat {
	if len(samples) == 0 {
		return Stat{}
	}
	var sum float64
	min := samples[0]
	for _, s := range samples {
		sum += float64(s)
		if s < min {
			min = s
		}
	}
	mean := sum / float64(len(samples))
	var sq float64
	for _, s := range samples {
		d := float64(s) - mean
		sq += d * d
	}
	var ci float64
	if len(samples) > 1 {
		stddev := math.Sqrt(sq / float64(len(samples)-1))
		ci = 1.96 * stddev / math.Sqrt(float64(len(samples)))
	}
	return Stat{Mean: time.Duration(mean), CI95: time.Duration(ci), Min: min, N: len(samples)}
}

// Ms renders the stat in milliseconds.
func (s Stat) Ms() string {
	return fmt.Sprintf("%7.3f ±%6.3f ms", float64(s.Mean)/1e6, float64(s.CI95)/1e6)
}
