package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// Table2Row is one network-type row of the handshake-viability
// experiment.
type Table2Row struct {
	Type      netsim.NetworkType
	Sites     int
	Succeeded int
	// Failures lists per-site failure descriptions (empty when all
	// handshakes succeed, as in the paper).
	Failures []string
}

// Table2Options tunes the run.
type Table2Options struct {
	// Parallelism bounds concurrent sites (0 = 8).
	Parallelism int
	// InjectStrictDPI adds a record-type-allowlisting DPI at every
	// site, demonstrating the harness detects blocking networks
	// (no network in the paper's measurement did this).
	InjectStrictDPI bool
}

// RunTable2 reproduces Table 2 (§5.1 "Handshake Viability"): from each
// of 241 client networks — each modeled with the filter stack typical
// of its type — perform an mbTLS handshake through a client-side
// middlebox to a server, with the new record types traversing the
// filtered client network.
func RunTable2(opts Table2Options) ([]Table2Row, error) {
	ca, err := certs.NewCA("table2 root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("server.example", []string{"server.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mbox.example", []string{"mbox.example"}, nil)
	if err != nil {
		return nil, err
	}

	par := opts.Parallelism
	if par <= 0 {
		par = 8
	}
	sem := make(chan struct{}, par)

	rows := make([]Table2Row, len(netsim.Table2Sites))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ti, entry := range netsim.Table2Sites {
		rows[ti] = Table2Row{Type: entry.Type, Sites: entry.Sites}
		for i := 0; i < entry.Sites; i++ {
			wg.Add(1)
			go func(ti, i int, nt netsim.NetworkType) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				err := runTable2Site(ca, serverCert, mbCert, nt, i, opts.InjectStrictDPI)
				mu.Lock()
				if err == nil {
					rows[ti].Succeeded++
				} else {
					rows[ti].Failures = append(rows[ti].Failures, fmt.Sprintf("%s site %d: %v", nt, i, err))
				}
				mu.Unlock()
			}(ti, i, entry.Type)
		}
	}
	wg.Wait()
	return rows, nil
}

// runTable2Site performs one handshake + echo through the site's
// filter stack: client —[client network filters]— middlebox — server.
func runTable2Site(ca *certs.CA, serverCert, mbCert *tls12.Certificate, nt netsim.NetworkType, i int, strictDPI bool) error {
	specs := netsim.SiteFilters(nt, i)
	if strictDPI {
		specs = append(specs, netsim.FilterSpec{Kind: netsim.KindStrictDPI})
	}
	clientEnd, filteredEnd := netsim.FilteredLink(specs...)

	mb, err := core.NewMiddlebox(core.MiddleboxConfig{Mode: core.ClientSide, Certificate: mbCert})
	if err != nil {
		return err
	}
	upA, upB := netsim.Pipe()
	go mb.Handle(filteredEnd, upA) //nolint:errcheck

	serverDone := make(chan error, 1)
	go func() {
		sess, err := core.Accept(upB, &core.ServerConfig{TLS: &tls12.Config{Certificate: serverCert}})
		if err != nil {
			serverDone <- err
			return
		}
		defer sess.Close()
		buf := make([]byte, 16)
		if _, err := readFull(sess, buf); err != nil {
			serverDone <- err
			return
		}
		_, err = sess.Write(buf)
		serverDone <- err
	}()

	sess, err := core.Dial(clientEnd, &core.ClientConfig{
		TLS: &tls12.Config{RootCAs: ca.Pool(), ServerName: "server.example"},
	})
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	defer sess.Close()
	if len(sess.Middleboxes()) != 1 {
		return fmt.Errorf("middlebox did not join")
	}
	msg := []byte("viability probe!")
	if _, err := sess.Write(msg); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := readFull(sess, buf); err != nil {
		return fmt.Errorf("echo: %w", err)
	}
	if err := <-serverDone; err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

func readFull(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// FormatTable2 renders the rows in the paper's Table 2 shape.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Handshake Viability — mbTLS handshakes per client-network type\n")
	fmt.Fprintf(&b, "%-20s | %-7s | %-9s\n", "Network Type", "# Sites", "Succeeded")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 44))
	total, ok := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s | %7d | %9d\n", r.Type, r.Sites, r.Succeeded)
		total += r.Sites
		ok += r.Succeeded
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "    ! %s\n", f)
		}
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 44))
	fmt.Fprintf(&b, "%-20s | %7d | %9d\n", "Total", total, ok)
	return b.String()
}
