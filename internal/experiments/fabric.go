package experiments

import (
	"fmt"
	"net"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/transport/tcpx"
)

// Transport backend names accepted by the -transport bench flag.
const (
	TransportNetsim = "netsim"
	TransportTCP    = "tcp"
)

// connFab hands out transport-backed connection pairs for benches that
// build their topology from raw pipes (fig7's per-stream hops). The
// netsim flavor is a direct in-memory pipe; the tcp flavor runs one
// loopback listener and mints each pair with a real dial + accept, so
// the bytes cross the kernel exactly as in a deployment.
type connFab struct {
	tr transport.Transport // nil means netsim.Pipe
	ln net.Listener
}

func newConnFab(trName string) (*connFab, error) {
	switch trName {
	case "", TransportNetsim:
		return &connFab{}, nil
	case TransportTCP:
		tr := tcpx.Default()
		ln, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return &connFab{tr: tr, ln: ln}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown transport %q (want %s or %s)",
			trName, TransportNetsim, TransportTCP)
	}
}

// name reports which backend the fabric produces.
func (f *connFab) name() string {
	if f.tr == nil {
		return TransportNetsim
	}
	return f.tr.Name()
}

// pair returns two connected conns (local end first).
func (f *connFab) pair() (net.Conn, net.Conn, error) {
	if f.tr == nil {
		a, b := netsim.Pipe()
		return a, b, nil
	}
	type res struct {
		c   net.Conn
		err error
	}
	accepted := make(chan res, 1)
	go func() {
		c, err := f.ln.Accept()
		accepted <- res{c, err}
	}()
	c, err := f.tr.Dial(f.ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	r := <-accepted
	if r.err != nil {
		c.Close()
		return nil, nil, r.err
	}
	return c, r.c, nil
}

func (f *connFab) Close() {
	if f.ln != nil {
		f.ln.Close()
	}
}
