package experiments

import (
	"testing"
	"time"
)

// TestSessionsBenchSmoke runs the session-host sweep at a tiny
// configuration and checks the rows are well formed: every worker's
// sessions completed, throughput and percentiles are populated, and
// the percentiles are ordered.
func TestSessionsBenchSmoke(t *testing.T) {
	rows, err := RunSessions(SessionsOptions{
		Levels:            []int{2, 4},
		SessionsPerWorker: 2,
		PayloadBytes:      512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Sessions != r.Concurrency*2 {
			t.Errorf("level %d completed %d sessions, want %d", r.Concurrency, r.Sessions, r.Concurrency*2)
		}
		if r.SessionsPerSec <= 0 {
			t.Errorf("level %d throughput not measured", r.Concurrency)
		}
		if r.HandshakeP50Ms <= 0 || r.HandshakeP99Ms < r.HandshakeP50Ms {
			t.Errorf("level %d percentiles p50=%f p99=%f malformed", r.Concurrency, r.HandshakeP50Ms, r.HandshakeP99Ms)
		}
	}
}

// TestPercentileDuration pins the nearest-rank convention.
func TestPercentileDuration(t *testing.T) {
	if got := percentileDuration(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	var sorted []time.Duration
	for i := 1; i <= 10; i++ {
		sorted = append(sorted, time.Duration(i)*10*time.Millisecond)
	}
	if got := percentileDuration(sorted, 0.50); got != 60*time.Millisecond {
		t.Errorf("p50 of 10..100ms = %v, want 60ms", got)
	}
	if got := percentileDuration(sorted, 0.99); got != 100*time.Millisecond {
		t.Errorf("p99 of 10..100ms = %v, want 100ms", got)
	}
}
