package experiments

import (
	"testing"
	"time"
)

// TestSessionsBenchSmoke runs the session-host sweep at a tiny
// configuration and checks the rows are well formed: every worker's
// sessions completed, throughput and percentiles are populated, the
// percentiles are ordered, and the measured window actually rode the
// chain-ticket fast path.
func TestSessionsBenchSmoke(t *testing.T) {
	rep, err := RunSessions(SessionsOptions{
		Levels:            []int{2, 4},
		SessionsPerWorker: 2,
		PayloadBytes:      512,
		Quick:             false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Sweep))
	}
	if rep.Shards < 1 {
		t.Errorf("shards = %d, want >= 1", rep.Shards)
	}
	for _, r := range rep.Sweep {
		if r.Sessions != r.Concurrency*2 {
			t.Errorf("level %d completed %d sessions, want %d", r.Concurrency, r.Sessions, r.Concurrency*2)
		}
		if r.SessionsPerSec <= 0 {
			t.Errorf("level %d throughput not measured", r.Concurrency)
		}
		if r.HandshakeP50Ms <= 0 || r.HandshakeP99Ms < r.HandshakeP50Ms {
			t.Errorf("level %d percentiles p50=%f p99=%f malformed", r.Concurrency, r.HandshakeP50Ms, r.HandshakeP99Ms)
		}
		if r.ResumedPrimary == 0 || r.ResumedHops == 0 {
			t.Errorf("level %d took no fast path (resumed primary=%d hops=%d)",
				r.Concurrency, r.ResumedPrimary, r.ResumedHops)
		}
	}
}

// TestSoakSmoke holds a small registry of idle sessions and checks the
// envelope numbers come back sane and nothing leaks.
func TestSoakSmoke(t *testing.T) {
	row, err := RunSoak(SoakOptions{Sessions: 500, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if row.Sessions != 500 || row.Shards != 4 {
		t.Fatalf("row = %+v, want 500 sessions on 4 shards", row)
	}
	if row.AdmitP99Us <= 0 || row.DrainMs < 0 {
		t.Errorf("soak envelope malformed: %+v", row)
	}
	if row.ForceClosed != 0 {
		t.Errorf("idle drain force-closed %d sessions, want 0", row.ForceClosed)
	}
}

// TestPercentileDuration pins the nearest-rank convention.
func TestPercentileDuration(t *testing.T) {
	if got := percentileDuration(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	var sorted []time.Duration
	for i := 1; i <= 10; i++ {
		sorted = append(sorted, time.Duration(i)*10*time.Millisecond)
	}
	if got := percentileDuration(sorted, 0.50); got != 60*time.Millisecond {
		t.Errorf("p50 of 10..100ms = %v, want 60ms", got)
	}
	if got := percentileDuration(sorted, 0.99); got != 100*time.Millisecond {
		t.Errorf("p99 of 10..100ms = %v, want 100ms", got)
	}
}
