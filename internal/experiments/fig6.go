package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// Fig6Paths are the twelve client–middlebox–server region paths of the
// paper's Figure 6, in its order.
var Fig6Paths = [][3]netsim.Region{
	{"usw", "use", "uk"},
	{"usw", "uk", "use"},
	{"au", "usw", "use"},
	{"use", "usw", "uk"},
	{"au", "use", "usw"},
	{"au", "use", "uk"},
	{"au", "usw", "uk"},
	{"au", "uk", "use"},
	{"usw", "au", "use"},
	{"au", "uk", "usw"},
	{"usw", "au", "uk"},
	{"use", "au", "uk"},
}

// Fig6Row is one path's latency comparison.
type Fig6Row struct {
	Path string
	// TLS and MbTLS split session time into handshake and transfer,
	// as the paper's stacked bars do.
	TLSHandshake   Stat
	TLSTransfer    Stat
	MbTLSHandshake Stat
	MbTLSTransfer  Stat
}

// Fig6Options tunes the run.
type Fig6Options struct {
	// Trials per path and protocol (paper: 100; default 5).
	Trials int
	// Scale compresses the region latencies (default 0.1: a 280 ms
	// RTT becomes 28 ms; the geometry, and therefore the relative
	// overhead, is unchanged).
	Scale float64
	// ObjectSize is the fetched object's size (paper: "a small
	// object"; default 1 KiB).
	ObjectSize int
}

// RunFig6 reproduces Figure 6 ("mbTLS vs TLS Latency"): the time to
// fetch a small object through one middlebox across inter-datacenter
// paths. For regular TLS the middlebox relays packets without
// terminating anything — the worst case to compare against (§5.2).
// Expected shape: mbTLS inflates the handshake by ~1% (it adds
// computation but no round trips).
func RunFig6(opts Fig6Options) ([]Fig6Row, error) {
	trials := opts.Trials
	if trials <= 0 {
		trials = 5
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 0.1
	}
	objectSize := opts.ObjectSize
	if objectSize <= 0 {
		objectSize = 1024
	}

	ca, err := certs.NewCA("fig6 root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("server.example", []string{"server.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mbox.example", []string{"mbox.example"}, nil)
	if err != nil {
		return nil, err
	}

	var rows []Fig6Row
	for _, path := range Fig6Paths {
		row := Fig6Row{Path: fmt.Sprintf("%s-%s-%s", path[0], path[1], path[2])}
		var tlsHS, tlsTX, mbHS, mbTX []time.Duration
		for i := 0; i < trials; i++ {
			hs, tx, err := fig6Trial(ca, serverCert, mbCert, path, scale, objectSize, false)
			if err != nil {
				return nil, fmt.Errorf("%s TLS trial: %w", row.Path, err)
			}
			tlsHS, tlsTX = append(tlsHS, hs), append(tlsTX, tx)
			hs, tx, err = fig6Trial(ca, serverCert, mbCert, path, scale, objectSize, true)
			if err != nil {
				return nil, fmt.Errorf("%s mbTLS trial: %w", row.Path, err)
			}
			mbHS, mbTX = append(mbHS, hs), append(mbTX, tx)
		}
		row.TLSHandshake = newStat(tlsHS)
		row.TLSTransfer = newStat(tlsTX)
		row.MbTLSHandshake = newStat(mbHS)
		row.MbTLSTransfer = newStat(mbTX)
		rows = append(rows, row)
	}
	return rows, nil
}

// fig6Trial runs one fetch over a client–middlebox–server path. With
// useMbTLS the middlebox joins the session; otherwise the client is a
// plain TLS client and the middlebox relays transparently.
func fig6Trial(ca *certs.CA, serverCert, mbCert *tls12.Certificate,
	path [3]netsim.Region, scale float64, objectSize int, useMbTLS bool) (handshake, transfer time.Duration, err error) {

	c0a, c0b, err := netsim.RegionLink(path[0], path[1], scale)
	if err != nil {
		return 0, 0, err
	}
	c1a, c1b, err := netsim.RegionLink(path[1], path[2], scale)
	if err != nil {
		return 0, 0, err
	}
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{Mode: core.ClientSide, Certificate: mbCert})
	if err != nil {
		return 0, 0, err
	}
	go mb.Handle(c0b, c1a) //nolint:errcheck

	body := make([]byte, objectSize)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	serverErr := make(chan error, 1)
	go func() {
		serve := func(rw interface {
			Read([]byte) (int, error)
			Write([]byte) (int, error)
		}) error {
			return httpx.Serve(rw, func(req *httpx.Request) *httpx.Response {
				return &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: body}
			})
		}
		if useMbTLS {
			sess, err := core.Accept(c1b, &core.ServerConfig{TLS: &tls12.Config{Certificate: serverCert}})
			if err != nil {
				serverErr <- err
				return
			}
			defer sess.Close()
			serverErr <- serve(sess)
			return
		}
		conn := tls12.NewServerConn(c1b, &tls12.Config{Certificate: serverCert})
		if err := conn.Handshake(); err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		serverErr <- serve(conn)
	}()

	fetch := func(rw interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}) (time.Duration, error) {
		start := time.Now()
		resp, err := httpx.Do(rw, &httpx.Request{Method: "GET", Path: "/object", Host: "server.example", Header: httpx.Header{}})
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != 200 || len(resp.Body) != objectSize {
			return 0, fmt.Errorf("bad response: %d, %d bytes", resp.StatusCode, len(resp.Body))
		}
		return time.Since(start), nil
	}

	if useMbTLS {
		start := time.Now()
		sess, err := core.Dial(c0a, &core.ClientConfig{
			TLS: &tls12.Config{RootCAs: ca.Pool(), ServerName: "server.example"},
		})
		if err != nil {
			return 0, 0, err
		}
		handshake = time.Since(start)
		defer sess.Close()
		transfer, err = fetch(sess)
		return handshake, transfer, err
	}

	conn := tls12.NewClientConn(c0a, &tls12.Config{RootCAs: ca.Pool(), ServerName: "server.example"})
	start := time.Now()
	if err := conn.Handshake(); err != nil {
		return 0, 0, err
	}
	handshake = time.Since(start)
	defer conn.Close()
	transfer, err = fetch(conn)
	return handshake, transfer, err
}

// FormatFig6 renders the rows as the paper's Figure 6 stacked bars.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: mbTLS vs TLS Latency (small-object fetch via one middlebox)\n")
	fmt.Fprintf(&b, "%-14s | %-22s %-22s | %-22s %-22s | %s\n",
		"Path (c-m-s)", "TLS handshake", "TLS transfer", "mbTLS handshake", "mbTLS transfer", "HS overhead")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 128))
	var overheads []float64
	for _, r := range rows {
		oh := 100 * (float64(r.MbTLSHandshake.Mean) - float64(r.TLSHandshake.Mean)) / float64(r.TLSHandshake.Mean)
		overheads = append(overheads, oh)
		fmt.Fprintf(&b, "%-14s | %-22s %-22s | %-22s %-22s | %+6.2f%%\n",
			r.Path, r.TLSHandshake.Ms(), r.TLSTransfer.Ms(), r.MbTLSHandshake.Ms(), r.MbTLSTransfer.Ms(), oh)
	}
	var sum float64
	for _, o := range overheads {
		sum += o
	}
	if len(overheads) > 0 {
		fmt.Fprintf(&b, "Average mbTLS handshake inflation: %+.2f%% (paper: +0.7%% avg, +1.2%% worst case)\n",
			sum/float64(len(overheads)))
	}
	return b.String()
}
