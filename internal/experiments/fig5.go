package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/splittls"
	"repro/internal/timing"
	"repro/internal/tls12"
)

// Fig5Row is one bar group of Figure 5: per-role handshake compute
// time for one protocol configuration.
type Fig5Row struct {
	Label     string
	Client    Stat
	Middlebox Stat // zero when the configuration has no middlebox
	Server    Stat
	HasMbox   bool
}

// Fig5Options tunes the run.
type Fig5Options struct {
	// Trials per configuration (paper: 1000; default 200).
	Trials int
}

// RunFig5 reproduces Figure 5 ("Handshake CPU Microbenchmarks"): the
// time each party spends executing a single handshake, excluding
// network waits, across seven protocol configurations. Expected shape
// (§5.2): TLS ≈ mbTLS without middleboxes; the middlebox is cheaper
// under mbTLS than split TLS (one handshake instead of two); client
// cost is flat in server-side middleboxes; server cost grows ~20% per
// server-side middlebox (an additional client-role handshake each).
func RunFig5(opts Fig5Options) ([]Fig5Row, error) {
	trials := opts.Trials
	if trials <= 0 {
		trials = 200
	}
	ca, err := certs.NewCA("fig5 root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("server.example", []string{"server.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mbox.example", []string{"mbox.example"}, nil)
	if err != nil {
		return nil, err
	}
	interceptCA, err := certs.NewCA("split-tls custom root")
	if err != nil {
		return nil, err
	}

	configs := []struct {
		label string
		mbox  bool
		run   func(cSW, mSW, sSW *timing.Stopwatch) error
	}{
		{"TLS (no mbox)", false, func(cSW, _, sSW *timing.Stopwatch) error {
			return runPlainTLS(ca, serverCert, cSW, sSW)
		}},
		{"mbTLS (no mbox)", false, func(cSW, _, sSW *timing.Stopwatch) error {
			return runMbTLS(ca, serverCert, mbCert, 0, 0, cSW, nil, sSW)
		}},
		{"\"Split\" TLS (1 mbox)", true, func(cSW, mSW, sSW *timing.Stopwatch) error {
			return runSplitTLS(ca, interceptCA, serverCert, cSW, mSW, sSW)
		}},
		{"mbTLS (1 client mbox)", true, func(cSW, mSW, sSW *timing.Stopwatch) error {
			return runMbTLS(ca, serverCert, mbCert, 1, 0, cSW, mSW, sSW)
		}},
		{"mbTLS (1 server mbox)", true, func(cSW, mSW, sSW *timing.Stopwatch) error {
			return runMbTLS(ca, serverCert, mbCert, 0, 1, cSW, mSW, sSW)
		}},
		{"mbTLS (2 server mboxes)", true, func(cSW, mSW, sSW *timing.Stopwatch) error {
			return runMbTLS(ca, serverCert, mbCert, 0, 2, cSW, mSW, sSW)
		}},
		{"mbTLS (3 server mboxes)", true, func(cSW, mSW, sSW *timing.Stopwatch) error {
			return runMbTLS(ca, serverCert, mbCert, 0, 3, cSW, mSW, sSW)
		}},
	}

	rows := make([]Fig5Row, 0, len(configs))
	for _, cfg := range configs {
		var cs, ms, ss []time.Duration
		for i := 0; i < trials; i++ {
			var cSW, mSW, sSW timing.Stopwatch
			if err := cfg.run(&cSW, &mSW, &sSW); err != nil {
				return nil, fmt.Errorf("%s trial %d: %w", cfg.label, i, err)
			}
			cs = append(cs, cSW.Total())
			ms = append(ms, mSW.Total())
			ss = append(ss, sSW.Total())
		}
		rows = append(rows, Fig5Row{
			Label:     cfg.label,
			Client:    newStat(cs),
			Middlebox: newStat(ms),
			Server:    newStat(ss),
			HasMbox:   cfg.mbox,
		})
	}
	return rows, nil
}

// runPlainTLS performs one two-party TLS handshake over an in-memory
// pipe.
func runPlainTLS(ca *certs.CA, serverCert *tls12.Certificate, cSW, sSW *timing.Stopwatch) error {
	cp, sp := netsim.Pipe()
	defer cp.Close()
	defer sp.Close()
	client := tls12.NewClientConn(cp, &tls12.Config{
		RootCAs: ca.Pool(), ServerName: "server.example", Stopwatch: cSW,
	})
	server := tls12.NewServerConn(sp, &tls12.Config{Certificate: serverCert, Stopwatch: sSW})
	errc := make(chan error, 1)
	go func() { errc <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		return err
	}
	return <-errc
}

// runMbTLS performs one mbTLS session setup with the given middlebox
// counts. mSW, when non-nil, is attached to the first middlebox.
func runMbTLS(ca *certs.CA, serverCert, mbCert *tls12.Certificate, clientMboxes, serverMboxes int,
	cSW, mSW, sSW *timing.Stopwatch) error {
	var mbs []*core.Middlebox
	mk := func(mode core.Mode, sw *timing.Stopwatch) error {
		mb, err := core.NewMiddlebox(core.MiddleboxConfig{Mode: mode, Certificate: mbCert, Stopwatch: sw})
		if err != nil {
			return err
		}
		mbs = append(mbs, mb)
		return nil
	}
	for i := 0; i < clientMboxes; i++ {
		sw := mSW
		if i > 0 {
			sw = nil
		}
		if err := mk(core.ClientSide, sw); err != nil {
			return err
		}
	}
	for i := 0; i < serverMboxes; i++ {
		var sw *timing.Stopwatch
		if i == 0 && clientMboxes == 0 {
			sw = mSW
		}
		if err := mk(core.ServerSide, sw); err != nil {
			return err
		}
	}

	left, right := netsim.Pipe()
	clientEnd := net.Conn(left)
	prev := net.Conn(right)
	for _, mb := range mbs {
		upL, upR := netsim.Pipe()
		go mb.Handle(prev, upL) //nolint:errcheck
		prev = upR
	}

	type res struct {
		sess *core.Session
		err  error
	}
	sch := make(chan res, 1)
	go func() {
		s, err := core.Accept(prev, &core.ServerConfig{
			TLS:               &tls12.Config{Certificate: serverCert, Stopwatch: sSW},
			AcceptMiddleboxes: true,
			MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool(), Stopwatch: sSW},
		})
		sch <- res{s, err}
	}()
	csess, err := core.Dial(clientEnd, &core.ClientConfig{
		TLS:          &tls12.Config{RootCAs: ca.Pool(), ServerName: "server.example", Stopwatch: cSW},
		MiddleboxTLS: &tls12.Config{RootCAs: ca.Pool(), Stopwatch: cSW},
	})
	if err != nil {
		return err
	}
	sr := <-sch
	if sr.err != nil {
		return sr.err
	}
	csess.Close()
	sr.sess.Close()
	return nil
}

// runSplitTLS performs one split-TLS interception: two independent TLS
// handshakes, with the middlebox paying for both.
func runSplitTLS(ca, interceptCA *certs.CA, serverCert *tls12.Certificate, cSW, mSW, sSW *timing.Stopwatch) error {
	c0a, c0b := netsim.Pipe()
	c1a, c1b := netsim.Pipe()
	ic := &splittls.Interceptor{
		CA:             interceptCA,
		Upstream:       &tls12.Config{RootCAs: ca.Pool()},
		VerifyUpstream: true,
		Stopwatch:      mSW,
	}
	done := make(chan struct{})
	go func() {
		ic.Handle(c0b, c1a) //nolint:errcheck
		close(done)
	}()
	serverErr := make(chan error, 1)
	server := tls12.NewServerConn(c1b, &tls12.Config{Certificate: serverCert, Stopwatch: sSW})
	go func() { serverErr <- server.Handshake() }()

	client := tls12.NewClientConn(c0a, &tls12.Config{
		RootCAs: interceptCA.Pool(), ServerName: "server.example", Stopwatch: cSW,
	})
	if err := client.Handshake(); err != nil {
		return err
	}
	if err := <-serverErr; err != nil {
		return err
	}
	client.Close()
	server.Close()
	<-done
	return nil
}

// FormatFig5 renders the rows as the paper's Figure 5 bar data.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Handshake CPU Microbenchmarks (per-role compute time per handshake)\n")
	fmt.Fprintf(&b, "%-26s | %-22s | %-22s | %-22s\n", "Configuration", "Client", "Middlebox", "Server")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 100))
	for _, r := range rows {
		mbox := "—"
		if r.HasMbox {
			mbox = r.Middlebox.Ms()
		}
		fmt.Fprintf(&b, "%-26s | %-22s | %-22s | %-22s\n", r.Label, r.Client.Ms(), mbox, r.Server.Ms())
	}
	return b.String()
}
