package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/blindbox"
	"repro/internal/mctls"
)

// The paper's first contribution (§2) is a design space for secure
// multi-entity communication protocols. This driver renders that
// space — each dimension with the option every protocol occupies — and
// backs as many cells as possible with live probes: mbTLS and split
// TLS run their full implementations (internal/core,
// internal/splittls), while the mcTLS and BlindBox columns are backed
// by the scoped executable models in internal/mctls and
// internal/blindbox.

// DesignDimension is one axis of the §2.1 design space.
type DesignDimension struct {
	Name    string
	Options []string
	// Position maps protocol → option (prefix-matching one of Options).
	Position map[string]string
	// Probes validates cells with live experiments, keyed by protocol.
	Probes map[string]func() (ok bool, detail string)
}

// DesignProtocols are the columns of the design-space table, in the
// paper's order of discussion.
var DesignProtocols = []string{"Split TLS", "mcTLS", "BlindBox", "mbTLS"}

// DesignSpace returns the §2.1 dimensions with each protocol's
// position per §2.2.
func DesignSpace() []DesignDimension {
	return []DesignDimension{
		{
			Name:    "Granularity of data access",
			Options: []string{"yes/no", "RW/RO/None", "functional crypto"},
			Position: map[string]string{
				"Split TLS": "yes/no",
				"mcTLS":     "RW/RO/None",
				"BlindBox":  "functional crypto",
				"mbTLS":     "yes/no",
			},
			Probes: map[string]func() (bool, string){
				"mcTLS":    probeMcTLSAccessControl,
				"BlindBox": probeBlindBoxDetection,
			},
		},
		{
			Name:    "Definition of \"party\"",
			Options: []string{"machine", "program"},
			Position: map[string]string{
				"Split TLS": "machine",
				"mcTLS":     "machine",
				"BlindBox":  "machine",
				"mbTLS":     "program",
			},
			Probes: map[string]func() (bool, string){
				"mbTLS": func() (bool, string) {
					r := adversary.MemoryRead()
					return r.Defended, r.Detail
				},
			},
		},
		{
			Name:    "Definition of \"identity\"",
			Options: []string{"owner", "code", "owner+code"},
			Position: map[string]string{
				"Split TLS": "owner (middlebox only; server identity lost)",
				"mcTLS":     "owner",
				"BlindBox":  "owner",
				"mbTLS":     "owner+code",
			},
			Probes: map[string]func() (bool, string){
				"mbTLS": func() (bool, string) {
					r := adversary.WrongMiddleboxCode()
					return r.Defended, r.Detail
				},
			},
		},
		{
			Name:    "Path integrity",
			Options: []string{"yes", "no"},
			Position: map[string]string{
				"Split TLS": "no",
				"mcTLS":     "no",
				"BlindBox":  "no",
				"mbTLS":     "yes",
			},
			Probes: map[string]func() (bool, string){
				"mbTLS": func() (bool, string) {
					r := adversary.SkipMiddlebox()
					return r.Defended, r.Detail
				},
			},
		},
		{
			Name:    "Data change secrecy",
			Options: []string{"none", "value", "value+size"},
			Position: map[string]string{
				"Split TLS": "none",
				"mcTLS":     "none",
				"BlindBox":  "none",
				"mbTLS":     "value",
			},
			Probes: map[string]func() (bool, string){
				"mbTLS": func() (bool, string) {
					r := adversary.ChangeSecrecy()
					return r.Defended, r.Detail
				},
			},
		},
		{
			Name:    "Authorization",
			Options: []string{"0 endpoints", "1 endpoint", "both endpoints", "endpoints+mboxes"},
			Position: map[string]string{
				"Split TLS": "0 endpoints",
				"mcTLS":     "both endpoints",
				"BlindBox":  "both endpoints",
				"mbTLS":     "1 endpoint",
			},
			Probes: map[string]func() (bool, string){
				"mcTLS": probeMcTLSBothEndpointAuthorization,
			},
		},
		{
			Name:    "Legacy endpoints",
			Options: []string{"both upgrade", "1 legacy", "both legacy"},
			Position: map[string]string{
				"Split TLS": "both legacy",
				"mcTLS":     "both upgrade",
				"BlindBox":  "both upgrade",
				"mbTLS":     "1 legacy",
			},
		},
		{
			Name:    "In-band discovery",
			Options: []string{"yes", "yes + 1 RTT", "no"},
			Position: map[string]string{
				"Split TLS": "yes",
				"mcTLS":     "no",
				"BlindBox":  "no",
				"mbTLS":     "yes",
			},
		},
		{
			Name:    "Computation",
			Options: []string{"arbitrary", "limited"},
			Position: map[string]string{
				"Split TLS": "arbitrary",
				"mcTLS":     "arbitrary",
				"BlindBox":  "limited (pattern matching)",
				"mbTLS":     "arbitrary",
			},
			Probes: map[string]func() (bool, string){
				"BlindBox": probeBlindBoxLimitedComputation,
			},
		},
	}
}

// probeMcTLSAccessControl exercises RW/RO/None enforcement in
// mcTLS-lite.
func probeMcTLSAccessControl() (bool, string) {
	cs, err := mctls.NewKeyShare(1)
	if err != nil {
		return false, err.Error()
	}
	ss, err := mctls.NewKeyShare(1)
	if err != nil {
		return false, err.Error()
	}
	keys, err := mctls.DeriveContextKeys(cs, ss)
	if err != nil {
		return false, err.Error()
	}
	rec, err := keys.Seal(0, []byte("context payload"))
	if err != nil {
		return false, err.Error()
	}
	ro := keys.Grant(mctls.ReadOnly)
	if _, err := ro.Open(rec); err != nil {
		return false, "read-only grant cannot read: " + err.Error()
	}
	if _, err := ro.Rewrite(rec, []byte("x")); err == nil {
		return false, "read-only grant could rewrite"
	}
	if none := keys.Grant(mctls.None); none.CanRead() {
		return false, "no-access grant can read"
	}
	rw := keys.Grant(mctls.ReadWrite)
	if _, err := rw.Rewrite(rec, []byte("rewritten")); err != nil {
		return false, "read-write grant cannot rewrite: " + err.Error()
	}
	return true, "RW/RO/None enforced cryptographically (mcTLS-lite)"
}

// probeMcTLSBothEndpointAuthorization shows one endpoint alone grants
// nothing.
func probeMcTLSBothEndpointAuthorization() (bool, string) {
	cs, err := mctls.NewKeyShare(1)
	if err != nil {
		return false, err.Error()
	}
	if _, err := mctls.DeriveContextKeys(cs, nil); err == nil {
		return false, "keys derivable from one endpoint's share"
	}
	return true, "context keys require both endpoints' shares (mcTLS-lite)"
}

// probeBlindBoxDetection shows rule detection without decryption.
func probeBlindBoxDetection() (bool, string) {
	sess, err := blindbox.NewRandomSession()
	if err != nil {
		return false, err.Error()
	}
	insp, err := sess.RuleTokens([]string{"attack-signature"})
	if err != nil {
		return false, err.Error()
	}
	rec, err := sess.Seal([]byte("payload carrying ATTACK-SIGNATURE bytes"))
	if err != nil {
		return false, err.Error()
	}
	if hits := insp.Inspect(rec); len(hits) != 1 {
		return false, fmt.Sprintf("detection failed: %v", hits)
	}
	return true, "rule matched over encrypted traffic without decryption (BlindBox-lite)"
}

// probeBlindBoxLimitedComputation documents the pattern-matching-only
// API.
func probeBlindBoxLimitedComputation() (bool, string) {
	// The inspector exposes equality matching only; transformation is
	// structurally impossible. The probe verifies the record reaching
	// the receiver is untouched after inspection.
	sess, err := blindbox.NewRandomSession()
	if err != nil {
		return false, err.Error()
	}
	insp, err := sess.RuleTokens([]string{"whatever-rule"})
	if err != nil {
		return false, err.Error()
	}
	rec, err := sess.Seal([]byte("data a compression proxy would rewrite"))
	if err != nil {
		return false, err.Error()
	}
	insp.Inspect(rec)
	if _, err := sess.Open(rec); err != nil {
		return false, err.Error()
	}
	return true, "inspection cannot transform traffic: equality matching only (BlindBox-lite)"
}

// FormatDesignSpace renders the table with live probe outcomes.
func FormatDesignSpace(dims []DesignDimension) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design space for secure multi-entity communication (paper §2)\n")
	fmt.Fprintf(&b, "%-28s | %-14s | %-14s | %-20s | %s\n", "Dimension", "Split TLS", "mcTLS", "BlindBox", "mbTLS")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 118))
	for _, d := range dims {
		fmt.Fprintf(&b, "%-28s | %-14s | %-14s | %-20s | %s\n",
			d.Name,
			truncate(d.Position["Split TLS"], 14),
			truncate(d.Position["mcTLS"], 14),
			truncate(d.Position["BlindBox"], 20),
			d.Position["mbTLS"])
		for _, proto := range DesignProtocols {
			probe, ok := d.Probes[proto]
			if !ok {
				continue
			}
			verified, detail := probe()
			status := "verified live"
			if !verified {
				status = "PROBE FAILED"
			}
			fmt.Fprintf(&b, "%-28s |   ↳ %s cell %s: %s\n", "", proto, status, detail)
		}
	}
	fmt.Fprintf(&b, "\nSplit TLS and mbTLS cells are backed by their full implementations\n")
	fmt.Fprintf(&b, "(internal/splittls, internal/core); mcTLS and BlindBox cells by the scoped\n")
	fmt.Fprintf(&b, "executable models in internal/mctls and internal/blindbox (see their docs).\n")
	return b.String()
}
