package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
)

// RunTable1 executes the Table 1 threat suite against live mbTLS
// sessions.
func RunTable1() []adversary.Result {
	return adversary.RunAll()
}

// FormatTable1 renders the results in the paper's Table 1 shape
// ("Threats and Defenses. How mbTLS defends against concrete threats
// to our core security properties").
func FormatTable1(results []adversary.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Threats and Defenses (live attack suite)\n")
	fmt.Fprintf(&b, "%-4s | %-66s | %-38s | %-8s\n", "Prop", "Threat", "Defense (mbTLS)", "Defended")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 126))
	for _, r := range results {
		status := "YES"
		if !r.Defended {
			status = "NO"
		}
		fmt.Fprintf(&b, "%-4s | %-66s | %-38s | %-8s\n", r.Property, truncate(r.Threat, 66), truncate(r.Defense, 38), status)
		fmt.Fprintf(&b, "     |   ↳ %s\n", r.Detail)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
