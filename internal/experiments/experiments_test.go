package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/population"
)

func TestTable1AllDefended(t *testing.T) {
	results := RunTable1()
	if len(results) < 12 {
		t.Fatalf("expected a full threat suite, got %d attacks", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s / %s: harness failure: %v", r.Property, r.Threat, r.Err)
			continue
		}
		if !r.Defended {
			t.Errorf("%s / %s: attack succeeded: %s", r.Property, r.Threat, r.Detail)
		}
	}
	out := FormatTable1(results)
	if !strings.Contains(out, "Path Integrity") && !strings.Contains(out, "P4") {
		t.Fatal("Table 1 output missing P4 row")
	}
}

func TestTable2AllHandshakesSucceed(t *testing.T) {
	rows, err := RunTable2(Table2Options{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	total, ok := 0, 0
	for _, r := range rows {
		total += r.Sites
		ok += r.Succeeded
		if r.Succeeded != r.Sites {
			t.Errorf("%s: %d/%d handshakes succeeded: %v", r.Type, r.Succeeded, r.Sites, r.Failures)
		}
	}
	if total != 241 {
		t.Fatalf("site population = %d, want the paper's 241", total)
	}
	if ok != total {
		t.Fatalf("%d/%d handshakes succeeded; paper: all successful", ok, total)
	}
}

func TestTable2DetectsBlockingNetworks(t *testing.T) {
	// Sanity check on the harness itself: a strict record-type DPI
	// must be detected as blocking (otherwise an all-success Table 2
	// would be vacuous).
	rows, err := RunTable2(Table2Options{Parallelism: 16, InjectStrictDPI: true})
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, r := range rows {
		ok += r.Succeeded
	}
	if ok != 0 {
		t.Fatalf("%d handshakes survived a strict DPI that drops mbTLS record types", ok)
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := RunFig5(Fig5Options{Trials: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("expected 7 configurations, got %d", len(rows))
	}
	byLabel := map[string]Fig5Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}

	split := byLabel["\"Split\" TLS (1 mbox)"]
	mbtls1c := byLabel["mbTLS (1 client mbox)"]
	// The mbTLS middlebox performs one handshake, split TLS two
	// (paper: "an mbTLS handshake is cheaper than Split TLS").
	if mbtls1c.Middlebox.Mean >= split.Middlebox.Mean {
		t.Errorf("mbTLS middlebox (%v) not cheaper than split TLS middlebox (%v)",
			mbtls1c.Middlebox.Mean, split.Middlebox.Mean)
	}

	// Server cost grows with server-side middleboxes and is untouched
	// by client-side ones.
	s0 := byLabel["mbTLS (no mbox)"].Server.Mean
	s3 := byLabel["mbTLS (3 server mboxes)"].Server.Mean
	if s3 <= s0 {
		t.Errorf("server cost did not grow with server-side middleboxes: %v -> %v", s0, s3)
	}
	c0 := byLabel["mbTLS (no mbox)"].Client.Mean
	cs1 := byLabel["mbTLS (1 server mbox)"].Client.Mean
	if cs1 > 3*c0 {
		t.Errorf("client cost ballooned with a server-side middlebox: %v -> %v", c0, cs1)
	}
	t.Log("\n" + FormatFig5(rows))
}

func TestFig6NoAddedRoundTrips(t *testing.T) {
	rows, err := RunFig6(Fig6Options{Trials: 3, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("expected the paper's 12 paths, got %d", len(rows))
	}
	for _, r := range rows {
		// mbTLS must not add a round trip: handshake inflation stays
		// far below the +50% a full extra RTT would cost. Compare the
		// per-path minima — scheduler noise (e.g., parallel test
		// packages) only ever adds latency, so minima isolate the
		// protocol's own behavior.
		if float64(r.MbTLSHandshake.Min) > 1.35*float64(r.TLSHandshake.Min) {
			t.Errorf("%s: mbTLS handshake min %v vs TLS min %v — looks like an added round trip",
				r.Path, r.MbTLSHandshake.Min, r.TLSHandshake.Min)
		}
	}
	t.Log("\n" + FormatFig6(rows))
}

func TestFig7EnclaveDoesNotDegradeThroughput(t *testing.T) {
	cells, err := RunFig7(Fig7Options{
		Window:   150 * time.Millisecond,
		Streams:  2,
		BufSizes: []int{2048, 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	find := func(enc, sgx bool, size int) Fig7Cell {
		for _, c := range cells {
			if c.Encryption == enc && c.Enclave == sgx && c.BufSize == size {
				return c
			}
		}
		t.Fatalf("missing cell enc=%v sgx=%v size=%d", enc, sgx, size)
		return Fig7Cell{}
	}
	for _, size := range []int{2048, 8192} {
		for _, enc := range []bool{false, true} {
			plain := find(enc, false, size)
			sgx := find(enc, true, size)
			if plain.Gbps <= 0 || sgx.Gbps <= 0 {
				t.Fatalf("no throughput measured (enc=%v size=%d): %v / %v", enc, size, plain.Gbps, sgx.Gbps)
			}
			// Paper: "the enclave did not have a noticeable impact on
			// throughput". In this simulation the encryption cells are
			// the faithful comparison (crypto dominates, as interrupt
			// handling did on the paper's testbed); the forwarding
			// cells are nearly free memcpy loops whose absolute
			// numbers swing widely, so they only get an
			// order-of-magnitude check.
			limit := plain.Gbps / 3
			if !enc {
				limit = plain.Gbps / 10
			}
			if sgx.Gbps < limit {
				t.Errorf("enclave collapsed throughput (enc=%v size=%d): %.2f -> %.2f Gbps",
					enc, size, plain.Gbps, sgx.Gbps)
			}
			if sgx.Transitions == 0 {
				t.Errorf("enclave cell recorded no boundary crossings (enc=%v size=%d)", enc, size)
			}
		}
	}
	t.Log("\n" + FormatFig7(cells))
}

func TestLegacyBreakdownMatchesPaper(t *testing.T) {
	r, err := RunLegacy(LegacyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[population.Outcome]int{
		population.OutcomeSuccess:  population.ExpectSuccess,
		population.OutcomeBadCert:  population.ExpectBadCert,
		population.OutcomeNoCipher: population.ExpectNoCipher,
		population.OutcomeRedirect: population.ExpectRedirect,
		population.OutcomeUnknown:  population.ExpectUnknown,
	}
	for outcome, n := range want {
		if r.Counts[outcome] != n {
			t.Errorf("%s: got %d, want %d", outcome, r.Counts[outcome], n)
		}
	}
	t.Log("\n" + FormatLegacy(r))
}
