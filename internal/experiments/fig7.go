package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/tls12"
)

// Fig7BufferSizes are the paper's x-axis chunk sizes.
var Fig7BufferSizes = []int{512, 1024, 2048, 4096, 8192, 12288}

// Fig7WorkersAxis is the relay-pipeline workers sweep: the serial
// baseline (Fig7SerialWorkers) then 1/2/4/8 crypto workers.
var Fig7WorkersAxis = []int{Fig7SerialWorkers, 1, 2, 4, 8}

// Fig7WorkersBufSizes are the chunk sizes the workers sweep runs at;
// 16 KiB (a full TLS record per chunk) is where crypto dominates and
// parallel scaling is most visible.
var Fig7WorkersBufSizes = []int{4096, 16384}

// Fig7SerialWorkers marks a workers-sweep cell running the pre-pipeline
// serial relay (the single-core baseline the 1-worker cell is measured
// against).
const Fig7SerialWorkers = -1

// Fig7Cell is one configuration × buffer-size measurement.
type Fig7Cell struct {
	Encryption bool `json:"encryption"`
	Enclave    bool `json:"enclave"`
	BufSize    int  `json:"buf_size"`
	// Workers distinguishes relay-pipeline sweep cells: 0 is a classic
	// matrix cell (default pipeline), Fig7SerialWorkers (-1) the serial
	// baseline, and N>0 a dedicated N-worker pool.
	Workers int `json:"workers,omitempty"`
	// Gbps is the delivered application throughput through the
	// middlebox.
	Gbps float64 `json:"gbps"`
	// Transitions counts enclave boundary crossings during the
	// measurement window (zero without an enclave).
	Transitions int64 `json:"transitions"`
	// AllocsPerOp is the steady-state heap allocations per processed
	// record on the isolated middlebox stage (see WriteFig7JSON); the
	// zero-allocation pipeline targets 0.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// ResealP50Micros/ResealP99Micros are per-job submit→commit reseal
	// latency quantiles in microseconds, present on workers-sweep cells
	// with a dedicated pool (the throughput-vs-latency tradeoff of
	// deeper pipelines).
	ResealP50Micros float64 `json:"reseal_p50_us,omitempty"`
	ResealP99Micros float64 `json:"reseal_p99_us,omitempty"`
}

// Fig7Options tunes the run.
type Fig7Options struct {
	// Window is the measurement duration per cell (default 250 ms).
	Window time.Duration
	// Streams is the number of concurrent client connections
	// saturating the middlebox (default 4).
	Streams int
	// BoundaryCost is the simulated enclave transition cost
	// (default 1 µs, in line with published SGX ecall measurements).
	BoundaryCost time.Duration
	// BufSizes overrides the buffer-size sweep.
	BufSizes []int
	// Transport selects the byte-moving backend for every stream hop:
	// TransportNetsim (default, in-memory pipes) or TransportTCP
	// (loopback kernel sockets).
	Transport string
	// WorkersAxis overrides the relay-pipeline workers sweep
	// (Fig7WorkersAxis); an explicit empty non-nil slice skips the
	// sweep.
	WorkersAxis []int
	// Quick shrinks the run to a smoke test (the CI gate): one buffer
	// size, a short window, and a two-point workers sweep.
	Quick bool
}

// RunFig7 reproduces Figure 7 ("SGX (Non-)Overhead"): middlebox
// throughput with/without decrypt-re-encrypt and with/without an
// enclave, across chunk sizes. Expected shape (§5.3): the enclave has
// no noticeable impact — per-chunk I/O overhead (here: relay
// scheduling and copying, as interrupts were in the paper) dominates
// the boundary-crossing cost — while the encryption configurations
// plateau at the AES-GCM compute bound.
func RunFig7(opts Fig7Options) ([]Fig7Cell, error) {
	window := opts.Window
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	streams := opts.Streams
	if streams <= 0 {
		streams = 4
	}
	boundaryCost := opts.BoundaryCost
	if boundaryCost <= 0 {
		boundaryCost = time.Microsecond
	}
	bufSizes := opts.BufSizes
	if len(bufSizes) == 0 {
		bufSizes = Fig7BufferSizes
	}
	workersAxis := opts.WorkersAxis
	if workersAxis == nil {
		workersAxis = Fig7WorkersAxis
	}
	workersBufs := Fig7WorkersBufSizes
	if opts.Quick {
		if opts.Window <= 0 {
			window = 50 * time.Millisecond
		}
		if len(opts.BufSizes) == 0 {
			bufSizes = []int{4096}
		}
		if opts.WorkersAxis == nil {
			workersAxis = []int{Fig7SerialWorkers, 2}
		}
		workersBufs = []int{4096}
	}

	ca, err := certs.NewCA("fig7 root")
	if err != nil {
		return nil, err
	}
	serverCert, err := ca.Issue("server.example", []string{"server.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := ca.Issue("mbox.example", []string{"mbox.example"}, nil)
	if err != nil {
		return nil, err
	}
	authority, err := enclave.NewAuthority()
	if err != nil {
		return nil, err
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return nil, err
	}
	platform.SetBoundaryCost(boundaryCost)

	fab, err := newConnFab(opts.Transport)
	if err != nil {
		return nil, err
	}
	defer fab.Close()

	var cells []Fig7Cell
	for _, encryption := range []bool{false, true} {
		for _, useEnclave := range []bool{false, true} {
			for _, bufSize := range bufSizes {
				cell, err := fig7Cell(ca, serverCert, mbCert, platform, fab, encryption, useEnclave, bufSize, 0, streams, window)
				if err != nil {
					return nil, fmt.Errorf("fig7 enc=%v sgx=%v buf=%d: %w", encryption, useEnclave, bufSize, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	// Relay-pipeline workers sweep: encrypted, no enclave (the crypto
	// scaling axis — the enclave rows would measure boundary crossings,
	// which the classic matrix already covers). One stream, because the
	// question the sweep answers is single-session scaling: the serial
	// relay caps one bulk session at one core per direction no matter
	// the host's core count, and the pipeline is what lifts that cap.
	for _, workers := range workersAxis {
		for _, bufSize := range workersBufs {
			cell, err := fig7Cell(ca, serverCert, mbCert, platform, fab, true, false, bufSize, workers, 1, window)
			if err != nil {
				return nil, fmt.Errorf("fig7 workers=%d buf=%d: %w", workers, bufSize, err)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// fig7Cell measures one configuration: several client streams pump
// fixed-size chunks through one middlebox to a sink server for the
// window duration.
func fig7Cell(ca *certs.CA, serverCert, mbCert *tls12.Certificate, platform *enclave.Platform,
	fab *connFab, encryption, useEnclave bool, bufSize, workers, streams int, window time.Duration) (Fig7Cell, error) {

	cell := Fig7Cell{Encryption: encryption, Enclave: useEnclave, BufSize: bufSize, Workers: workers}

	mbCfg := core.MiddleboxConfig{Mode: core.ClientSide, Certificate: mbCert}
	// Workers-sweep cells pin the relay pipeline: the serial marker
	// disables it, a positive count gets a dedicated pool so the cell's
	// utilization and latency are not mixed with other cells'.
	var cellPool *core.RelayPool
	switch {
	case workers == Fig7SerialWorkers:
		mbCfg.SerialRelay = true
	case workers > 0:
		cellPool = core.NewRelayPool(workers)
		mbCfg.RelayPool = cellPool
	}
	var encl *enclave.Enclave
	if useEnclave {
		encl = platform.CreateEnclave(enclave.CodeImage{Name: "fig7-mbox", Version: "1.0"})
		mbCfg.Enclave = encl
	}
	mb, err := core.NewMiddlebox(mbCfg)
	if err != nil {
		return cell, err
	}

	var delivered int64
	var deliveredMu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// handleWG tracks the middlebox session goroutines so a dedicated
	// cell pool is only closed after every session drained.
	var handleWG sync.WaitGroup

	// Establish all sessions before opening the measurement window.
	type endpoints struct {
		w interface{ Write([]byte) (int, error) }
		r interface{ Read([]byte) (int, error) }
		c func()
	}
	eps := make([]endpoints, streams)
	for s := 0; s < streams; s++ {
		c0a, c0b, err := fab.pair()
		if err != nil {
			return cell, fmt.Errorf("stream %d client hop: %w", s, err)
		}
		c1a, c1b, err := fab.pair()
		if err != nil {
			c0a.Close()
			c0b.Close()
			return cell, fmt.Errorf("stream %d server hop: %w", s, err)
		}
		handleWG.Add(1)
		go func() {
			defer handleWG.Done()
			mb.Handle(c0b, c1a) //nolint:errcheck
		}()
		if !encryption {
			eps[s] = endpoints{w: c0a, r: c1b, c: func() { c0a.Close(); c1b.Close() }}
			continue
		}
		type res struct {
			sess *core.Session
			err  error
		}
		cch := make(chan res, 1)
		sch := make(chan res, 1)
		go func() {
			sess, err := core.Dial(c0a, &core.ClientConfig{
				TLS: &tls12.Config{RootCAs: ca.Pool(), ServerName: "server.example"},
			})
			cch <- res{sess, err}
		}()
		go func() {
			sess, err := core.Accept(c1b, &core.ServerConfig{TLS: &tls12.Config{Certificate: serverCert}})
			sch <- res{sess, err}
		}()
		cr, sr := <-cch, <-sch
		if cr.err != nil {
			return cell, fmt.Errorf("stream %d dial: %w", s, cr.err)
		}
		if sr.err != nil {
			return cell, fmt.Errorf("stream %d accept: %w", s, sr.err)
		}
		eps[s] = endpoints{w: cr.sess, r: sr.sess, c: func() { cr.sess.Close(); sr.sess.Close() }}
	}

	payload := core.RandomPlaintext(bufSize)
	errs := make(chan error, 2*streams)
	for s := 0; s < streams; s++ {
		ep := eps[s]
		// Sink: counts delivered bytes.
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64<<10)
			for {
				n, err := ep.r.Read(buf)
				if n > 0 {
					deliveredMu.Lock()
					delivered += int64(n)
					deliveredMu.Unlock()
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
		// Source: writes chunks until stopped.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ep.c()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ep.w.Write(payload); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}

	// Let the pipeline warm up, then measure a clean window.
	time.Sleep(30 * time.Millisecond)
	deliveredMu.Lock()
	delivered = 0
	deliveredMu.Unlock()
	var startTransitions int64
	if encl != nil {
		startTransitions = encl.Transitions()
	}
	start := time.Now()
	time.Sleep(window)
	deliveredMu.Lock()
	bytes := delivered
	deliveredMu.Unlock()
	elapsed := time.Since(start)
	// A stream dying mid-window invalidates the measurement; report it
	// before teardown floods the error channel with shutdown noise.
	teardown := func() {
		close(stop)
		wg.Wait()
		handleWG.Wait()
		if cellPool != nil {
			st := cellPool.Stats()
			cell.ResealP50Micros = float64(st.ResealP50) / 1e3
			cell.ResealP99Micros = float64(st.ResealP99) / 1e3
			cellPool.Close()
		}
	}
	select {
	case err := <-errs:
		teardown()
		return cell, fmt.Errorf("stream failed during measurement: %w", err)
	default:
	}
	teardown()

	cell.Gbps = float64(bytes) * 8 / elapsed.Seconds() / 1e9
	if encl != nil {
		cell.Transitions = encl.Transitions() - startTransitions
	}
	return cell, nil
}

// AnnotateFig7Allocs fills each cell's AllocsPerOp by running the
// isolated middlebox stage (the BenchHarness batch pipeline, the same
// unit BenchmarkDataPlane times) under a heap-allocation counter. The
// boundary cost matches the throughput run so the enclave cells
// exercise the identical code path.
func AnnotateFig7Allocs(cells []Fig7Cell, boundaryCost time.Duration) error {
	if boundaryCost <= 0 {
		boundaryCost = time.Microsecond
	}
	authority, err := enclave.NewAuthority()
	if err != nil {
		return err
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return err
	}
	platform.SetBoundaryCost(boundaryCost)
	const suite = tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384
	for i := range cells {
		var encl *enclave.Enclave
		if cells[i].Enclave {
			encl = platform.CreateEnclave(enclave.CodeImage{Name: "fig7-allocs", Version: "1.0"})
		}
		allocs, err := core.Fig7MeasureAllocs(encl, suite, cells[i].Encryption, cells[i].BufSize, 16, 50)
		if err != nil {
			return fmt.Errorf("fig7 allocs enc=%v sgx=%v buf=%d: %w",
				cells[i].Encryption, cells[i].Enclave, cells[i].BufSize, err)
		}
		cells[i].AllocsPerOp = allocs
	}
	return nil
}

// WriteFig7JSON writes the cells as a machine-readable baseline
// (BENCH_fig7.json) so future changes can track the perf trajectory.
func WriteFig7JSON(path string, cells []Fig7Cell) error {
	data, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatFig7 renders the cells as the paper's Figure 7 series, followed
// by the relay-pipeline workers sweep when present.
func FormatFig7(cells []Fig7Cell) string {
	var classic, sweep []Fig7Cell
	for _, c := range cells {
		if c.Workers == 0 {
			classic = append(classic, c)
		} else {
			sweep = append(sweep, c)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: SGX (Non-)Overhead — middlebox throughput (Gbps)\n")
	fmt.Fprintf(&b, "%-32s", "Configuration \\ Buffer")
	sizes := []int{}
	seen := map[int]bool{}
	for _, c := range classic {
		if !seen[c.BufSize] {
			seen[c.BufSize] = true
			sizes = append(sizes, c.BufSize)
			fmt.Fprintf(&b, " | %8s", byteSize(c.BufSize))
		}
	}
	fmt.Fprintf(&b, "\n%s\n", strings.Repeat("-", 34+11*len(sizes)))
	for _, enc := range []bool{false, true} {
		for _, sgx := range []bool{false, true} {
			label := map[bool]string{false: "No Encryption", true: "Encryption"}[enc] +
				map[bool]string{false: " + No Enclave", true: " + Enclave"}[sgx]
			fmt.Fprintf(&b, "%-32s", label)
			for _, size := range sizes {
				for _, c := range classic {
					if c.Encryption == enc && c.Enclave == sgx && c.BufSize == size {
						fmt.Fprintf(&b, " | %8.2f", c.Gbps)
					}
				}
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if len(sweep) > 0 {
		fmt.Fprintf(&b, "\nParallel relay pipeline — workers sweep (encrypted, no enclave)\n")
		fmt.Fprintf(&b, "%-10s | %8s | %8s | %12s | %12s\n", "Workers", "Buffer", "Gbps", "reseal p50", "reseal p99")
		fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 62))
		for _, c := range sweep {
			label := fmt.Sprintf("%d", c.Workers)
			if c.Workers == Fig7SerialWorkers {
				label = "serial"
			}
			lat50, lat99 := "-", "-"
			if c.ResealP50Micros > 0 {
				lat50 = fmt.Sprintf("%.1fµs", c.ResealP50Micros)
				lat99 = fmt.Sprintf("%.1fµs", c.ResealP99Micros)
			}
			fmt.Fprintf(&b, "%-10s | %8s | %8.2f | %12s | %12s\n",
				label, byteSize(c.BufSize), c.Gbps, lat50, lat99)
		}
	}
	return b.String()
}

func byteSize(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}
