// Package splittls implements the "split TLS" baseline: today's
// standard practice of TLS interception with custom root certificates
// (paper §2.2). The middlebox impersonates the server to the client by
// forging a leaf certificate under a root the administrator installed
// on clients, terminates the client's TLS session, and opens a second,
// independent TLS session to the server.
//
// The paper's criticisms are reproducible here by construction: the
// client cannot authenticate the real server (it sees the forged
// certificate), it cannot tell whether the middlebox verified the
// server at all (VerifyUpstream toggles the frequently-misconfigured
// behavior observed by Durumeric et al.), session keys live in ordinary
// process memory visible to the infrastructure provider, and the
// middlebox pays for two full TLS handshakes — the cost measured
// against mbTLS in Figure 5.
package splittls

import (
	"errors"
	"io"
	"net"
	"sync"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/timing"
	"repro/internal/tls12"
)

// Interceptor is a split-TLS middlebox.
type Interceptor struct {
	// CA is the custom root whose certificate clients were provisioned
	// to trust; leaves are forged under it per intercepted server name.
	CA *certs.CA
	// Upstream configures the middlebox's client-role session to the
	// real server (trust roots, cipher suites).
	Upstream *tls12.Config
	// VerifyUpstream controls whether the middlebox verifies the real
	// server's certificate — the trust the paper notes is "often
	// misplaced" in deployed interception products.
	VerifyUpstream bool
	// NewProcessor optionally transforms relayed plaintext per session.
	NewProcessor func() core.Processor
	// Stopwatch, when set, accumulates handshake compute time across
	// both of the interceptor's TLS sessions (Figure 5's split-TLS
	// middlebox bar).
	Stopwatch *timing.Stopwatch

	// vault holds session secrets in host memory: split TLS has no
	// enclave story, which is exactly the gap mbTLS fills (§2.2).
	vaultOnce sync.Once
	vault     *enclave.HostVault

	forgeMu sync.Mutex
	forged  map[string]*tls12.Certificate
}

// Vault exposes the interceptor's (host-memory) secret store for the
// adversary harness.
func (ic *Interceptor) Vault() *enclave.HostVault {
	ic.vaultOnce.Do(func() { ic.vault = enclave.NewHostVault() })
	return ic.vault
}

// forgeCert returns a (cached) forged leaf for the server name.
func (ic *Interceptor) forgeCert(serverName string) (*tls12.Certificate, error) {
	if serverName == "" {
		serverName = "unknown.invalid"
	}
	ic.forgeMu.Lock()
	defer ic.forgeMu.Unlock()
	if ic.forged == nil {
		ic.forged = make(map[string]*tls12.Certificate)
	}
	if cert, ok := ic.forged[serverName]; ok {
		return cert, nil
	}
	cert, err := ic.CA.Forge(serverName)
	if err != nil {
		return nil, err
	}
	ic.forged[serverName] = cert
	return cert, nil
}

// collectClientHello reads records until a full ClientHello arrives.
func collectClientHello(conn net.Conn) (raw []byte, err error) {
	var hsBuf []byte
	for {
		rec, err := tls12.ReadRawRecord(conn)
		if err != nil {
			return nil, err
		}
		if rec.Type != tls12.TypeHandshake {
			return nil, errors.New("splittls: connection does not start with a TLS handshake")
		}
		hsBuf = append(hsBuf, rec.Payload...)
		if len(hsBuf) >= 4 {
			n := int(hsBuf[1])<<16 | int(hsBuf[2])<<8 | int(hsBuf[3])
			if len(hsBuf) >= 4+n {
				return hsBuf[:4+n], nil
			}
		}
	}
}

// Handle intercepts one connection: down faces the client, up the
// server. It blocks until the session ends.
func (ic *Interceptor) Handle(down, up net.Conn) error {
	defer down.Close()
	defer up.Close()

	helloRaw, err := collectClientHello(down)
	if err != nil {
		return err
	}
	hello, err := tls12.ParseClientHello(helloRaw)
	if err != nil {
		return err
	}

	leaf, err := ic.forgeCert(hello.ServerName)
	if err != nil {
		return err
	}

	// Terminate the client's session with the forged identity.
	downCfg := &tls12.Config{Certificate: leaf, Stopwatch: ic.Stopwatch}
	downConn := tls12.ServerWithReceivedHello(tls12.NewRecordLayer(down), downCfg, helloRaw)

	// Open our own session to the real server.
	upCfg := &tls12.Config{}
	if ic.Upstream != nil {
		upCfg = &tls12.Config{}
		*upCfg = *ic.Upstream
	}
	if upCfg.ServerName == "" {
		upCfg.ServerName = hello.ServerName
	}
	if !ic.VerifyUpstream {
		upCfg.InsecureSkipVerify = true
	}
	upCfg.Stopwatch = ic.Stopwatch
	upConn := tls12.NewClientConn(up, upCfg)

	// Establish the upstream session first: if the real server cannot
	// be reached (or fails verification), the client's handshake must
	// not complete against the forged identity.
	if err := upConn.Handshake(); err != nil {
		return err
	}
	if err := downConn.Handshake(); err != nil {
		return err
	}

	// Both session keys sit in host memory — the exposure the
	// adversary harness probes.
	if sk, err := downConn.ExportSessionKeys(); err == nil {
		ic.Vault().StoreSecret("client-side/client-write", sk.ClientWriteKey)
		ic.Vault().StoreSecret("client-side/server-write", sk.ServerWriteKey)
	}
	if sk, err := upConn.ExportSessionKeys(); err == nil {
		ic.Vault().StoreSecret("server-side/client-write", sk.ClientWriteKey)
		ic.Vault().StoreSecret("server-side/server-write", sk.ServerWriteKey)
	}

	var proc core.Processor
	if ic.NewProcessor != nil {
		proc = ic.NewProcessor()
	}

	errc := make(chan error, 2)
	go func() { errc <- relay(downConn, upConn, core.DirClientToServer, proc) }()
	go func() { errc <- relay(upConn, downConn, core.DirServerToClient, proc) }()
	err = <-errc
	down.Close()
	up.Close()
	<-errc
	if err == io.EOF {
		return nil
	}
	return err
}

// relay pumps plaintext from src to dst through the processor.
func relay(src, dst *tls12.Conn, dir core.Direction, proc core.Processor) error {
	buf := make([]byte, 16384)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			out := buf[:n]
			if proc != nil {
				var perr error
				out, perr = proc.Process(dir, out)
				if perr != nil {
					return perr
				}
			}
			if len(out) > 0 {
				if _, werr := dst.Write(out); werr != nil {
					return werr
				}
			}
		}
		if err != nil {
			if err == io.EOF {
				dst.Close()
			}
			return err
		}
	}
}

// Serve accepts client connections and intercepts each toward dial.
func (ic *Interceptor) Serve(ln net.Listener, dial func() (net.Conn, error)) error {
	for {
		down, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			up, err := dial()
			if err != nil {
				down.Close()
				return
			}
			_ = ic.Handle(down, up)
		}()
	}
}
