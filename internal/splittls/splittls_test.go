package splittls

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

type fixture struct {
	originCA    *certs.CA
	interceptCA *certs.CA
	serverCert  *tls12.Certificate
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	originCA, err := certs.NewCA("origin root")
	if err != nil {
		t.Fatal(err)
	}
	interceptCA, err := certs.NewCA("corporate interception root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := originCA.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{originCA: originCA, interceptCA: interceptCA, serverCert: serverCert}
}

// runInterception wires client → interceptor → server and returns the
// client conn plus channels for the server side.
func runInterception(t *testing.T, fx *fixture, ic *Interceptor, clientRoots *certs.CA) (*tls12.Conn, chan error) {
	t.Helper()
	c0a, c0b := netsim.Pipe()
	c1a, c1b := netsim.Pipe()
	go ic.Handle(c0b, c1a) //nolint:errcheck

	serverErr := make(chan error, 1)
	go func() {
		conn := tls12.NewServerConn(c1b, &tls12.Config{Certificate: fx.serverCert})
		if err := conn.Handshake(); err != nil {
			serverErr <- err
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			serverErr <- err
			return
		}
		_, err := conn.Write(bytes.ToUpper(buf))
		serverErr <- err
	}()
	client := tls12.NewClientConn(c0a, &tls12.Config{
		RootCAs: clientRoots.Pool(), ServerName: "origin.example",
	})
	return client, serverErr
}

func TestInterceptionWorksWithProvisionedRoot(t *testing.T) {
	fx := newFixture(t)
	ic := &Interceptor{CA: fx.interceptCA, Upstream: &tls12.Config{RootCAs: fx.originCA.Pool()}, VerifyUpstream: true}
	client, serverErr := runInterception(t, fx, ic, fx.interceptCA)
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake through interceptor: %v", err)
	}
	// The client sees the FORGED certificate, not the origin's — the
	// paper's core criticism of split TLS (§2.2).
	state := client.ConnectionState()
	if state.PeerCertificates[0].Issuer.CommonName != "corporate interception root" {
		t.Fatalf("client saw issuer %q", state.PeerCertificates[0].Issuer.CommonName)
	}
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PING" {
		t.Fatalf("got %q", buf)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

func TestClientWithoutCustomRootRejects(t *testing.T) {
	fx := newFixture(t)
	ic := &Interceptor{CA: fx.interceptCA, Upstream: &tls12.Config{RootCAs: fx.originCA.Pool()}, VerifyUpstream: true}
	// Client trusts only the origin CA: the forged cert must fail.
	client, _ := runInterception(t, fx, ic, fx.originCA)
	if err := client.Handshake(); err == nil {
		t.Fatal("client accepted a forged certificate without the custom root")
	}
}

// TestLaxUpstreamVerification reproduces the misconfiguration the
// paper cites (Durumeric et al.): the interceptor skips server
// verification, so the client unknowingly talks to an impostor.
func TestLaxUpstreamVerification(t *testing.T) {
	fx := newFixture(t)
	rogueCert, err := certs.SelfSigned("origin.example", []string{"origin.example"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(verify bool) error {
		ic := &Interceptor{CA: fx.interceptCA, Upstream: &tls12.Config{RootCAs: fx.originCA.Pool()}, VerifyUpstream: verify}
		c0a, c0b := netsim.Pipe()
		c1a, c1b := netsim.Pipe()
		go ic.Handle(c0b, c1a) //nolint:errcheck
		go func() {
			conn := tls12.NewServerConn(c1b, &tls12.Config{Certificate: rogueCert})
			conn.Handshake() //nolint:errcheck
		}()
		client := tls12.NewClientConn(c0a, &tls12.Config{
			RootCAs: fx.interceptCA.Pool(), ServerName: "origin.example",
		})
		return client.Handshake()
	}
	if err := run(false); err != nil {
		t.Fatalf("lax interceptor should connect the client to anyone: %v", err)
	}
	if err := run(true); err == nil {
		t.Fatal("verifying interceptor accepted an impostor origin")
	}
}

func TestInterceptorExposesKeysInHostMemory(t *testing.T) {
	fx := newFixture(t)
	ic := &Interceptor{CA: fx.interceptCA, Upstream: &tls12.Config{RootCAs: fx.originCA.Pool()}, VerifyUpstream: true}
	client, serverErr := runInterception(t, fx, ic, fx.interceptCA)
	if err := client.Handshake(); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("ping")) //nolint:errcheck
	buf := make([]byte, 4)
	io.ReadFull(client, buf) //nolint:errcheck
	<-serverErr
	dump := ic.Vault().DumpHostMemory()
	if len(dump) < 4 {
		t.Fatalf("split TLS should expose both sessions' keys to the MIP; dump has %d entries", len(dump))
	}
}

func TestInterceptorWithProcessor(t *testing.T) {
	fx := newFixture(t)
	ic := &Interceptor{
		CA:             fx.interceptCA,
		Upstream:       &tls12.Config{RootCAs: fx.originCA.Pool()},
		VerifyUpstream: true,
		NewProcessor: func() core.Processor {
			return core.ProcessorFunc(func(dir core.Direction, b []byte) ([]byte, error) {
				if dir == core.DirClientToServer {
					return bytes.ReplaceAll(b, []byte("ping"), []byte("pong")), nil
				}
				return b, nil
			})
		},
	}
	client, serverErr := runInterception(t, fx, ic, fx.interceptCA)
	if err := client.Handshake(); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("ping")) //nolint:errcheck
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PONG" {
		t.Fatalf("got %q, want PONG (processor rewrite + server upcasing)", buf)
	}
	<-serverErr
}

func TestForgedCertCache(t *testing.T) {
	fx := newFixture(t)
	ic := &Interceptor{CA: fx.interceptCA, Upstream: &tls12.Config{RootCAs: fx.originCA.Pool()}}
	c1, err := ic.forgeCert("a.example")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ic.forgeCert("a.example")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("forged certificate not cached")
	}
	c3, err := ic.forgeCert("b.example")
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("distinct hosts share a forged certificate")
	}
}
