package timing

import (
	"sync"
	"testing"
	"time"
)

func TestStopwatchBasic(t *testing.T) {
	var sw Stopwatch
	sw.Enter()
	time.Sleep(20 * time.Millisecond)
	sw.Exit()
	got := sw.Total()
	if got < 15*time.Millisecond || got > 200*time.Millisecond {
		t.Fatalf("total = %v, want ≈20ms", got)
	}
}

func TestStopwatchExcludesPauses(t *testing.T) {
	var sw Stopwatch
	sw.Enter()
	time.Sleep(10 * time.Millisecond)
	sw.Pause()
	time.Sleep(50 * time.Millisecond) // "blocked on network"
	sw.Resume()
	time.Sleep(10 * time.Millisecond)
	sw.Exit()
	got := sw.Total()
	if got < 15*time.Millisecond || got > 45*time.Millisecond {
		t.Fatalf("total = %v, want ≈20ms excluding the 50ms pause", got)
	}
}

func TestStopwatchOverlappingSections(t *testing.T) {
	// Two concurrent sections overlapping in time count once: the
	// stopwatch measures wall time with ≥1 active section.
	var sw Stopwatch
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw.Enter()
			time.Sleep(30 * time.Millisecond)
			sw.Exit()
		}()
	}
	wg.Wait()
	got := sw.Total()
	if got < 25*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("total = %v, want ≈30ms (not 60ms)", got)
	}
}

func TestStopwatchNilSafe(t *testing.T) {
	var sw *Stopwatch
	sw.Enter()
	sw.Pause()
	sw.Resume()
	sw.Exit()
	if sw.Total() != 0 {
		t.Fatal("nil stopwatch total != 0")
	}
	sw.Reset()
}

func TestStopwatchReset(t *testing.T) {
	var sw Stopwatch
	sw.Enter()
	time.Sleep(5 * time.Millisecond)
	sw.Exit()
	sw.Reset()
	if sw.Total() != 0 {
		t.Fatalf("total after reset = %v", sw.Total())
	}
}

func TestStopwatchTotalWhileRunning(t *testing.T) {
	var sw Stopwatch
	sw.Enter()
	time.Sleep(10 * time.Millisecond)
	mid := sw.Total()
	sw.Exit()
	if mid < 5*time.Millisecond {
		t.Fatalf("running total = %v, want ≥5ms", mid)
	}
	if sw.Total() < mid {
		t.Fatal("final total went backwards")
	}
}
