// Package timing provides the per-role compute stopwatch behind the
// paper's Figure 5 ("time spent executing a single handshake (not
// including waiting for network I/O)"). A role's handshake code runs
// the stopwatch while it is processing and releases it while blocked
// reading from the network; with several concurrent sections (a client
// running its primary and secondary handshakes in parallel) the
// stopwatch accumulates wall time during which at least one section is
// active.
package timing

import (
	"sync"
	"time"
)

// Stopwatch accumulates time while one or more sections are active.
// The zero value is ready to use. All methods are safe for concurrent
// use.
type Stopwatch struct {
	mu        sync.Mutex
	active    int
	lastStart time.Time
	total     time.Duration
}

// Enter starts (or joins) an active section.
func (s *Stopwatch) Enter() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.active == 0 {
		s.lastStart = time.Now()
	}
	s.active++
	s.mu.Unlock()
}

// Exit leaves a section; when the last section exits, elapsed time is
// accumulated.
func (s *Stopwatch) Exit() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.total += time.Since(s.lastStart)
	}
	s.mu.Unlock()
}

// Pause temporarily suspends one section (used around blocking reads);
// it is Exit under a clearer name at call sites.
func (s *Stopwatch) Pause() { s.Exit() }

// Resume re-activates a paused section.
func (s *Stopwatch) Resume() { s.Enter() }

// Total returns the accumulated active time.
func (s *Stopwatch) Total() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.total
	if s.active > 0 {
		t += time.Since(s.lastStart)
	}
	return t
}

// Reset zeroes the accumulated time.
func (s *Stopwatch) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.total = 0
	if s.active > 0 {
		s.lastStart = time.Now()
	}
	s.mu.Unlock()
}
