// Package blindbox implements "BlindBox-lite", a scoped executable
// model of BlindBox (Sherry et al., SIGCOMM 2015) — the paper's §2.2
// comparison point for inspection over encrypted traffic. Like
// internal/mctls, it exists so the design-space report can back the
// BlindBox column with running code, modeling exactly the properties
// §2.2 discusses:
//
//   - Functional crypto [Data access: func. crypto]: a middlebox
//     detects rule matches in traffic it cannot decrypt. The sender
//     attaches deterministic per-window tokens alongside the AEAD
//     ciphertext; the middlebox holds only the encrypted rule set
//     (tokens of the rules, which in real BlindBox it obtains through
//     a garbled-circuit exchange that keeps the rules and the token
//     key mutually secret — simulated here by the endpoint handing
//     over the finished rule tokens).
//
//   - Limited computation [Computation: limited]: token equality
//     supports pattern matching only — the middlebox cannot compress,
//     cache, or transform, which is §2.2's criticism.
//
//   - Both endpoints upgraded [Legacy: both upgrade]: sender and
//     receiver must both speak the tokenized record format.
package blindbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"strings"

	"repro/internal/secmem"
)

// WindowSize is the sliding-window width for tokenization (BlindBox
// uses 8-byte windows, the minimum Snort keyword length).
const WindowSize = 8

// tokenLen truncates tokens (BlindBox truncates to save bandwidth;
// false positives are resolved out of band).
const tokenLen = 10

// Session holds the sender/receiver side of a BlindBox-lite channel:
// an AEAD key for the payload and a token key for detection tokens.
type Session struct {
	aead     cipher.AEAD
	tokenKey []byte
	sendSeq  uint64
	recvSeq  uint64
}

// NewSession derives a session from 64 bytes of shared secret (both
// endpoints run the usual TLS handshake to get it).
func NewSession(secret []byte) (*Session, error) {
	if len(secret) < 64 {
		return nil, errors.New("blindbox: need 64 bytes of secret")
	}
	block, err := aes.NewCipher(secret[:32])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Session{aead: aead, tokenKey: secret[32:64]}, nil
}

// Wipe zeroizes the token key. The AEAD's expanded schedule is opaque
// stdlib state; dropping the Session is the only way to retire it.
// tokenKey aliases the secret passed to NewSession, so the caller's
// copy of those 32 bytes is cleared too.
func (s *Session) Wipe() {
	if s == nil {
		return
	}
	secmem.Wipe(s.tokenKey)
	s.tokenKey = nil
}

// NewRandomSession draws a fresh session secret (testing/demo helper);
// both "endpoints" share the returned session.
func NewRandomSession() (*Session, error) {
	secret := make([]byte, 64)
	if _, err := io.ReadFull(rand.Reader, secret); err != nil {
		return nil, err
	}
	return NewSession(secret)
}

// token computes the deterministic encryption of one window.
func token(key []byte, window []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(window)
	return h.Sum(nil)[:tokenLen]
}

// Record is one BlindBox-lite record: AEAD ciphertext plus detection
// tokens for every sliding window of the plaintext.
type Record struct {
	Seq        uint64
	Ciphertext []byte
	Tokens     [][]byte
}

// Seal encrypts payload and attaches its detection tokens.
func (s *Session) Seal(payload []byte) (*Record, error) {
	nonce := make([]byte, s.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[4:], s.sendSeq)
	if _, err := io.ReadFull(rand.Reader, nonce[:4]); err != nil {
		return nil, err
	}
	rec := &Record{
		Seq:        s.sendSeq,
		Ciphertext: s.aead.Seal(nonce, nonce, payload, nil),
	}
	lowered := []byte(strings.ToLower(string(payload)))
	for i := 0; i+WindowSize <= len(lowered); i++ {
		rec.Tokens = append(rec.Tokens, token(s.tokenKey, lowered[i:i+WindowSize]))
	}
	s.sendSeq++
	return rec, nil
}

// Open decrypts a record at the receiving endpoint.
func (s *Session) Open(rec *Record) ([]byte, error) {
	if rec.Seq != s.recvSeq {
		return nil, errors.New("blindbox: out-of-order record")
	}
	if len(rec.Ciphertext) < s.aead.NonceSize() {
		return nil, errors.New("blindbox: short ciphertext")
	}
	nonce := rec.Ciphertext[:s.aead.NonceSize()]
	payload, err := s.aead.Open(nil, nonce, rec.Ciphertext[s.aead.NonceSize():], nil)
	if err != nil {
		return nil, errors.New("blindbox: decryption failed")
	}
	s.recvSeq++
	return payload, nil
}

// RuleTokens prepares the middlebox's encrypted rule set for the given
// session: each rule keyword (≥ WindowSize bytes) becomes the tokens of
// its windows. In real BlindBox this computation happens inside a
// garbled circuit so neither side learns the other's secret; the
// outcome — the middlebox holding rule tokens but no token key and no
// plaintext rules from the other party — is the same.
func (s *Session) RuleTokens(rules []string) (*Inspector, error) {
	insp := &Inspector{rules: make(map[string][][]byte)}
	for _, r := range rules {
		rl := strings.ToLower(r)
		if len(rl) < WindowSize {
			return nil, errors.New("blindbox: rules must be at least one window long")
		}
		var toks [][]byte
		for i := 0; i+WindowSize <= len(rl); i++ {
			toks = append(toks, token(s.tokenKey, []byte(rl[i:i+WindowSize])))
		}
		insp.rules[r] = toks
	}
	return insp, nil
}

// Inspector is the middlebox side: it holds encrypted rules only and
// matches them against record tokens. It has no decryption capability.
type Inspector struct {
	rules map[string][][]byte
	// Matches counts detections per rule.
	Matches map[string]int
}

// Inspect scans one record's tokens, returning the rules whose full
// window sequences appear consecutively. The ciphertext is never
// touched.
func (in *Inspector) Inspect(rec *Record) []string {
	if in.Matches == nil {
		in.Matches = make(map[string]int)
	}
	index := make(map[string][]int, len(rec.Tokens))
	for i, tok := range rec.Tokens {
		index[string(tok)] = append(index[string(tok)], i)
	}
	var hits []string
	for rule, toks := range in.rules {
		if len(toks) == 0 {
			continue
		}
		for _, start := range index[string(toks[0])] {
			ok := true
			for j := 1; j < len(toks); j++ {
				if start+j >= len(rec.Tokens) || string(rec.Tokens[start+j]) != string(toks[j]) {
					ok = false
					break
				}
			}
			if ok {
				hits = append(hits, rule)
				in.Matches[rule]++
				break
			}
		}
	}
	return hits
}
