package blindbox

import (
	"bytes"
	"strings"
	"testing"
)

func newPair(t *testing.T, rules ...string) (*Session, *Inspector) {
	t.Helper()
	sess, err := NewRandomSession()
	if err != nil {
		t.Fatal(err)
	}
	insp, err := sess.RuleTokens(rules)
	if err != nil {
		t.Fatal(err)
	}
	return sess, insp
}

func TestSealOpenRoundTrip(t *testing.T) {
	sess, _ := newPair(t, "malware-sig")
	payload := []byte("ordinary web traffic with nothing to hide")
	rec, err := sess.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
}

// TestDetectionWithoutDecryption: the §2.2 "func. crypto" cell — the
// inspector flags rule matches while holding no decryption key.
func TestDetectionWithoutDecryption(t *testing.T) {
	sess, insp := newPair(t, "exploit-kit-x", "evil-payload")
	rec, err := sess.Seal([]byte("GET /downloads/EXPLOIT-KIT-X.bin HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	hits := insp.Inspect(rec)
	if len(hits) != 1 || hits[0] != "exploit-kit-x" {
		t.Fatalf("hits = %v", hits)
	}
	// The payload itself is invisible to the inspector: it appears
	// nowhere in what the inspector examines.
	for _, tok := range rec.Tokens {
		if bytes.Contains(bytes.ToLower(tok), []byte("exploit")) {
			t.Fatal("token leaks plaintext bytes")
		}
	}
	if bytes.Contains(rec.Ciphertext, []byte("EXPLOIT")) {
		t.Fatal("ciphertext leaks plaintext")
	}
}

func TestNoFalseMatchesOnCleanTraffic(t *testing.T) {
	sess, insp := newPair(t, "forbidden-keyword")
	for _, payload := range []string{
		"completely unremarkable request body",
		"forbidden",                 // shorter than the rule
		"forbidden-keywor_ almost!", // near miss
	} {
		rec, err := sess.Seal([]byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if hits := insp.Inspect(rec); len(hits) != 0 {
			t.Fatalf("%q: spurious hits %v", payload, hits)
		}
	}
}

func TestDetectionIsCaseInsensitive(t *testing.T) {
	sess, insp := newPair(t, "Malware-Download")
	rec, _ := sess.Seal([]byte("fetching mAlWaRe-dOwNlOaD now"))
	if hits := insp.Inspect(rec); len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

// TestTokensSessionBound: tokens from one session do not match rules
// prepared for another (per-session token keys).
func TestTokensSessionBound(t *testing.T) {
	sessA, _ := newPair(t, "shared-rule-word")
	_, inspB := newPair(t, "shared-rule-word")
	rec, _ := sessA.Seal([]byte("triggering shared-rule-word here"))
	if hits := inspB.Inspect(rec); len(hits) != 0 {
		t.Fatalf("cross-session match: %v", hits)
	}
}

// TestLimitedComputation documents the §2.2 criticism: the inspector
// API supports equality matching only — there is no way to transform
// traffic, which is why BlindBox cannot host compression proxies.
func TestLimitedComputation(t *testing.T) {
	sess, insp := newPair(t, "some-rule")
	rec, _ := sess.Seal([]byte("data that a compression proxy would want to rewrite"))
	insp.Inspect(rec)
	// The record reaching the receiver is byte-identical: the
	// middlebox had no means to alter it meaningfully.
	got, err := sess.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "compression proxy") {
		t.Fatal("payload corrupted")
	}
}

func TestReplayAndReorderRejected(t *testing.T) {
	sess, _ := newPair(t, "whatever-rule")
	r1, _ := sess.Seal([]byte("first record payload"))
	r2, _ := sess.Seal([]byte("second record payload"))
	if _, err := sess.Open(r2); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	if _, err := sess.Open(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(r1); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestShortRuleRejected(t *testing.T) {
	sess, err := NewRandomSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RuleTokens([]string{"short"}); err == nil {
		t.Fatal("rule shorter than a window accepted")
	}
}

func TestMatchCounting(t *testing.T) {
	sess, insp := newPair(t, "counted-rule")
	for i := 0; i < 3; i++ {
		rec, _ := sess.Seal([]byte("hit the counted-rule again"))
		insp.Inspect(rec)
	}
	if insp.Matches["counted-rule"] != 3 {
		t.Fatalf("matches = %v", insp.Matches)
	}
}
