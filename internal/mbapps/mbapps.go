// Package mbapps provides middlebox application processors for the
// mbTLS data plane: the paper's prototype HTTP header-insertion proxy
// (§5, "Prototype Implementation"), a Flywheel-style compression proxy
// (the outsourcing use case of §3, with Google's Flywheel as the
// running example), and a parental-filter (the opt-in service of §3.5).
//
// Each processor is HTTP-message aware: it reassembles complete
// requests or responses from the record-sized chunks the data plane
// delivers, transforms them, and re-emits well-formed messages, so
// Content-Length framing survives arbitrary record boundaries.
package mbapps

import (
	"bufio"
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/httpx"
)

// messageBuffer incrementally reassembles HTTP messages of one
// direction from a chunk stream.
type messageBuffer struct {
	buf []byte
}

// nextMessage attempts to cut one complete HTTP message (header block
// plus Content-Length body) from the buffer. It returns nil if more
// bytes are needed.
func (mb *messageBuffer) nextMessage() []byte {
	idx := bytes.Index(mb.buf, []byte("\r\n\r\n"))
	if idx < 0 {
		return nil
	}
	headerEnd := idx + 4
	bodyLen := contentLength(mb.buf[:headerEnd])
	if bodyLen < 0 || len(mb.buf) < headerEnd+bodyLen {
		return nil
	}
	msg := mb.buf[:headerEnd+bodyLen]
	mb.buf = append([]byte(nil), mb.buf[headerEnd+bodyLen:]...)
	return msg
}

// contentLength extracts the Content-Length from a raw header block
// (returns 0 when absent, -1 when unparseable — the caller then waits
// forever, which surfaces as a data-plane timeout rather than
// corruption).
func contentLength(headers []byte) int {
	for _, line := range strings.Split(string(headers), "\r\n") {
		name, value, ok := strings.Cut(line, ":")
		if ok && strings.EqualFold(strings.TrimSpace(name), "Content-Length") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(value), "%d", &n); err != nil || n < 0 {
				return -1
			}
			return n
		}
	}
	return 0
}

// transformProcessor applies a per-message rewrite to the configured
// direction and passes the other direction through untouched.
type transformProcessor struct {
	dir       core.Direction
	transform func([]byte) ([]byte, error)
	mb        messageBuffer
}

// Process implements core.Processor.
func (p *transformProcessor) Process(dir core.Direction, chunk []byte) ([]byte, error) {
	if dir != p.dir {
		return chunk, nil
	}
	p.mb.buf = append(p.mb.buf, chunk...)
	var out []byte
	for {
		msg := p.mb.nextMessage()
		if msg == nil {
			return out, nil
		}
		rewritten, err := p.transform(msg)
		if err != nil {
			return nil, err
		}
		out = append(out, rewritten...)
	}
}

// NewRequestTransformer builds a Processor that rewrites each complete
// client→server HTTP request.
func NewRequestTransformer(f func(*httpx.Request) error) core.Processor {
	return &transformProcessor{
		dir: core.DirClientToServer,
		transform: func(msg []byte) ([]byte, error) {
			req, err := httpx.ReadRequest(bufio.NewReader(bytes.NewReader(msg)))
			if err != nil {
				return nil, err
			}
			if err := f(req); err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := req.Write(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}
}

// NewResponseTransformer builds a Processor that rewrites each complete
// server→client HTTP response.
func NewResponseTransformer(f func(*httpx.Response) error) core.Processor {
	return &transformProcessor{
		dir: core.DirServerToClient,
		transform: func(msg []byte) ([]byte, error) {
			resp, err := httpx.ReadResponse(bufio.NewReader(bytes.NewReader(msg)))
			if err != nil {
				return nil, err
			}
			if err := f(resp); err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := resp.Write(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}
}

// NewHeaderInserter reproduces the paper's prototype middlebox: "a
// simple HTTP proxy that performs HTTP header insertion" (§5). Each
// request gains the given header.
func NewHeaderInserter(name, value string) core.Processor {
	return NewRequestTransformer(func(req *httpx.Request) error {
		req.Header.Set(name, value)
		return nil
	})
}

// NewCompressor builds a Flywheel-style compression proxy: response
// bodies above threshold are DEFLATE-compressed with Content-Encoding
// set, shrinking bytes on the client's access link.
func NewCompressor(threshold int) core.Processor {
	return NewResponseTransformer(func(resp *httpx.Response) error {
		if len(resp.Body) < threshold || resp.Header.Get("Content-Encoding") != "" {
			return nil
		}
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := fw.Write(resp.Body); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		if buf.Len() >= len(resp.Body) {
			return nil // incompressible; leave as-is
		}
		resp.Body = buf.Bytes()
		resp.Header.Set("Content-Encoding", "deflate")
		return nil
	})
}

// Decompress reverses NewCompressor's encoding (client-side helper for
// the examples and tests).
func Decompress(resp *httpx.Response) error {
	if resp.Header.Get("Content-Encoding") != "deflate" {
		return nil
	}
	fr := flate.NewReader(bytes.NewReader(resp.Body))
	body, err := io.ReadAll(fr)
	if err != nil {
		return err
	}
	resp.Body = body
	resp.Header.Set("Content-Encoding", "")
	return nil
}

// NewWordFilter builds a parental-filter middlebox: responses whose
// bodies contain a blocked word are replaced with a 403 page. This is
// the "filter" middlebox class whose ordering the paper's path
// integrity property protects (§3.2 P4, §4.2 "Bypassing 'Filter'
// Middleboxes").
func NewWordFilter(blocked ...string) core.Processor {
	return NewResponseTransformer(func(resp *httpx.Response) error {
		body := strings.ToLower(string(resp.Body))
		for _, w := range blocked {
			if strings.Contains(body, strings.ToLower(w)) {
				resp.StatusCode = 403
				resp.Reason = "Forbidden"
				resp.Body = []byte("blocked by parental filter\n")
				return nil
			}
		}
		return nil
	})
}

// NewByteCounter passes data through while counting plaintext bytes per
// direction; the Figure 7 throughput harness uses it as the cheapest
// possible "inspect" workload.
type ByteCounter struct {
	C2S, S2C int64
}

// Process implements core.Processor.
func (bc *ByteCounter) Process(dir core.Direction, chunk []byte) ([]byte, error) {
	if dir == core.DirClientToServer {
		bc.C2S += int64(len(chunk))
	} else {
		bc.S2C += int64(len(chunk))
	}
	return chunk, nil
}
