package mbapps

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/httpx"
)

// feedChunks drives a processor with the message split at the given
// chunk size, concatenating outputs — simulating arbitrary record
// boundaries on the data plane.
func feedChunks(t *testing.T, p core.Processor, dir core.Direction, msg []byte, chunkSize int) []byte {
	t.Helper()
	var out []byte
	for off := 0; off < len(msg); off += chunkSize {
		end := off + chunkSize
		if end > len(msg) {
			end = len(msg)
		}
		o, err := p.Process(dir, msg[off:end])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o...)
	}
	return out
}

func marshalRequest(t *testing.T, req *httpx.Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func marshalResponse(t *testing.T, resp *httpx.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHeaderInserterAcrossChunkBoundaries(t *testing.T) {
	msg := marshalRequest(t, &httpx.Request{
		Method: "GET", Path: "/page", Host: "origin.example",
		Header: httpx.Header{}, Body: []byte("req-body"),
	})
	// Every chunking, down to byte-at-a-time, must produce the same
	// rewritten request.
	for _, chunk := range []int{1, 2, 3, 7, 16, len(msg)} {
		p := NewHeaderInserter("Via", "1.1 mbtls-proxy")
		out := feedChunks(t, p, core.DirClientToServer, msg, chunk)
		req, err := httpx.ReadRequest(bufio.NewReader(bytes.NewReader(out)))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if req.Header.Get("Via") != "1.1 mbtls-proxy" {
			t.Fatalf("chunk=%d: Via header missing", chunk)
		}
		if string(req.Body) != "req-body" {
			t.Fatalf("chunk=%d: body corrupted: %q", chunk, req.Body)
		}
	}
}

func TestHeaderInserterPassesResponses(t *testing.T) {
	p := NewHeaderInserter("Via", "x")
	resp := marshalResponse(t, &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: []byte("ok")})
	out := feedChunks(t, p, core.DirServerToClient, resp, 4)
	if !bytes.Equal(out, resp) {
		t.Fatal("response direction modified by a request transformer")
	}
}

func TestHeaderInserterPipelinedRequests(t *testing.T) {
	var stream []byte
	for i := 0; i < 3; i++ {
		stream = append(stream, marshalRequest(t, &httpx.Request{
			Method: "GET", Path: "/r", Host: "h", Header: httpx.Header{},
		})...)
	}
	p := NewHeaderInserter("Via", "v")
	out := feedChunks(t, p, core.DirClientToServer, stream, 11)
	br := bufio.NewReader(bytes.NewReader(out))
	for i := 0; i < 3; i++ {
		req, err := httpx.ReadRequest(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if req.Header.Get("Via") != "v" {
			t.Fatalf("request %d missing Via", i)
		}
	}
}

func TestCompressorRoundTrip(t *testing.T) {
	page := strings.Repeat("compressible content. ", 200)
	resp := marshalResponse(t, &httpx.Response{
		StatusCode: 200, Header: httpx.Header{}, Body: []byte(page),
	})
	p := NewCompressor(64)
	out := feedChunks(t, p, core.DirServerToClient, resp, 333)
	if len(out) >= len(resp) {
		t.Fatalf("compressor did not shrink: %d → %d bytes", len(resp), len(out))
	}
	got, err := httpx.ReadResponse(bufio.NewReader(bytes.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Get("Content-Encoding") != "deflate" {
		t.Fatal("Content-Encoding not set")
	}
	if err := Decompress(got); err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != page {
		t.Fatal("decompressed body mismatch")
	}
}

func TestCompressorSkipsSmallAndIncompressible(t *testing.T) {
	p := NewCompressor(1024)
	small := marshalResponse(t, &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: []byte("tiny")})
	out := feedChunks(t, p, core.DirServerToClient, small, 16)
	got, err := httpx.ReadResponse(bufio.NewReader(bytes.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Get("Content-Encoding") != "" {
		t.Fatal("small body was compressed")
	}
	if string(got.Body) != "tiny" {
		t.Fatal("small body corrupted")
	}
}

func TestWordFilterBlocks(t *testing.T) {
	p := NewWordFilter("forbidden")
	bad := marshalResponse(t, &httpx.Response{
		StatusCode: 200, Header: httpx.Header{}, Body: []byte("this page contains FORBIDDEN words"),
	})
	out := feedChunks(t, p, core.DirServerToClient, bad, 9)
	got, err := httpx.ReadResponse(bufio.NewReader(bytes.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 403 {
		t.Fatalf("status = %d, want 403", got.StatusCode)
	}

	good := marshalResponse(t, &httpx.Response{
		StatusCode: 200, Header: httpx.Header{}, Body: []byte("perfectly wholesome content"),
	})
	out = feedChunks(t, p, core.DirServerToClient, good, 9)
	got, err = httpx.ReadResponse(bufio.NewReader(bytes.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 {
		t.Fatalf("clean page blocked: %d", got.StatusCode)
	}
}

func TestByteCounter(t *testing.T) {
	bc := &ByteCounter{}
	bc.Process(core.DirClientToServer, make([]byte, 10)) //nolint:errcheck
	bc.Process(core.DirServerToClient, make([]byte, 7))  //nolint:errcheck
	bc.Process(core.DirClientToServer, make([]byte, 5))  //nolint:errcheck
	if bc.C2S != 15 || bc.S2C != 7 {
		t.Fatalf("counters = %d/%d", bc.C2S, bc.S2C)
	}
}

func TestTransformerHoldsIncompleteMessage(t *testing.T) {
	// A partial request must produce no output until completed.
	msg := marshalRequest(t, &httpx.Request{Method: "GET", Path: "/x", Host: "h", Header: httpx.Header{}})
	p := NewHeaderInserter("Via", "v")
	half := len(msg) / 2
	out, err := p.Process(core.DirClientToServer, msg[:half])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("incomplete message emitted %d bytes", len(out))
	}
	out, err = p.Process(core.DirClientToServer, msg[half:])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("completed message produced no output")
	}
}
