package transport_test

import (
	"net"
	"testing"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/transport/conformancetest"
)

// TestNetsimConformance runs the full transport conformance suite
// against the netsim backend, pairing conns the way sessions do: a
// listener on one node, a dial from another, through the Transport
// adapter.
func TestNetsimConformance(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Pair {
		n := netsim.NewNetwork()
		tr := transport.NewNetsim(n, "client")
		ln, err := tr.Listen("server")
		if err != nil {
			t.Fatalf("netsim listen: %v", err)
		}
		type accepted struct {
			c   net.Conn
			err error
		}
		acc := make(chan accepted, 1)
		go func() {
			c, err := ln.Accept()
			acc <- accepted{c, err}
		}()
		a, err := tr.Dial("server")
		if err != nil {
			t.Fatalf("netsim dial: %v", err)
		}
		got := <-acc
		if got.err != nil {
			a.Close()
			t.Fatalf("netsim accept: %v", got.err)
		}
		return conformancetest.Pair{A: a, B: got.c, Release: func() { ln.Close() }}
	})
}

// TestNetsimPolicyAppliesToEveryDial pins the policy-keying contract:
// the transport suffixes its node name per dial (client, client#2, …),
// and netsim strips the suffix before policy lookups, so a fault
// policy keyed on the configured (from, to) pair must hit the second
// and later connections too.
func TestNetsimPolicyAppliesToEveryDial(t *testing.T) {
	n := netsim.NewNetwork()
	hits := 0
	n.SetFaultPolicy(func(from, to string) netsim.FaultSpec {
		if from == "client" && to == "server" {
			hits++
			return netsim.FaultSpec{Kind: netsim.FaultReset}
		}
		return netsim.FaultSpec{}
	})
	tr := transport.NewNetsim(n, "client")
	ln, err := tr.Listen("server")
	if err != nil {
		t.Fatalf("netsim listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	for i := 1; i <= 3; i++ {
		c, err := tr.Dial("server")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		// FaultReset at offset 0 fails the very first write; a clean
		// link (the pre-fix behavior for dial 2+, whose node name no
		// longer matched the policy) would buffer it successfully.
		if _, err := c.Write([]byte{0}); err == nil {
			t.Fatalf("dial %d: write succeeded, want injected reset", i)
		}
		c.Close()
	}
	if hits != 3 {
		t.Fatalf("fault policy matched %d dials, want 3", hits)
	}
}

// TestNetsimTransportName pins the backend name benchmarks key on.
func TestNetsimTransportName(t *testing.T) {
	tr := transport.NewNetsim(netsim.NewNetwork(), "client")
	if got := tr.Name(); got != "netsim" {
		t.Fatalf("Name() = %q, want %q", got, "netsim")
	}
}
