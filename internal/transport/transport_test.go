package transport_test

import (
	"net"
	"testing"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/transport/conformancetest"
)

// TestNetsimConformance runs the full transport conformance suite
// against the netsim backend, pairing conns the way sessions do: a
// listener on one node, a dial from another, through the Transport
// adapter.
func TestNetsimConformance(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Pair {
		n := netsim.NewNetwork()
		tr := transport.NewNetsim(n, "client")
		ln, err := tr.Listen("server")
		if err != nil {
			t.Fatalf("netsim listen: %v", err)
		}
		type accepted struct {
			c   net.Conn
			err error
		}
		acc := make(chan accepted, 1)
		go func() {
			c, err := ln.Accept()
			acc <- accepted{c, err}
		}()
		a, err := tr.Dial("server")
		if err != nil {
			t.Fatalf("netsim dial: %v", err)
		}
		got := <-acc
		if got.err != nil {
			a.Close()
			t.Fatalf("netsim accept: %v", got.err)
		}
		return conformancetest.Pair{A: a, B: got.c, Release: func() { ln.Close() }}
	})
}

// TestNetsimTransportName pins the backend name benchmarks key on.
func TestNetsimTransportName(t *testing.T) {
	tr := transport.NewNetsim(netsim.NewNetwork(), "client")
	if got := tr.Name(); got != "netsim" {
		t.Fatalf("Name() = %q, want %q", got, "netsim")
	}
}
