// Package tcpx is the real-socket transport backend: kernel TCP with
// the syscall patterns the zero-alloc data plane wants. Accepted and
// dialed connections wrap *net.TCPConn with
//
//   - a pooled read buffer (from a tls12.RecordBufPool) that drains
//     whatever the kernel has accumulated in one read syscall and then
//     serves record-layer reads from user space,
//   - a vectored write path (WriteBuffers → writev) so a coalesced
//     record batch spanning several pooled buffers hits the wire in
//     one syscall,
//   - TCP_NODELAY on by default, with Cork/Uncork toggling it around
//     multi-write batches (uncorking re-enables NODELAY, which flushes
//     any segment the kernel is still holding), and
//   - optional SO_REUSEPORT listeners, so a sharded sessionhost can
//     run one accept loop per shard on the same address with the
//     kernel spreading connections across them.
//
// The pooled read buffer is single-owner: acquired by the conn on
// first Read, released exactly once by Close. mbtls-lint bufownership
// checks this lifetime (a field assigned from GetRecordBuf must have a
// release path calling PutRecordBuf).
package tcpx

import (
	"net"

	"repro/internal/tls12"
)

// Config shapes the transport. The zero value is production defaults:
// NODELAY enabled, the process-wide record-buffer pool, no reuseport.
type Config struct {
	// NoDelayOff disables TCP_NODELAY on new connections (i.e. leaves
	// Nagle's algorithm on). The flag is inverted so the zero value
	// keeps NODELAY enabled — the record layer already coalesces, so
	// Nagle only adds latency on top of our own batching.
	NoDelayOff bool
	// ReusePort sets SO_REUSEPORT on listeners, letting ListenShards
	// bind one listener per shard on the same address. Ignored (with a
	// single shared listener as fallback) where unsupported.
	ReusePort bool
	// Pool supplies read buffers; nil uses the shared process pool.
	Pool *tls12.RecordBufPool
}

// Transport implements transport.Transport over kernel TCP sockets.
type Transport struct {
	cfg Config
}

// New returns a TCP transport with the given config.
func New(cfg Config) *Transport {
	if cfg.Pool == nil {
		cfg.Pool = tls12.SharedRecordBufPool()
	}
	return &Transport{cfg: cfg}
}

// Default returns a TCP transport with production defaults.
func Default() *Transport { return New(Config{}) }

// Name reports the backend name used in benchmark rows.
func (t *Transport) Name() string { return "tcp" }

// Listen binds addr (host:port; ":0" picks a free port) and wraps
// accepted connections in the batched-I/O Conn.
func (t *Transport) Listen(addr string) (net.Listener, error) {
	ln, err := listenTCP(addr, t.cfg.ReusePort)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: ln, t: t}, nil
}

// ListenShards binds n listeners on the same addr when SO_REUSEPORT is
// enabled and supported, so each sessionhost shard can own an accept
// loop with kernel-level connection spreading. Without reuseport (or
// on platforms lacking it) it returns a single listener; callers must
// size their accept loops by the returned slice, not by n. For a
// wildcard port (":0"), the first bind picks the port and the
// remaining shards bind the same one.
func (t *Transport) ListenShards(addr string, n int) ([]net.Listener, error) {
	if n < 1 {
		n = 1
	}
	if n == 1 || !t.cfg.ReusePort || !reusePortSupported {
		ln, err := t.Listen(addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := t.Listen(addr)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, err
		}
		lns = append(lns, ln)
		if i == 0 {
			addr = ln.Addr().String() // pin a wildcard port for the rest
		}
	}
	return lns, nil
}

// Dial connects to addr and returns a batched-I/O Conn.
func (t *Transport) Dial(addr string) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(nc.(*net.TCPConn)), nil
}

func (t *Transport) wrap(tcp *net.TCPConn) *Conn {
	tcp.SetNoDelay(!t.cfg.NoDelayOff) //nolint:errcheck
	return &Conn{tcp: tcp, pool: t.cfg.Pool, noDelay: !t.cfg.NoDelayOff}
}

// listener wraps accepted sockets into Conns.
type listener struct {
	net.Listener
	t *Transport
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(nc.(*net.TCPConn)), nil
}
