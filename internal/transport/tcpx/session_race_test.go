package tcpx_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/sessionhost"
	"repro/internal/tls12"
	"repro/internal/transport/tcpx"
)

// raceSessions mirrors the netsim concurrent-sessions test: 64 clean
// sessions at once through one shared middlebox host, over real
// loopback sockets instead of simulated pipes.
const raceSessions = 64

// raceShards fixes the hosts' shard count so cross-shard admission and
// the SO_REUSEPORT listener fan-out are exercised even on single-core
// machines.
const raceShards = 8

// TestConcurrentSessionsOverTCP is the loopback-TCP re-run of netsim's
// TestConcurrentSessionsThroughFaultyNetwork: a fleet of 64 complete
// mbTLS sessions through one shared middlebox and server host pair,
// plus one connection that dies by a real kernel RST (SO_LINGER=0 +
// Close) mid-handshake. Every clean session must stay fully functional
// while the host observes and absorbs the reset — the same
// fault-isolation property the simulator asserts, demonstrated against
// real ECONNRESET instead of an injected one.
func TestConcurrentSessionsOverTCP(t *testing.T) {
	ca, err := certs.NewCA("tcp race root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	pool := tls12.NewRecordBufPool(2 * raceSessions)
	tr := tcpx.New(tcpx.Config{ReusePort: true, Pool: pool})

	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  30 * time.Second,
	}
	srvHost, err := sessionhost.New(sessionhost.Config{
		Name:        "server",
		MaxSessions: 2 * raceSessions,
		Shards:      raceShards,
		Handler: sessionhost.NewServerHandler(scfg, func(s *core.Session) error {
			buf := make([]byte, 256)
			nr, err := s.Read(buf)
			if err != nil {
				return err
			}
			_, err = s.Write(buf[:nr])
			return err
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srvLns, err := tr.ListenShards("127.0.0.1:0", srvHost.Shards())
	if err != nil {
		t.Fatal(err)
	}
	srvAddr := srvLns[0].Addr().String()
	go srvHost.ServeListeners(srvLns) //nolint:errcheck
	defer srvHost.Close()             //nolint:errcheck

	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name: "mb.example", Mode: core.ClientSide, Certificate: mbCert,
		BufPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:        "mb",
		MaxSessions: 2 * raceSessions,
		Shards:      raceShards,
		BufPool:     pool,
		Handler: sessionhost.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return tr.Dial(srvAddr)
		}),
		MiddleboxStats: mb.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	mbLns, err := tr.ListenShards("127.0.0.1:0", mbHost.Shards())
	if err != nil {
		t.Fatal(err)
	}
	mbAddr := mbLns[0].Addr().String()
	go mbHost.ServeListeners(mbLns) //nolint:errcheck
	defer mbHost.Close()            //nolint:errcheck

	ccfg := func() *core.ClientConfig {
		return &core.ClientConfig{
			TLS:              &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
			HandshakeTimeout: 30 * time.Second,
		}
	}

	var wg sync.WaitGroup
	okErrs := make(chan error, raceSessions)
	for i := 0; i < raceSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := tr.Dial(mbAddr)
			if err != nil {
				okErrs <- fmt.Errorf("client %d dial: %w", i, err)
				return
			}
			sess, err := core.Dial(conn, ccfg())
			if err != nil {
				conn.Close()
				okErrs <- fmt.Errorf("client %d handshake: %w", i, err)
				return
			}
			defer sess.Close()
			msg := []byte(fmt.Sprintf("over loopback tcp %d", i))
			if _, err := sess.Write(msg); err != nil {
				okErrs <- fmt.Errorf("client %d write: %w", i, err)
				return
			}
			sess.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(sess, buf); err != nil {
				okErrs <- fmt.Errorf("client %d read: %w", i, err)
				return
			}
			if string(buf) != string(msg) {
				okErrs <- fmt.Errorf("client %d echo = %q, want %q", i, buf, msg)
			}
		}(i)
	}

	// The bad client: a genuine mbTLS dial whose reads are stalled, so
	// the middlebox sniffs a real ClientHello, joins, and is parked
	// mid-handshake waiting for the client's next flight — then the
	// client aborts with a real kernel RST (SO_LINGER=0 + Close emits
	// RST instead of FIN), and the host's reader surfaces ECONNRESET
	// exactly where netsim's FaultReset-at-offset-300 injects one.
	badDone := make(chan error, 1)
	go func() {
		conn, err := tr.Dial(mbAddr)
		if err != nil {
			badDone <- err
			return
		}
		stalled := &stallRead{Conn: conn, unblock: make(chan struct{})}
		dialErr := make(chan error, 1)
		go func() {
			sess, err := core.Dial(stalled, ccfg())
			if err == nil {
				sess.Close()
			}
			dialErr <- err
		}()
		// Wait for the middlebox to join before aborting: the first byte
		// of the relayed ServerHello flight arriving back at the client
		// proves the ClientHello was sniffed and the chain established.
		// (The session's reads are parked inside stallRead, so the raw
		// conn is free for the harness to observe.) A pre-join RST would
		// be absorbed by the host's transparent-relay fallback and not
		// count as a session fault, so a fixed sleep here is a race.
		conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		io.ReadFull(conn, make([]byte, 1))                     //nolint:errcheck
		conn.(*tcpx.Conn).SetLinger(0)                         //nolint:errcheck
		conn.Close()
		close(stalled.unblock)
		badDone <- <-dialErr
	}()

	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	select {
	case <-fleetDone:
	case <-time.After(60 * time.Second):
		t.Fatal("clean-path fleet wedged")
	}
	close(okErrs)
	for err := range okErrs {
		t.Errorf("clean session failed beside the RST one: %v", err)
	}
	select {
	case err := <-badDone:
		if err == nil {
			t.Error("RST-mid-handshake path produced a working session")
		} else if cls := core.ClassifyError(err); !cls.Transient() && cls != core.ClassCleanClose {
			t.Errorf("RST path surfaced class %s (%v), want a transport-failure class", cls, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("bad client wedged")
	}

	// The host must have seen the aborted connection fail; the clean
	// fleet must all have completed. Failure accounting is asynchronous
	// with the client's Close, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := mbHost.Metrics()
		if m.Failed >= 1 || time.Now().After(deadline) {
			if m.Accepted < raceSessions+1 {
				t.Errorf("middlebox host admitted %d sessions, want >= %d", m.Accepted, raceSessions+1)
			}
			if m.Failed < 1 {
				t.Errorf("middlebox host recorded %d failed sessions, want >= 1 (the RST one)", m.Failed)
			}
			if len(m.PerShard) != raceShards {
				t.Errorf("metrics carry %d shards, want %d", len(m.PerShard), raceShards)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := pool.Stats(); st.Gets == 0 {
		t.Error("shared buffer pool was never used (relay and tcpx read path both feed from it)")
	}
}

// stallRead withholds inbound bytes from the handshake until unblock
// closes, pinning the peer mid-handshake so an abort lands at a
// deterministic protocol position.
type stallRead struct {
	net.Conn
	unblock chan struct{}
}

func (c *stallRead) Read(p []byte) (int, error) {
	<-c.unblock
	return c.Conn.Read(p)
}

// TestClassifyErrorParityOverTCP pins the fault→class matrix on real
// sockets: each kernel-produced failure mode must classify identically
// to its netsim-injected counterpart (DESIGN.md §7's table), so code
// written against the simulator's error vocabulary behaves the same in
// production.
func TestClassifyErrorParityOverTCP(t *testing.T) {
	tr := tcpx.Default()
	pair := func(t *testing.T) (a, b net.Conn, done func()) {
		t.Helper()
		ln, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		acc := make(chan net.Conn, 1)
		go func() {
			c, err := ln.Accept()
			if err == nil {
				acc <- c
			} else {
				acc <- nil
			}
		}()
		a, err = tr.Dial(ln.Addr().String())
		if err != nil {
			ln.Close()
			t.Fatalf("dial: %v", err)
		}
		b = <-acc
		if b == nil {
			a.Close()
			ln.Close()
			t.Fatal("accept failed")
		}
		return a, b, func() { a.Close(); b.Close(); ln.Close() }
	}

	t.Run("RSTClassifiesReset", func(t *testing.T) {
		a, b, done := pair(t)
		defer done()
		a.(*tcpx.Conn).SetLinger(0) //nolint:errcheck
		a.Close()
		b.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		_, err := io.ReadFull(b, make([]byte, 1))
		if err == nil {
			t.Fatal("read after RST succeeded")
		}
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("read after RST = %v, want ECONNRESET", err)
		}
		if cls := core.ClassifyError(err); cls != core.ClassReset {
			t.Fatalf("RST classified %s, want %s", cls, core.ClassReset)
		}
	})

	t.Run("ReadDeadlineClassifiesTimeout", func(t *testing.T) {
		a, _, done := pair(t)
		defer done()
		a.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //nolint:errcheck
		_, err := a.Read(make([]byte, 1))
		if cls := core.ClassifyError(err); cls != core.ClassTimeout {
			t.Fatalf("deadline expiry (%v) classified %s, want %s", err, cls, core.ClassTimeout)
		}
	})

	t.Run("CleanCloseClassifiesCleanClose", func(t *testing.T) {
		a, b, done := pair(t)
		defer done()
		a.Close()
		b.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		_, err := b.Read(make([]byte, 1))
		if cls := core.ClassifyError(err); cls != core.ClassCleanClose {
			t.Fatalf("FIN (%v) classified %s, want %s", err, cls, core.ClassCleanClose)
		}
	})

	t.Run("OwnCloseClassifiesReset", func(t *testing.T) {
		a, _, done := pair(t)
		defer done()
		a.Close()
		_, err := a.Read(make([]byte, 1))
		if cls := core.ClassifyError(err); cls != core.ClassReset {
			t.Fatalf("read-after-own-close (%v) classified %s, want %s", err, cls, core.ClassReset)
		}
	})

	// A silent peer — connected but never answering — must surface the
	// handshake phase deadline as ClassTimeout, exactly as netsim's
	// FaultStall does.
	t.Run("SilentPeerClassifiesTimeout", func(t *testing.T) {
		a, _, done := pair(t)
		defer done()
		_, err := core.Dial(a, &core.ClientConfig{
			TLS:              &tls12.Config{ServerName: "origin.example"},
			HandshakeTimeout: 150 * time.Millisecond,
		})
		if err == nil {
			t.Fatal("handshake against a silent peer succeeded")
		}
		var hte *core.HandshakeTimeoutError
		if !errors.As(err, &hte) {
			t.Fatalf("err = %v (%T), want *HandshakeTimeoutError", err, err)
		}
		if cls := core.ClassifyError(err); cls != core.ClassTimeout {
			t.Fatalf("silent peer classified %s, want %s", cls, core.ClassTimeout)
		}
	})
}
