//go:build !linux

package tcpx

import "net"

// reusePortSupported: without a portable SO_REUSEPORT, ListenShards
// falls back to one shared listener (accept loops contend on it, which
// is correct, just not kernel-spread).
const reusePortSupported = false

// listenTCP binds addr; the reusePort request is ignored here.
func listenTCP(addr string, _ bool) (net.Listener, error) {
	var lc net.ListenConfig
	return listenContextFree(lc, addr)
}
