//go:build linux

package tcpx

import (
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT's option number on Linux. The syscall
// package on some toolchains omits the constant, so it is pinned here;
// the value has been 15 since the option appeared in Linux 3.9.
const soReusePort = 0xf

// reusePortSupported reports that ListenShards can bind one listener
// per shard on this platform.
const reusePortSupported = true

// listenTCP binds addr, setting SO_REUSEPORT before bind when asked so
// several listeners can share the address (the kernel hashes incoming
// connections across them).
func listenTCP(addr string, reusePort bool) (net.Listener, error) {
	var lc net.ListenConfig
	if reusePort {
		lc.Control = func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		}
	}
	return listenContextFree(lc, addr)
}
