package tcpx_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/tls12"
	"repro/internal/transport/conformancetest"
	"repro/internal/transport/tcpx"
)

// loopbackFactory mints conformance pairs over real loopback TCP
// through the given transport.
func loopbackFactory(tr *tcpx.Transport) conformancetest.Factory {
	return func(t *testing.T) conformancetest.Pair {
		ln, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("tcp listen: %v", err)
		}
		type accepted struct {
			c   net.Conn
			err error
		}
		acc := make(chan accepted, 1)
		go func() {
			c, err := ln.Accept()
			acc <- accepted{c, err}
		}()
		a, err := tr.Dial(ln.Addr().String())
		if err != nil {
			ln.Close()
			t.Fatalf("tcp dial: %v", err)
		}
		got := <-acc
		if got.err != nil {
			a.Close()
			ln.Close()
			t.Fatalf("tcp accept: %v", got.err)
		}
		return conformancetest.Pair{A: a, B: got.c, Release: func() { ln.Close() }}
	}
}

// TestTCPConformance runs the full transport conformance suite over
// real loopback sockets with the default configuration (NODELAY on,
// shared record-buffer pool).
func TestTCPConformance(t *testing.T) {
	conformancetest.Run(t, loopbackFactory(tcpx.Default()))
}

// TestTCPConformancePooledReads re-runs the suite with a private
// record-buffer pool, exercising the pooled read path's single-owner
// lifetime (buffer acquired lazily on first Read, released on Close).
func TestTCPConformancePooledReads(t *testing.T) {
	tr := tcpx.New(tcpx.Config{Pool: tls12.NewRecordBufPool(64)})
	conformancetest.Run(t, loopbackFactory(tr))
}

// TestListenShards covers the SO_REUSEPORT fan-out: n listeners must
// share one port, and connections landing on any of them must work.
func TestListenShards(t *testing.T) {
	tr := tcpx.New(tcpx.Config{ReusePort: true})
	lns, err := tr.ListenShards("127.0.0.1:0", 4)
	if err != nil {
		t.Fatalf("ListenShards: %v", err)
	}
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addr := lns[0].Addr().String()
	for _, ln := range lns[1:] {
		if got := ln.Addr().String(); got != addr {
			t.Fatalf("shard listener bound %s, want shared %s", got, addr)
		}
	}
	// Every listener accepts; dial until each has seen at least one
	// connection or we hit the attempt budget (the kernel hashes
	// connections across REUSEPORT sockets by 4-tuple, so spread is
	// probabilistic — assert reachability, not distribution).
	done := make(chan int, len(lns))
	for i, ln := range lns {
		go func(i int, ln net.Listener) {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
				done <- i
			}
		}(i, ln)
	}
	for i := 0; i < 8; i++ {
		c, err := tr.Dial(addr)
		if err != nil {
			t.Fatalf("dial shared port: %v", err)
		}
		// Wait for some listener to observe the connection.
		<-done
		c.Close()
	}
}

// TestListenShardsSingle pins the fallback: n <= 1 or ReusePort off
// yields exactly one listener.
func TestListenShardsSingle(t *testing.T) {
	tr := tcpx.Default()
	lns, err := tr.ListenShards("127.0.0.1:0", 4)
	if err != nil {
		t.Fatalf("ListenShards: %v", err)
	}
	defer lns[0].Close()
	if len(lns) != 1 {
		t.Fatalf("ListenShards without ReusePort returned %d listeners, want 1", len(lns))
	}
}

// TestTransportName pins the backend name benchmarks key on.
func TestTransportName(t *testing.T) {
	if got := tcpx.Default().Name(); got != "tcp" {
		t.Fatalf("Name() = %q, want %q", got, "tcp")
	}
}

// TestTCPDataPlaneAllocFree pins the acceptance bar that the tcpx
// data plane allocates nothing per operation once warm: Write forwards
// straight to the socket, Read serves from the conn's pooled buffer.
func TestTCPDataPlaneAllocFree(t *testing.T) {
	p := loopbackFactory(tcpx.Default())(t)
	defer func() { p.A.Close(); p.B.Close(); p.Release() }()

	msg := make([]byte, 1024)
	buf := make([]byte, 2048)
	// Warm-up: the first Read lazily acquires the pooled refill buffer.
	if _, err := p.A.Write(msg); err != nil {
		t.Fatal(err)
	}
	p.B.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := p.B.Read(buf); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.A.Write(msg); err != nil {
			t.Fatal(err)
		}
		total := 0
		for total < len(msg) {
			n, err := p.B.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
	})
	if allocs != 0 {
		t.Fatalf("TCP data plane allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkTCPConnReadWrite measures the batched-I/O conn's round-trip
// cost over loopback; run with -benchmem to watch the 0 B/op floor.
func BenchmarkTCPConnReadWrite(b *testing.B) {
	tr := tcpx.Default()
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	a, err := tr.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	c := <-acc
	defer c.Close()

	msg := make([]byte, 4096)
	buf := make([]byte, 8192)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Write(msg); err != nil {
			b.Fatal(err)
		}
		total := 0
		for total < len(msg) {
			n, err := c.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
	}
}
