package tcpx

import (
	"context"
	"net"
)

// listenContextFree runs ListenConfig.Listen with a background
// context; binds either succeed or fail immediately, so no caller has
// a meaningful deadline to thread through.
func listenContextFree(lc net.ListenConfig, addr string) (net.Listener, error) {
	return lc.Listen(context.Background(), "tcp", addr)
}
