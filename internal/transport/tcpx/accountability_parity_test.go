package tcpx_test

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/sessionhost"
	"repro/internal/testutil/goleak"
	"repro/internal/tls12"
	"repro/internal/transport/tcpx"
)

// acctChain is one client→middlebox→server chain over real loopback
// sockets, mirroring the topology of the netsim accountability
// failure-path tests (internal/core/accountability_test.go). Every
// proxysig fault injected there is re-driven here through the kernel,
// asserting the error class parity DESIGN.md §7 promises: simulator
// vocabulary == production vocabulary.
type acctChain struct {
	tr     *tcpx.Transport
	ca     *certs.CA
	mbAddr string
}

// start builds the chain. mbOpt mutates the middlebox config before it
// starts (accountability mode, fault injectors); both hosts are torn
// down by t.Cleanup.
func startAcctChain(t *testing.T, mbOpt func(*core.MiddleboxConfig)) *acctChain {
	t.Helper()
	ca, err := certs.NewCA("acct parity root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	tr := tcpx.Default()
	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  30 * time.Second,
	}
	srvHost, err := sessionhost.New(sessionhost.Config{
		Name:        "acct-server",
		MaxSessions: 4,
		Shards:      1,
		// Echo until the client hangs up: the server session must stay
		// open while the client settles its evidence audit at Close.
		Handler: sessionhost.NewServerHandler(scfg, func(s *core.Session) error {
			buf := make([]byte, 256)
			for {
				n, err := s.Read(buf)
				if err != nil {
					return err
				}
				if _, err := s.Write(buf[:n]); err != nil {
					return err
				}
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srvLn, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvAddr := srvLn.Addr().String()
	go srvHost.Serve(srvLn) //nolint:errcheck

	mbCfg := core.MiddleboxConfig{
		Name: "mb.example", Mode: core.ClientSide, Certificate: mbCert,
	}
	if mbOpt != nil {
		mbOpt(&mbCfg)
	}
	mb, err := core.NewMiddlebox(mbCfg)
	if err != nil {
		srvHost.Close() //nolint:errcheck
		t.Fatal(err)
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:        "acct-mb",
		MaxSessions: 4,
		Shards:      1,
		Handler: sessionhost.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return tr.Dial(srvAddr)
		}),
		MiddleboxStats: mb.Stats,
	})
	if err != nil {
		srvHost.Close() //nolint:errcheck
		t.Fatal(err)
	}
	mbLn, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		srvHost.Close() //nolint:errcheck
		mbHost.Close()  //nolint:errcheck
		t.Fatal(err)
	}
	go mbHost.Serve(mbLn) //nolint:errcheck
	t.Cleanup(func() {
		mbHost.Close()  //nolint:errcheck
		srvHost.Close() //nolint:errcheck
	})
	return &acctChain{tr: tr, ca: ca, mbAddr: mbLn.Addr().String()}
}

// clientConfig builds a proxysig client config; clock (optional)
// overrides the delegation-minting clock.
func (c *acctChain) clientConfig(clock func() time.Time) *core.ClientConfig {
	return &core.ClientConfig{
		TLS:                 &tls12.Config{RootCAs: c.ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS:        &tls12.Config{RootCAs: c.ca.Pool()},
		Accountability:      core.AccountProxySig,
		AccountabilityClock: clock,
		HandshakeTimeout:    30 * time.Second,
	}
}

// dial runs the client handshake over a fresh loopback connection.
func (c *acctChain) dial(t *testing.T, ccfg *core.ClientConfig) (*core.Session, error) {
	t.Helper()
	conn, err := c.tr.Dial(c.mbAddr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.Dial(conn, ccfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return sess, nil
}

// echo moves one application record each way so the middlebox reseals
// traffic and its evidence digests are non-trivial.
func echo(t *testing.T, sess *core.Session, msg string) {
	t.Helper()
	if _, err := sess.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	sess.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(sess, buf); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	sess.SetReadDeadline(time.Time{}) //nolint:errcheck
}

// TestProxySigParityOverTCP re-runs the proxysig fault matrix on real
// sockets: each adversarial case must surface the same typed error and
// ErrorClass the netsim-driven tests pin, with every goroutine
// accounted for after teardown.
func TestProxySigParityOverTCP(t *testing.T) {
	t.Run("ExpiredDelegation", func(t *testing.T) {
		goleak.Check(t)
		c := startAcctChain(t, func(cfg *core.MiddleboxConfig) {
			cfg.Accountability = core.AccountProxySig
		})
		// A client whose delegation clock is two hours slow mints
		// warrants already outside their validity window; the middlebox
		// refuses with certificate_expired at establishment.
		skewed := c.clientConfig(func() time.Time { return time.Now().Add(-2 * time.Hour) })
		sess, err := c.dial(t, skewed)
		if err == nil {
			sess.Close()
			t.Fatal("handshake with an expired delegation succeeded")
		}
		var ae *tls12.AlertError
		if !errors.As(err, &ae) || !ae.Remote || ae.Description != tls12.AlertCertificateExpired {
			t.Fatalf("err = %v, want remote certificate_expired alert", err)
		}
		if cls := core.ClassifyError(err); cls != core.ClassRemoteAlert {
			t.Fatalf("expired delegation classified %s, want %s", cls, core.ClassRemoteAlert)
		}
	})

	t.Run("TamperedDelegation", func(t *testing.T) {
		goleak.Check(t)
		c := startAcctChain(t, func(cfg *core.MiddleboxConfig) {
			cfg.Accountability = core.AccountProxySig
			cfg.AccountabilityFaults = &core.AccountabilityFaults{
				MutateDelegation: func(d []byte) []byte {
					out := append([]byte(nil), d...)
					out[1] ^= 0x80
					return out
				},
			}
		})
		sess, err := c.dial(t, c.clientConfig(nil))
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		echo(t, sess, "tampered warrant")
		closeErr := sess.Close()
		var ace *core.AccountabilityError
		if !errors.As(closeErr, &ace) {
			t.Fatalf("close = %v, want *AccountabilityError", closeErr)
		}
		if cls := core.ClassifyError(closeErr); cls != core.ClassIntegrity {
			t.Fatalf("tampered delegation classified %s, want %s", cls, core.ClassIntegrity)
		}
	})

	t.Run("ForgedEvidence", func(t *testing.T) {
		goleak.Check(t)
		c := startAcctChain(t, func(cfg *core.MiddleboxConfig) {
			cfg.Accountability = core.AccountProxySig
			cfg.AccountabilityFaults = &core.AccountabilityFaults{
				MutateEvidence: func(ev []byte) []byte {
					out := append([]byte(nil), ev...)
					out[len(out)-1] ^= 0x01
					return out
				},
			}
		})
		sess, err := c.dial(t, c.clientConfig(nil))
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		echo(t, sess, "forged evidence")
		closeErr := sess.Close()
		var ace *core.AccountabilityError
		if !errors.As(closeErr, &ace) {
			t.Fatalf("close = %v, want *AccountabilityError", closeErr)
		}
		if cls := core.ClassifyError(closeErr); cls != core.ClassIntegrity {
			t.Fatalf("forged evidence classified %s, want %s", cls, core.ClassIntegrity)
		}
	})

	t.Run("AccountabilityMismatch", func(t *testing.T) {
		goleak.Check(t)
		// Middlebox stays in attest mode; the proxysig client's offer is
		// refused with a fatal accountability_mismatch alert.
		c := startAcctChain(t, nil)
		sess, err := c.dial(t, c.clientConfig(nil))
		if err == nil {
			sess.Close()
			t.Fatal("handshake across an accountability mismatch succeeded")
		}
		var ae *tls12.AlertError
		if !errors.As(err, &ae) || ae.Description != tls12.AlertAccountabilityMismatch {
			t.Fatalf("err = %v, want accountability_mismatch alert", err)
		}
		if cls := core.ClassifyError(err); cls != core.ClassRemoteAlert {
			t.Fatalf("mismatch classified %s, want %s", cls, core.ClassRemoteAlert)
		}
	})
}
