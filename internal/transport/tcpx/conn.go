package tcpx

import (
	"net"
	"sync"
	"time"
)

// Conn is a TCP connection with a pooled, kernel-draining read buffer
// and a vectored write path. It satisfies the transport package's Conn
// contract; the conformance suite runs against it.
//
// Read semantics: a Read that can be served from the internal buffer
// returns immediately — like netsim, already-delivered data is
// returned even past the read deadline; the deadline only bounds
// waiting on the kernel. A refill reads as much as the kernel has
// buffered in one syscall (up to a full wire record), so a burst of
// small records coalesced by the peer costs one read, not one per
// record.
type Conn struct {
	tcp  *net.TCPConn
	pool recordBufPool

	// noDelay is the steady-state TCP_NODELAY setting Uncork restores.
	noDelay bool

	// rmu serializes Read and guards the pooled buffer's lifetime
	// against Close. Close never takes rmu before closing the socket:
	// a reader parked in a kernel read holds rmu until the close fails
	// it, and only then does Close reclaim the buffer.
	rmu    sync.Mutex
	closed bool
	rbuf   []byte // pooled; single-owner, released once by Close
	rpos   int
	rlen   int
}

// recordBufPool is the slice of tls12.RecordBufPool this package uses,
// kept as a local interface so conn.go depends only on the ownership
// shape (mbtls-lint matches Get/PutRecordBuf by name, so the
// discipline is checked the same through the interface).
type recordBufPool interface {
	GetRecordBuf() []byte
	PutRecordBuf([]byte)
}

// Read serves buffered bytes first, refilling with one kernel read
// when empty. The refill reads into the pooled buffer unless the
// caller's buffer is at least as large — then it reads straight into p
// and skips the copy.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.rpos < c.rlen {
		n := copy(p, c.rbuf[c.rpos:c.rlen])
		c.rpos += n
		return n, nil
	}
	if c.closed {
		return 0, net.ErrClosed
	}
	if len(p) == 0 {
		return 0, nil
	}
	if c.rbuf == nil {
		c.rbuf = c.pool.GetRecordBuf()
	}
	if len(p) >= cap(c.rbuf) {
		return c.tcp.Read(p) // large caller buffer: no intermediate copy
	}
	n, err := c.tcp.Read(c.rbuf[:cap(c.rbuf)])
	if n > 0 {
		c.rpos = copy(p, c.rbuf[:n])
		c.rlen = n
		return c.rpos, nil // data before error; the error resurfaces next Read
	}
	return 0, err
}

// Write forwards to the socket.
func (c *Conn) Write(p []byte) (int, error) { return c.tcp.Write(p) }

// WriteBuffers flushes a batch of buffers in one vectored writev
// syscall. It consumes bufs' slice header; the underlying byte slices
// are the caller's again once it returns (transport.BuffersWriter).
func (c *Conn) WriteBuffers(bufs net.Buffers) (int64, error) {
	return bufs.WriteTo(c.tcp)
}

// Cork suspends TCP_NODELAY so the kernel may coalesce the writes of a
// multi-buffer batch into full segments (transport.Corker).
func (c *Conn) Cork() error { return c.tcp.SetNoDelay(false) }

// Uncork restores the connection's steady-state NODELAY setting;
// re-enabling NODELAY makes the kernel transmit anything it was
// holding, so the batch never stalls behind Nagle.
func (c *Conn) Uncork() error { return c.tcp.SetNoDelay(c.noDelay) }

// SetLinger forwards to the socket. Tests use SetLinger(0) to turn
// Close into a RST, the real-network analogue of netsim's FaultReset.
func (c *Conn) SetLinger(sec int) error { return c.tcp.SetLinger(sec) }

// Close closes the socket first — failing any reader parked in a
// kernel read, which releases rmu — and only then reclaims the pooled
// read buffer under rmu. This ordering is what makes the buffer
// single-owner: no goroutine can be inside a read once the lock is
// held with closed set.
func (c *Conn) Close() error {
	err := c.tcp.Close()
	c.rmu.Lock()
	if !c.closed {
		c.closed = true
		if c.rbuf != nil {
			c.pool.PutRecordBuf(c.rbuf)
			c.rbuf = nil
			c.rpos, c.rlen = 0, 0
		}
	}
	c.rmu.Unlock()
	return err
}

// LocalAddr returns the local socket address.
func (c *Conn) LocalAddr() net.Addr { return c.tcp.LocalAddr() }

// RemoteAddr returns the peer's socket address.
func (c *Conn) RemoteAddr() net.Addr { return c.tcp.RemoteAddr() }

// SetDeadline forwards to the socket.
func (c *Conn) SetDeadline(t time.Time) error { return c.tcp.SetDeadline(t) }

// SetReadDeadline bounds waiting in future Reads. Buffered data is
// still returned past the deadline (see Read).
func (c *Conn) SetReadDeadline(t time.Time) error { return c.tcp.SetReadDeadline(t) }

// SetWriteDeadline bounds blocking in future Writes.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.tcp.SetWriteDeadline(t) }
