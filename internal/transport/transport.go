// Package transport abstracts how mbTLS bytes move between nodes. The
// session layer, the session host, and the daemons speak only to this
// interface; concrete byte movement is provided by two backends with
// deliberately identical semantics:
//
//   - the netsim backend (in-memory pipes with latency/bandwidth/fault
//     injection), used by the experiment harness and most tests, and
//   - the tcpx backend (real kernel TCP sockets with batched syscall
//     I/O), used by the daemons and the loopback-TCP benchmarks.
//
// # Conn contract
//
// Every net.Conn produced by a Transport — dialed or accepted — must
// satisfy the contract below. The conformance suite in
// internal/transport/conformancetest asserts each clause against both
// backends, so the backends cannot drift apart:
//
//   - Stream, not records. Read may return any prefix of the bytes
//     written by the peer, down to a single byte, regardless of how the
//     peer segmented its writes. Nothing above the transport may assume
//     record-aligned delivery (netsim happens to preserve write
//     boundaries under light load; TCP never promises to).
//
//   - Deadlines. A Read that has to wait past the read deadline fails
//     with a net.Error whose Timeout() is true. Data already delivered
//     to the connection may still be returned after the deadline — the
//     deadline bounds waiting, not draining. Clearing the deadline
//     (SetReadDeadline(time.Time{})) restores blocking reads; the
//     connection remains usable after a timeout.
//
//   - Close vs. blocked I/O. Closing a connection unblocks that end's
//     own blocked Read and Write promptly; subsequent operations fail
//     with an error wrapping net.ErrClosed (tcpx), io.ErrClosedPipe
//     (netsim), or the transport's reset error — never a silent
//     success. Closing the peer lets the local reader drain everything
//     the peer wrote before Close, then observe io.EOF — the ordering
//     the record layer relies on for close_notify: the alert is
//     written, then the transport closed, and the peer must see the
//     alert before the EOF.
//
//   - Buffer ownership. Read(p) only ever writes into p and never
//     retains it. Write(p) does not retain p after returning; callers
//     may recycle the buffer (e.g. into tls12's record-buffer pool)
//     immediately. Internal read buffering must be single-owner: a
//     pooled buffer acquired by a conn is released exactly once, on
//     Close (the tcpx backend's pooled read path is checked by
//     mbtls-lint bufownership).
//
// # Optional capabilities
//
// Backends advertise syscall-level batching through the capability
// interfaces below; callers type-assert and fall back to plain Write.
package transport

import "net"

// A Transport provides listeners and outbound connections for one
// backend. Addr strings are backend-scoped: node names for netsim,
// host:port for tcpx. Implementations must be safe for concurrent use.
type Transport interface {
	// Name identifies the backend ("netsim", "tcp") in benchmarks,
	// logs, and BENCH_transport.json rows.
	Name() string
	// Listen claims addr and returns a listener whose accepted conns
	// satisfy the package Conn contract.
	Listen(addr string) (net.Listener, error)
	// Dial opens a connection to addr satisfying the Conn contract.
	Dial(addr string) (net.Conn, error)
}

// BuffersWriter is implemented by conns that can flush a batch of
// record buffers in one vectored syscall (writev). The callee consumes
// bufs (net.Buffers advances its slice as it writes); callers must not
// reuse the slice header afterwards, but regain ownership of the
// underlying byte slices once the call returns.
type BuffersWriter interface {
	WriteBuffers(bufs net.Buffers) (int64, error)
}

// Corker is implemented by conns that can delay small-segment
// transmission across a multi-write batch. Cork before writing a batch
// that spans several Writes, Uncork to flush; Uncork must always be
// called (defer-safe). On tcpx this toggles TCP_NODELAY: corking lets
// the kernel coalesce the batch, uncorking restores
// latency-over-throughput for the steady state.
type Corker interface {
	Cork() error
	Uncork() error
}
