package transport

import (
	"fmt"
	"net"
	"sync/atomic"

	"repro/internal/netsim"
)

// Netsim adapts a *netsim.Network to the Transport interface. Addrs
// are netsim node names. Dials originate from this transport's local
// node name suffixed with a per-dial sequence number, so fault and
// link policies keyed on the dialer name still work while each
// connection stays individually addressable.
type Netsim struct {
	net   *netsim.Network
	local string
	seq   atomic.Uint64
}

// NewNetsim returns a Transport over n whose outbound connections
// originate from the node named local.
func NewNetsim(n *netsim.Network, local string) *Netsim {
	return &Netsim{net: n, local: local}
}

// Name reports the backend name used in benchmark rows.
func (t *Netsim) Name() string { return "netsim" }

// Network returns the underlying simulated network (tests reach
// through for fault policies).
func (t *Netsim) Network() *netsim.Network { return t.net }

// Listen claims the node name addr on the simulated network.
func (t *Netsim) Listen(addr string) (net.Listener, error) {
	return t.net.Listen(addr)
}

// Dial connects from this transport's local node to addr. The dialing
// node name is local for the first dial and local#N after; netsim
// strips the #N suffix before policy lookups, so link and fault
// policies keyed on (local, addr) apply to every connection while each
// one stays individually addressable.
func (t *Netsim) Dial(addr string) (net.Conn, error) {
	from := t.local
	if n := t.seq.Add(1); n > 1 {
		from = fmt.Sprintf("%s#%d", t.local, n)
	}
	return t.net.Dial(from, addr)
}
