// Package conformancetest asserts the transport Conn contract
// (internal/transport's package comment) against a backend. Both the
// netsim and tcpx test suites call Run with a factory for their
// backend, so every clause — arbitrary segmentation, flow-controlled
// bulk transfer, deadline expiry mid-record, Close racing blocked I/O,
// close-notify drain ordering, goroutine accounting — is enforced on
// the simulated and the real transport by the same code. A semantic
// difference between the backends is a test failure here, not a
// production surprise.
package conformancetest

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil/goleak"
)

// Pair is one connected conn pair; A is the dialer end. Release (may
// be nil) tears down any factory-scoped machinery after the conns are
// closed.
type Pair struct {
	A, B    net.Conn
	Release func()
}

// Factory mints a fresh Pair for one subtest.
type Factory func(t *testing.T) Pair

// shortWait bounds how long "promptly" may take: an unblock that needs
// more than this is a hang, not a slow scheduler.
const shortWait = 3 * time.Second

// Run drives every conformance subtest against the backend. Each
// subtest gets its own pair; the parent test fails if any goroutine
// spawned along the way outlives the run.
func Run(t *testing.T, f Factory) {
	goleak.Check(t)
	sub := func(name string, test func(t *testing.T, p Pair)) {
		t.Run(name, func(t *testing.T) {
			p := f(t)
			defer func() {
				p.A.Close()
				p.B.Close()
				if p.Release != nil {
					p.Release()
				}
			}()
			test(t, p)
		})
	}
	sub("Echo", testEcho)
	sub("OneByteSegmentation", testOneByteSegmentation)
	sub("BulkTransferPartialWrites", testBulkTransfer)
	sub("DeadlineExpiresWaitingReads", testDeadlineExpiry)
	sub("DeadlineMidRecordThenResume", testDeadlineMidRecord)
	sub("CloseUnblocksOwnRead", testCloseUnblocksRead)
	sub("CloseUnblocksOwnWrite", testCloseUnblocksWrite)
	sub("PeerCloseDrainsThenEOF", testCloseDrain)
	sub("PeerCloseUnblocksRead", testPeerCloseUnblocksRead)
}

// readFull reads exactly len(buf) bytes under a generous deadline.
func readFull(t *testing.T, c net.Conn, buf []byte) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(shortWait)) //nolint:errcheck
	defer c.SetReadDeadline(time.Time{})         //nolint:errcheck
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read %d bytes: %v", len(buf), err)
	}
}

// testEcho is the baseline: bytes written on one end arrive intact on
// the other, in both directions, across several round trips.
func testEcho(t *testing.T, p Pair) {
	for i := 0; i < 3; i++ {
		msg := []byte("ping over the transport")
		if _, err := p.A.Write(msg); err != nil {
			t.Fatalf("A write: %v", err)
		}
		got := make([]byte, len(msg))
		readFull(t, p.B, got)
		if !bytes.Equal(got, msg) {
			t.Fatalf("B read %q, want %q", got, msg)
		}
		if _, err := p.B.Write(got); err != nil {
			t.Fatalf("B write: %v", err)
		}
		readFull(t, p.A, got)
		if !bytes.Equal(got, msg) {
			t.Fatalf("A read %q, want %q", got, msg)
		}
	}
}

// testOneByteSegmentation delivers a message under maximal
// fragmentation on both sides: the writer issues 1-byte writes, the
// reader 1-byte reads. Record parsing above the transport must
// tolerate exactly this (TCP may legally segment anywhere).
func testOneByteSegmentation(t *testing.T, p Pair) {
	msg := []byte("segmentation is not record-aligned")
	done := make(chan error, 1)
	go func() {
		for i := range msg {
			if _, err := p.A.Write(msg[i : i+1]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := make([]byte, 0, len(msg))
	one := make([]byte, 1)
	for len(got) < len(msg) {
		p.B.SetReadDeadline(time.Now().Add(shortWait)) //nolint:errcheck
		n, err := p.B.Read(one)
		if err != nil {
			t.Fatalf("1-byte read after %d bytes: %v", len(got), err)
		}
		if n > 1 {
			t.Fatalf("Read(1-byte buf) returned %d", n)
		}
		got = append(got, one[:n]...)
	}
	if err := <-done; err != nil {
		t.Fatalf("1-byte writes: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %q, want %q", got, msg)
	}
}

// testBulkTransfer pushes well past any flow-control window (netsim's
// is 1 MiB) with odd-sized writes while the peer drains concurrently,
// asserting nothing is lost, duplicated, or reordered. This is where
// short reads and partial-write blocking actually happen.
func testBulkTransfer(t *testing.T, p Pair) {
	const total = 4 << 20
	const writeChunk = 999 // deliberately unaligned
	payload := make([]byte, writeChunk)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	wantSum := sha256.New()
	done := make(chan error, 1)
	go func() {
		sent := 0
		for sent < total {
			chunk := payload
			if rem := total - sent; rem < len(chunk) {
				chunk = chunk[:rem]
			}
			if _, err := p.A.Write(chunk); err != nil {
				done <- err
				return
			}
			wantSum.Write(chunk)
			sent += len(chunk)
		}
		done <- nil
	}()

	gotSum := sha256.New()
	buf := make([]byte, 64<<10)
	received := 0
	for received < total {
		p.B.SetReadDeadline(time.Now().Add(shortWait)) //nolint:errcheck
		n, err := p.B.Read(buf)
		if n > 0 {
			gotSum.Write(buf[:n])
			received += n
		}
		if err != nil {
			t.Fatalf("bulk read after %d/%d bytes: %v", received, total, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("bulk write: %v", err)
	}
	if received != total {
		t.Fatalf("received %d bytes, want %d", received, total)
	}
	if !bytes.Equal(gotSum.Sum(nil), wantSum.Sum(nil)) {
		t.Fatal("bulk transfer corrupted: digests differ")
	}
}

// isTimeout reports err is a net.Error with Timeout() true.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// testDeadlineExpiry: a Read that must wait past its deadline fails
// with a timeout error, and clearing the deadline restores a usable
// connection.
func testDeadlineExpiry(t *testing.T, p Pair) {
	p.A.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 16)
	start := time.Now()
	n, err := p.A.Read(buf)
	if n != 0 || !isTimeout(err) {
		t.Fatalf("read past deadline = (%d, %v), want timeout net.Error", n, err)
	}
	if waited := time.Since(start); waited > shortWait {
		t.Fatalf("deadline honored after %v, want prompt expiry", waited)
	}
	// A timed-out connection is not dead: clear and carry on.
	p.A.SetReadDeadline(time.Time{}) //nolint:errcheck
	if _, err := p.B.Write([]byte("after timeout")); err != nil {
		t.Fatalf("peer write after timeout: %v", err)
	}
	got := make([]byte, len("after timeout"))
	readFull(t, p.A, got)
	if string(got) != "after timeout" {
		t.Fatalf("post-timeout read %q", got)
	}
}

// testDeadlineMidRecord expires a deadline with a record half
// delivered: the delivered prefix reads fine, the wait for the rest
// times out, and the suffix arrives intact once the deadline clears —
// the record layer depends on resumability here.
func testDeadlineMidRecord(t *testing.T, p Pair) {
	if _, err := p.A.Write([]byte("hel")); err != nil {
		t.Fatalf("prefix write: %v", err)
	}
	got := make([]byte, 3)
	readFull(t, p.B, got)
	if string(got) != "hel" {
		t.Fatalf("prefix read %q", got)
	}
	p.B.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	if n, err := p.B.Read(make([]byte, 2)); n != 0 || !isTimeout(err) {
		t.Fatalf("mid-record read = (%d, %v), want timeout", n, err)
	}
	p.B.SetReadDeadline(time.Time{}) //nolint:errcheck
	if _, err := p.A.Write([]byte("lo")); err != nil {
		t.Fatalf("suffix write: %v", err)
	}
	rest := make([]byte, 2)
	readFull(t, p.B, rest)
	if string(rest) != "lo" {
		t.Fatalf("suffix read %q, want %q", rest, "lo")
	}
}

// closedErrOK accepts the errors a same-end close may surface on
// blocked or subsequent I/O: the net package's ErrClosed (tcpx),
// io.ErrClosedPipe (netsim), or a reset.
func closedErrOK(err error) bool {
	return err != nil && err != io.EOF
}

// testCloseUnblocksRead: closing a conn promptly fails its own blocked
// Read.
func testCloseUnblocksRead(t *testing.T, p Pair) {
	res := make(chan error, 1)
	go func() {
		_, err := p.A.Read(make([]byte, 16))
		res <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the read park
	p.A.Close()
	select {
	case err := <-res:
		if !closedErrOK(err) {
			t.Fatalf("blocked read after own close returned %v, want an error", err)
		}
	case <-time.After(shortWait):
		t.Fatal("own Close did not unblock a parked Read")
	}
	if _, err := p.A.Read(make([]byte, 16)); !closedErrOK(err) {
		t.Fatalf("read after close = %v, want an error", err)
	}
}

// testCloseUnblocksWrite: closing a conn promptly fails its own Write
// blocked on flow control (peer not draining).
func testCloseUnblocksWrite(t *testing.T, p Pair) {
	res := make(chan error, 1)
	go func() {
		// Push until the window / kernel buffers are full; with nobody
		// reading on B this must block long before 64 MiB.
		chunk := make([]byte, 1<<20)
		for i := 0; i < 64; i++ {
			if _, err := p.A.Write(chunk); err != nil {
				res <- err
				return
			}
		}
		res <- nil
	}()
	time.Sleep(100 * time.Millisecond) // let the write block
	p.A.Close()
	select {
	case err := <-res:
		if err == nil {
			t.Fatal("64 MiB of writes completed against a non-reading peer")
		}
	case <-time.After(shortWait):
		t.Fatal("own Close did not unblock a parked Write")
	}
}

// testCloseDrain asserts close-notify ordering: everything the peer
// wrote before Close is readable, then EOF — never EOF first, never
// data loss. The record layer writes the close_notify alert and then
// closes; the peer must see the alert.
func testCloseDrain(t *testing.T, p Pair) {
	const total = 256 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.A.Write(payload)
		p.A.Close()
		done <- err
	}()

	got := make([]byte, 0, total)
	buf := make([]byte, 32<<10)
	var readErr error
	for {
		p.B.SetReadDeadline(time.Now().Add(shortWait)) //nolint:errcheck
		n, err := p.B.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			readErr = err
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("write before close: %v", err)
	}
	if readErr != io.EOF {
		t.Fatalf("drain ended with %v, want io.EOF", readErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("drained %d bytes before EOF, want all %d intact", len(got), total)
	}
}

// testPeerCloseUnblocksRead: a reader parked on an idle conn observes
// EOF promptly when the peer closes.
func testPeerCloseUnblocksRead(t *testing.T, p Pair) {
	var wg sync.WaitGroup
	res := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := p.A.Read(make([]byte, 16))
		res <- err
	}()
	time.Sleep(50 * time.Millisecond)
	p.B.Close()
	select {
	case err := <-res:
		if err != io.EOF {
			t.Fatalf("read after peer close = %v, want io.EOF", err)
		}
	case <-time.After(shortWait):
		t.Fatal("peer Close did not unblock a parked Read")
	}
	wg.Wait()
}
