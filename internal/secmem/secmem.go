// Package secmem holds the shared key-material hygiene helpers. Every
// type that retains secret bytes (per-hop keys, master secrets, ticket
// state, vault contents) zeroizes them through this package on its
// teardown path, so that a post-teardown memory dump — the adversary
// capability from the paper's threat model (§3.1) — recovers nothing.
//
// The keywipe analyzer in internal/analysis mechanically enforces the
// convention: any struct with secret-named byte-slice fields must
// declare a Wipe method that routes every such field through these
// helpers (or a nested Wipe).
package secmem

// Wipe zeroizes b in place. It is safe on nil and on already-wiped
// slices, so teardown paths may run it more than once.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// WipeAll zeroizes every given slice in place.
func WipeAll(bufs ...[]byte) {
	for _, b := range bufs {
		Wipe(b)
	}
}
