package secmem

import "testing"

func TestWipe(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	Wipe(b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d not wiped: %d", i, v)
		}
	}
	Wipe(nil) // must not panic
}

func TestWipeAll(t *testing.T) {
	a := []byte{9, 9}
	b := []byte{7}
	WipeAll(a, b, nil)
	if a[0] != 0 || a[1] != 0 || b[0] != 0 {
		t.Fatalf("WipeAll left residue: %v %v", a, b)
	}
}
