// Delegation warrants and modification evidence for the mdTLS-style
// proxy-signature accountability mode (PAPERS.md, arXiv 2306.03573).
// An endpoint mints a per-session DelegationKey, signs one Delegation
// per middlebox authorizing that hop's certificate key for the
// session, and at close verifies the Evidence each middlebox signed
// over the delegation it was given and digests of the records it
// emitted. Nothing here touches the record layer: the core package
// frames these blobs onto the secondary subchannels.
package certs

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/secmem"
	"repro/internal/wire"
)

// delegationVersion is the wire version of both structures below.
const delegationVersion = 1

// DelegationKey is the ephemeral Ed25519 keypair an endpoint mints per
// proxysig session to sign delegation warrants. The private half is
// key material: it lives only for the session and is wiped at
// teardown.
type DelegationKey struct {
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewDelegationKey mints a fresh delegation keypair from rnd
// (crypto/rand when nil).
func NewDelegationKey(rnd io.Reader) (*DelegationKey, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("certs: delegation keygen: %w", err)
	}
	return &DelegationKey{Pub: pub, priv: priv}, nil
}

// Wipe zeroizes the private half. The key signs nothing afterward.
func (k *DelegationKey) Wipe() {
	if k == nil {
		return
	}
	secmem.Wipe(k.priv)
	k.priv = nil
}

// Delegation is one middlebox's warrant: the endpoint's statement,
// signed by its per-session delegation key, that the middlebox holding
// Authorized may modify this session's records within the validity
// window. Binding is a per-hop random value tying the warrant to this
// session and hop.
type Delegation struct {
	DelegPub   ed25519.PublicKey
	Authorized ed25519.PublicKey
	Binding    [32]byte
	NotBefore  time.Time
	NotAfter   time.Time
	// Raw is the full marshaled warrant including its signature,
	// exactly as transmitted; evidence embeds and echoes these bytes.
	Raw []byte
}

// SignDelegation builds and signs a warrant authorizing the given
// middlebox key over [notBefore, notAfter].
func (k *DelegationKey) SignDelegation(authorized ed25519.PublicKey, binding [32]byte, notBefore, notAfter time.Time) ([]byte, error) {
	if k == nil || len(k.priv) != ed25519.PrivateKeySize {
		return nil, errors.New("certs: delegation key is wiped or unset")
	}
	if len(authorized) != ed25519.PublicKeySize {
		return nil, errors.New("certs: authorized key is not an Ed25519 public key")
	}
	b := wire.NewBuilder(nil)
	b.AddUint8(delegationVersion)
	b.AddBytes(k.Pub)
	b.AddBytes(authorized)
	b.AddBytes(binding[:])
	b.AddUint64(uint64(notBefore.Unix()))
	b.AddUint64(uint64(notAfter.Unix()))
	sig := ed25519.Sign(k.priv, b.Bytes())
	b.AddBytes(sig)
	return b.Bytes(), nil
}

// ParseDelegation parses a warrant and verifies its self-signature
// (proof the sender holds the delegation key it names). Validity is
// checked separately via ValidAt so callers control the clock.
func ParseDelegation(raw []byte) (*Delegation, error) {
	p := wire.NewParser(raw)
	var version uint8
	d := &Delegation{
		DelegPub:   make(ed25519.PublicKey, ed25519.PublicKeySize),
		Authorized: make(ed25519.PublicKey, ed25519.PublicKeySize),
	}
	var nb, na uint64
	sig := make([]byte, ed25519.SignatureSize)
	if !p.ReadUint8(&version) ||
		!p.CopyBytes(d.DelegPub) ||
		!p.CopyBytes(d.Authorized) ||
		!p.CopyBytes(d.Binding[:]) ||
		!p.ReadUint64(&nb) ||
		!p.ReadUint64(&na) ||
		!p.CopyBytes(sig) ||
		!p.Empty() {
		return nil, errors.New("certs: malformed delegation")
	}
	if version != delegationVersion {
		return nil, fmt.Errorf("certs: unsupported delegation version %d", version)
	}
	if !ed25519.Verify(d.DelegPub, raw[:len(raw)-ed25519.SignatureSize], sig) {
		return nil, errors.New("certs: delegation signature invalid")
	}
	d.NotBefore = time.Unix(int64(nb), 0)
	d.NotAfter = time.Unix(int64(na), 0)
	d.Raw = append([]byte(nil), raw...)
	return d, nil
}

// ValidAt reports whether the warrant's validity window covers now.
func (d *Delegation) ValidAt(now time.Time) error {
	if now.Before(d.NotBefore) {
		return errors.New("certs: delegation not yet valid")
	}
	if now.After(d.NotAfter) {
		return errors.New("certs: delegation expired")
	}
	return nil
}

// Evidence is a middlebox's close-time accountability statement: the
// delegation it acted under, per-direction SHA-256 digests of the
// record stream it emitted, and the record counts, signed with the
// middlebox's certificate key.
type Evidence struct {
	// Delegation echoes the warrant bytes the endpoint delivered.
	Delegation []byte
	// C2SDigest and S2CDigest are running SHA-256 digests of the
	// resealed record bytes the middlebox wrote in each direction.
	C2SDigest [32]byte
	S2CDigest [32]byte
	// C2SRecords and S2CRecords count the records resealed in each
	// direction.
	C2SRecords uint64
	S2CRecords uint64
}

func (ev *Evidence) payload() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint8(delegationVersion)
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(ev.Delegation) })
	b.AddBytes(ev.C2SDigest[:])
	b.AddBytes(ev.S2CDigest[:])
	b.AddUint64(ev.C2SRecords)
	b.AddUint64(ev.S2CRecords)
	return b.Bytes()
}

// SignEvidence signs ev with the middlebox's certificate key.
func SignEvidence(priv ed25519.PrivateKey, ev *Evidence) ([]byte, error) {
	if len(priv) != ed25519.PrivateKeySize {
		return nil, errors.New("certs: evidence signing key is not an Ed25519 private key")
	}
	payload := ev.payload()
	return append(payload, ed25519.Sign(priv, payload)...), nil
}

// VerifyEvidence parses a signed evidence blob and verifies the
// middlebox signature against pub (the middlebox certificate key the
// endpoint saw during the secondary handshake).
func VerifyEvidence(pub ed25519.PublicKey, raw []byte) (*Evidence, error) {
	if len(pub) != ed25519.PublicKeySize {
		return nil, errors.New("certs: evidence verify key is not an Ed25519 public key")
	}
	if len(raw) < ed25519.SignatureSize {
		return nil, errors.New("certs: malformed evidence")
	}
	payload, sig := raw[:len(raw)-ed25519.SignatureSize], raw[len(raw)-ed25519.SignatureSize:]
	if !ed25519.Verify(pub, payload, sig) {
		return nil, errors.New("certs: evidence signature invalid")
	}
	p := wire.NewParser(payload)
	var version uint8
	ev := &Evidence{}
	if !p.ReadUint8(&version) ||
		!p.ReadUint16Prefixed(&ev.Delegation) ||
		!p.CopyBytes(ev.C2SDigest[:]) ||
		!p.CopyBytes(ev.S2CDigest[:]) ||
		!p.ReadUint64(&ev.C2SRecords) ||
		!p.ReadUint64(&ev.S2CRecords) ||
		!p.Empty() {
		return nil, errors.New("certs: malformed evidence")
	}
	if version != delegationVersion {
		return nil, fmt.Errorf("certs: unsupported evidence version %d", version)
	}
	ev.Delegation = append([]byte(nil), ev.Delegation...)
	return ev, nil
}

// EvidenceMatchesDelegation reports whether the evidence echoes
// exactly the warrant the endpoint minted.
func EvidenceMatchesDelegation(ev *Evidence, minted []byte) bool {
	return bytes.Equal(ev.Delegation, minted)
}
