package certs

import (
	"crypto/ed25519"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"os"

	"repro/internal/tls12"
)

// PEM block types used by the on-disk format.
const (
	pemTypeCert = "CERTIFICATE"
	pemTypeKey  = "PRIVATE KEY"
)

// SaveCertPEM writes a certificate chain and its PKCS#8 private key to
// certPath and keyPath.
func SaveCertPEM(cert *tls12.Certificate, certPath, keyPath string) error {
	var certOut []byte
	for _, der := range cert.Chain {
		certOut = append(certOut, pem.EncodeToMemory(&pem.Block{Type: pemTypeCert, Bytes: der})...)
	}
	if err := os.WriteFile(certPath, certOut, 0o644); err != nil {
		return err
	}
	keyDER, err := x509.MarshalPKCS8PrivateKey(cert.PrivateKey)
	if err != nil {
		return err
	}
	keyOut := pem.EncodeToMemory(&pem.Block{Type: pemTypeKey, Bytes: keyDER})
	return os.WriteFile(keyPath, keyOut, 0o600)
}

// LoadCertPEM reads a certificate chain and key written by SaveCertPEM.
func LoadCertPEM(certPath, keyPath string) (*tls12.Certificate, error) {
	certData, err := os.ReadFile(certPath)
	if err != nil {
		return nil, err
	}
	var cert tls12.Certificate
	for rest := certData; ; {
		var block *pem.Block
		block, rest = pem.Decode(rest)
		if block == nil {
			break
		}
		if block.Type == pemTypeCert {
			cert.Chain = append(cert.Chain, block.Bytes)
		}
	}
	if len(cert.Chain) == 0 {
		return nil, fmt.Errorf("certs: no certificates in %s", certPath)
	}
	leaf, err := x509.ParseCertificate(cert.Chain[0])
	if err != nil {
		return nil, err
	}
	cert.Leaf = leaf

	keyData, err := os.ReadFile(keyPath)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(keyData)
	if block == nil || block.Type != pemTypeKey {
		return nil, fmt.Errorf("certs: no private key in %s", keyPath)
	}
	keyAny, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	key, ok := keyAny.(ed25519.PrivateKey)
	if !ok {
		return nil, errors.New("certs: private key is not Ed25519")
	}
	cert.PrivateKey = key
	return &cert, nil
}

// SaveRootPEM writes only the CA certificate (the trust anchor clients
// need) to path.
func (ca *CA) SaveRootPEM(path string) error {
	out := pem.EncodeToMemory(&pem.Block{Type: pemTypeCert, Bytes: ca.Cert.Raw})
	return os.WriteFile(path, out, 0o644)
}

// LoadPoolPEM reads one or more CA certificates into a pool.
func LoadPoolPEM(path string) (*x509.CertPool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(data) {
		return nil, fmt.Errorf("certs: no CA certificates in %s", path)
	}
	return pool, nil
}
