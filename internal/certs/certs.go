// Package certs provides a small in-process certificate authority used
// to provision servers and middleboxes with Ed25519 certificate chains.
// It also fabricates the broken certificates (expired, untrusted,
// wrong-host) needed by the paper's legacy-interoperability experiment
// (§5.1) and by the split-TLS baseline's forged leaf certificates.
package certs

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"
	"time"

	"repro/internal/secmem"
	"repro/internal/tls12"
)

// CA is a certificate authority with an Ed25519 signing key.
type CA struct {
	Cert *x509.Certificate
	Key  ed25519.PrivateKey
	rand io.Reader
	now  func() time.Time
	// serial is incremented per issued certificate; CAs issue
	// concurrently (the experiment harnesses provision in parallel).
	serial atomic.Int64
}

// Wipe zeroizes the CA's signing key, retiring the authority. Issued
// certificates stay verifiable; no further certificates can be signed.
func (ca *CA) Wipe() {
	if ca == nil {
		return
	}
	secmem.Wipe(ca.Key)
	ca.Key = nil
}

// Option customizes a CA.
type Option func(*CA)

// WithRand sets the entropy source (tests use deterministic readers).
func WithRand(r io.Reader) Option { return func(ca *CA) { ca.rand = r } }

// WithClock sets the time source used for validity windows.
func WithClock(now func() time.Time) Option { return func(ca *CA) { ca.now = now } }

// NewCA creates a self-signed root CA with the given common name.
func NewCA(commonName string, opts ...Option) (*CA, error) {
	ca := &CA{rand: rand.Reader, now: time.Now}
	ca.serial.Store(1)
	for _, o := range opts {
		o(ca)
	}
	pub, priv, err := ed25519.GenerateKey(ca.rand)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"mbTLS repro"}},
		NotBefore:             ca.now().Add(-time.Hour),
		NotAfter:              ca.now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(ca.rand, tmpl, tmpl, pub, priv)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	ca.Cert = cert
	ca.Key = priv
	return ca, nil
}

// Pool returns a CertPool containing only this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)
	return pool
}

// IssueOptions controls leaf issuance.
type IssueOptions struct {
	// NotBefore/NotAfter override the default validity window (now-1h
	// to now+1y) when non-zero. Setting both in the past fabricates an
	// expired certificate.
	NotBefore, NotAfter time.Time
}

// Issue creates a leaf certificate for the given DNS names, returning a
// tls12.Certificate ready for a server or middlebox config.
func (ca *CA) Issue(commonName string, dnsNames []string, opts *IssueOptions) (*tls12.Certificate, error) {
	pub, priv, err := ed25519.GenerateKey(ca.rand)
	if err != nil {
		return nil, err
	}
	return ca.issueFor(commonName, dnsNames, opts, pub, priv)
}

func (ca *CA) issueFor(commonName string, dnsNames []string, opts *IssueOptions,
	pub ed25519.PublicKey, priv ed25519.PrivateKey) (*tls12.Certificate, error) {
	serial := ca.serial.Add(1)
	notBefore := ca.now().Add(-time.Hour)
	notAfter := ca.now().Add(365 * 24 * time.Hour)
	if opts != nil {
		if !opts.NotBefore.IsZero() {
			notBefore = opts.NotBefore
		}
		if !opts.NotAfter.IsZero() {
			notAfter = opts.NotAfter
		}
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"mbTLS repro"}},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     dnsNames,
	}
	der, err := x509.CreateCertificate(ca.rand, tmpl, ca.Cert, pub, ca.Key)
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &tls12.Certificate{
		Chain:      [][]byte{der, ca.Cert.Raw},
		PrivateKey: priv,
		Leaf:       leaf,
	}, nil
}

// Forge issues a certificate for names using this CA — exactly what a
// split-TLS interception middlebox does with its custom root (paper
// §2.2, "TLS Interception with Custom Root Certificates").
func (ca *CA) Forge(serverName string) (*tls12.Certificate, error) {
	return ca.Issue(serverName, []string{serverName}, nil)
}

// IssueExpired fabricates a certificate whose validity window ended in
// the past, for the legacy-interop failure population.
func (ca *CA) IssueExpired(commonName string, dnsNames []string) (*tls12.Certificate, error) {
	return ca.Issue(commonName, dnsNames, &IssueOptions{
		NotBefore: ca.now().Add(-48 * time.Hour),
		NotAfter:  ca.now().Add(-24 * time.Hour),
	})
}

// SelfSigned creates a certificate signed by a throwaway CA that no
// client trusts (an "invalid certificate" in the §5.1 sense).
func SelfSigned(commonName string, dnsNames []string) (*tls12.Certificate, error) {
	rogue, err := NewCA("rogue " + commonName)
	if err != nil {
		return nil, err
	}
	cert, err := rogue.Issue(commonName, dnsNames, nil)
	if err != nil {
		return nil, err
	}
	// Drop the rogue CA from the chain so verification cannot succeed
	// even permissively.
	cert.Chain = cert.Chain[:1]
	return cert, nil
}

// MustIssue is Issue for test and example setup code that cannot fail
// meaningfully.
func (ca *CA) MustIssue(commonName string, dnsNames ...string) *tls12.Certificate {
	cert, err := ca.Issue(commonName, dnsNames, nil)
	if err != nil {
		panic(fmt.Sprintf("certs: issue %s: %v", commonName, err))
	}
	return cert
}
