package certs

import (
	"crypto/x509"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestIssueAndVerify(t *testing.T) {
	ca, err := NewCA("test root")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Issue("server.example", []string{"server.example", "alt.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Chain) != 2 {
		t.Fatalf("chain length = %d, want leaf+root", len(cert.Chain))
	}
	leaf, err := x509.ParseCertificate(cert.Chain[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"server.example", "alt.example"} {
		if _, err := leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: name}); err != nil {
			t.Fatalf("verify %s: %v", name, err)
		}
	}
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: "other.example"}); err == nil {
		t.Fatal("verified for a name not in the certificate")
	}
}

func TestIssueExpired(t *testing.T) {
	ca, err := NewCA("test root")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueExpired("old.example", []string{"old.example"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := x509.ParseCertificate(cert.Chain[0])
	_, err = leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: "old.example", CurrentTime: time.Now()})
	if err == nil {
		t.Fatal("expired certificate verified")
	}
	var cie x509.CertificateInvalidError
	if !errorsAs(err, &cie) || cie.Reason != x509.Expired {
		t.Fatalf("error = %v, want expiry", err)
	}
}

func errorsAs(err error, target *x509.CertificateInvalidError) bool {
	cie, ok := err.(x509.CertificateInvalidError)
	if ok {
		*target = cie
	}
	return ok
}

func TestSelfSignedIsUntrusted(t *testing.T) {
	ca, err := NewCA("honest root")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := SelfSigned("rogue.example", []string{"rogue.example"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := x509.ParseCertificate(cert.Chain[0])
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: "rogue.example"}); err == nil {
		t.Fatal("self-signed certificate verified against an unrelated root")
	}
}

func TestForgeMatchesName(t *testing.T) {
	interceptCA, err := NewCA("intercept root")
	if err != nil {
		t.Fatal(err)
	}
	forged, err := interceptCA.Forge("victim.example")
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := x509.ParseCertificate(forged.Chain[0])
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: interceptCA.Pool(), DNSName: "victim.example"}); err != nil {
		t.Fatalf("forged cert does not verify under its own root: %v", err)
	}
}

func TestUniqueSerials(t *testing.T) {
	ca, err := NewCA("test root")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		cert := ca.MustIssue("x.example", "x.example")
		s := cert.Leaf.SerialNumber.String()
		if seen[s] {
			t.Fatalf("serial %s reused", s)
		}
		seen[s] = true
	}
}

func TestPEMRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ca, err := NewCA("pem root")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Issue("server.example", []string{"server.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	certPath := filepath.Join(dir, "cert.pem")
	keyPath := filepath.Join(dir, "key.pem")
	if err := SaveCertPEM(cert, certPath, keyPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCertPEM(certPath, keyPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Chain) != len(cert.Chain) {
		t.Fatalf("chain length %d, want %d", len(loaded.Chain), len(cert.Chain))
	}
	if !loaded.PrivateKey.Equal(cert.PrivateKey) {
		t.Fatal("private key corrupted through PEM")
	}
	if loaded.Leaf.Subject.CommonName != "server.example" {
		t.Fatal("leaf not parsed")
	}

	rootPath := filepath.Join(dir, "root.pem")
	if err := ca.SaveRootPEM(rootPath); err != nil {
		t.Fatal(err)
	}
	pool, err := LoadPoolPEM(rootPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Leaf.Verify(x509.VerifyOptions{Roots: pool, DNSName: "server.example"}); err != nil {
		t.Fatalf("verification against reloaded pool failed: %v", err)
	}
}

func TestLoadPoolPEMRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.pem")
	if err := os.WriteFile(path, []byte("not a pem"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPoolPEM(path); err == nil {
		t.Fatal("garbage pool loaded")
	}
}
