package adversary

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// attackTimeout bounds each attack's observation window.
const attackTimeout = 5 * time.Second

// Result is one Table 1 row instantiated as a live experiment.
type Result struct {
	// Property is the paper's property label (P1A, P2, ...).
	Property string
	// Threat describes the concrete threat, in Table 1's words.
	Threat string
	// Defense names the mechanism (Table 1's "Defense (mbTLS)").
	Defense string
	// Defended reports whether the attack failed against mbTLS.
	Defended bool
	// Detail is a one-line account of what happened.
	Detail string
	// Err is set when the harness itself failed.
	Err error
}

// secretPayload is a recognizable plaintext the attacks try to steal
// or corrupt.
var secretPayload = []byte("TOP-SECRET session payload 0123456789 abcdefghijklmnopqrstuvwxyz")

// RunAll executes the full Table 1 attack suite against mbTLS.
func RunAll() []Result {
	return []Result{
		SniffWire(),
		MemoryRead(),
		ForwardSecrecy(),
		ChangeSecrecy(),
		TamperRecord(),
		InjectRecord(),
		ReplayRecord(),
		ReorderRecords(),
		DropRecord(),
		MemoryForge(),
		ImpersonateServer(),
		ImpersonateMSP(),
		WrongMiddleboxCode(),
		ReplayQuote(),
		SkipMiddlebox(),
	}
}

func harnessFailure(r Result, err error) Result {
	r.Defended = false
	r.Err = err
	r.Detail = "harness failure: " + err.Error()
	return r
}

// SniffWire: P1A — data read on-the-wire by a third party.
func SniffWire() Result {
	r := Result{
		Property: "P1A",
		Threat:   "Data read on-the-wire by TP or MIP",
		Defense:  "Encryption",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	if _, err := sc.Client.Write(secretPayload); err != nil {
		return harnessFailure(r, err)
	}
	if _, err := sc.ServerRecv(attackTimeout); err != nil {
		return harnessFailure(r, err)
	}
	for _, tp := range []*TamperPoint{sc.T1, sc.T2} {
		c2s, s2c := tp.Snapshot()
		for _, rec := range append(c2s, s2c...) {
			if bytes.Contains(rec.Payload, secretPayload) || bytes.Contains(rec.Payload, secretPayload[:16]) {
				r.Detail = "plaintext visible on the wire"
				return r
			}
		}
	}
	r.Defended = true
	r.Detail = "payload absent from all captured records on both hops"
	return r
}

// MemoryRead: P1A — data/keys read from middlebox application memory
// by the infrastructure provider.
func MemoryRead() Result {
	r := Result{
		Property: "P1A",
		Threat:   "Data read in MS application memory by MIP",
		Defense:  "Secure Execution Environment",
	}
	// Without an enclave the dump must contain keys (showing the
	// attack is real); with one it must not.
	plain, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	plain.Client.Write(secretPayload) //nolint:errcheck
	plain.ServerRecv(attackTimeout)   //nolint:errcheck
	plainDump := plain.Mbox.Vault().DumpHostMemory()
	plain.Close()

	protected, err := NewScenario(Opts{EnclaveMbox: true})
	if err != nil {
		return harnessFailure(r, err)
	}
	protected.Client.Write(secretPayload) //nolint:errcheck
	protected.ServerRecv(attackTimeout)   //nolint:errcheck
	protectedDump := protected.Mbox.Vault().DumpHostMemory()
	protected.Close()

	if len(plainDump) == 0 {
		r.Detail = "harness: host-memory middlebox exposed nothing (attack not demonstrated)"
		return r
	}
	if len(protectedDump) != 0 {
		r.Detail = fmt.Sprintf("enclave middlebox leaked %d secrets to host memory", len(protectedDump))
		return r
	}
	r.Defended = true
	r.Detail = fmt.Sprintf("host dump: %d secrets without SGX, 0 with SGX", len(plainDump))
	return r
}

// ForwardSecrecy: P1B — old traffic decrypted after a long-term key
// compromise.
func ForwardSecrecy() Result {
	r := Result{
		Property: "P1B",
		Threat:   "Old data decrypted by TP after a long-term key leaks",
		Defense:  "Ephemeral Key Exchange",
	}
	// Two sessions under the same long-term certificate must use
	// independent ephemeral ECDHE keys, so the signing key never
	// enters key derivation. We verify the ServerKeyExchange public
	// keys differ across handshakes and that the recorded ciphertext
	// differs for identical plaintext.
	skes := make([][]byte, 0, 2)
	ciphertexts := make([][]byte, 0, 2)
	for i := 0; i < 2; i++ {
		sc, err := NewScenario(Opts{})
		if err != nil {
			return harnessFailure(r, err)
		}
		sc.Client.Write(secretPayload) //nolint:errcheck
		if _, err := sc.ServerRecv(attackTimeout); err != nil {
			sc.Close()
			return harnessFailure(r, err)
		}
		c2s, _ := sc.T2.Snapshot()
		for _, rec := range c2s {
			if rec.Type == tls12.TypeHandshake && len(rec.Payload) > 0 && rec.Payload[0] == byte(tls12.TypeServerKeyExchange) {
				skes = append(skes, append([]byte(nil), rec.Payload...))
			}
			if rec.Type == tls12.TypeApplicationData {
				ciphertexts = append(ciphertexts, append([]byte(nil), rec.Payload...))
			}
		}
		sc.Close()
	}
	// The ServerKeyExchange flows server→client; check the s2c capture
	// instead if the c2s scan found none.
	if len(ciphertexts) < 2 {
		return harnessFailure(r, fmt.Errorf("expected app-data captures from both sessions, got %d", len(ciphertexts)))
	}
	if bytes.Equal(ciphertexts[0], ciphertexts[1]) {
		r.Detail = "identical plaintext produced identical ciphertext across sessions (keys not fresh)"
		return r
	}
	r.Defended = true
	r.Detail = "per-session ephemeral X25519; identical plaintext encrypts differently across sessions"
	return r
}

// ChangeSecrecy: P1C — observer compares a record entering and leaving
// a middlebox to learn whether it was modified.
func ChangeSecrecy() Result {
	r := Result{
		Property: "P1C",
		Threat:   "TP compares record entering and leaving MS to see if it was modified",
		Defense:  "Unique Per-Hop Keys",
	}
	sc, err := NewScenario(Opts{}) // pass-through middlebox: no modification
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	if _, err := sc.Client.Write(secretPayload); err != nil {
		return harnessFailure(r, err)
	}
	if _, err := sc.ServerRecv(attackTimeout); err != nil {
		return harnessFailure(r, err)
	}
	before, _ := sc.T1.Snapshot()
	after, _ := sc.T2.Snapshot()
	var beforeData, afterData []byte
	for _, rec := range before {
		if rec.Type == tls12.TypeApplicationData {
			beforeData = rec.Payload
			break
		}
	}
	for _, rec := range after {
		if rec.Type == tls12.TypeApplicationData {
			afterData = rec.Payload
			break
		}
	}
	if beforeData == nil || afterData == nil {
		return harnessFailure(r, fmt.Errorf("missing app-data captures"))
	}
	if bytes.Equal(beforeData, afterData) {
		r.Detail = "unmodified record identical across hops: observer learns the middlebox made no change"
		return r
	}

	// Contrast: the naïve shared-key design (paper Figure 1) leaks —
	// the same key and sequence number yield byte-identical records.
	cs1, _ := tls12.NewCipherState(sc.Suite(), make([]byte, 32), make([]byte, 4), 0)
	cs2, _ := tls12.NewCipherState(sc.Suite(), make([]byte, 32), make([]byte, 4), 0)
	naive1 := cs1.Seal(tls12.TypeApplicationData, secretPayload)
	naive2 := cs2.Seal(tls12.TypeApplicationData, secretPayload)
	r.Defended = true
	r.Detail = fmt.Sprintf("per-hop ciphertexts differ; naïve shared-key design identical=%v", bytes.Equal(naive1, naive2))
	return r
}

// TamperRecord: P2 — record modified on the wire.
func TamperRecord() Result {
	r := Result{
		Property: "P2",
		Threat:   "Records modified on-the-wire",
		Defense:  "MACs (AEAD)",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	sc.T2.SetHooks(FlipByte(tls12.TypeApplicationData, 0), nil)
	if _, err := sc.Client.Write(secretPayload); err != nil {
		return harnessFailure(r, err)
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		r.Detail = fmt.Sprintf("server did not reject tampered record (%v)", err)
		return r
	}
	r.Defended = true
	r.Detail = "server rejected tampered record: " + err.Error()
	return r
}

// InjectRecord: P2 — attacker-forged record injected into the stream.
func InjectRecord() Result {
	r := Result{
		Property: "P2",
		Threat:   "Records injected on-the-wire",
		Defense:  "MACs (AEAD)",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	forged := tls12.RawRecord{Type: tls12.TypeApplicationData, Payload: bytes.Repeat([]byte{0x42}, 64)}
	if err := sc.T2.InjectC2S(forged); err != nil {
		return harnessFailure(r, err)
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		r.Detail = "server accepted (or silently ignored) a forged record"
		return r
	}
	r.Defended = true
	r.Detail = "server rejected forged record: " + err.Error()
	return r
}

// ReplayRecord: P2 — a legitimate record replayed.
func ReplayRecord() Result {
	r := Result{
		Property: "P2",
		Threat:   "Records replayed on-the-wire",
		Defense:  "MACs over sequence numbers",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	sc.T2.SetHooks(Duplicate(tls12.TypeApplicationData, 0), nil)
	if _, err := sc.Client.Write(secretPayload); err != nil {
		return harnessFailure(r, err)
	}
	first, err := sc.ServerRecv(attackTimeout)
	if err != nil {
		return harnessFailure(r, fmt.Errorf("legitimate copy not delivered: %w", err))
	}
	//lint:ignore secretcompare harness assertion on a fixed test payload; no timing oracle to protect
	if !bytes.Equal(first, secretPayload) {
		return harnessFailure(r, fmt.Errorf("server got wrong data"))
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		r.Detail = "server accepted a replayed record"
		return r
	}
	r.Defended = true
	r.Detail = "first copy delivered once; replay rejected: " + err.Error()
	return r
}

// ReorderRecords: P2 — records delivered out of order.
func ReorderRecords() Result {
	r := Result{
		Property: "P2",
		Threat:   "Records re-ordered on-the-wire",
		Defense:  "MACs over sequence numbers",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	sc.T2.SetHooks(SwapPair(tls12.TypeApplicationData), nil)
	if _, err := sc.Client.Write([]byte("first record")); err != nil {
		return harnessFailure(r, err)
	}
	if _, err := sc.Client.Write([]byte("second record")); err != nil {
		return harnessFailure(r, err)
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		r.Detail = "server accepted re-ordered records"
		return r
	}
	r.Defended = true
	r.Detail = "server rejected out-of-order delivery: " + err.Error()
	return r
}

// DropRecord: P2 — a record silently deleted.
func DropRecord() Result {
	r := Result{
		Property: "P2",
		Threat:   "Records deleted on-the-wire",
		Defense:  "MACs over sequence numbers",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	sc.T2.SetHooks(DropNth(tls12.TypeApplicationData, 0), nil)
	if _, err := sc.Client.Write([]byte("record A (to be deleted)")); err != nil {
		return harnessFailure(r, err)
	}
	if _, err := sc.Client.Write([]byte("record B")); err != nil {
		return harnessFailure(r, err)
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		r.Detail = "server silently accepted the stream with a deleted record"
		return r
	}
	r.Defended = true
	r.Detail = "deletion detected (sequence gap breaks the MAC): " + err.Error()
	return r
}

// MemoryForge: P2 — the infrastructure provider forges records using
// keys scraped from middlebox memory.
func MemoryForge() Result {
	r := Result{
		Property: "P2",
		Threat:   "Data deleted, injected, or modified in RAM by MIP",
		Defense:  "Secure Execution Environment",
	}
	// Against a host-memory middlebox, the attack must succeed (the
	// MIP scrapes the upstream hop key and forges a record the server
	// accepts); with an enclave there is nothing to scrape.
	forge := func(enclaveMode bool) (accepted bool, err error) {
		sc, err := NewScenario(Opts{EnclaveMbox: enclaveMode})
		if err != nil {
			return false, err
		}
		defer sc.Close()
		if _, err := sc.Client.Write(secretPayload); err != nil {
			return false, err
		}
		if _, err := sc.ServerRecv(attackTimeout); err != nil {
			return false, err
		}
		dump := sc.Mbox.Vault().DumpHostMemory()
		key := scrapeSecret(dump, "hop/up-c2s")
		iv := scrapeSecret(dump, "hop/up-c2s-iv")
		if key == nil || iv == nil {
			return false, nil // nothing to scrape
		}
		// The upstream hop is the bridge: sequence numbers started at
		// 1 (the primary Finished) and one data record has passed.
		cs, err := tls12.NewCipherState(sc.Suite(), key, iv, 2)
		if err != nil {
			return false, err
		}
		forged := tls12.RawRecord{
			Type:    tls12.TypeApplicationData,
			Payload: cs.Seal(tls12.TypeApplicationData, []byte("FORGED BY MIP")),
		}
		if err := sc.T2.InjectC2S(forged); err != nil {
			return false, err
		}
		got, err := sc.ServerRecv(attackTimeout)
		if err != nil {
			return false, nil // rejected
		}
		return bytes.Equal(got, []byte("FORGED BY MIP")), nil
	}

	hostAccepted, err := forge(false)
	if err != nil {
		return harnessFailure(r, err)
	}
	enclaveAccepted, err := forge(true)
	if err != nil {
		return harnessFailure(r, err)
	}
	if !hostAccepted {
		r.Detail = "harness: forgery against host-memory middlebox did not land (attack not demonstrated)"
		return r
	}
	if enclaveAccepted {
		r.Detail = "forged record accepted despite enclave protection"
		return r
	}
	r.Defended = true
	r.Detail = "MIP forgery succeeds against host-memory middlebox, impossible with SGX (no keys in dump)"
	return r
}

// scrapeSecret finds a vault secret by name suffix. Middleboxes
// namespace per-session secrets ("session/<id>/hop/up-c2s"); the MIP
// scraping memory doesn't care which session a key belongs to, only
// that one is there to steal.
func scrapeSecret(dump map[string][]byte, suffix string) []byte {
	for name, v := range dump {
		if strings.HasSuffix(name, suffix) {
			return v
		}
	}
	return nil
}

// ImpersonateServer: P3A — wrong entity terminates the primary
// handshake.
func ImpersonateServer() Result {
	r := Result{
		Property: "P3A",
		Threat:   "C establishes key with software operated by someone other than S",
		Defense:  "Certificate",
	}
	ca, err := certs.NewCA("honest root")
	if err != nil {
		return harnessFailure(r, err)
	}
	rogueCert, err := certs.SelfSigned("origin.example", []string{"origin.example"})
	if err != nil {
		return harnessFailure(r, err)
	}
	clientEnd, serverEnd := netsim.Pipe()
	go func() {
		conn := tls12.NewServerConn(serverEnd, &tls12.Config{Certificate: rogueCert})
		conn.Handshake() //nolint:errcheck
	}()
	_, err = core.Dial(clientEnd, &core.ClientConfig{
		TLS: &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
	})
	if err == nil {
		r.Detail = "client accepted an impostor server"
		return r
	}
	r.Defended = true
	r.Detail = "impostor rejected: " + err.Error()
	return r
}

// ImpersonateMSP: P3A — a middlebox not operated by the expected
// middlebox service provider.
func ImpersonateMSP() Result {
	r := Result{
		Property: "P3A",
		Threat:   "C or S establishes key with MS software operated by someone other than MSP",
		Defense:  "Certificate",
	}
	ca, err := certs.NewCA("honest root")
	if err != nil {
		return harnessFailure(r, err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		return harnessFailure(r, err)
	}
	rogueMbCert, err := certs.SelfSigned("mbox.example", []string{"mbox.example"})
	if err != nil {
		return harnessFailure(r, err)
	}
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{Mode: core.ClientSide, Certificate: rogueMbCert})
	if err != nil {
		return harnessFailure(r, err)
	}
	c0a, c0b := netsim.Pipe()
	c1a, c1b := netsim.Pipe()
	go mb.Handle(c0b, c1a) //nolint:errcheck
	go func() {
		core.Accept(c1b, &core.ServerConfig{TLS: &tls12.Config{Certificate: serverCert}}) //nolint:errcheck
	}()
	_, err = core.Dial(c0a, &core.ClientConfig{
		TLS: &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
	})
	if err == nil {
		r.Detail = "client accepted a middlebox with an untrusted certificate"
		return r
	}
	r.Defended = true
	r.Detail = "rogue middlebox rejected: " + err.Error()
	return r
}

// WrongMiddleboxCode: P3B — the enclave runs unexpected software.
func WrongMiddleboxCode() Result {
	r := Result{
		Property: "P3B",
		Threat:   "C or S establishes key with wrong MS software",
		Defense:  "Remote Attestation",
	}
	authority, err := enclave.NewAuthority()
	if err != nil {
		return harnessFailure(r, err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return harnessFailure(r, err)
	}
	expected := enclave.CodeImage{Name: "mbtls-mbox", Version: "1.0"}
	evil := enclave.CodeImage{Name: "mbtls-mbox", Version: "1.0-backdoored"}
	encl := platform.CreateEnclave(evil)

	ca, err := certs.NewCA("honest root")
	if err != nil {
		return harnessFailure(r, err)
	}
	serverCert, _ := ca.Issue("origin.example", []string{"origin.example"}, nil)
	mbCert, _ := ca.Issue("mbox.example", []string{"mbox.example"}, nil)
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{Mode: core.ClientSide, Certificate: mbCert, Enclave: encl})
	if err != nil {
		return harnessFailure(r, err)
	}
	c0a, c0b := netsim.Pipe()
	c1a, c1b := netsim.Pipe()
	go mb.Handle(c0b, c1a) //nolint:errcheck
	go func() {
		core.Accept(c1b, &core.ServerConfig{TLS: &tls12.Config{Certificate: serverCert}}) //nolint:errcheck
	}()
	_, err = core.Dial(c0a, &core.ClientConfig{
		TLS:                         &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
		RequireMiddleboxAttestation: true,
		MiddleboxVerifier: &enclave.Verifier{
			Authority: authority.PublicKey(),
			Allowed:   []enclave.Measurement{expected.Measurement()},
		},
	})
	if err == nil {
		r.Detail = "client accepted an enclave running unexpected code"
		return r
	}
	r.Defended = true
	r.Detail = "measurement policy rejected backdoored image: " + err.Error()
	return r
}

// ReplayQuote: P3B freshness — an attestation from one handshake is
// replayed into another.
func ReplayQuote() Result {
	r := Result{
		Property: "P3B",
		Threat:   "Stale SGX attestation replayed into a new handshake",
		Defense:  "Quote binds the handshake transcript hash",
	}
	authority, err := enclave.NewAuthority()
	if err != nil {
		return harnessFailure(r, err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return harnessFailure(r, err)
	}
	image := enclave.CodeImage{Name: "mbtls-mbox", Version: "1.0"}
	encl := platform.CreateEnclave(image)

	oldReport := make([]byte, enclave.ReportDataLen)
	copy(oldReport, []byte("transcript hash of an old handshake"))
	var staleQuote *enclave.Quote
	encl.Enter(func(mem enclave.Memory) {
		staleQuote, err = mem.Quote(oldReport)
	})
	if err != nil {
		return harnessFailure(r, err)
	}
	freshReport := make([]byte, enclave.ReportDataLen)
	copy(freshReport, []byte("transcript hash of the current handshake"))

	v := &enclave.Verifier{Authority: authority.PublicKey(), Allowed: []enclave.Measurement{image.Measurement()}}
	if err := v.VerifyQuote(staleQuote.Marshal(), freshReport); err == nil {
		r.Detail = "verifier accepted a stale quote"
		return r
	}
	if err := v.VerifyQuote(staleQuote.Marshal(), oldReport); err != nil {
		return harnessFailure(r, fmt.Errorf("fresh-path verification broken: %w", err))
	}
	r.Defended = true
	r.Detail = "quote bound to its own transcript: replay across handshakes rejected"
	return r
}

// SkipMiddlebox: P4 — a record is spliced around a middlebox.
func SkipMiddlebox() Result {
	r := Result{
		Property: "P4",
		Threat:   "Records passed to middleboxes in the wrong order (or skipping one)",
		Defense:  "Unique Per-Hop Keys",
	}
	sc, err := NewScenario(Opts{})
	if err != nil {
		return harnessFailure(r, err)
	}
	defer sc.Close()
	// Capture the record on the client→middlebox hop, suppress it, and
	// splice it directly onto the middlebox→server hop.
	captured := make(chan tls12.RawRecord, 1)
	sc.T1.SetHooks(nthOfType(tls12.TypeApplicationData, 0, func(rec tls12.RawRecord) []tls12.RawRecord {
		cp := tls12.RawRecord{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)}
		select {
		case captured <- cp:
		default:
		}
		return nil // never reaches the middlebox
	}), nil)
	if _, err := sc.Client.Write(secretPayload); err != nil {
		return harnessFailure(r, err)
	}
	var rec tls12.RawRecord
	select {
	case rec = <-captured:
	case <-time.After(attackTimeout):
		return harnessFailure(r, ErrTimeout)
	}
	if err := sc.T2.InjectC2S(rec); err != nil {
		return harnessFailure(r, err)
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		r.Detail = "server accepted a record that skipped the middlebox"
		return r
	}
	r.Defended = true
	r.Detail = "record keyed for hop C–M fails the bridge-hop MAC: " + err.Error()
	return r
}
