package adversary

import "testing"

// TestTable1Attacks runs the paper's Table 1 threat suite against live
// mbTLS sessions: every attack must be defended.
func TestTable1Attacks(t *testing.T) {
	for _, r := range RunAll() {
		r := r
		t.Run(r.Property+"/"+r.Threat, func(t *testing.T) {
			if r.Err != nil {
				t.Fatalf("harness failure: %v", r.Err)
			}
			if !r.Defended {
				t.Fatalf("attack succeeded: %s", r.Detail)
			}
			t.Log(r.Detail)
		})
	}
}
