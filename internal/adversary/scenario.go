package adversary

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// Opts configures a standard attack scenario: an mbTLS client, one
// client-side middlebox, and an mbTLS server, with adversary tamper
// points on both links around the middlebox.
type Opts struct {
	// EnclaveMbox runs the middlebox inside a simulated SGX enclave.
	EnclaveMbox bool
	// Processor optionally installs a data-plane transformer.
	Processor func() core.Processor
	// NeighborKeys selects the §4.2 neighbor-negotiated hop keys mode.
	NeighborKeys bool
}

// Scenario is a live session under attack.
type Scenario struct {
	CA        *certs.CA
	Authority *enclave.Authority
	Enclave   *enclave.Enclave
	Mbox      *core.Middlebox
	Client    *core.Session
	Server    *core.Session
	// T1 sits between the client and the middlebox (hop key K(C-M)),
	// T2 between the middlebox and the server (the bridge key K(C-S)).
	T1, T2 *TamperPoint

	serverRecv chan []byte
	serverErr  chan error
	clientRecv chan []byte
	clientErr  chan error
}

// ErrTimeout reports that an expected delivery did not happen.
var ErrTimeout = errors.New("adversary: timed out")

// NewScenario builds and handshakes the standard scenario.
func NewScenario(opts Opts) (*Scenario, error) {
	sc := &Scenario{
		serverRecv: make(chan []byte, 64),
		serverErr:  make(chan error, 4),
		clientRecv: make(chan []byte, 64),
		clientErr:  make(chan error, 4),
	}
	var err error
	if sc.CA, err = certs.NewCA("adversary harness root"); err != nil {
		return nil, err
	}
	if sc.Authority, err = enclave.NewAuthority(); err != nil {
		return nil, err
	}
	serverCert, err := sc.CA.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		return nil, err
	}
	mbCert, err := sc.CA.Issue("mbox.example", []string{"mbox.example"}, nil)
	if err != nil {
		return nil, err
	}

	mbCfg := core.MiddleboxConfig{
		Mode:        core.ClientSide,
		Certificate: mbCert,
	}
	if opts.NeighborKeys {
		mbCfg.NeighborRoots = sc.CA.Pool()
	}
	if opts.Processor != nil {
		mbCfg.NewProcessor = opts.Processor
	}
	var image enclave.CodeImage
	if opts.EnclaveMbox {
		platform, err := sc.Authority.NewPlatform()
		if err != nil {
			return nil, err
		}
		image = enclave.CodeImage{Name: "mbtls-mbox", Version: "1.0"}
		sc.Enclave = platform.CreateEnclave(image)
		mbCfg.Enclave = sc.Enclave
	}
	if sc.Mbox, err = core.NewMiddlebox(mbCfg); err != nil {
		return nil, err
	}

	// client --T1-- mbox --T2-- server
	c0a, c0b := netsim.Pipe()
	c1a, c1b := netsim.Pipe()
	c2a, c2b := netsim.Pipe()
	c3a, c3b := netsim.Pipe()
	sc.T1 = NewTamperPoint(c0b, c1a, true)
	go sc.Mbox.Handle(c1b, c2a) //nolint:errcheck
	sc.T2 = NewTamperPoint(c2b, c3a, true)

	ccfg := &core.ClientConfig{
		TLS:          &tls12.Config{RootCAs: sc.CA.Pool(), ServerName: "origin.example"},
		NeighborKeys: opts.NeighborKeys,
	}
	if opts.EnclaveMbox {
		ccfg.RequireMiddleboxAttestation = true
		ccfg.MiddleboxVerifier = &enclave.Verifier{
			Authority: sc.Authority.PublicKey(),
			Allowed:   []enclave.Measurement{image.Measurement()},
		}
	}
	scfg := &core.ServerConfig{TLS: &tls12.Config{Certificate: serverCert}}

	type res struct {
		sess *core.Session
		err  error
	}
	cch := make(chan res, 1)
	sch := make(chan res, 1)
	go func() {
		s, err := core.Dial(c0a, ccfg)
		cch <- res{s, err}
	}()
	go func() {
		s, err := core.Accept(c3b, scfg)
		sch <- res{s, err}
	}()
	cr, sr := <-cch, <-sch
	if cr.err != nil {
		return nil, fmt.Errorf("adversary: client setup: %w", cr.err)
	}
	if sr.err != nil {
		return nil, fmt.Errorf("adversary: server setup: %w", sr.err)
	}
	sc.Client = cr.sess
	sc.Server = sr.sess

	go pumpReads(sc.Server, sc.serverRecv, sc.serverErr)
	go pumpReads(sc.Client, sc.clientRecv, sc.clientErr)
	return sc, nil
}

func pumpReads(r interface{ Read([]byte) (int, error) }, recv chan<- []byte, errc chan<- error) {
	for {
		buf := make([]byte, 16384)
		n, err := r.Read(buf)
		if n > 0 {
			recv <- buf[:n]
		}
		if err != nil {
			errc <- err
			return
		}
	}
}

// Close tears the scenario down, wiping the middlebox's vault: probes
// of what an adversary could read must happen while the session lives.
func (sc *Scenario) Close() {
	if sc.Client != nil {
		sc.Client.Close()
	}
	if sc.Server != nil {
		sc.Server.Close()
	}
	if sc.Mbox != nil {
		sc.Mbox.Vault().Wipe()
	}
}

// ServerRecv waits for the next chunk the server accepted.
func (sc *Scenario) ServerRecv(timeout time.Duration) ([]byte, error) {
	select {
	case b := <-sc.serverRecv:
		return b, nil
	case err := <-sc.serverErr:
		return nil, err
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// ServerReadErr waits for the server's read loop to fail (how a
// tampered record surfaces: a fatal bad_record_mac).
func (sc *Scenario) ServerReadErr(timeout time.Duration) error {
	select {
	case err := <-sc.serverErr:
		return err
	case b := <-sc.serverRecv:
		return fmt.Errorf("adversary: server accepted %d bytes instead of failing", len(b))
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// ClientRecv waits for the next chunk the client accepted.
func (sc *Scenario) ClientRecv(timeout time.Duration) ([]byte, error) {
	select {
	case b := <-sc.clientRecv:
		return b, nil
	case err := <-sc.clientErr:
		return nil, err
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// Suite returns the negotiated primary cipher suite.
func (sc *Scenario) Suite() uint16 { return sc.Client.ConnectionState().CipherSuite }
