// Package adversary implements the active, global attacker of the
// paper's threat model (§3.1) and runs the concrete threats of Table 1
// against live sessions. It provides wire tamper points (observe,
// modify, drop, inject, reorder, replay, splice across hops), memory
// dumps of middlebox infrastructure, and impersonation scenarios; the
// Table 1 harness (internal/experiments) and the security tests assert
// which defenses hold for TLS, split TLS, and mbTLS.
package adversary

import (
	"net"
	"sync"

	"repro/internal/tls12"
)

// Hook intercepts one record at a tamper point and returns the records
// to forward in its place (nil drops the record).
type Hook func(rec tls12.RawRecord) []tls12.RawRecord

// PassThrough forwards records unchanged.
func PassThrough(rec tls12.RawRecord) []tls12.RawRecord {
	return []tls12.RawRecord{rec}
}

// TamperPoint is an adversary position on one link.
type TamperPoint struct {
	mu  sync.Mutex
	a   net.Conn // client side
	b   net.Conn // server side
	c2s Hook
	s2c Hook
	// Captured records per direction (observation capability).
	CapturedC2S []tls12.RawRecord
	CapturedS2C []tls12.RawRecord
	capture     bool
}

// NewTamperPoint splices an adversary between a and b. Hooks may be
// nil (pass-through); SetHooks installs them later. When capture is
// true, all records are recorded before forwarding.
func NewTamperPoint(a, b net.Conn, capture bool) *TamperPoint {
	tp := &TamperPoint{a: a, b: b, capture: capture}
	go tp.pump(a, b, true)
	go tp.pump(b, a, false)
	return tp
}

// InjectC2S writes an attacker-crafted record toward the server side
// of this tamper point.
func (tp *TamperPoint) InjectC2S(rec tls12.RawRecord) error {
	_, err := tp.b.Write(rec.Marshal())
	return err
}

// InjectS2C writes an attacker-crafted record toward the client side.
func (tp *TamperPoint) InjectS2C(rec tls12.RawRecord) error {
	_, err := tp.a.Write(rec.Marshal())
	return err
}

// SetHooks installs (or replaces) the tamper hooks.
func (tp *TamperPoint) SetHooks(c2s, s2c Hook) {
	tp.mu.Lock()
	tp.c2s = c2s
	tp.s2c = s2c
	tp.mu.Unlock()
}

// Snapshot returns copies of the captured records.
func (tp *TamperPoint) Snapshot() (c2s, s2c []tls12.RawRecord) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return append([]tls12.RawRecord(nil), tp.CapturedC2S...),
		append([]tls12.RawRecord(nil), tp.CapturedS2C...)
}

func (tp *TamperPoint) pump(src, dst net.Conn, c2s bool) {
	defer src.Close()
	defer dst.Close()
	for {
		rec, err := tls12.ReadRawRecord(src)
		if err != nil {
			return
		}
		tp.mu.Lock()
		if tp.capture {
			cp := tls12.RawRecord{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)}
			if c2s {
				tp.CapturedC2S = append(tp.CapturedC2S, cp)
			} else {
				tp.CapturedS2C = append(tp.CapturedS2C, cp)
			}
		}
		hook := tp.c2s
		if !c2s {
			hook = tp.s2c
		}
		tp.mu.Unlock()
		out := []tls12.RawRecord{rec}
		if hook != nil {
			out = hook(rec)
		}
		for _, r := range out {
			if _, err := dst.Write(r.Marshal()); err != nil {
				return
			}
		}
	}
}

// Inject writes an attacker-crafted record toward the given side,
// bypassing the hooks (active injection capability).
func Inject(conn net.Conn, rec tls12.RawRecord) error {
	_, err := conn.Write(rec.Marshal())
	return err
}

// nthOfType returns a hook helper: calls f on the nth record (0-based)
// of the given type, passing others through.
func nthOfType(typ tls12.ContentType, n int, f Hook) Hook {
	count := 0
	return func(rec tls12.RawRecord) []tls12.RawRecord {
		if rec.Type != typ {
			return PassThrough(rec)
		}
		idx := count
		count++
		if idx != n {
			return PassThrough(rec)
		}
		return f(rec)
	}
}

// FlipByte returns a hook flipping one payload byte of the nth record
// of the given type.
func FlipByte(typ tls12.ContentType, n int) Hook {
	return nthOfType(typ, n, func(rec tls12.RawRecord) []tls12.RawRecord {
		tampered := append([]byte(nil), rec.Payload...)
		if len(tampered) > 12 {
			tampered[12] ^= 0x40
		}
		return []tls12.RawRecord{{Type: rec.Type, Payload: tampered}}
	})
}

// DropNth returns a hook dropping the nth record of the given type.
func DropNth(typ tls12.ContentType, n int) Hook {
	return nthOfType(typ, n, func(tls12.RawRecord) []tls12.RawRecord { return nil })
}

// Duplicate returns a hook replaying the nth record of the given type
// immediately after itself.
func Duplicate(typ tls12.ContentType, n int) Hook {
	return nthOfType(typ, n, func(rec tls12.RawRecord) []tls12.RawRecord {
		return []tls12.RawRecord{rec, rec}
	})
}

// SwapPair returns a hook that reorders the first two records of the
// given type (holds the first, emits it after the second).
func SwapPair(typ tls12.ContentType) Hook {
	var held *tls12.RawRecord
	count := 0
	return func(rec tls12.RawRecord) []tls12.RawRecord {
		if rec.Type != typ {
			return PassThrough(rec)
		}
		count++
		switch count {
		case 1:
			cp := tls12.RawRecord{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)}
			held = &cp
			return nil
		case 2:
			out := []tls12.RawRecord{rec, *held}
			held = nil
			return out
		default:
			return PassThrough(rec)
		}
	}
}

// InjectForged returns a hook that inserts a forged record before the
// nth record of the given type.
func InjectForged(typ tls12.ContentType, n int, forged tls12.RawRecord) Hook {
	return nthOfType(typ, n, func(rec tls12.RawRecord) []tls12.RawRecord {
		return []tls12.RawRecord{forged, rec}
	})
}
