package adversary

import (
	"bytes"
	"testing"

	"repro/internal/tls12"
)

// TestStatePoisoningLimitation demonstrates §4.2 "Middlebox State
// Poisoning": because a client knows every hop key on its side of the
// session (it generated them, and it ran the primary handshake for the
// bridge), it can forge a "server response" that its own middlebox
// accepts as authentic. The paper concludes "it is not safe to use
// mbTLS with client-side middleboxes that keep global state" (e.g., a
// shared web cache) — this test verifies the limitation is real in
// this implementation, exactly as documented.
func TestStatePoisoningLimitation(t *testing.T) {
	sc, err := NewScenario(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	// Normal exchange first: server sends a real response, advancing
	// the bridge's server→client sequence number.
	if _, err := sc.Client.Write([]byte("GET /page")); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ServerRecv(attackTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Server.Write([]byte("REAL RESPONSE")); err != nil {
		t.Fatal(err)
	}
	if got, err := sc.ClientRecv(attackTimeout); err != nil || string(got) != "REAL RESPONSE" {
		t.Fatalf("real response not delivered: %q %v", got, err)
	}

	// The malicious client forges the *next* server response under the
	// bridge key it legitimately holds, and splices it onto the link
	// between its middlebox and the server.
	keys, err := sc.Client.ExportPrimaryKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Bridge s2c sequence: 1 (server Finished) + 1 (real response).
	forgeCS, err := tls12.NewCipherState(keys.Suite, keys.ServerWriteKey, keys.ServerWriteIV, 2)
	if err != nil {
		t.Fatal(err)
	}
	forged := tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: forgeCS.Seal(tls12.TypeApplicationData, []byte("POISONED CONTENT")),
	}
	if err := sc.T2.InjectS2C(forged); err != nil {
		t.Fatal(err)
	}

	// The middlebox opens the forged record with the bridge key,
	// accepts it as server data, and reseals it toward the client: a
	// caching middlebox would have stored it for other clients.
	got, err := sc.ClientRecv(attackTimeout)
	if err != nil {
		t.Fatalf("middlebox rejected the forgery — the documented limitation no longer holds "+
			"(did key distribution change?): %v", err)
	}
	if !bytes.Equal(got, []byte("POISONED CONTENT")) {
		t.Fatalf("unexpected data: %q", got)
	}
	t.Log("confirmed: a client can forge server responses through its own middleboxes (§4.2); " +
		"stateful shared middleboxes must not trust client-side mbTLS sessions")
}

// TestStatePoisoningDefeatedByNeighborKeys: under the §4.2
// neighbor-keys mode, the client no longer knows the
// middlebox↔server hop key, so the same forgery is rejected by the
// middlebox with a MAC failure.
func TestStatePoisoningDefeatedByNeighborKeys(t *testing.T) {
	sc, err := NewScenario(Opts{NeighborKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	if _, err := sc.Client.Write([]byte("GET /page")); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ServerRecv(attackTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Server.Write([]byte("REAL RESPONSE")); err != nil {
		t.Fatal(err)
	}
	if got, err := sc.ClientRecv(attackTimeout); err != nil || string(got) != "REAL RESPONSE" {
		t.Fatalf("real response not delivered: %q %v", got, err)
	}

	// Same forgery as TestStatePoisoningLimitation: a record sealed
	// under the primary session keys the client holds.
	keys, err := sc.Client.ExportPrimaryKeys()
	if err != nil {
		t.Fatal(err)
	}
	forgeCS, err := tls12.NewCipherState(keys.Suite, keys.ServerWriteKey, keys.ServerWriteIV, 2)
	if err != nil {
		t.Fatal(err)
	}
	forged := tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: forgeCS.Seal(tls12.TypeApplicationData, []byte("POISONED CONTENT")),
	}
	if err := sc.T2.InjectS2C(forged); err != nil {
		t.Fatal(err)
	}

	// The middlebox's upstream hop key was negotiated with the server;
	// the forgery must fail its MAC check and kill the session rather
	// than poison any middlebox state.
	got, err := sc.ClientRecv(attackTimeout)
	if err == nil {
		t.Fatalf("forgery delivered under neighbor keys: %q", got)
	}
	if err == ErrTimeout {
		t.Fatal("forgery silently dropped; expected a hard failure")
	}
	t.Logf("forgery rejected as expected: %v", err)
}

// TestEndpointIsolation verifies §4.2 "Endpoint Isolation": endpoints
// cannot see (or authenticate) the other side's middleboxes. The
// summaries exposed to each endpoint cover only its own side.
func TestEndpointIsolation(t *testing.T) {
	sc, err := NewScenario(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	// The scenario's middlebox is client-side.
	if n := len(sc.Client.Middleboxes()); n != 1 {
		t.Fatalf("client sees %d middleboxes, want its own 1", n)
	}
	if n := len(sc.Server.Middleboxes()); n != 0 {
		t.Fatalf("server sees %d middleboxes, want 0 (endpoint isolation)", n)
	}
}

// TestFilterBypassArgument encodes the paper's §4.2 observation about
// "Bypassing 'Filter' Middleboxes": an endpoint that can physically
// inject traffic beyond the filter could always bypass it; within the
// protocol, a third party (who lacks the keys) cannot. A TP injecting
// a record on the far side of the middlebox is rejected.
func TestFilterBypassArgument(t *testing.T) {
	sc, err := NewScenario(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	// A third party (no keys) forging on the bridge link fails.
	junk := tls12.RawRecord{Type: tls12.TypeApplicationData, Payload: bytes.Repeat([]byte{9}, 48)}
	if err := sc.T2.InjectC2S(junk); err != nil {
		t.Fatal(err)
	}
	err = sc.ServerReadErr(attackTimeout)
	if err == nil || err == ErrTimeout {
		t.Fatal("third-party injection beyond the filter was accepted")
	}
}
