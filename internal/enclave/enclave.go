// Package enclave simulates the two Intel SGX features mbTLS consumes
// (paper §3.3, "An Aside: Trusted Computing and SGX"):
//
//   - Secure execution environments: code and secrets inside an enclave
//     are invisible to the machine owner (the middlebox infrastructure
//     provider, MIP). The simulation enforces this structurally: enclave
//     memory is only reachable through Enter, and the Vault abstraction
//     lets adversary tests "dump" exactly the memory a malicious MIP
//     could read.
//
//   - Remote attestation: an enclave can produce a Quote — a signed
//     statement binding its code measurement to caller-chosen report
//     data. mbTLS puts a handshake transcript hash in the report data so
//     quotes are fresh per handshake (§3.4).
//
// The quoting chain models SGX's: an Authority (playing Intel) endorses
// per-Platform quoting keys; quotes chain platform → authority.
//
// The cost of crossing the enclave boundary (ecalls/ocalls) is an
// explicit, tunable knob with transition counters, so the Figure 7
// throughput experiment exercises the same boundary-crossing code path
// the paper measured on real hardware.
package enclave

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/secmem"
	"repro/internal/wire"
)

// MeasurementLen is the length of an enclave code measurement.
const MeasurementLen = 32

// ReportDataLen is the length of the caller-supplied report data bound
// into a quote (matches sgx_report_data_t).
const ReportDataLen = 64

// Measurement identifies the initial code and configuration of an
// enclave (SGX's MRENCLAVE).
type Measurement [MeasurementLen]byte

// String abbreviates the measurement for logs.
func (m Measurement) String() string { return fmt.Sprintf("mrenclave:%x", m[:6]) }

// CodeImage describes the software loaded into an enclave. Its
// measurement covers name, version, and configuration, reproducing the
// paper's "Apache v2.4.25 with only strong TLS cipher suites enabled"
// notion of code identity (P3B).
type CodeImage struct {
	Name    string
	Version string
	Config  string
}

// Measurement returns the code image's measurement.
func (ci CodeImage) Measurement() Measurement {
	h := sha256.New()
	for _, s := range []string{ci.Name, ci.Version, ci.Config} {
		var lenb [4]byte
		lenb[0] = byte(len(s) >> 24)
		lenb[1] = byte(len(s) >> 16)
		lenb[2] = byte(len(s) >> 8)
		lenb[3] = byte(len(s))
		h.Write(lenb[:])
		h.Write([]byte(s))
	}
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Authority is the root of the attestation trust chain (plays Intel's
// attestation service). Verifiers hold its public key.
type Authority struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewAuthority creates an attestation authority with a fresh key.
func NewAuthority() (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Authority{pub: pub, priv: priv}, nil
}

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Wipe zeroizes the authority's signing key. It endorses no further
// platforms afterward; already-issued endorsements stay verifiable.
func (a *Authority) Wipe() {
	secmem.Wipe(a.priv)
	a.priv = nil
}

// Platform is one SGX-capable machine with an authority-endorsed
// quoting key (plays the quoting enclave).
type Platform struct {
	authorityPub ed25519.PublicKey
	quotePub     ed25519.PublicKey
	quotePriv    ed25519.PrivateKey
	endorsement  []byte // authority signature over quotePub

	// boundaryCost is the simulated cost of one enclave transition.
	boundaryCost atomic.Int64 // nanoseconds
}

// NewPlatform provisions a platform under the authority.
func (a *Authority) NewPlatform() (*Platform, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Platform{
		authorityPub: a.pub,
		quotePub:     pub,
		quotePriv:    priv,
		endorsement:  ed25519.Sign(a.priv, pub),
	}, nil
}

// SetBoundaryCost sets the simulated per-transition (ecall or ocall)
// cost for enclaves on this platform. Zero disables the cost model.
func (p *Platform) SetBoundaryCost(d time.Duration) {
	p.boundaryCost.Store(int64(d))
}

// Wipe zeroizes the platform's quoting key, as when a platform is
// decommissioned. Enclaves on it can no longer produce quotes.
func (p *Platform) Wipe() {
	secmem.Wipe(p.quotePriv)
	p.quotePriv = nil
}

// Enclave is a secure execution environment on a platform. All state
// placed in the enclave's memory is reachable only from code invoked
// through Enter, never from the host.
type Enclave struct {
	platform    *Platform
	measurement Measurement

	mu  sync.Mutex
	mem map[string]any

	transitions atomic.Int64
}

// CreateEnclave loads a code image into a new enclave. The measurement
// is fixed at creation, as on real SGX.
func (p *Platform) CreateEnclave(image CodeImage) *Enclave {
	return &Enclave{
		platform:    p,
		measurement: image.Measurement(),
		mem:         make(map[string]any),
	}
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Transitions reports the number of boundary crossings so far (each
// Enter counts the entry and the exit, like an ecall+return).
func (e *Enclave) Transitions() int64 { return e.transitions.Load() }

// spin burns approximately d of CPU to model the cost of flushing and
// re-entering the protected execution context. A sleep would be wrong:
// the paper's Figure 7 is about CPU overhead competing with interrupt
// handling, not idle waiting.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Enter runs f inside the enclave, paying the boundary-crossing cost on
// entry and exit and incrementing the transition counter. Like real SGX
// (which admits multiple concurrent enclave threads), Enter does not
// serialize callers; only the Memory map operations are synchronized.
func (e *Enclave) Enter(f func(mem Memory)) {
	cost := time.Duration(e.platform.boundaryCost.Load())
	e.transitions.Add(2)
	spin(cost)
	f(Memory{e: e})
	spin(cost)
}

// Memory is a handle to enclave-private memory, only valid inside
// Enter.
type Memory struct {
	e *Enclave
}

// Put stores a value in enclave memory.
func (m Memory) Put(key string, v any) {
	m.e.mu.Lock()
	m.e.mem[key] = v
	m.e.mu.Unlock()
}

// Get retrieves a value from enclave memory.
func (m Memory) Get(key string) any {
	m.e.mu.Lock()
	defer m.e.mu.Unlock()
	return m.e.mem[key]
}

// Delete removes a value from enclave memory.
func (m Memory) Delete(key string) {
	m.e.mu.Lock()
	delete(m.e.mem, key)
	m.e.mu.Unlock()
}

// Quote produces an attestation over the enclave's measurement and the
// given report data. Only code inside the enclave can request a quote,
// mirroring SGX's EREPORT flow.
func (m Memory) Quote(reportData []byte) (*Quote, error) {
	if len(reportData) != ReportDataLen {
		return nil, fmt.Errorf("enclave: report data must be %d bytes, got %d", ReportDataLen, len(reportData))
	}
	e := m.e
	body := quoteBody(e.measurement, reportData)
	return &Quote{
		Measurement: e.measurement,
		ReportData:  append([]byte(nil), reportData...),
		PlatformKey: append(ed25519.PublicKey(nil), e.platform.quotePub...),
		Endorsement: append([]byte(nil), e.platform.endorsement...),
		Signature:   ed25519.Sign(e.platform.quotePriv, body),
	}, nil
}

// Quote is a simulated SGX quote.
type Quote struct {
	Measurement Measurement
	ReportData  []byte
	PlatformKey ed25519.PublicKey
	Endorsement []byte // authority signature over PlatformKey
	Signature   []byte // platform signature over quoteBody
}

func quoteBody(m Measurement, reportData []byte) []byte {
	b := make([]byte, 0, MeasurementLen+ReportDataLen)
	b = append(b, m[:]...)
	b = append(b, reportData...)
	return b
}

// Marshal encodes the quote for transport in an SGXAttestation
// handshake message.
func (q *Quote) Marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddBytes(q.Measurement[:])
	b.AddBytes(q.ReportData)
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(q.PlatformKey) })
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(q.Endorsement) })
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(q.Signature) })
	return b.Bytes()
}

// ParseQuote decodes a quote.
func ParseQuote(data []byte) (*Quote, error) {
	p := wire.NewParser(data)
	var q Quote
	var pk, endorsement, sig []byte
	if !p.CopyBytes(q.Measurement[:]) {
		return nil, errors.New("enclave: malformed quote")
	}
	q.ReportData = make([]byte, ReportDataLen)
	if !p.CopyBytes(q.ReportData) ||
		!p.ReadUint8Prefixed(&pk) ||
		!p.ReadUint16Prefixed(&endorsement) ||
		!p.ReadUint16Prefixed(&sig) {
		return nil, errors.New("enclave: malformed quote")
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	q.PlatformKey = append(ed25519.PublicKey(nil), pk...)
	q.Endorsement = append([]byte(nil), endorsement...)
	q.Signature = append([]byte(nil), sig...)
	return &q, nil
}

// Verify checks the quote's signature chain against the authority key
// and that it binds the expected report data.
func (q *Quote) Verify(authority ed25519.PublicKey, reportData []byte) error {
	if err := q.verifyEndorsement(authority); err != nil {
		return err
	}
	return q.verifyBinding(reportData)
}

// verifyEndorsement checks the platform link of the chain: the
// authority endorsed this platform key. The verdict depends only on
// (authority, platform key, endorsement), so it is safe to memoize
// across handshakes.
func (q *Quote) verifyEndorsement(authority ed25519.PublicKey) error {
	if len(q.PlatformKey) != ed25519.PublicKeySize {
		return errors.New("enclave: bad platform key length")
	}
	if !ed25519.Verify(authority, q.PlatformKey, q.Endorsement) {
		return errors.New("enclave: platform key not endorsed by authority")
	}
	return nil
}

// verifyBinding checks the per-handshake half: the platform signed this
// quote body, and the body binds this handshake's report data. Never
// cached — it is what makes a quote fresh rather than replayed.
func (q *Quote) verifyBinding(reportData []byte) error {
	if !ed25519.Verify(q.PlatformKey, quoteBody(q.Measurement, q.ReportData), q.Signature) {
		return errors.New("enclave: invalid quote signature")
	}
	if len(reportData) != ReportDataLen || !constantTimeEqual(q.ReportData, reportData) {
		return errors.New("enclave: report data mismatch (stale or replayed quote)")
	}
	return nil
}

func constantTimeEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// QuoteCache memoizes endorsement-verification verdicts across
// handshakes (hsfast.VerifyCache satisfies it). Do runs verify on a
// miss and returns the memoized error on a hit.
type QuoteCache interface {
	Do(key [32]byte, verify func() error) (cached bool, err error)
}

// Verifier is an attestation policy: an authority trust anchor plus a
// set of acceptable code measurements. It plugs into
// tls12.Config.VerifyQuote.
type Verifier struct {
	Authority ed25519.PublicKey
	// Allowed lists acceptable measurements; empty means any
	// measurement from a genuine platform (identity is then checked by
	// certificate only, P3A without P3B).
	Allowed []Measurement
	// Cache, when set, memoizes the endorsement half of quote
	// verification, keyed by (authority, platform key, endorsement).
	// The quote-body signature and report-data binding are still
	// verified on every handshake — a cache hit never lets a stale or
	// replayed quote through, it only skips re-verifying that a
	// platform key the authority already endorsed is endorsed.
	Cache QuoteCache
}

// endorsementKey hashes the cached verdict's full input. Each variable
// field is length-framed so no two (authority, key, endorsement)
// triples collide.
func endorsementKey(authority ed25519.PublicKey, q *Quote) [32]byte {
	h := sha256.New()
	var frame [4]byte
	for _, field := range [][]byte{authority, q.PlatformKey, q.Endorsement} {
		binary.BigEndian.PutUint32(frame[:], uint32(len(field)))
		h.Write(frame[:])
		h.Write(field)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// VerifyQuote implements the tls12 attestation hook.
func (v *Verifier) VerifyQuote(quoteBytes, reportData []byte) error {
	q, err := ParseQuote(quoteBytes)
	if err != nil {
		return err
	}
	if v.Cache != nil {
		_, err = v.Cache.Do(endorsementKey(v.Authority, q), func() error {
			return q.verifyEndorsement(v.Authority)
		})
	} else {
		err = q.verifyEndorsement(v.Authority)
	}
	if err != nil {
		return err
	}
	if err := q.verifyBinding(reportData); err != nil {
		return err
	}
	if len(v.Allowed) == 0 {
		return nil
	}
	for _, m := range v.Allowed {
		if m == q.Measurement {
			return nil
		}
	}
	return fmt.Errorf("enclave: measurement %s not in policy", q.Measurement)
}
