// Package enclave simulates the two Intel SGX features mbTLS consumes
// (paper §3.3, "An Aside: Trusted Computing and SGX"):
//
//   - Secure execution environments: code and secrets inside an enclave
//     are invisible to the machine owner (the middlebox infrastructure
//     provider, MIP). The simulation enforces this structurally: enclave
//     memory is only reachable through Enter, and the Vault abstraction
//     lets adversary tests "dump" exactly the memory a malicious MIP
//     could read.
//
//   - Remote attestation: an enclave can produce a Quote — a signed
//     statement binding its code measurement to caller-chosen report
//     data. mbTLS puts a handshake transcript hash in the report data so
//     quotes are fresh per handshake (§3.4).
//
// The quoting chain models SGX's: an Authority (playing Intel) endorses
// per-Platform quoting keys; quotes chain platform → authority.
//
// The cost of crossing the enclave boundary (ecalls/ocalls) is an
// explicit, tunable knob with transition counters, so the Figure 7
// throughput experiment exercises the same boundary-crossing code path
// the paper measured on real hardware.
package enclave

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// MeasurementLen is the length of an enclave code measurement.
const MeasurementLen = 32

// ReportDataLen is the length of the caller-supplied report data bound
// into a quote (matches sgx_report_data_t).
const ReportDataLen = 64

// Measurement identifies the initial code and configuration of an
// enclave (SGX's MRENCLAVE).
type Measurement [MeasurementLen]byte

// String abbreviates the measurement for logs.
func (m Measurement) String() string { return fmt.Sprintf("mrenclave:%x", m[:6]) }

// CodeImage describes the software loaded into an enclave. Its
// measurement covers name, version, and configuration, reproducing the
// paper's "Apache v2.4.25 with only strong TLS cipher suites enabled"
// notion of code identity (P3B).
type CodeImage struct {
	Name    string
	Version string
	Config  string
}

// Measurement returns the code image's measurement.
func (ci CodeImage) Measurement() Measurement {
	h := sha256.New()
	for _, s := range []string{ci.Name, ci.Version, ci.Config} {
		var lenb [4]byte
		lenb[0] = byte(len(s) >> 24)
		lenb[1] = byte(len(s) >> 16)
		lenb[2] = byte(len(s) >> 8)
		lenb[3] = byte(len(s))
		h.Write(lenb[:])
		h.Write([]byte(s))
	}
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Authority is the root of the attestation trust chain (plays Intel's
// attestation service). Verifiers hold its public key.
type Authority struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewAuthority creates an attestation authority with a fresh key.
func NewAuthority() (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Authority{pub: pub, priv: priv}, nil
}

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Platform is one SGX-capable machine with an authority-endorsed
// quoting key (plays the quoting enclave).
type Platform struct {
	authorityPub ed25519.PublicKey
	quotePub     ed25519.PublicKey
	quotePriv    ed25519.PrivateKey
	endorsement  []byte // authority signature over quotePub

	// boundaryCost is the simulated cost of one enclave transition.
	boundaryCost atomic.Int64 // nanoseconds
}

// NewPlatform provisions a platform under the authority.
func (a *Authority) NewPlatform() (*Platform, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Platform{
		authorityPub: a.pub,
		quotePub:     pub,
		quotePriv:    priv,
		endorsement:  ed25519.Sign(a.priv, pub),
	}, nil
}

// SetBoundaryCost sets the simulated per-transition (ecall or ocall)
// cost for enclaves on this platform. Zero disables the cost model.
func (p *Platform) SetBoundaryCost(d time.Duration) {
	p.boundaryCost.Store(int64(d))
}

// Enclave is a secure execution environment on a platform. All state
// placed in the enclave's memory is reachable only from code invoked
// through Enter, never from the host.
type Enclave struct {
	platform    *Platform
	measurement Measurement

	mu  sync.Mutex
	mem map[string]any

	transitions atomic.Int64
}

// CreateEnclave loads a code image into a new enclave. The measurement
// is fixed at creation, as on real SGX.
func (p *Platform) CreateEnclave(image CodeImage) *Enclave {
	return &Enclave{
		platform:    p,
		measurement: image.Measurement(),
		mem:         make(map[string]any),
	}
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Transitions reports the number of boundary crossings so far (each
// Enter counts the entry and the exit, like an ecall+return).
func (e *Enclave) Transitions() int64 { return e.transitions.Load() }

// spin burns approximately d of CPU to model the cost of flushing and
// re-entering the protected execution context. A sleep would be wrong:
// the paper's Figure 7 is about CPU overhead competing with interrupt
// handling, not idle waiting.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Enter runs f inside the enclave, paying the boundary-crossing cost on
// entry and exit and incrementing the transition counter. Like real SGX
// (which admits multiple concurrent enclave threads), Enter does not
// serialize callers; only the Memory map operations are synchronized.
func (e *Enclave) Enter(f func(mem Memory)) {
	cost := time.Duration(e.platform.boundaryCost.Load())
	e.transitions.Add(2)
	spin(cost)
	f(Memory{e: e})
	spin(cost)
}

// Memory is a handle to enclave-private memory, only valid inside
// Enter.
type Memory struct {
	e *Enclave
}

// Put stores a value in enclave memory.
func (m Memory) Put(key string, v any) {
	m.e.mu.Lock()
	m.e.mem[key] = v
	m.e.mu.Unlock()
}

// Get retrieves a value from enclave memory.
func (m Memory) Get(key string) any {
	m.e.mu.Lock()
	defer m.e.mu.Unlock()
	return m.e.mem[key]
}

// Delete removes a value from enclave memory.
func (m Memory) Delete(key string) {
	m.e.mu.Lock()
	delete(m.e.mem, key)
	m.e.mu.Unlock()
}

// Quote produces an attestation over the enclave's measurement and the
// given report data. Only code inside the enclave can request a quote,
// mirroring SGX's EREPORT flow.
func (m Memory) Quote(reportData []byte) (*Quote, error) {
	if len(reportData) != ReportDataLen {
		return nil, fmt.Errorf("enclave: report data must be %d bytes, got %d", ReportDataLen, len(reportData))
	}
	e := m.e
	body := quoteBody(e.measurement, reportData)
	return &Quote{
		Measurement: e.measurement,
		ReportData:  append([]byte(nil), reportData...),
		PlatformKey: append(ed25519.PublicKey(nil), e.platform.quotePub...),
		Endorsement: append([]byte(nil), e.platform.endorsement...),
		Signature:   ed25519.Sign(e.platform.quotePriv, body),
	}, nil
}

// Quote is a simulated SGX quote.
type Quote struct {
	Measurement Measurement
	ReportData  []byte
	PlatformKey ed25519.PublicKey
	Endorsement []byte // authority signature over PlatformKey
	Signature   []byte // platform signature over quoteBody
}

func quoteBody(m Measurement, reportData []byte) []byte {
	b := make([]byte, 0, MeasurementLen+ReportDataLen)
	b = append(b, m[:]...)
	b = append(b, reportData...)
	return b
}

// Marshal encodes the quote for transport in an SGXAttestation
// handshake message.
func (q *Quote) Marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddBytes(q.Measurement[:])
	b.AddBytes(q.ReportData)
	b.AddUint8Prefixed(func(b *wire.Builder) { b.AddBytes(q.PlatformKey) })
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(q.Endorsement) })
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(q.Signature) })
	return b.Bytes()
}

// ParseQuote decodes a quote.
func ParseQuote(data []byte) (*Quote, error) {
	p := wire.NewParser(data)
	var q Quote
	var pk, endorsement, sig []byte
	if !p.CopyBytes(q.Measurement[:]) {
		return nil, errors.New("enclave: malformed quote")
	}
	q.ReportData = make([]byte, ReportDataLen)
	if !p.CopyBytes(q.ReportData) ||
		!p.ReadUint8Prefixed(&pk) ||
		!p.ReadUint16Prefixed(&endorsement) ||
		!p.ReadUint16Prefixed(&sig) {
		return nil, errors.New("enclave: malformed quote")
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	q.PlatformKey = append(ed25519.PublicKey(nil), pk...)
	q.Endorsement = append([]byte(nil), endorsement...)
	q.Signature = append([]byte(nil), sig...)
	return &q, nil
}

// Verify checks the quote's signature chain against the authority key
// and that it binds the expected report data.
func (q *Quote) Verify(authority ed25519.PublicKey, reportData []byte) error {
	if len(q.PlatformKey) != ed25519.PublicKeySize {
		return errors.New("enclave: bad platform key length")
	}
	if !ed25519.Verify(authority, q.PlatformKey, q.Endorsement) {
		return errors.New("enclave: platform key not endorsed by authority")
	}
	if !ed25519.Verify(q.PlatformKey, quoteBody(q.Measurement, q.ReportData), q.Signature) {
		return errors.New("enclave: invalid quote signature")
	}
	if len(reportData) != ReportDataLen || !constantTimeEqual(q.ReportData, reportData) {
		return errors.New("enclave: report data mismatch (stale or replayed quote)")
	}
	return nil
}

func constantTimeEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// Verifier is an attestation policy: an authority trust anchor plus a
// set of acceptable code measurements. It plugs into
// tls12.Config.VerifyQuote.
type Verifier struct {
	Authority ed25519.PublicKey
	// Allowed lists acceptable measurements; empty means any
	// measurement from a genuine platform (identity is then checked by
	// certificate only, P3A without P3B).
	Allowed []Measurement
}

// VerifyQuote implements the tls12 attestation hook.
func (v *Verifier) VerifyQuote(quoteBytes, reportData []byte) error {
	q, err := ParseQuote(quoteBytes)
	if err != nil {
		return err
	}
	if err := q.Verify(v.Authority, reportData); err != nil {
		return err
	}
	if len(v.Allowed) == 0 {
		return nil
	}
	for _, m := range v.Allowed {
		if m == q.Measurement {
			return nil
		}
	}
	return fmt.Errorf("enclave: measurement %s not in policy", q.Measurement)
}
