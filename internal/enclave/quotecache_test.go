package enclave_test

import (
	"testing"
	"time"

	"repro/internal/enclave"
	"repro/internal/hsfast"
)

// The hsfast cache must satisfy the enclave verification hook.
var _ enclave.QuoteCache = (*hsfast.VerifyCache)(nil)

// countingCache wraps a QuoteCache and counts how many times verify
// actually ran (i.e. cache misses).
type countingCache struct {
	inner enclave.QuoteCache
	runs  int
}

func (c *countingCache) Do(key [32]byte, verify func() error) (bool, error) {
	return c.inner.Do(key, func() error {
		c.runs++
		return verify()
	})
}

func quoteFixture(t *testing.T) (*enclave.Authority, []byte, []byte) {
	t.Helper()
	a, err := enclave.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	e := p.CreateEnclave(enclave.CodeImage{Name: "proxy", Version: "1.0"})
	report := make([]byte, enclave.ReportDataLen)
	copy(report, "handshake transcript hash")
	var q *enclave.Quote
	e.Enter(func(mem enclave.Memory) { q, err = mem.Quote(report) })
	if err != nil {
		t.Fatal(err)
	}
	return a, q.Marshal(), report
}

// TestQuoteCacheSkipsEndorsementOnly pins the cache's safety contract:
// repeat quotes from one platform verify the endorsement once, but the
// per-handshake freshness binding is still checked every time — a
// cached endorsement never lets a replayed quote through.
func TestQuoteCacheSkipsEndorsementOnly(t *testing.T) {
	a, quote, report := quoteFixture(t)
	cache := &countingCache{inner: hsfast.NewVerifyCache(16, time.Hour, nil)}
	v := &enclave.Verifier{Authority: a.PublicKey(), Cache: cache}

	for i := 0; i < 3; i++ {
		if err := v.VerifyQuote(quote, report); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	if cache.runs != 1 {
		t.Fatalf("endorsement verified %d times, want 1", cache.runs)
	}

	// Freshness: same endorsed platform, wrong report data. The cache
	// hit on the endorsement must not mask the replay.
	stale := make([]byte, enclave.ReportDataLen)
	copy(stale, "a different handshake")
	if err := v.VerifyQuote(quote, stale); err == nil {
		t.Fatal("replayed quote accepted on a cached endorsement")
	}

	// A forged endorsement hashes to a different key: it must be
	// rejected, and must not disturb the genuine platform's entry.
	q, err := enclave.ParseQuote(quote)
	if err != nil {
		t.Fatal(err)
	}
	q.Endorsement[0] ^= 1
	if err := v.VerifyQuote(q.Marshal(), report); err == nil {
		t.Fatal("forged endorsement accepted")
	}
	if err := v.VerifyQuote(quote, report); err != nil {
		t.Fatalf("genuine quote rejected after forged attempt: %v", err)
	}
}

// TestQuoteCacheMeasurementPolicyUncached: the measurement policy is
// applied on every verification even when the endorsement is cached,
// so two verifiers sharing one cache keep their own policies.
func TestQuoteCacheMeasurementPolicyUncached(t *testing.T) {
	a, quote, report := quoteFixture(t)
	shared := hsfast.NewVerifyCache(16, time.Hour, nil)

	open := &enclave.Verifier{Authority: a.PublicKey(), Cache: shared}
	if err := open.VerifyQuote(quote, report); err != nil {
		t.Fatalf("open policy: %v", err)
	}
	strict := &enclave.Verifier{
		Authority: a.PublicKey(),
		Allowed:   []enclave.Measurement{{0xFF}},
		Cache:     shared,
	}
	if err := strict.VerifyQuote(quote, report); err == nil {
		t.Fatal("strict policy accepted a disallowed measurement via the shared cache")
	}
}
