package enclave

import (
	"bytes"
	"testing"
	"time"
)

func mustAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustPlatform(t *testing.T, a *Authority) *Platform {
	t.Helper()
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasurementDeterministic(t *testing.T) {
	img := CodeImage{Name: "proxy", Version: "1.0", Config: "strict"}
	if img.Measurement() != img.Measurement() {
		t.Fatal("measurement is not deterministic")
	}
	variants := []CodeImage{
		{Name: "proxy2", Version: "1.0", Config: "strict"},
		{Name: "proxy", Version: "1.1", Config: "strict"},
		{Name: "proxy", Version: "1.0", Config: "lax"},
		// Field-boundary confusion must change the measurement.
		{Name: "proxy1", Version: ".0", Config: "strict"},
	}
	for _, v := range variants {
		if v.Measurement() == img.Measurement() {
			t.Fatalf("distinct image %+v measured identically", v)
		}
	}
}

func TestQuoteRoundTripAndVerify(t *testing.T) {
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	img := CodeImage{Name: "proxy", Version: "1.0"}
	e := p.CreateEnclave(img)

	report := make([]byte, ReportDataLen)
	copy(report, []byte("handshake transcript hash"))
	var q *Quote
	var err error
	e.Enter(func(mem Memory) { q, err = mem.Quote(report) })
	if err != nil {
		t.Fatal(err)
	}

	parsed, err := ParseQuote(q.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Measurement != img.Measurement() {
		t.Fatal("measurement corrupted in transit")
	}
	if err := parsed.Verify(a.PublicKey(), report); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestQuoteRejections(t *testing.T) {
	a := mustAuthority(t)
	other := mustAuthority(t)
	p := mustPlatform(t, a)
	e := p.CreateEnclave(CodeImage{Name: "proxy", Version: "1.0"})

	report := make([]byte, ReportDataLen)
	var q *Quote
	e.Enter(func(mem Memory) { q, _ = mem.Quote(report) })

	// Wrong authority: the platform key is not endorsed.
	if err := q.Verify(other.PublicKey(), report); err == nil {
		t.Fatal("quote verified against the wrong authority")
	}
	// Wrong report data: stale/replayed quote.
	badReport := make([]byte, ReportDataLen)
	badReport[0] = 1
	if err := q.Verify(a.PublicKey(), badReport); err == nil {
		t.Fatal("quote verified against different report data")
	}
	// Tampered measurement: the platform signature breaks.
	tampered := *q
	tampered.Measurement[0] ^= 0xFF
	if err := tampered.Verify(a.PublicKey(), report); err == nil {
		t.Fatal("tampered measurement verified")
	}
	// Tampered signature.
	tampered = *q
	tampered.Signature = append([]byte(nil), q.Signature...)
	tampered.Signature[0] ^= 1
	if err := tampered.Verify(a.PublicKey(), report); err == nil {
		t.Fatal("tampered signature verified")
	}
	// Forged endorsement from a rogue "platform".
	rogue := mustPlatform(t, other)
	forged := *q
	forged.PlatformKey = rogue.quotePub
	forged.Endorsement = rogue.endorsement
	if err := forged.Verify(a.PublicKey(), report); err == nil {
		t.Fatal("quote with foreign platform key verified")
	}
}

func TestQuoteWrongReportLength(t *testing.T) {
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	e := p.CreateEnclave(CodeImage{Name: "x"})
	var err error
	e.Enter(func(mem Memory) { _, err = mem.Quote([]byte("short")) })
	if err == nil {
		t.Fatal("short report data accepted")
	}
}

func TestVerifierPolicy(t *testing.T) {
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	good := CodeImage{Name: "proxy", Version: "1.0"}
	bad := CodeImage{Name: "proxy", Version: "0.9-vulnerable"}
	report := make([]byte, ReportDataLen)

	quoteFor := func(img CodeImage) []byte {
		e := p.CreateEnclave(img)
		var q *Quote
		e.Enter(func(mem Memory) { q, _ = mem.Quote(report) })
		return q.Marshal()
	}

	v := &Verifier{Authority: a.PublicKey(), Allowed: []Measurement{good.Measurement()}}
	if err := v.VerifyQuote(quoteFor(good), report); err != nil {
		t.Fatalf("allowed measurement rejected: %v", err)
	}
	if err := v.VerifyQuote(quoteFor(bad), report); err == nil {
		t.Fatal("disallowed measurement accepted")
	}
	// Open policy: any genuine enclave.
	open := &Verifier{Authority: a.PublicKey()}
	if err := open.VerifyQuote(quoteFor(bad), report); err != nil {
		t.Fatalf("open policy rejected a genuine quote: %v", err)
	}
}

func TestEnclaveMemoryIsolation(t *testing.T) {
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	e := p.CreateEnclave(CodeImage{Name: "x"})
	e.Enter(func(mem Memory) { mem.Put("key", []byte("secret")) })

	var got []byte
	e.Enter(func(mem Memory) { got, _ = mem.Get("key").([]byte) })
	if !bytes.Equal(got, []byte("secret")) {
		t.Fatal("enclave memory did not retain the value")
	}
	e.Enter(func(mem Memory) { mem.Delete("key") })
	e.Enter(func(mem Memory) {
		if mem.Get("key") != nil {
			t.Error("deleted key still present")
		}
	})
}

func TestTransitionsCounted(t *testing.T) {
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	e := p.CreateEnclave(CodeImage{Name: "x"})
	before := e.Transitions()
	for i := 0; i < 5; i++ {
		e.Enter(func(Memory) {})
	}
	if got := e.Transitions() - before; got != 10 {
		t.Fatalf("5 Enters = %d transitions, want 10 (entry+exit each)", got)
	}
}

func TestBoundaryCostApplied(t *testing.T) {
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	e := p.CreateEnclave(CodeImage{Name: "x"})

	const rounds = 50
	start := time.Now()
	for i := 0; i < rounds; i++ {
		e.Enter(func(Memory) {})
	}
	free := time.Since(start)

	p.SetBoundaryCost(100 * time.Microsecond)
	start = time.Now()
	for i := 0; i < rounds; i++ {
		e.Enter(func(Memory) {})
	}
	costly := time.Since(start)

	// 50 rounds × 2 crossings × 100µs = 10ms minimum extra.
	if costly-free < 5*time.Millisecond {
		t.Fatalf("boundary cost not applied: free=%v costly=%v", free, costly)
	}
}

func TestVaults(t *testing.T) {
	host := NewHostVault()
	host.StoreSecret("k", []byte("sensitive"))
	var seen []byte
	host.UseSecret("k", func(s []byte) { seen = append([]byte(nil), s...) })
	if !bytes.Equal(seen, []byte("sensitive")) {
		t.Fatal("host vault did not return the secret")
	}
	if dump := host.DumpHostMemory(); !bytes.Equal(dump["k"], []byte("sensitive")) {
		t.Fatal("host vault dump must expose secrets")
	}

	a := mustAuthority(t)
	p := mustPlatform(t, a)
	ev := NewEnclaveVault(p.CreateEnclave(CodeImage{Name: "v"}))
	ev.StoreSecret("k", []byte("sensitive"))
	seen = nil
	ev.UseSecret("k", func(s []byte) { seen = append([]byte(nil), s...) })
	if !bytes.Equal(seen, []byte("sensitive")) {
		t.Fatal("enclave vault did not return the secret inside the enclave")
	}
	if dump := ev.DumpHostMemory(); len(dump) != 0 {
		t.Fatal("enclave vault dump must be empty")
	}
}

func TestParseQuoteMalformed(t *testing.T) {
	if _, err := ParseQuote(nil); err == nil {
		t.Fatal("nil quote parsed")
	}
	if _, err := ParseQuote(bytes.Repeat([]byte{1}, 40)); err == nil {
		t.Fatal("truncated quote parsed")
	}
	// Trailing garbage after a valid quote must be rejected.
	a := mustAuthority(t)
	p := mustPlatform(t, a)
	e := p.CreateEnclave(CodeImage{Name: "x"})
	var q *Quote
	e.Enter(func(mem Memory) { q, _ = mem.Quote(make([]byte, ReportDataLen)) })
	if _, err := ParseQuote(append(q.Marshal(), 0xAA)); err == nil {
		t.Fatal("quote with trailing bytes parsed")
	}
}
