package enclave

import (
	"strings"
	"sync"

	"repro/internal/secmem"
)

// Vault stores a component's secret key material. Two implementations
// model the paper's two deployment modes: a HostVault keeps secrets in
// ordinary (MIP-readable) memory, an EnclaveVault keeps them in enclave
// memory. DumpHostMemory simulates the adversary capability from the
// threat model (§3.1): "On the middlebox infrastructure, the adversary
// has complete access to all hardware (e.g., it can read and manipulate
// memory)."
type Vault interface {
	// StoreSecret records a named secret.
	StoreSecret(name string, secret []byte)
	// UseSecret invokes f with the named secret in its protection
	// domain (inside the enclave for an EnclaveVault). f must not leak
	// the slice.
	UseSecret(name string, f func(secret []byte))
	// DumpHostMemory returns every byte of this component's secrets
	// that is resident in host-visible memory.
	DumpHostMemory() map[string][]byte
	// Wipe zeroizes and discards every stored secret. Owners wipe the
	// vault when the component (or test scenario) it serves is torn
	// down.
	Wipe()
	// WipePrefix zeroizes and discards the secrets whose names start
	// with prefix. Session hosts use it to retire one session's
	// namespaced secrets ("session/<id>/...") from a vault shared by
	// many concurrent sessions.
	WipePrefix(prefix string)
}

// HostVault stores secrets in host memory — the non-SGX deployment.
type HostVault struct {
	mu      sync.Mutex
	secrets map[string][]byte
}

// NewHostVault returns an empty host-memory vault.
func NewHostVault() *HostVault {
	return &HostVault{secrets: make(map[string][]byte)}
}

// StoreSecret implements Vault.
func (v *HostVault) StoreSecret(name string, secret []byte) {
	v.mu.Lock()
	v.secrets[name] = append([]byte(nil), secret...)
	v.mu.Unlock()
}

// UseSecret implements Vault.
func (v *HostVault) UseSecret(name string, f func([]byte)) {
	v.mu.Lock()
	s := v.secrets[name]
	v.mu.Unlock()
	f(s)
}

// DumpHostMemory implements Vault: everything is host-visible.
func (v *HostVault) DumpHostMemory() map[string][]byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string][]byte, len(v.secrets))
	for k, s := range v.secrets {
		out[k] = append([]byte(nil), s...)
	}
	return out
}

// Wipe implements Vault: every entry is zeroized before the map is
// dropped, so the key bytes do not linger in freed host memory.
func (v *HostVault) Wipe() {
	v.mu.Lock()
	for _, s := range v.secrets {
		secmem.Wipe(s)
	}
	v.secrets = make(map[string][]byte)
	v.mu.Unlock()
}

// WipePrefix implements Vault.
func (v *HostVault) WipePrefix(prefix string) {
	v.mu.Lock()
	for name, s := range v.secrets {
		if strings.HasPrefix(name, prefix) {
			secmem.Wipe(s)
			delete(v.secrets, name)
		}
	}
	v.mu.Unlock()
}

// EnclaveVault stores secrets in enclave memory; the host retains only
// the enclave handle and the secret names (names are not secret — they
// are the vault's addressing scheme, needed to enumerate entries for
// Wipe because enclave memory is not iterable from the host).
type EnclaveVault struct {
	enclave *Enclave

	mu    sync.Mutex
	names map[string]bool
}

// NewEnclaveVault returns a vault backed by the given enclave.
func NewEnclaveVault(e *Enclave) *EnclaveVault {
	return &EnclaveVault{enclave: e, names: make(map[string]bool)}
}

// Enclave returns the backing enclave (for attestation plumbing).
func (v *EnclaveVault) Enclave() *Enclave { return v.enclave }

// StoreSecret implements Vault, paying one enclave transition.
func (v *EnclaveVault) StoreSecret(name string, secret []byte) {
	copied := append([]byte(nil), secret...)
	v.mu.Lock()
	v.names[name] = true
	v.mu.Unlock()
	v.enclave.Enter(func(mem Memory) {
		mem.Put("secret:"+name, copied)
	})
}

// UseSecret implements Vault; f runs inside the enclave.
func (v *EnclaveVault) UseSecret(name string, f func([]byte)) {
	v.enclave.Enter(func(mem Memory) {
		s, _ := mem.Get("secret:" + name).([]byte)
		f(s)
	})
}

// DumpHostMemory implements Vault: enclave memory is encrypted and
// integrity-protected by the CPU, so the host dump contains nothing.
func (v *EnclaveVault) DumpHostMemory() map[string][]byte {
	return map[string][]byte{}
}

// Wipe implements Vault: one enclave transition zeroizes and deletes
// every stored secret.
func (v *EnclaveVault) Wipe() {
	v.mu.Lock()
	names := v.names
	v.names = make(map[string]bool)
	v.mu.Unlock()
	if len(names) == 0 {
		return
	}
	v.enclave.Enter(func(mem Memory) {
		for name := range names {
			if s, ok := mem.Get("secret:" + name).([]byte); ok {
				secmem.Wipe(s)
			}
			mem.Delete("secret:" + name)
		}
	})
}

// WipePrefix implements Vault: the host-side name index selects the
// entries, one enclave transition retires them.
func (v *EnclaveVault) WipePrefix(prefix string) {
	var names []string
	v.mu.Lock()
	for name := range v.names {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
			delete(v.names, name)
		}
	}
	v.mu.Unlock()
	if len(names) == 0 {
		return
	}
	v.enclave.Enter(func(mem Memory) {
		for _, name := range names {
			if s, ok := mem.Get("secret:" + name).([]byte); ok {
				secmem.Wipe(s)
			}
			mem.Delete("secret:" + name)
		}
	})
}
