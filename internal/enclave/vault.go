package enclave

import "sync"

// Vault stores a component's secret key material. Two implementations
// model the paper's two deployment modes: a HostVault keeps secrets in
// ordinary (MIP-readable) memory, an EnclaveVault keeps them in enclave
// memory. DumpHostMemory simulates the adversary capability from the
// threat model (§3.1): "On the middlebox infrastructure, the adversary
// has complete access to all hardware (e.g., it can read and manipulate
// memory)."
type Vault interface {
	// StoreSecret records a named secret.
	StoreSecret(name string, secret []byte)
	// UseSecret invokes f with the named secret in its protection
	// domain (inside the enclave for an EnclaveVault). f must not leak
	// the slice.
	UseSecret(name string, f func(secret []byte))
	// DumpHostMemory returns every byte of this component's secrets
	// that is resident in host-visible memory.
	DumpHostMemory() map[string][]byte
}

// HostVault stores secrets in host memory — the non-SGX deployment.
type HostVault struct {
	mu      sync.Mutex
	secrets map[string][]byte
}

// NewHostVault returns an empty host-memory vault.
func NewHostVault() *HostVault {
	return &HostVault{secrets: make(map[string][]byte)}
}

// StoreSecret implements Vault.
func (v *HostVault) StoreSecret(name string, secret []byte) {
	v.mu.Lock()
	v.secrets[name] = append([]byte(nil), secret...)
	v.mu.Unlock()
}

// UseSecret implements Vault.
func (v *HostVault) UseSecret(name string, f func([]byte)) {
	v.mu.Lock()
	s := v.secrets[name]
	v.mu.Unlock()
	f(s)
}

// DumpHostMemory implements Vault: everything is host-visible.
func (v *HostVault) DumpHostMemory() map[string][]byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string][]byte, len(v.secrets))
	for k, s := range v.secrets {
		out[k] = append([]byte(nil), s...)
	}
	return out
}

// EnclaveVault stores secrets in enclave memory; the host retains only
// the enclave handle.
type EnclaveVault struct {
	enclave *Enclave
}

// NewEnclaveVault returns a vault backed by the given enclave.
func NewEnclaveVault(e *Enclave) *EnclaveVault {
	return &EnclaveVault{enclave: e}
}

// Enclave returns the backing enclave (for attestation plumbing).
func (v *EnclaveVault) Enclave() *Enclave { return v.enclave }

// StoreSecret implements Vault, paying one enclave transition.
func (v *EnclaveVault) StoreSecret(name string, secret []byte) {
	copied := append([]byte(nil), secret...)
	v.enclave.Enter(func(mem Memory) {
		mem.Put("secret:"+name, copied)
	})
}

// UseSecret implements Vault; f runs inside the enclave.
func (v *EnclaveVault) UseSecret(name string, f func([]byte)) {
	v.enclave.Enter(func(mem Memory) {
		s, _ := mem.Get("secret:" + name).([]byte)
		f(s)
	})
}

// DumpHostMemory implements Vault: enclave memory is encrypted and
// integrity-protected by the CPU, so the host dump contains nothing.
func (v *EnclaveVault) DumpHostMemory() map[string][]byte {
	return map[string][]byte{}
}
