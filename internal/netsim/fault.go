package netsim

import (
	//lint:ignore cryptorand deterministic fault schedules need a seeded, reproducible source; nothing here protects secrets
	"math/rand"
	"net"
	"sync"
)

// This file is the deterministic fault-injection substrate. A
// FaultSpec wraps any link with a seeded, reproducible fault so every
// failure path of the session chain — a hop that stalls mid-record, a
// reset, silent loss, bit corruption, reordering, a one-way partition —
// can be triggered on demand and replayed byte-for-byte from the seed.
// All transformations are pure functions of (spec, byte offsets in the
// faulted direction): nothing depends on wall-clock time or scheduling,
// so the same spec over the same traffic produces the same wire bytes,
// the same error class at each layer, and the same counters.

// FaultKind enumerates the fault classes a FaultSpec can inject.
type FaultKind int

// Fault kinds.
const (
	FaultNone FaultKind = iota
	// FaultDrop silently discards everything after Offset bytes; the
	// writer cannot tell. Models silent in-path loss (a dead NAT
	// binding, a blackholing firewall).
	FaultDrop
	// FaultStall delivers Offset bytes and then wedges: further writes
	// in the faulted direction block until the connection is closed,
	// like a peer advertising a zero receive window mid-record.
	FaultStall
	// FaultReset delivers Offset bytes and then resets the connection
	// in both directions (TCP RST): in-flight data is discarded and
	// both ends see ErrReset.
	FaultReset
	// FaultCorrupt delivers everything but XORs a seeded mask into
	// bytes at PRNG-chosen positions from Offset onward, at most Stride
	// bytes apart. Models in-path bit corruption a transport checksum
	// missed.
	FaultCorrupt
	// FaultReorder swaps the two write chunks straddling Offset: the
	// first chunk past the boundary is held back and delivered after
	// the next one, modeling reordering at a resegmenter boundary. If
	// no second chunk ever follows, the held chunk is lost (the fault
	// degrades to truncation).
	FaultReorder
	// FaultPartition is a one-way blackhole: like FaultDrop but
	// inherently directional — combine with DirAToB or DirBToA to cut
	// exactly one direction from Offset (usually 0) onward.
	FaultPartition
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultReset:
		return "reset"
	case FaultCorrupt:
		return "corrupt"
	case FaultReorder:
		return "reorder"
	case FaultPartition:
		return "partition"
	}
	return "fault(?)"
}

// FaultDir selects which direction(s) of a wrapped link a fault
// applies to. End A is the first conn of a wrapped pair — the dialer,
// for connections made through a Network.
type FaultDir int

// Fault directions.
const (
	DirBoth FaultDir = iota
	DirAToB
	DirBToA
)

// FaultSpec describes one deterministic fault.
type FaultSpec struct {
	// Kind selects the fault class; FaultNone means a clean link.
	Kind FaultKind
	// Offset is how many bytes pass unharmed in each faulted direction
	// before the fault engages. Each direction counts independently.
	Offset int64
	// Seed drives the PRNG behind FaultCorrupt's positions and masks.
	Seed int64
	// Dir restricts the fault to one direction of the link.
	Dir FaultDir
	// Stride bounds the gap between corrupted bytes (FaultCorrupt
	// only); 0 means 512.
	Stride int
}

// faultState tracks one faulted direction's progress. It lives on the
// writing end of that direction, so faults transform bytes "in flight"
// without the writer-visible API changing.
type faultState struct {
	spec FaultSpec

	mu          sync.Mutex
	count       int64 // bytes seen so far in this direction
	rng         *rand.Rand
	nextCorrupt int64  // absolute stream position of the next corrupted byte
	held        []byte // FaultReorder: chunk held back for the swap
	swapped     bool   // FaultReorder: swap already performed
	tripped     bool   // FaultReset: reset already delivered
}

// faultConn wraps one end of a link, applying a faultState to its
// writes. Reads, deadlines, and addressing delegate to the inner conn.
type faultConn struct {
	net.Conn
	st *faultState // nil: this direction is clean

	closeOnce sync.Once
	closedCh  chan struct{}
}

// Close unblocks any stalled writer, then closes the inner conn.
func (f *faultConn) Close() error {
	f.closeOnce.Do(func() { close(f.closedCh) })
	return f.Conn.Close()
}

// Write applies the direction's fault, if any.
func (f *faultConn) Write(p []byte) (int, error) {
	if f.st == nil || len(p) == 0 {
		return f.Conn.Write(p)
	}
	return f.st.write(f, p)
}

// cleanPrefix returns how many of n bytes starting at stream position
// start lie before the fault offset.
func cleanPrefix(start, off int64, n int) int {
	if start >= off {
		return 0
	}
	if left := off - start; left < int64(n) {
		return int(left)
	}
	return n
}

func (st *faultState) write(f *faultConn, p []byte) (int, error) {
	st.mu.Lock()
	start := st.count
	off := st.spec.Offset
	switch st.spec.Kind {
	case FaultDrop, FaultPartition:
		st.count += int64(len(p))
		keep := cleanPrefix(start, off, len(p))
		st.mu.Unlock()
		if keep > 0 {
			if _, err := f.Conn.Write(p[:keep]); err != nil {
				return 0, err
			}
		}
		// The remainder vanishes in flight; the writer cannot tell.
		return len(p), nil

	case FaultStall:
		keep := cleanPrefix(start, off, len(p))
		st.count += int64(keep)
		st.mu.Unlock()
		if keep > 0 {
			if _, err := f.Conn.Write(p[:keep]); err != nil {
				return 0, err
			}
			if keep == len(p) {
				return len(p), nil
			}
		}
		// Wedged mid-record: block like a zero-window peer until the
		// connection is torn down.
		<-f.closedCh
		return keep, ErrClosedPipe

	case FaultReset:
		if st.tripped {
			st.mu.Unlock()
			return 0, ErrReset
		}
		keep := cleanPrefix(start, off, len(p))
		st.count += int64(keep)
		if keep == len(p) {
			st.mu.Unlock()
			return f.Conn.Write(p)
		}
		st.tripped = true
		st.mu.Unlock()
		if keep > 0 {
			f.Conn.Write(p[:keep]) //nolint:errcheck // reset follows regardless
		}
		if c, ok := f.Conn.(*Conn); ok {
			c.Reset()
		} else {
			f.Conn.Close()
		}
		return keep, ErrReset

	case FaultCorrupt:
		if st.rng == nil {
			st.rng = rand.New(rand.NewSource(st.spec.Seed))
			st.nextCorrupt = off
		}
		stride := st.spec.Stride
		if stride <= 0 {
			stride = 512
		}
		end := start + int64(len(p))
		st.count = end
		var buf []byte
		for st.nextCorrupt < end {
			if buf == nil {
				// Corrupt a copy: the caller's buffer must stay intact.
				buf = append([]byte(nil), p...)
			}
			buf[st.nextCorrupt-start] ^= byte(1 + st.rng.Intn(255))
			st.nextCorrupt += 1 + int64(st.rng.Intn(stride))
		}
		st.mu.Unlock()
		if buf != nil {
			p = buf
		}
		return f.Conn.Write(p)

	case FaultReorder:
		if st.swapped {
			st.mu.Unlock()
			return f.Conn.Write(p)
		}
		end := start + int64(len(p))
		st.count = end
		if end <= off {
			st.mu.Unlock()
			return f.Conn.Write(p)
		}
		if st.held == nil {
			// First chunk past the boundary: hold it back.
			st.held = append([]byte(nil), p...)
			st.mu.Unlock()
			return len(p), nil
		}
		// Second chunk: deliver it first, then the held one.
		held := st.held
		st.held = nil
		st.swapped = true
		st.mu.Unlock()
		if _, err := f.Conn.Write(p); err != nil {
			return 0, err
		}
		if _, err := f.Conn.Write(held); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	st.mu.Unlock()
	return f.Conn.Write(p)
}

// WrapFaultPair applies spec to an established link: a's writes carry
// the A→B direction, b's writes the B→A direction. Each faulted
// direction gets independent state, so DirBoth faults both directions
// at the same per-direction offset.
func WrapFaultPair(a, b net.Conn, spec FaultSpec) (net.Conn, net.Conn) {
	fa := &faultConn{Conn: a, closedCh: make(chan struct{})}
	fb := &faultConn{Conn: b, closedCh: make(chan struct{})}
	if spec.Kind != FaultNone {
		if spec.Dir == DirBoth || spec.Dir == DirAToB {
			fa.st = &faultState{spec: spec}
		}
		if spec.Dir == DirBoth || spec.Dir == DirBToA {
			fb.st = &faultState{spec: spec}
		}
	}
	return fa, fb
}

// FaultLink is NewLink plus WrapFaultPair.
func FaultLink(cfg LinkConfig, spec FaultSpec) (net.Conn, net.Conn) {
	a, b := NewLink(cfg)
	return WrapFaultPair(a, b, spec)
}

// FaultPipe is Pipe plus WrapFaultPair.
func FaultPipe(spec FaultSpec) (net.Conn, net.Conn) {
	return FaultLink(LinkConfig{}, spec)
}
