package netsim_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// TestConcurrentSessionsThroughFaultyNetwork runs two complete mbTLS
// sessions at once through one shared Network — one over a clean path,
// one over a path whose client→middlebox link carries a seeded reset —
// and requires the clean session to stay fully functional while the
// faulty one fails. Run under -race (tier-1 does), this exercises the
// fault state machine, the mux, and the relay goroutines concurrently:
// a fault on one session must never bleed into another.
func TestConcurrentSessionsThroughFaultyNetwork(t *testing.T) {
	ca, err := certs.NewCA("netsim race root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name: "mb.example", Mode: core.ClientSide, Certificate: mbCert,
	})
	if err != nil {
		t.Fatal(err)
	}

	n := netsim.NewNetwork()
	n.SetFaultPolicy(func(from, to string) netsim.FaultSpec {
		if from == "client-bad" {
			// Mid-handshake reset on the dialer's (end A's) traffic.
			return netsim.FaultSpec{Kind: netsim.FaultReset, Offset: 300, Seed: 42, Dir: netsim.DirAToB}
		}
		return netsim.FaultSpec{}
	})

	srvLn, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	defer srvLn.Close()
	mbLn, err := n.Listen("mb")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()

	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  5 * time.Second,
	}
	go func() {
		for {
			c, err := srvLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				s, err := core.Accept(c, scfg)
				if err != nil {
					c.Close()
					return
				}
				defer s.Close()
				buf := make([]byte, 256)
				nr, err := s.Read(buf)
				if err != nil {
					return
				}
				s.Write(buf[:nr]) //nolint:errcheck
			}(c)
		}
	}()
	go func() {
		for {
			c, err := mbLn.Accept()
			if err != nil {
				return
			}
			up, err := n.Dial("mb", "server")
			if err != nil {
				c.Close()
				return
			}
			go mb.Handle(c, up) //nolint:errcheck
		}
	}()

	ccfg := func() *core.ClientConfig {
		return &core.ClientConfig{
			TLS:              &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
			HandshakeTimeout: 5 * time.Second,
		}
	}

	okDone := make(chan error, 1)
	badDone := make(chan error, 1)
	go func() {
		conn, err := n.Dial("client-ok", "mb")
		if err != nil {
			okDone <- err
			return
		}
		sess, err := core.Dial(conn, ccfg())
		if err != nil {
			okDone <- err
			return
		}
		defer sess.Close()
		msg := []byte("through the clean path")
		if _, err := sess.Write(msg); err != nil {
			okDone <- err
			return
		}
		sess.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		buf := make([]byte, len(msg))
		if _, err := readFull(sess, buf); err != nil {
			okDone <- err
			return
		}
		okDone <- nil
	}()
	go func() {
		conn, err := n.Dial("client-bad", "mb")
		if err != nil {
			badDone <- err
			return
		}
		sess, err := core.Dial(conn, ccfg())
		if err == nil {
			sess.Close()
		}
		badDone <- err
	}()

	select {
	case err := <-okDone:
		if err != nil {
			t.Errorf("clean-path session failed beside a faulty one: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("clean-path session wedged")
	}
	select {
	case err := <-badDone:
		if err == nil {
			t.Error("reset-at-300 path produced a working session")
		} else if cls := core.ClassifyError(err); !cls.Transient() && cls != core.ClassCleanClose {
			t.Errorf("faulty path surfaced class %s (%v), want a transport-failure class", cls, err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("faulty-path session wedged")
	}
}

func readFull(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
