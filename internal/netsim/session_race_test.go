package netsim_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sessionhost"
	"repro/internal/tls12"
)

// raceSessions is how many clean concurrent sessions the test drives
// through one shared middlebox host (the acceptance floor is 64).
const raceSessions = 64

// raceShards fixes the hosts' shard count, so the test exercises
// cross-shard admission, work stealing, and the merged metrics path
// even on machines where GOMAXPROCS would give a single shard.
const raceShards = 8

// TestConcurrentSessionsThroughFaultyNetwork runs a fleet of complete
// mbTLS sessions at once through one shared Network and one shared
// session-host pair — 64 over clean paths, one over a path whose
// client→middlebox link carries a seeded reset — and requires every
// clean session to stay fully functional while the faulty one fails.
// Run under -race (tier-1 does), this exercises the fault state
// machine, the mux, the relay goroutines, the host registry, and the
// shared bounded buffer pool concurrently: a fault on one session must
// never bleed into another, and sessions sharing a host must not share
// fate.
func TestConcurrentSessionsThroughFaultyNetwork(t *testing.T) {
	ca, err := certs.NewCA("netsim race root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mbCert, err := ca.Issue("mb.example", []string{"mb.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	n := netsim.NewNetwork()
	n.SetFaultPolicy(func(from, to string) netsim.FaultSpec {
		if from == "client-bad" {
			// Mid-handshake reset on the dialer's (end A's) traffic.
			return netsim.FaultSpec{Kind: netsim.FaultReset, Offset: 300, Seed: 42, Dir: netsim.DirAToB}
		}
		return netsim.FaultSpec{}
	})

	srvLn, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	defer srvLn.Close()
	mbLn, err := n.Listen("mb")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()

	scfg := &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: ca.Pool()},
		HandshakeTimeout:  30 * time.Second,
	}
	srvHost, err := sessionhost.New(sessionhost.Config{
		Name:        "server",
		MaxSessions: 2 * raceSessions,
		Shards:      raceShards,
		Handler: sessionhost.NewServerHandler(scfg, func(s *core.Session) error {
			buf := make([]byte, 256)
			nr, err := s.Read(buf)
			if err != nil {
				return err
			}
			_, err = s.Write(buf[:nr])
			return err
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	go srvHost.Serve(srvLn) //nolint:errcheck
	defer srvHost.Close()   //nolint:errcheck

	pool := tls12.NewRecordBufPool(2 * raceSessions)
	mb, err := core.NewMiddlebox(core.MiddleboxConfig{
		Name: "mb.example", Mode: core.ClientSide, Certificate: mbCert,
		BufPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := sessionhost.New(sessionhost.Config{
		Name:        "mb",
		MaxSessions: 2 * raceSessions,
		Shards:      raceShards,
		BufPool:     pool,
		Handler: sessionhost.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return n.Dial("mb", "server")
		}),
		MiddleboxStats: mb.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	go mbHost.Serve(mbLn) //nolint:errcheck
	defer mbHost.Close()  //nolint:errcheck

	ccfg := func() *core.ClientConfig {
		return &core.ClientConfig{
			TLS:              &tls12.Config{RootCAs: ca.Pool(), ServerName: "origin.example"},
			HandshakeTimeout: 30 * time.Second,
		}
	}

	var wg sync.WaitGroup
	okErrs := make(chan error, raceSessions)
	for i := 0; i < raceSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("client-ok-%d", i)
			conn, err := n.Dial(name, "mb")
			if err != nil {
				okErrs <- fmt.Errorf("%s dial: %w", name, err)
				return
			}
			sess, err := core.Dial(conn, ccfg())
			if err != nil {
				okErrs <- fmt.Errorf("%s handshake: %w", name, err)
				return
			}
			defer sess.Close()
			msg := []byte(fmt.Sprintf("through clean path %d", i))
			if _, err := sess.Write(msg); err != nil {
				okErrs <- fmt.Errorf("%s write: %w", name, err)
				return
			}
			sess.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
			buf := make([]byte, len(msg))
			if _, err := readFull(sess, buf); err != nil {
				okErrs <- fmt.Errorf("%s read: %w", name, err)
				return
			}
			if string(buf) != string(msg) {
				okErrs <- fmt.Errorf("%s echo = %q, want %q", name, buf, msg)
			}
		}(i)
	}

	badDone := make(chan error, 1)
	go func() {
		conn, err := n.Dial("client-bad", "mb")
		if err != nil {
			badDone <- err
			return
		}
		sess, err := core.Dial(conn, ccfg())
		if err == nil {
			sess.Close()
		}
		badDone <- err
	}()

	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	select {
	case <-fleetDone:
	case <-time.After(60 * time.Second):
		t.Fatal("clean-path fleet wedged")
	}
	close(okErrs)
	for err := range okErrs {
		t.Errorf("clean-path session failed beside a faulty one: %v", err)
	}

	select {
	case err := <-badDone:
		if err == nil {
			t.Error("reset-at-300 path produced a working session")
		} else if cls := core.ClassifyError(err); !cls.Transient() && cls != core.ClassCleanClose {
			t.Errorf("faulty path surfaced class %s (%v), want a transport-failure class", cls, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("faulty-path session wedged")
	}

	m := mbHost.Metrics()
	if m.Accepted < raceSessions+1 {
		t.Errorf("middlebox host admitted %d sessions, want >= %d", m.Accepted, raceSessions+1)
	}
	if len(m.PerShard) != raceShards {
		t.Fatalf("metrics carry %d shards, want %d", len(m.PerShard), raceShards)
	}
	var perShardSum uint64
	busy := 0
	for _, sm := range m.PerShard {
		perShardSum += sm.Accepted
		if sm.Accepted > 0 {
			busy++
		}
	}
	if perShardSum != m.Accepted {
		t.Errorf("per-shard accepted sums to %d, merged total is %d", perShardSum, m.Accepted)
	}
	if busy != raceShards {
		t.Errorf("round-robin admission used %d/%d shards", busy, raceShards)
	}
	if st := pool.Stats(); st.Gets == 0 {
		t.Error("host-scoped buffer pool was never used by the relay")
	}
}

func readFull(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
