package netsim

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestNetworkListenDial(t *testing.T) {
	n := NewNetwork()
	ln, err := n.Listen("server.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	conn, err := n.Dial("client", "server.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.RemoteAddr().String() != "server.example:443" {
		t.Fatalf("remote addr = %v", conn.RemoteAddr())
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNetworkConnectionRefused(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("client", "nobody.example:1"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
}

func TestNetworkAddressInUse(t *testing.T) {
	n := NewNetwork()
	ln, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); err == nil {
		t.Fatal("double listen succeeded")
	}
	ln.Close()
	// Address is reusable after close.
	ln2, err := n.Listen("a:1")
	if err != nil {
		t.Fatalf("listen after close: %v", err)
	}
	ln2.Close()
}

func TestNetworkCloseUnblocksAccept(t *testing.T) {
	n := NewNetwork()
	ln, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-done:
		if err != net.ErrClosed {
			t.Fatalf("accept after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not unblock on close")
	}
}

func TestNetworkLinkPolicy(t *testing.T) {
	n := NewNetwork()
	n.SetLinkPolicy(func(from, to string) LinkConfig {
		return LinkConfig{Latency: 25 * time.Millisecond}
	})
	ln, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("x")) //nolint:errcheck
	}()
	conn, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("link policy latency not applied")
	}
}
