package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/testutil/goleak"
)

// readN reads exactly n bytes from c under a deadline.
func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read %d bytes: %v", n, err)
	}
	return buf
}

func TestFaultDropTruncatesAtOffset(t *testing.T) {
	a, b := FaultPipe(FaultSpec{Kind: FaultDrop, Offset: 10, Dir: DirAToB})
	defer a.Close()
	defer b.Close()

	msg := []byte("0123456789ABCDEFGHIJ")
	if n, err := a.Write(msg); n != len(msg) || err != nil {
		t.Fatalf("drop must be invisible to the writer: n=%d err=%v", n, err)
	}
	got := readN(t, b, 10)
	if !bytes.Equal(got, msg[:10]) {
		t.Fatalf("clean prefix = %q, want %q", got, msg[:10])
	}
	// Everything after the offset vanished: the next read times out.
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	var one [1]byte
	_, err := b.Read(one[:])
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past dropped bytes = %v, want timeout", err)
	}
}

func TestFaultPartitionIsOneWay(t *testing.T) {
	a, b := FaultPipe(FaultSpec{Kind: FaultPartition, Dir: DirAToB})
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("into the void")); err != nil {
		t.Fatalf("partitioned write must not error: %v", err)
	}
	// The reverse direction is untouched.
	if _, err := b.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := readN(t, a, 4); string(got) != "back" {
		t.Fatalf("reverse direction got %q", got)
	}
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	var one [1]byte
	if _, err := b.Read(one[:]); err == nil {
		t.Fatal("partitioned direction delivered data")
	}
}

func TestFaultStallBlocksUntilClose(t *testing.T) {
	a, b := FaultPipe(FaultSpec{Kind: FaultStall, Offset: 10, Dir: DirAToB})
	defer b.Close()

	type wres struct {
		n   int
		err error
	}
	done := make(chan wres, 1)
	go func() {
		n, err := a.Write([]byte("0123456789ABCDEFGHIJ"))
		done <- wres{n, err}
	}()
	if got := readN(t, b, 10); string(got) != "0123456789" {
		t.Fatalf("pre-stall prefix = %q", got)
	}
	select {
	case r := <-done:
		t.Fatalf("stalled write returned early: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}
	a.Close()
	select {
	case r := <-done:
		if r.n != 10 || !errors.Is(r.err, io.ErrClosedPipe) {
			t.Fatalf("stalled write after close: n=%d err=%v, want 10, ErrClosedPipe", r.n, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write never unblocked after Close")
	}
}

func TestFaultResetClassifiesAsECONNRESET(t *testing.T) {
	a, b := FaultPipe(FaultSpec{Kind: FaultReset, Offset: 5, Dir: DirAToB})
	defer a.Close()
	defer b.Close()

	if n, err := a.Write([]byte("01234")); n != 5 || err != nil {
		t.Fatalf("pre-offset write: n=%d err=%v", n, err)
	}
	n, err := a.Write([]byte("boom"))
	if n != 0 || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("write crossing reset: n=%d err=%v, want ECONNRESET", n, err)
	}
	// The peer sees the reset too, with in-flight data discarded.
	var buf [16]byte
	if _, err := b.Read(buf[:]); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("peer read after reset = %v, want ECONNRESET", err)
	}
	// The faulted end stays reset for all subsequent writes.
	if _, err := a.Write([]byte("x")); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("write after reset = %v, want ECONNRESET", err)
	}
}

func TestFaultReorderSwapsChunksAtBoundary(t *testing.T) {
	a, b := FaultPipe(FaultSpec{Kind: FaultReorder, Offset: 4, Dir: DirAToB})
	defer a.Close()
	defer b.Close()

	for _, chunk := range []string{"aaaa", "bbbb", "cccc", "dddd"} {
		if _, err := a.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if got := readN(t, b, 16); string(got) != "aaaaccccbbbbdddd" {
		t.Fatalf("reordered stream = %q, want aaaaccccbbbbdddd", got)
	}
}

// TestFaultCorruptDeterministic: the same seed produces byte-identical
// corruption; a different seed diverges; the writer's buffer is never
// mutated.
func TestFaultCorruptDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KiB
	run := func(seed int64) []byte {
		a, b := FaultPipe(FaultSpec{Kind: FaultCorrupt, Offset: 16, Seed: seed, Stride: 64, Dir: DirAToB})
		defer a.Close()
		defer b.Close()
		p := append([]byte(nil), payload...)
		if _, err := a.Write(p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, payload) {
			t.Fatal("FaultCorrupt mutated the caller's buffer")
		}
		return readN(t, b, len(payload))
	}
	first := run(7)
	second := run(7)
	other := run(8)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(first, payload) {
		t.Fatal("corruption fault delivered clean bytes")
	}
	if !bytes.Equal(first[:16], payload[:16]) {
		t.Fatal("bytes before Offset were corrupted")
	}
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical corruption")
	}
}

// TestFaultCorruptSplitWrites: corruption positions are a function of
// absolute stream offsets, so how the writer slices its writes must
// not change the delivered bytes.
func TestFaultCorruptSplitWrites(t *testing.T) {
	payload := bytes.Repeat([]byte("mbtls fault substrate "), 100)
	run := func(chunks []int) []byte {
		a, b := FaultPipe(FaultSpec{Kind: FaultCorrupt, Offset: 0, Seed: 42, Stride: 32, Dir: DirAToB})
		defer a.Close()
		defer b.Close()
		rest := payload
		for _, n := range chunks {
			if n > len(rest) {
				n = len(rest)
			}
			if _, err := a.Write(rest[:n]); err != nil {
				t.Fatal(err)
			}
			rest = rest[n:]
		}
		if len(rest) > 0 {
			if _, err := a.Write(rest); err != nil {
				t.Fatal(err)
			}
		}
		return readN(t, b, len(payload))
	}
	whole := run([]int{len(payload)})
	sliced := run([]int{1, 7, 100, 3, 900})
	if !bytes.Equal(whole, sliced) {
		t.Fatal("corruption depends on write segmentation, not stream offsets")
	}
}

// TestNetworkFaultPolicy: a Network fault policy wraps exactly the
// links it selects, dialer as end A.
func TestNetworkFaultPolicy(t *testing.T) {
	n := NewNetwork()
	n.SetFaultPolicy(func(from, to string) FaultSpec {
		if from == "evilclient" {
			return FaultSpec{Kind: FaultReset, Dir: DirAToB}
		}
		return FaultSpec{}
	})
	l, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	good, err := n.Dial("client", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.Write([]byte("ok")); err != nil {
		t.Fatalf("clean link write: %v", err)
	}

	bad, err := n.Dial("evilclient", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("x")); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("faulted link write = %v, want ECONNRESET", err)
	}
}

// TestListenerCloseClosesBacklog: connections queued but never
// accepted must be closed by Listener.Close, so their dialers see the
// failure instead of writing into a void.
func TestListenerCloseClosesBacklog(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("client", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l.Close()

	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	var buf [1]byte
	if _, err := c.Read(buf[:]); err == nil {
		t.Fatal("read from a conn stranded in a closed backlog succeeded")
	}
}

// TestListenerCloseRace: concurrent Dial and Close must never strand
// an open connection — every dial either fails or yields a conn whose
// peer was accepted or closed.
func TestListenerCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		n := NewNetwork()
		l, err := n.Listen("server")
		if err != nil {
			t.Fatal(err)
		}
		dialed := make(chan net.Conn, 1)
		go func() {
			c, err := n.Dial("client", "server")
			if err != nil {
				dialed <- nil
				return
			}
			dialed <- c
		}()
		l.Close()
		if c := <-dialed; c != nil {
			// The dial won the race; its queued peer must have been
			// closed by the draining Close, so reads fail quickly.
			c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
			var buf [1]byte
			if _, err := c.Read(buf[:]); err == nil {
				t.Fatal("conn delivered to a closed listener stayed open")
			}
			c.Close()
		}
	}
}

// waitGoroutines pins the no-leak property via the shared accounting
// helper in internal/testutil/goleak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	goleak.Wait(t, base)
}

// TestFilteredLinkShutdownNoLeak: aborting a filtered path from either
// end must cascade closes through every filter goroutine.
func TestFilteredLinkShutdownNoLeak(t *testing.T) {
	specs := []FilterSpec{
		{Kind: KindFramingValidator},
		{Kind: KindResegmenter, Chunk: 9},
		{Kind: KindNone},
	}
	base := goleak.Base()
	for round := 0; round < 3; round++ {
		client, server := FilteredLink(specs...)
		// A partial record in flight exercises the mid-parse abort path.
		if _, err := client.Write([]byte{22, 3, 3, 0, 50, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			client.Close()
			server.Close()
		} else {
			server.Close()
			client.Close()
		}
	}
	waitGoroutines(t, base)
}

// TestFilteredLinkEOFPropagates: a clean close on one end surfaces as
// EOF (not a hang) on the other, through every filter stage.
func TestFilteredLinkEOFPropagates(t *testing.T) {
	client, server := FilteredLink(FilterSpec{Kind: KindResegmenter, Chunk: 5})
	rec := []byte{23, 3, 3, 0, 3, 'a', 'b', 'c'}
	if _, err := client.Write(rec); err != nil {
		t.Fatal(err)
	}
	if got := readN(t, server, len(rec)); !bytes.Equal(got, rec) {
		t.Fatalf("relayed record = %v", got)
	}
	client.Close()
	server.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	var buf [8]byte
	if _, err := server.Read(buf[:]); err == nil {
		t.Fatal("read after peer close succeeded")
	} else if s := err.Error(); !strings.Contains(s, "EOF") && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("read after peer close = %v", err)
	}
}
