package netsim

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello through the pipe")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

// TestPropertyPipePreservesBytes: any sequence of writes is read back
// exactly, regardless of chunking.
func TestPropertyPipePreservesBytes(t *testing.T) {
	f := func(chunks [][]byte) bool {
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		var want []byte
		total := 0
		for _, c := range chunks {
			if total+len(c) > defaultWindow/2 {
				break // stay under the flow-control window for a single-threaded check
			}
			total += len(c)
			want = append(want, c...)
			if _, err := a.Write(c); err != nil {
				return false
			}
		}
		got := make([]byte, len(want))
		if len(want) > 0 {
			if _, err := io.ReadFull(b, got); err != nil {
				return false
			}
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeEOFAfterClose(t *testing.T) {
	a, b := Pipe()
	a.Write([]byte("tail")) //nolint:errcheck
	a.Close()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("buffered data lost at close: %v", err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("read after close = %v, want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestLinkLatency(t *testing.T) {
	a, b := NewLink(LinkConfig{Latency: 30 * time.Millisecond})
	defer a.Close()
	defer b.Close()
	start := time.Now()
	a.Write([]byte("x")) //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("latency wildly exceeded: %v", elapsed)
	}
}

func TestLinkBandwidth(t *testing.T) {
	// 1 Mbit/s: 25 KiB should take ≈200 ms.
	a, b := NewLink(LinkConfig{Bandwidth: 1e6})
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 25<<10)
	go func() {
		a.Write(payload) //nolint:errcheck
	}()
	start := time.Now()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Fatalf("bandwidth not enforced: %d bytes in %v", len(payload), elapsed)
	}
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	if err == nil {
		t.Fatal("read with expired deadline succeeded")
	}
	nerr, ok := err.(interface{ Timeout() bool })
	if !ok || !nerr.Timeout() {
		t.Fatalf("error %v is not a timeout", err)
	}
}

func TestFlowControlBackpressure(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	chunk := make([]byte, 64<<10)
	wrote := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 64; i++ { // 4 MiB total, 4× the window
			if _, err := a.Write(chunk); err != nil {
				break
			}
			n++
		}
		wrote <- n
	}()
	// Give the writer time to fill the window and block.
	time.Sleep(50 * time.Millisecond)
	select {
	case n := <-wrote:
		t.Fatalf("writer completed %d chunks without a reader (no backpressure)", n)
	default:
	}
	// Drain; the writer must finish.
	go io.Copy(io.Discard, b) //nolint:errcheck
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never unblocked")
	}
}

func TestRegionRTTSymmetricAndComplete(t *testing.T) {
	for _, a := range Regions {
		for _, b := range Regions {
			ab, err := RegionRTT(a, b)
			if err != nil {
				t.Fatalf("RTT(%s,%s): %v", a, b, err)
			}
			ba, err := RegionRTT(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if ab != ba {
				t.Fatalf("RTT(%s,%s)=%v but RTT(%s,%s)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}

func TestFramingValidatorPassesMbTLSTypes(t *testing.T) {
	v := FramingValidator{}
	for _, typ := range []uint8{20, 21, 22, 23, 30, 31, 32} {
		if !v.CheckRecord(typ, 0x0303, make([]byte, 100)) {
			t.Fatalf("framing validator dropped type %d", typ)
		}
	}
	if v.CheckRecord(22, 0x1234, nil) {
		t.Fatal("implausible version passed")
	}
	if v.CheckRecord(22, 0x0303, make([]byte, 30000)) {
		t.Fatal("oversized record passed")
	}
}

func TestStrictDPIDropsMbTLSTypes(t *testing.T) {
	d := StrictDPI{}
	for _, typ := range []uint8{20, 21, 22, 23} {
		if !d.CheckRecord(typ, 0x0303, nil) {
			t.Fatalf("strict DPI dropped standard type %d", typ)
		}
	}
	for _, typ := range []uint8{30, 31, 32} {
		if d.CheckRecord(typ, 0x0303, nil) {
			t.Fatalf("strict DPI passed mbTLS type %d", typ)
		}
	}
}

// TestFilteredLinkPreservesTLSStream: a TLS-framed byte stream survives
// every Table 2 filter stack byte-for-byte.
func TestFilteredLinkPreservesTLSStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Build a plausible record stream including mbTLS types.
	var stream []byte
	for i := 0; i < 40; i++ {
		typ := []uint8{20, 21, 22, 23, 30, 32}[rng.Intn(6)]
		n := rng.Intn(2000)
		payload := make([]byte, n)
		rng.Read(payload)
		stream = append(stream, typ, 0x03, 0x03, byte(n>>8), byte(n))
		stream = append(stream, payload...)
	}

	for _, entry := range Table2Sites {
		specs := SiteFilters(entry.Type, 3)
		client, server := FilteredLink(specs...)
		go func() {
			client.Write(stream) //nolint:errcheck
		}()
		got := make([]byte, len(stream))
		if _, err := io.ReadFull(server, got); err != nil {
			t.Fatalf("%s: %v", entry.Type, err)
		}
		if !bytes.Equal(got, stream) {
			t.Fatalf("%s: stream corrupted by filter stack %v", entry.Type, specs)
		}
		client.Close()
		server.Close()
	}
}

func TestFilteredLinkStrictDPIKills(t *testing.T) {
	client, server := FilteredLink(FilterSpec{Kind: KindStrictDPI})
	defer client.Close()
	defer server.Close()
	// An Encapsulated record must not survive.
	rec := append([]byte{30, 0x03, 0x03, 0x00, 0x03}, 1, 2, 3)
	client.Write(rec) //nolint:errcheck
	buf := make([]byte, 1)
	server.SetReadDeadline(time.Now().Add(500 * time.Millisecond)) //nolint:errcheck
	if _, err := server.Read(buf); err == nil {
		t.Fatal("strict DPI forwarded an mbTLS record")
	}
}

func TestConcurrentPipeUse(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	const writers = 4
	const per = 100
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Write([]byte{0xAB}) //nolint:errcheck
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 64)
		for got < writers*per {
			n, err := b.Read(buf)
			if err != nil {
				break
			}
			got += n
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("read %d of %d bytes", got, writers*per)
	}
}
