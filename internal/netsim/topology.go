package netsim

import (
	"fmt"
	"time"
)

// Region is a datacenter region from the paper's Figure 6 deployment
// ("We deploy VMs in four regions (Australia, US West, US East, and
// UK)").
type Region string

// The four regions of the Figure 6 experiment.
const (
	RegionAU  Region = "au"
	RegionUSW Region = "usw"
	RegionUSE Region = "use"
	RegionUK  Region = "uk"
)

// Regions lists the Figure 6 regions in a stable order.
var Regions = []Region{RegionAU, RegionUSW, RegionUSE, RegionUK}

// interRegionRTT holds representative round-trip times between public
// cloud regions (ms), drawn from published inter-region measurements.
// Only the relative geometry matters for the experiment: the paper's
// claim is that mbTLS adds no round trips, so its latency tracks TLS
// across any path mix.
var interRegionRTT = map[[2]Region]time.Duration{
	{RegionAU, RegionUSW}:  150 * time.Millisecond,
	{RegionAU, RegionUSE}:  200 * time.Millisecond,
	{RegionAU, RegionUK}:   280 * time.Millisecond,
	{RegionUSW, RegionUSE}: 70 * time.Millisecond,
	{RegionUSW, RegionUK}:  140 * time.Millisecond,
	{RegionUSE, RegionUK}:  80 * time.Millisecond,
}

// RegionRTT returns the round-trip time between two regions.
func RegionRTT(a, b Region) (time.Duration, error) {
	if a == b {
		return 2 * time.Millisecond, nil // intra-region
	}
	if rtt, ok := interRegionRTT[[2]Region{a, b}]; ok {
		return rtt, nil
	}
	if rtt, ok := interRegionRTT[[2]Region{b, a}]; ok {
		return rtt, nil
	}
	return 0, fmt.Errorf("netsim: no RTT entry for %s-%s", a, b)
}

// RegionLink creates a duplex connection between two regions, with the
// one-way latency scaled by scale (tests and the harness use scale<1 to
// compress wall-clock time without changing the geometry).
func RegionLink(a, b Region, scale float64) (*Conn, *Conn, error) {
	rtt, err := RegionRTT(a, b)
	if err != nil {
		return nil, nil, err
	}
	oneWay := time.Duration(float64(rtt) * scale / 2)
	ca, cb := NewLink(LinkConfig{
		Latency: oneWay,
		NameA:   string(a),
		NameB:   string(b),
	})
	return ca, cb, nil
}
