package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// This file models the on-path entities of the paper's Table 2
// handshake-viability experiment: "we verify that existing filters,
// like firewalls, traffic normalizers, or IDSes, do not drop our
// handshakes" (§5.1). Each filter inspects the byte stream the way the
// corresponding middle-entity class does; mbTLS survives all of them,
// and the StrictDPI policy exists to show the harness would detect a
// network that does block the new record types.

// Policy inspects TLS records passing a filter.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// CheckRecord returns false to kill the connection.
	CheckRecord(typ uint8, version uint16, payload []byte) bool
}

// FramingValidator models a firewall/IDS that validates TLS framing
// (plausible version and length) but passes content types it does not
// recognize — the behavior that lets mbTLS records through real
// networks.
type FramingValidator struct{}

// Name implements Policy.
func (FramingValidator) Name() string { return "framing-validator" }

// CheckRecord implements Policy.
func (FramingValidator) CheckRecord(typ uint8, version uint16, payload []byte) bool {
	if version < 0x0301 || version > 0x0304 {
		return false
	}
	return len(payload) <= 16384+2048
}

// StrictDPI models a middle-entity that enforces a content-type
// allowlist; it kills connections carrying mbTLS record types. No
// network in the paper's measurement behaved this way, but the
// experiment harness must be able to detect one that does.
type StrictDPI struct{}

// Name implements Policy.
func (StrictDPI) Name() string { return "strict-dpi" }

// CheckRecord implements Policy.
func (StrictDPI) CheckRecord(typ uint8, version uint16, payload []byte) bool {
	return typ >= 20 && typ <= 23
}

// runPolicyFilter relays src→dst record-by-record under a policy,
// closing both on a violation.
func runPolicyFilter(src, dst net.Conn, p Policy) {
	defer src.Close()
	defer dst.Close()
	var hdr [5]byte
	for {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		length := int(binary.BigEndian.Uint16(hdr[3:5]))
		if length > 1<<16-1 {
			return
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(src, payload); err != nil {
			return
		}
		if !p.CheckRecord(hdr[0], binary.BigEndian.Uint16(hdr[1:3]), payload) {
			return // connection killed by the filter
		}
		if _, err := dst.Write(append(hdr[:], payload...)); err != nil {
			return
		}
	}
}

// runResegmenter relays src→dst while re-chunking the byte stream at
// arbitrary boundaries, modeling TCP normalizers and transparent
// proxies that do not preserve segment boundaries.
func runResegmenter(src, dst net.Conn, chunk int) {
	defer src.Close()
	defer dst.Close()
	if chunk <= 0 {
		chunk = 7
	}
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// FilterKind enumerates the on-path entity classes.
type FilterKind int

// Filter kinds.
const (
	KindNone FilterKind = iota
	KindFramingValidator
	KindResegmenter
	KindPolicer
	KindStrictDPI
)

// String names the kind.
func (k FilterKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindFramingValidator:
		return "framing-validator"
	case KindResegmenter:
		return "resegmenter"
	case KindPolicer:
		return "rate-policer"
	case KindStrictDPI:
		return "strict-dpi"
	}
	return fmt.Sprintf("filter(%d)", int(k))
}

// FilterSpec describes one on-path entity.
type FilterSpec struct {
	Kind FilterKind
	// Chunk is the resegmenter's chunk size.
	Chunk int
	// Bandwidth is the policer's rate in bits per second.
	Bandwidth float64
}

// FilteredLink builds a duplex path crossing the given filters in
// order, returning the two endpoints.
func FilteredLink(specs ...FilterSpec) (client, server net.Conn) {
	left, tail := Pipe()
	client = left
	for _, spec := range specs {
		var next, far *Conn
		switch spec.Kind {
		case KindPolicer:
			next, far = NewLink(LinkConfig{Bandwidth: spec.Bandwidth})
		default:
			next, far = Pipe()
		}
		switch spec.Kind {
		case KindNone, KindPolicer:
			// Pure pass-through (the policer's shaping lives in the
			// link itself): splice bytes.
			go splice(tail, next)
		case KindFramingValidator:
			go runPolicyFilter(tail, next, FramingValidator{})
			go runPolicyFilter(next, tail, FramingValidator{})
		case KindStrictDPI:
			go runPolicyFilter(tail, next, StrictDPI{})
			go runPolicyFilter(next, tail, StrictDPI{})
		case KindResegmenter:
			go runResegmenter(tail, next, spec.Chunk)
			go runResegmenter(next, tail, spec.Chunk)
		}
		tail = far
	}
	return client, tail
}

// splice copies both directions between two conns.
func splice(a, b net.Conn) {
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(a, b) //nolint:errcheck
		a.Close()
		b.Close()
		done <- struct{}{}
	}()
	io.Copy(b, a) //nolint:errcheck
	a.Close()
	b.Close()
	<-done
}

// NetworkType categorizes the client networks of Table 2.
type NetworkType string

// The paper's nine network categories.
const (
	Enterprise    NetworkType = "Enterprise"
	University    NetworkType = "University"
	Residential   NetworkType = "Residential"
	Public        NetworkType = "Public"
	Mobile        NetworkType = "Mobile"
	Hosting       NetworkType = "Hosting"
	Colocation    NetworkType = "Colocation Services"
	DataCenter    NetworkType = "Data Center"
	Uncategorized NetworkType = "Uncategorized"
)

// Table2Sites reproduces the paper's site counts per network type
// (241 distinct client networks total).
var Table2Sites = []struct {
	Type  NetworkType
	Sites int
}{
	{Enterprise, 6},
	{University, 11},
	{Residential, 34},
	{Public, 1},
	{Mobile, 2},
	{Hosting, 56},
	{Colocation, 35},
	{DataCenter, 19},
	{Uncategorized, 77},
}

// SiteFilters returns the deterministic on-path filter stack for site
// i of a network type, modeling the middle-entity mix typical of that
// network class.
func SiteFilters(nt NetworkType, i int) []FilterSpec {
	switch nt {
	case Enterprise:
		// Corporate firewall validating TLS framing plus a normalizer.
		return []FilterSpec{
			{Kind: KindFramingValidator},
			{Kind: KindResegmenter, Chunk: 512 + 97*i},
		}
	case University:
		return []FilterSpec{{Kind: KindFramingValidator}}
	case Residential:
		// Home NAT/router resegmenting at small MTU-ish boundaries.
		return []FilterSpec{{Kind: KindResegmenter, Chunk: 128 + 53*(i%7)}}
	case Public:
		// Captive-portal style: framing checks plus a slow uplink.
		return []FilterSpec{
			{Kind: KindFramingValidator},
			{Kind: KindPolicer, Bandwidth: 20e6},
		}
	case Mobile:
		// Carrier network: policer plus normalizer.
		return []FilterSpec{
			{Kind: KindPolicer, Bandwidth: 50e6},
			{Kind: KindResegmenter, Chunk: 1400},
		}
	case Hosting, DataCenter:
		return nil // lightly filtered
	case Colocation:
		return []FilterSpec{{Kind: KindFramingValidator}}
	default: // Uncategorized: a rotating mix
		switch i % 3 {
		case 0:
			return []FilterSpec{{Kind: KindFramingValidator}}
		case 1:
			return []FilterSpec{{Kind: KindResegmenter, Chunk: 256 + 31*(i%11)}}
		default:
			return nil
		}
	}
}
