package netsim

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Network is an in-memory address space: nodes Listen on names and
// Dial each other, with per-link characteristics. It gives the
// experiment harnesses and tests the same Listen/Accept/Dial shape as
// real deployments use with TCP.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	// linkFor decides the characteristics of a new connection; nil
	// means a plain Pipe.
	linkFor func(from, to string) LinkConfig
	// faultFor decides the fault injected into a new connection; nil
	// (or a returned FaultNone spec) means a clean link.
	faultFor func(from, to string) FaultSpec
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*Listener)}
}

// SetLinkPolicy installs a function choosing link characteristics per
// (from, to) pair. Policies see the dialer's base node name: a
// per-connection "#N" suffix (appended by dialers such as
// transport.Netsim to keep each connection individually addressable)
// is stripped before the lookup, so a policy keyed on the configured
// pair applies to every connection from that node.
func (n *Network) SetLinkPolicy(f func(from, to string) LinkConfig) {
	n.mu.Lock()
	n.linkFor = f
	n.mu.Unlock()
}

// SetFaultPolicy installs a function choosing the fault injected into
// each new connection; a FaultNone spec means a clean link. In the
// resulting pair the dialer is end A, so DirAToB faults dialer→listener
// traffic. Like link policies, fault policies see the dialer's base
// node name with any per-connection "#N" suffix stripped.
func (n *Network) SetFaultPolicy(f func(from, to string) FaultSpec) {
	n.mu.Lock()
	n.faultFor = f
	n.mu.Unlock()
}

// Listen claims an address.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("netsim: address %q already in use", addr)
	}
	l := &Listener{
		network: n,
		addr:    addr,
		backlog: make(chan net.Conn, 64),
		closed:  make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// policyName strips a per-connection "#N" suffix from a dialer node
// name. Dialers that open several connections (transport.Netsim) make
// each one individually addressable as name#2, name#3, …; policies
// stay keyed on the configured base name so they apply to all of them.
func policyName(from string) string {
	if i := strings.LastIndexByte(from, '#'); i >= 0 {
		return from[:i]
	}
	return from
}

// Dial connects from a named node to a listening address.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[to]
	policy := n.linkFor
	faults := n.faultFor
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: connection refused: %q", to)
	}
	pfrom := policyName(from)
	cfg := LinkConfig{}
	if policy != nil {
		cfg = policy(pfrom, to)
	}
	cfg.NameA, cfg.NameB = from, to
	var client, server net.Conn = NewLink(cfg)
	if faults != nil {
		if spec := faults(pfrom, to); spec.Kind != FaultNone {
			client, server = WrapFaultPair(client, server, spec)
		}
	}
	if err := l.deliver(server); err != nil {
		client.Close()
		server.Close()
		return nil, err
	}
	return client, nil
}

// Listener accepts in-memory connections for one address.
type Listener struct {
	network *Network
	addr    string

	// mu serializes backlog delivery against Close, so a connection can
	// never be stranded in the backlog after Close has drained it.
	mu      sync.Mutex
	done    bool
	backlog chan net.Conn

	closeOnce sync.Once
	closed    chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// deliver hands a new connection to Accept, refusing cleanly if the
// listener closes first.
func (l *Listener) deliver(c net.Conn) error {
	refused := fmt.Errorf("netsim: connection refused: %q closed", l.addr)
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return refused
	}
	select {
	case l.backlog <- c:
		l.mu.Unlock()
		return nil
	default:
	}
	l.mu.Unlock()
	// Backlog full: wait outside the lock so Close stays responsive.
	select {
	case l.backlog <- c:
		l.mu.Lock()
		defer l.mu.Unlock()
		if !l.done {
			return nil
		}
		// Close raced the send and already drained the backlog; pull a
		// queued conn back out so nothing is stranded, then refuse (the
		// caller closes c).
		select {
		case q := <-l.backlog:
			q.Close()
		default:
		}
		return refused
	case <-l.closed:
		return refused
	case <-time.After(5 * time.Second):
		return fmt.Errorf("netsim: accept backlog full at %q", l.addr)
	}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	// Prefer reporting closure: after Close, anything still queued has
	// already been closed and is not worth handing out.
	select {
	case <-l.closed:
		return nil, net.ErrClosed
	default:
	}
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close releases the address, unblocks pending Accepts, and closes any
// connections still queued in the backlog so their dialers see the
// failure instead of writing into a void.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		l.network.mu.Lock()
		delete(l.network.listeners, l.addr)
		l.network.mu.Unlock()
		l.mu.Lock()
		l.done = true
		close(l.closed)
		for {
			select {
			case c := <-l.backlog:
				c.Close()
				continue
			default:
			}
			break
		}
		l.mu.Unlock()
	})
	return nil
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr { return Addr(l.addr) }
