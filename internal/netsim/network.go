package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Network is an in-memory address space: nodes Listen on names and
// Dial each other, with per-link characteristics. It gives the
// experiment harnesses and tests the same Listen/Accept/Dial shape as
// real deployments use with TCP.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	// linkFor decides the characteristics of a new connection; nil
	// means a plain Pipe.
	linkFor func(from, to string) LinkConfig
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*Listener)}
}

// SetLinkPolicy installs a function choosing link characteristics per
// (from, to) pair.
func (n *Network) SetLinkPolicy(f func(from, to string) LinkConfig) {
	n.mu.Lock()
	n.linkFor = f
	n.mu.Unlock()
}

// Listen claims an address.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("netsim: address %q already in use", addr)
	}
	l := &Listener{
		network: n,
		addr:    addr,
		backlog: make(chan net.Conn, 64),
		closed:  make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects from a named node to a listening address.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[to]
	policy := n.linkFor
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: connection refused: %q", to)
	}
	cfg := LinkConfig{}
	if policy != nil {
		cfg = policy(from, to)
	}
	cfg.NameA, cfg.NameB = from, to
	client, server := NewLink(cfg)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("netsim: connection refused: %q closed", to)
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("netsim: accept backlog full at %q", to)
	}
}

// Listener accepts in-memory connections for one address.
type Listener struct {
	network *Network
	addr    string
	backlog chan net.Conn

	closeOnce sync.Once
	closed    chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close releases the address.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.network.mu.Lock()
		delete(l.network.listeners, l.addr)
		l.network.mu.Unlock()
	})
	return nil
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr { return Addr(l.addr) }
