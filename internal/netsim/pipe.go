// Package netsim provides an in-memory network substrate: buffered
// duplex pipes with configurable one-way latency and bandwidth, a
// region-to-region topology for the paper's inter-datacenter latency
// experiment (Figure 6), and on-path filter entities modeling the
// firewalls and traffic normalizers of the handshake-viability
// experiment (Table 2).
//
// Unlike net.Pipe, writes are buffered and never block on the peer, so
// protocol code that sends best-effort messages (alerts, announcements)
// behaves as it would over a kernel TCP socket.
package netsim

import (
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// ErrClosedPipe is returned for operations on a closed pipe end. It
// wraps io.ErrClosedPipe so protocol code can classify it with
// errors.Is without importing netsim.
var ErrClosedPipe = fmt.Errorf("netsim: closed pipe: %w", io.ErrClosedPipe)

// ErrReset is returned after Reset tears a connection down — the
// netsim analogue of a TCP RST. It wraps syscall.ECONNRESET so it
// classifies exactly like a kernel-reported reset.
var ErrReset = fmt.Errorf("netsim: connection reset: %w", syscall.ECONNRESET)

// chunk is a unit of in-flight data with its delivery time.
type chunk struct {
	data      []byte
	deliverAt time.Time
}

// stream is one direction of a pipe.
type stream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []chunk
	offset int // read offset into chunks[0].data

	latency   time.Duration
	byteDelay time.Duration // per-byte transmission delay (0 = infinite bandwidth)
	lastAt    time.Time     // arrival time of the most recently queued chunk
	maxBuf    int64         // flow-control window: max unread bytes in flight

	closed   bool // write side closed: EOF after drain
	broken   bool // reader gone: writes fail
	isReset  bool // connection reset: both sides fail, in-flight data discarded
	bytesIn  int64
	bytesOut int64
}

// defaultWindow is the per-direction flow-control window, playing the
// role of the TCP receive window: writers block once this many bytes
// are queued unread, so a fast sender cannot balloon memory.
const defaultWindow = 1 << 20

func newStream(latency time.Duration, bitsPerSecond float64) *stream {
	s := &stream{latency: latency, maxBuf: defaultWindow}
	if bitsPerSecond > 0 {
		s.byteDelay = time.Duration(8 * float64(time.Second) / bitsPerSecond)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *stream) write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Flow control: wait for window space (a chunk may overshoot the
	// window by up to its own size, like a final TCP segment).
	for !s.closed && !s.broken && s.bytesIn-s.bytesOut >= s.maxBuf {
		s.cond.Wait()
	}
	if s.closed || s.broken {
		if s.isReset {
			return 0, ErrReset
		}
		return 0, ErrClosedPipe
	}
	now := time.Now()
	arrive := now.Add(s.latency)
	if s.lastAt.After(arrive) {
		arrive = s.lastAt
	}
	arrive = arrive.Add(time.Duration(len(p)) * s.byteDelay)
	s.lastAt = arrive
	s.chunks = append(s.chunks, chunk{data: append([]byte(nil), p...), deliverAt: arrive})
	s.bytesIn += int64(len(p))
	s.cond.Broadcast()
	return len(p), nil
}

func (s *stream) read(p []byte, deadline time.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.isReset {
			return 0, ErrReset
		}
		if len(s.chunks) > 0 {
			now := time.Now()
			first := s.chunks[0]
			if wait := first.deliverAt.Sub(now); wait > 0 {
				// Latency not yet elapsed: sleep outside the lock,
				// then re-check (new deadline may apply).
				s.mu.Unlock()
				timer := time.NewTimer(wait)
				<-timer.C
				s.mu.Lock()
				continue
			}
			n := copy(p, first.data[s.offset:])
			s.offset += n
			s.bytesOut += int64(n)
			if s.offset == len(first.data) {
				s.chunks = s.chunks[1:]
				s.offset = 0
			}
			// Wake writers blocked on the flow-control window.
			s.cond.Broadcast()
			return n, nil
		}
		if s.closed {
			return 0, io.EOF
		}
		if s.broken {
			return 0, ErrClosedPipe
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return 0, errDeadline
		}
		if !deadline.IsZero() {
			// Wake up at the deadline if nothing arrives.
			t := time.AfterFunc(time.Until(deadline), s.cond.Broadcast)
			s.cond.Wait()
			t.Stop()
		} else {
			s.cond.Wait()
		}
	}
}

// closeWrite marks the write side closed; the reader sees EOF after
// draining in-flight data.
func (s *stream) closeWrite() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// breakRead marks the read side gone; writers fail immediately.
func (s *stream) breakRead() {
	s.mu.Lock()
	s.broken = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// reset abruptly kills the stream in both roles: readers and writers
// fail with ErrReset and any in-flight data is discarded.
func (s *stream) reset() {
	s.mu.Lock()
	s.isReset = true
	s.broken = true
	s.chunks = nil
	s.offset = 0
	s.cond.Broadcast()
	s.mu.Unlock()
}

var errDeadline error = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netsim: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// Addr is a trivial net.Addr naming a simulated node.
type Addr string

// Network returns the simulated network name.
func (Addr) Network() string { return "netsim" }

// String returns the node name.
func (a Addr) String() string { return string(a) }

// Conn is one end of a simulated connection.
type Conn struct {
	in, out   *stream
	local     Addr
	remote    Addr
	mu        sync.Mutex
	rDeadline time.Time
	closed    bool
}

var _ net.Conn = (*Conn)(nil)

// Read reads delivered bytes, honoring latency and read deadlines.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dl := c.rDeadline
	c.mu.Unlock()
	return c.in.read(p, dl)
}

// Write queues bytes for delivery after the link latency. It never
// blocks on the reader.
func (c *Conn) Write(p []byte) (int, error) { return c.out.write(p) }

// Close closes both directions of this end.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.out.closeWrite()
	c.in.breakRead()
	return nil
}

// Reset abruptly tears the connection down in both directions — the
// netsim analogue of a TCP RST. Unlike Close, in-flight data is
// discarded and both ends' subsequent reads and writes fail with
// ErrReset instead of draining to a clean EOF.
func (c *Conn) Reset() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.out.reset()
	c.in.reset()
}

// LocalAddr returns the local node name.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the remote node name.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets the read deadline (write never blocks).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rDeadline = t
	c.mu.Unlock()
	c.in.cond.Broadcast()
	return nil
}

// SetWriteDeadline is a no-op; writes are buffered.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// Stats reports bytes written to and read from this end's inbound
// stream (delivered traffic).
func (c *Conn) Stats() (queued, delivered int64) {
	c.in.mu.Lock()
	defer c.in.mu.Unlock()
	return c.in.bytesIn, c.in.bytesOut
}

// LinkConfig describes one simulated link.
type LinkConfig struct {
	// Latency is the one-way propagation delay in each direction.
	Latency time.Duration
	// Bandwidth is the link rate in bits per second; 0 means
	// unlimited.
	Bandwidth float64
	// NameA and NameB label the two ends.
	NameA, NameB string
}

// NewLink creates a duplex connection with the given characteristics.
func NewLink(cfg LinkConfig) (*Conn, *Conn) {
	if cfg.NameA == "" {
		cfg.NameA = "a"
	}
	if cfg.NameB == "" {
		cfg.NameB = "b"
	}
	ab := newStream(cfg.Latency, cfg.Bandwidth)
	ba := newStream(cfg.Latency, cfg.Bandwidth)
	a := &Conn{in: ba, out: ab, local: Addr(cfg.NameA), remote: Addr(cfg.NameB)}
	b := &Conn{in: ab, out: ba, local: Addr(cfg.NameB), remote: Addr(cfg.NameA)}
	return a, b
}

// Pipe returns an unbuffered-latency, unlimited-bandwidth duplex pipe:
// a drop-in, non-blocking replacement for net.Pipe.
func Pipe() (*Conn, *Conn) {
	return NewLink(LinkConfig{})
}
