package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/secmem"
	"repro/internal/tls12"
	"repro/internal/wire"
)

// Direction identifies a data-plane flow direction.
type Direction uint8

// Data-plane directions.
const (
	DirClientToServer Direction = iota
	DirServerToClient
)

// String names the direction.
func (d Direction) String() string {
	if d == DirClientToServer {
		return "client→server"
	}
	return "server→client"
}

// HopKeys is the record-protection material for one hop of an mbTLS
// session (paper Figure 4: each hop encrypts and MAC-protects data with
// a different key). Each direction has its own key and implicit IV,
// plus a starting sequence number — fresh hops start at zero, while the
// bridge hop K(C-S) continues the primary session's sequence numbers,
// which is why MBTLSKeyMaterial carries them (Appendix A.1).
type HopKeys struct {
	Suite  uint16
	C2SKey []byte
	C2SIV  []byte
	C2SSeq uint64
	S2CKey []byte
	S2CIV  []byte
	S2CSeq uint64
}

// GenerateHopKeys creates fresh random keys for one hop.
func GenerateHopKeys(suite uint16) (*HopKeys, error) {
	keyLen := 32
	if suite == tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 {
		keyLen = 16
	} else if suite != tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 {
		return nil, fmt.Errorf("core: unsupported cipher suite 0x%04X", suite)
	}
	hk := &HopKeys{
		Suite:  suite,
		C2SKey: make([]byte, keyLen),
		C2SIV:  make([]byte, 4),
		S2CKey: make([]byte, keyLen),
		S2CIV:  make([]byte, 4),
	}
	for _, b := range [][]byte{hk.C2SKey, hk.C2SIV, hk.S2CKey, hk.S2CIV} {
		if _, err := io.ReadFull(rand.Reader, b); err != nil {
			return nil, err
		}
	}
	return hk, nil
}

// Wipe zeroizes the hop's key material. Callers wipe a HopKeys as soon
// as its cipher states are installed (NewCipherState copies the key
// into the AES schedule) or its MBTLSKeyMaterial record is sealed;
// wiping is idempotent, so aliased copies may each be wiped.
func (hk *HopKeys) Wipe() {
	if hk == nil {
		return
	}
	secmem.WipeAll(hk.C2SKey, hk.C2SIV, hk.S2CKey, hk.S2CIV)
}

// BridgeHopKeys converts the primary session's exported keys into the
// bridge hop K(C-S), preserving the in-progress sequence numbers.
func BridgeHopKeys(sk *tls12.SessionKeys) *HopKeys {
	return &HopKeys{
		Suite:  sk.Suite,
		C2SKey: sk.ClientWriteKey,
		C2SIV:  sk.ClientWriteIV,
		C2SSeq: sk.ClientSeq,
		S2CKey: sk.ServerWriteKey,
		S2CIV:  sk.ServerWriteIV,
		S2CSeq: sk.ServerSeq,
	}
}

// cipherStates builds the two CipherStates for this hop.
func (hk *HopKeys) cipherStates() (c2s, s2c *tls12.CipherState, err error) {
	c2s, err = tls12.NewCipherState(hk.Suite, hk.C2SKey, hk.C2SIV, hk.C2SSeq)
	if err != nil {
		return nil, nil, err
	}
	s2c, err = tls12.NewCipherState(hk.Suite, hk.S2CKey, hk.S2CIV, hk.S2CSeq)
	if err != nil {
		return nil, nil, err
	}
	return c2s, s2c, nil
}

// KeyMaterial is the payload of an MBTLSKeyMaterial record (Appendix
// A.1): everything a middlebox needs to join the data plane. Down is
// the hop toward the client, Up the hop toward the server; the four
// key/IV pairs correspond to the paper's clientWrite/clientRead/
// serverWrite/serverRead fields, and the sequence numbers let the
// bridge hop continue the primary session's counters.
type KeyMaterial struct {
	Version uint16
	Down    HopKeys
	Up      HopKeys
}

// Wipe zeroizes both hops' key material. A middlebox wipes the parsed
// KeyMaterial right after its data plane installs the cipher states —
// from then on the keys exist only inside the AES schedules.
func (km *KeyMaterial) Wipe() {
	if km == nil {
		return
	}
	km.Down.Wipe()
	km.Up.Wipe()
}

func (km *KeyMaterial) marshal() []byte {
	b := wire.NewBuilder(nil)
	b.AddUint16(km.Version)
	b.AddUint16(km.Down.Suite)
	b.AddUint32(uint32(len(km.Down.C2SKey)))
	b.AddUint32(uint32(len(km.Down.C2SIV)))
	for _, hop := range []*HopKeys{&km.Down, &km.Up} {
		b.AddBytes(hop.C2SKey)
		b.AddBytes(hop.C2SIV)
		b.AddUint64(hop.C2SSeq)
		b.AddBytes(hop.S2CKey)
		b.AddBytes(hop.S2CIV)
		b.AddUint64(hop.S2CSeq)
	}
	return b.Bytes()
}

func parseKeyMaterial(data []byte) (*KeyMaterial, error) {
	p := wire.NewParser(data)
	var km KeyMaterial
	var keyLen, ivLen uint32
	var suite uint16
	if !p.ReadUint16(&km.Version) || !p.ReadUint16(&suite) ||
		!p.ReadUint32(&keyLen) || !p.ReadUint32(&ivLen) {
		return nil, errors.New("core: malformed key material")
	}
	if keyLen > 64 || ivLen > 16 {
		return nil, errors.New("core: implausible key material geometry")
	}
	for _, hop := range []*HopKeys{&km.Down, &km.Up} {
		hop.Suite = suite
		hop.C2SKey = make([]byte, keyLen)
		hop.C2SIV = make([]byte, ivLen)
		hop.S2CKey = make([]byte, keyLen)
		hop.S2CIV = make([]byte, ivLen)
		if !p.CopyBytes(hop.C2SKey) || !p.CopyBytes(hop.C2SIV) || !p.ReadUint64(&hop.C2SSeq) ||
			!p.CopyBytes(hop.S2CKey) || !p.CopyBytes(hop.S2CIV) || !p.ReadUint64(&hop.S2CSeq) {
			return nil, errors.New("core: malformed key material")
		}
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return &km, nil
}
