package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/tls12"
)

// maxSubchannels bounds the number of middlebox subchannels an endpoint
// will track (the wire format allows 255).
const maxSubchannels = 255

// mux multiplexes an mbTLS endpoint's single transport stream into the
// primary session's record stream plus one virtual stream per
// subchannel. The paper motivates this design (§3.4, "Control
// Messaging"): compared to per-middlebox TCP connections it keeps all
// handshake messages on one path, reduces connection state, and lets
// client-side discovery avoid an extra round trip.
//
// Outer records are never encrypted: primary-session records carry
// their own protection from the primary Conn's record layer, and
// Encapsulated records carry inner records protected by the secondary
// sessions.
type mux struct {
	rw io.ReadWriter

	wmu sync.Mutex
	// encBuf is the Encapsulated-framing scratch buffer, guarded by wmu.
	encBuf []byte

	primary *pipeBuf

	mu     sync.Mutex
	subs   map[uint8]*pipeBuf
	closed bool
	// newSub delivers IDs of subchannels opened by the peer side.
	newSub chan uint8

	readErr error
}

func newMux(rw io.ReadWriter) *mux {
	m := &mux{rw: rw, subs: make(map[uint8]*pipeBuf), newSub: make(chan uint8, maxSubchannels)}
	m.primary = newPipeBuf(m.writeRaw)
	go m.readLoop()
	return m
}

// writeRaw writes pre-framed record bytes straight to the transport.
func (m *mux) writeRaw(b []byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	_, err := m.rw.Write(b)
	return err
}

// writeEncapsulated wraps one inner record into an Encapsulated outer
// record for the given subchannel, framing into a reused scratch buffer
// so steady-state subchannel writes do not allocate.
func (m *mux) writeEncapsulated(sub uint8, inner []byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	b := append(m.encBuf[:0],
		byte(tls12.TypeEncapsulated), byte(tls12.VersionTLS12>>8), byte(tls12.VersionTLS12&0xff), 0, 0, sub)
	b = append(b, inner...)
	binary.BigEndian.PutUint16(b[3:5], uint16(1+len(inner)))
	m.encBuf = b
	_, err := m.rw.Write(b)
	return err
}

// subchannel returns the pipe for a subchannel, creating it if needed.
// Newly created subchannels are announced on newSub when announce is
// set (i.e., creation was driven by the peer, not the local endpoint).
func (m *mux) subchannel(id uint8, announce bool) *pipeBuf {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.subs[id]; ok {
		return p
	}
	p := newPipeBuf(func(b []byte) error { return m.writeEncapsulated(id, b) })
	m.subs[id] = p
	if announce && !m.closed {
		select {
		case m.newSub <- id:
		default:
		}
	}
	return p
}

// subchannelIDs returns the currently known subchannel IDs, ascending.
func (m *mux) subchannelIDs() []uint8 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]uint8, 0, len(m.subs))
	for id := range m.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// readLoop demultiplexes inbound records until the transport fails. It
// parses through a reused buffer (feed copies what each pipe keeps), so
// demultiplexing itself allocates nothing per record.
func (m *mux) readLoop() {
	var err error
	rr := newRecordReader(m.rw)
	defer rr.release()
	for {
		var raw tls12.RawRecord
		var wire []byte
		raw, wire, err = rr.next()
		if err != nil {
			break
		}
		if raw.Type == tls12.TypeEncapsulated {
			if len(raw.Payload) < 1 {
				err = errors.New("core: empty Encapsulated record")
				break
			}
			sub := raw.Payload[0]
			m.subchannel(sub, true).feed(raw.Payload[1:])
			continue
		}
		// Everything else belongs to the primary session; hand the
		// full record (header included) to its record layer.
		m.primary.feed(wire)
	}
	m.fail(err)
}

// fail tears down all pipes.
func (m *mux) fail(err error) {
	if err == nil {
		err = io.EOF
	}
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.readErr = err
		close(m.newSub)
	}
	subs := make([]*pipeBuf, 0, len(m.subs))
	for _, p := range m.subs {
		subs = append(subs, p)
	}
	m.mu.Unlock()
	m.primary.fail(err)
	for _, p := range subs {
		p.fail(err)
	}
}

// errSubchannelExhausted is returned when the 1-byte subchannel ID
// space is full.
var errSubchannelExhausted = fmt.Errorf("core: more than %d subchannels", maxSubchannels)
