package core_test

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// snoopConn records the raw bytes crossing the client's transport in
// each direction.
type snoopConn struct {
	net.Conn
	mu  sync.Mutex
	c2s []byte
	s2c []byte
}

func (s *snoopConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	s.mu.Lock()
	s.s2c = append(s.s2c, p[:n]...)
	s.mu.Unlock()
	return n, err
}

func (s *snoopConn) Write(p []byte) (int, error) {
	n, err := s.Conn.Write(p)
	s.mu.Lock()
	s.c2s = append(s.c2s, p[:n]...)
	s.mu.Unlock()
	return n, err
}

func (s *snoopConn) snapshot() (c2s, s2c []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.c2s...), append([]byte(nil), s.s2c...)
}

// transcriptStream accumulates one logical record stream — one
// direction of the primary channel or of one subchannel — and renders
// it as a list of message lines.
type transcriptStream struct {
	buf      []byte // raw record bytes not yet parsed
	hsBuf    []byte // plaintext handshake bytes spanning records
	afterCCS bool
	lines    []string
}

func (ts *transcriptStream) feed(t *testing.T, b []byte) {
	t.Helper()
	ts.buf = append(ts.buf, b...)
	for len(ts.buf) >= 5 {
		typ, length, err := tls12.ParseRecordHeader(ts.buf[:5])
		if err != nil {
			t.Fatalf("transcript stream: %v", err)
		}
		if len(ts.buf) < 5+length {
			return
		}
		payload := ts.buf[5 : 5+length]
		ts.buf = ts.buf[5+length:]
		ts.record(t, typ, payload)
	}
}

func (ts *transcriptStream) record(t *testing.T, typ tls12.ContentType, payload []byte) {
	t.Helper()
	switch {
	case typ == tls12.TypeChangeCipherSpec:
		ts.afterCCS = true
		ts.lines = append(ts.lines, "change_cipher_spec")
	case typ == tls12.TypeHandshake && !ts.afterCCS:
		// Plaintext handshake: messages may span or share records, so
		// reassemble across the stream before naming them.
		ts.hsBuf = append(ts.hsBuf, payload...)
		for len(ts.hsBuf) >= 4 {
			msgLen := int(ts.hsBuf[1])<<16 | int(ts.hsBuf[2])<<8 | int(ts.hsBuf[3])
			if len(ts.hsBuf) < 4+msgLen {
				break
			}
			ts.lines = append(ts.lines, fmt.Sprintf("handshake: %s", tls12.HandshakeType(ts.hsBuf[0])))
			ts.hsBuf = ts.hsBuf[4+msgLen:]
		}
	default:
		// Everything after the stream's CCS is ciphertext; record only
		// the content type, which stays visible on the wire.
		ts.lines = append(ts.lines, fmt.Sprintf("%s: <encrypted>", typ))
	}
}

// TestGoldenTranscript pins the wire-visible structure of a
// 1-middlebox session establishment: which messages cross the client's
// transport, on which channel, in which per-stream order. Byte
// contents (randoms, keys, signatures) vary run to run; the message
// structure must not. Streams are rendered separately because the
// interleaving ACROSS channels depends on goroutine scheduling, while
// the sequence WITHIN each (direction, channel) stream is fixed by the
// protocol. Regenerate with -update after intentional protocol
// changes.
func TestGoldenTranscript(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "mb.example", core.ClientSide)
	left, right := netsim.Pipe()
	snoop := &snoopConn{Conn: left}
	upL, upR := netsim.Pipe()
	go mb.Handle(right, upL) //nolint:errcheck

	srvCh := make(chan *core.Session, 1)
	go func() {
		s, _ := core.Accept(upR, e.serverConfig())
		srvCh <- s
	}()
	sess, err := core.Dial(snoop, e.clientConfig())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// Snapshot before any close traffic: by the time Dial returns, the
	// handshake byte streams are complete and quiescent in both
	// directions (the client consumed every byte its peers sent).
	c2s, s2c := snoop.snapshot()
	sess.Close()
	if srv := <-srvCh; srv != nil {
		srv.Close()
	}

	// Demultiplex each direction into primary + per-subchannel streams,
	// exactly as the mux does: Encapsulated outer records carry a
	// 1-byte subchannel ID plus inner record bytes.
	type key struct {
		dir string
		sub int // -1 = primary channel
	}
	streams := map[key]*transcriptStream{}
	stream := func(k key) *transcriptStream {
		if streams[k] == nil {
			streams[k] = &transcriptStream{}
		}
		return streams[k]
	}
	demux := func(dir string, raw []byte) {
		for len(raw) > 0 {
			if len(raw) < 5 {
				t.Fatalf("%s: %d trailing bytes", dir, len(raw))
			}
			typ, length, err := tls12.ParseRecordHeader(raw[:5])
			if err != nil {
				t.Fatalf("%s outer record: %v", dir, err)
			}
			if len(raw) < 5+length {
				t.Fatalf("%s: truncated outer record", dir)
			}
			if typ == tls12.TypeEncapsulated {
				payload := raw[5 : 5+length]
				if len(payload) < 1 {
					t.Fatalf("%s: empty Encapsulated record", dir)
				}
				stream(key{dir, int(payload[0])}).feed(t, payload[1:])
			} else {
				stream(key{dir, -1}).feed(t, raw[:5+length])
			}
			raw = raw[5+length:]
		}
	}
	demux("client->server", c2s)
	demux("server->client", s2c)

	keys := make([]key, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sub != keys[j].sub {
			return keys[i].sub < keys[j].sub
		}
		return keys[i].dir < keys[j].dir
	})

	var out bytes.Buffer
	fmt.Fprintf(&out, "# Wire-visible message structure of a 1-middlebox mbTLS handshake,\n")
	fmt.Fprintf(&out, "# observed on the client's transport. Grouped by (channel, direction);\n")
	fmt.Fprintf(&out, "# cross-stream interleaving is scheduling-dependent and not recorded.\n")
	fmt.Fprintf(&out, "# Regenerate: go test ./internal/core/ -run TestGoldenTranscript -update\n")
	for _, k := range keys {
		ch := "primary"
		if k.sub >= 0 {
			ch = fmt.Sprintf("subchannel %d", k.sub)
		}
		fmt.Fprintf(&out, "\n[%s %s]\n", ch, k.dir)
		ts := streams[k]
		if len(ts.buf) != 0 || len(ts.hsBuf) != 0 {
			t.Fatalf("stream %v has %d+%d unconsumed bytes", k, len(ts.buf), len(ts.hsBuf))
		}
		for _, l := range ts.lines {
			fmt.Fprintf(&out, "%s\n", l)
		}
	}

	goldenPath := filepath.Join("testdata", "handshake.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("handshake transcript diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
}
