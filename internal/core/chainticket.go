package core

import (
	"repro/internal/enclave"
	"repro/internal/secmem"
	"repro/internal/tls12"
)

// ChainHop is one middlebox's cached resumption state inside a
// ChainTicket: the opaque ticket the middlebox issued, the master
// secret that redeems it, and the identity facts the client verified
// on the original session. A resumed secondary handshake carries no
// certificates or attestation, so these cached facts are what the
// approval checks (RequireMiddleboxAttestation, Approve) see on the
// resumed chain — possession of the ticket's master secret is what
// proves the resuming party is the same middlebox that was verified
// before.
type ChainHop struct {
	// Name is the middlebox certificate's common name, the key the
	// resuming ServerHello echoes back.
	Name string
	// Ticket is the STEK-sealed ticket, opaque to everyone but the
	// issuing middlebox.
	Ticket []byte
	// CipherSuite is the original secondary session's suite.
	CipherSuite uint16
	// MasterSecret redeems the ticket.
	MasterSecret []byte
	// Attested and Measurement cache the original session's verified
	// attestation facts.
	Attested    bool
	Measurement enclave.Measurement
	// LeafPub caches the middlebox's Ed25519 certificate public key
	// from the original session. Resumed secondary handshakes carry no
	// certificates, so this is what the proxysig accountability mode
	// addresses delegations to (and verifies evidence against) on a
	// resumed hop.
	LeafPub []byte
}

// Wipe zeroizes the hop's master secret.
func (h *ChainHop) Wipe() {
	if h == nil {
		return
	}
	secmem.Wipe(h.MasterSecret)
	h.MasterSecret = nil
}

// sessionTicket converts the hop into the tls12 client-side form. The
// returned ticket aliases the hop's slices; wiping either wipes both.
func (h *ChainHop) sessionTicket() *tls12.SessionTicket {
	return &tls12.SessionTicket{
		Ticket:       h.Ticket,
		CipherSuite:  h.CipherSuite,
		MasterSecret: h.MasterSecret,
	}
}

// ChainTicket is a whole session chain's resumption state: the primary
// (end-to-end) session ticket plus one hop ticket per client-side
// middlebox, in path order from the client outward. A reconnecting
// client that presents one resumes every subchannel it has a ticket
// for in a single abbreviated round — no ECDHE, signatures, chain
// verification, or quote verification on the resumed hops. Hops
// whose tickets have gone stale (STEK rotation, middlebox restart)
// fall back to full secondary handshakes individually; the chain
// still comes up.
//
// Server-side middleboxes are not part of a chain ticket: they are
// discovered by anonymous announcements and handshake against the
// server endpoint, so the client has nothing to cache for them.
type ChainTicket struct {
	// Primary resumes the end-to-end session (RFC 5077); nil when the
	// origin server issued no ticket.
	Primary *tls12.SessionTicket
	// Hops holds the per-middlebox resumption state.
	Hops []ChainHop
}

// Hop returns the named hop's cached state, or nil.
func (ct *ChainTicket) Hop(name string) *ChainHop {
	if ct == nil {
		return nil
	}
	for i := range ct.Hops {
		if ct.Hops[i].Name == name {
			return &ct.Hops[i]
		}
	}
	return nil
}

// offeredHopTickets renders the chain's hop tickets into the wire form
// carried inside the ClientHello's MiddleboxSupport extension.
func (ct *ChainTicket) offeredHopTickets() []tls12.HopTicket {
	if ct == nil {
		return nil
	}
	var out []tls12.HopTicket
	for i := range ct.Hops {
		h := &ct.Hops[i]
		if len(h.Ticket) > 0 && len(h.MasterSecret) > 0 {
			out = append(out, tls12.HopTicket{Name: h.Name, Ticket: h.Ticket})
		}
	}
	return out
}

// hopTicketMap renders the chain's hops into the client-side
// resumption map a secondary handshake consults when a ServerHello
// names a resumed hop.
func (ct *ChainTicket) hopTicketMap() map[string]*tls12.SessionTicket {
	if ct == nil || len(ct.Hops) == 0 {
		return nil
	}
	m := make(map[string]*tls12.SessionTicket, len(ct.Hops))
	for i := range ct.Hops {
		h := &ct.Hops[i]
		if len(h.Ticket) > 0 && len(h.MasterSecret) > 0 {
			m[h.Name] = h.sessionTicket()
		}
	}
	return m
}

// Wipe zeroizes every master secret in the chain ticket. A client
// wipes a chain ticket it will not redeem again.
func (ct *ChainTicket) Wipe() {
	if ct == nil {
		return
	}
	ct.Primary.Wipe()
	for i := range ct.Hops {
		ct.Hops[i].Wipe()
	}
}
