package core_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// TestEarlyDataHeldUntilKeys reproduces the False-Start-like scenario
// of §3.5: application data can reach a server-side middlebox before
// the server's MBTLSKeyMaterial does; the middlebox must hold it and
// deliver once keyed, not drop or corrupt it.
func TestEarlyDataHeldUntilKeys(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "cdn.example", core.ServerSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()

	// By the time Dial returns the client may race ahead of the
	// server's key distribution; hammer immediately.
	payload := []byte("data racing the key material")
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("early data corrupted: %q", buf)
	}
}

// TestMiddleboxSurvivesGarbageConnection: random bytes (a port scan, a
// plaintext HTTP client) must be relayed transparently, not crash the
// middlebox or poison its state for later sessions.
func TestMiddleboxSurvivesGarbageConnection(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)

	// Garbage session.
	down1, down1Peer := netsim.Pipe()
	up1, up1Peer := netsim.Pipe()
	go mb.Handle(down1Peer, up1) //nolint:errcheck
	garbage := []byte("GET / HTTP/1.1\r\nHost: nothing-tls-here\r\n\r\n")
	if _, err := down1.Write(garbage); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(garbage))
	if _, err := io.ReadFull(up1Peer, got); err != nil {
		t.Fatalf("garbage not relayed transparently: %v", err)
	}
	if !bytes.Equal(got, garbage) {
		t.Fatal("garbage corrupted in transit")
	}
	down1.Close()
	up1Peer.Close()

	// The same middlebox still serves mbTLS sessions.
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "after garbage", "fine")
}

// TestMiddleboxHandlesAbruptClientClose: a client vanishing
// mid-handshake must tear the session down without leaking the
// middlebox goroutines into a stuck state (verified by the middlebox
// accepting a subsequent session).
func TestMiddleboxHandlesAbruptClientClose(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)
	down, downPeer := netsim.Pipe()
	up, upPeer := netsim.Pipe()
	done := make(chan error, 1)
	go func() { done <- mb.Handle(downPeer, up) }()

	// Half a ClientHello, then gone.
	hello := tls12.RawRecord{Type: tls12.TypeHandshake, Payload: []byte{1, 0, 0, 100, 3, 3}}
	if _, err := down.Write(hello.Marshal()[:8]); err != nil {
		t.Fatal(err)
	}
	down.Close()
	upPeer.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("middlebox session did not terminate after abrupt close")
	}

	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "after abrupt close", "ok")
}

// TestServerRejectsBogusAnnouncementSubchannel: a subchannel that opens
// with something other than a MiddleboxAnnouncement must fail the
// session rather than confuse the server.
func TestServerRejectsBogusAnnouncementSubchannel(t *testing.T) {
	e := newEnv(t)
	clientEnd, serverEnd := netsim.Pipe()

	go func() {
		// A malicious on-path entity injects a bogus subchannel before
		// relaying a legitimate ClientHello. Build the client side
		// manually: first the bogus encapsulated record, then a real
		// legacy handshake.
		inner := tls12.RawRecord{Type: tls12.TypeHandshake, Payload: []byte("not an announcement")}
		payload := append([]byte{9}, inner.Marshal()...)
		bogus := tls12.RawRecord{Type: tls12.TypeEncapsulated, Payload: payload}
		clientEnd.Write(bogus.Marshal()) //nolint:errcheck
		conn := tls12.NewClientConn(clientEnd, &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"})
		conn.Handshake() //nolint:errcheck
	}()

	_, err := core.Accept(serverEnd, e.serverConfig())
	if err == nil {
		t.Fatal("server accepted a session with a bogus announcement subchannel")
	}
}
