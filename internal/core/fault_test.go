package core_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/testutil/goleak"
)

// This file is the property-test surface of the fault-injection
// substrate: every FaultKind at every injection point must surface a
// typed error at an endpoint within its deadline, leak no relay
// goroutines, and — for a fixed seed — reproduce the same error class
// and session counters run after run.

// countingConn counts client→server transport bytes, used to locate
// the end of the handshake byte stream for mid-data fault offsets.
type countingConn struct {
	net.Conn
	wrote atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wrote.Add(int64(n))
	return n, err
}

// buildFaultChain is buildChain with spec injected into the client's
// first hop; the client is fault end A, so DirAToB faults
// client→middlebox traffic.
func buildFaultChain(spec netsim.FaultSpec, mboxes ...*core.Middlebox) (clientEnd, serverEnd net.Conn) {
	left, right := netsim.FaultPipe(spec)
	clientEnd = left
	prev := right
	for _, mb := range mboxes {
		upL, upR := netsim.Pipe()
		go mb.Handle(prev, upL) //nolint:errcheck
		prev = upR
	}
	return clientEnd, prev
}

// measureClientHandshakeBytes runs one clean session and returns how
// many bytes the client transport had written when Dial returned. The
// handshake byte count is deterministic for a fixed env (fixed-size
// X25519 shares and Ed25519 signatures; certificates reused across
// runs), which is what lets a mid-data fault offset land on the same
// wire byte every run.
func measureClientHandshakeBytes(t *testing.T, e *env, mkMb func() *core.Middlebox) int64 {
	t.Helper()
	left, right := netsim.Pipe()
	cc := &countingConn{Conn: left}
	upL, upR := netsim.Pipe()
	mb := mkMb()
	go mb.Handle(right, upL) //nolint:errcheck

	srvCh := make(chan *core.Session, 1)
	go func() {
		s, _ := core.Accept(upR, e.serverConfig())
		srvCh <- s
	}()
	sess, err := core.Dial(cc, e.clientConfig())
	if err != nil {
		t.Fatalf("clean measurement session: %v", err)
	}
	h := cc.wrote.Load()
	sess.Close()
	if srv := <-srvCh; srv != nil {
		srv.Close()
	}
	if h == 0 {
		t.Fatal("measured zero handshake bytes")
	}
	return h
}

// waitGoroutines pins the no-leaked-relay-goroutines property via the
// shared accounting helper in internal/testutil/goleak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	goleak.Wait(t, base)
}

// TestFaultMatrix: every fault kind at every injection point
// (pre-handshake, mid-handshake, mid-data) surfaces a typed error of
// an allowed class at the client within the deadline budget, the
// server-side Accept returns, and no goroutine outlives the session.
func TestFaultMatrix(t *testing.T) {
	e := newEnv(t)
	h := measureClientHandshakeBytes(t, e, func() *core.Middlebox {
		return e.middlebox(t, "mb.example", core.ClientSide)
	})

	kinds := []netsim.FaultKind{
		netsim.FaultDrop, netsim.FaultStall, netsim.FaultReset,
		netsim.FaultCorrupt, netsim.FaultReorder, netsim.FaultPartition,
	}
	points := []struct {
		name    string
		offset  int64
		midData bool
	}{
		{"pre-handshake", 0, false},
		{"mid-handshake", 60, false}, // inside the ClientHello record: a mid-record fault
		{"mid-data", h + 64, true},   // inside the first application-data record
	}
	// Starvation faults surface as deadline expiries; a watchdog close
	// turns a wedged write into a closed-pipe (reset-class) error; and
	// when the peer's symmetric phase deadline fires first, its teardown
	// reaches this end as EOF (clean_close) — which endpoint's timer
	// wins is a scheduling race, so all three classes are legal. The
	// byte-mangling faults surface wherever the damage lands: a MAC or
	// framing failure at whichever layer meets it first, the resulting
	// propagated alert, a peer that gave up, or starvation when the
	// mangled bytes desynchronize framing.
	starve := []core.ErrorClass{core.ClassTimeout, core.ClassReset, core.ClassCleanClose}
	mangle := []core.ErrorClass{
		core.ClassIntegrity, core.ClassProtocol, core.ClassRemoteAlert,
		core.ClassTimeout, core.ClassReset, core.ClassCleanClose,
	}
	allowed := map[netsim.FaultKind][]core.ErrorClass{
		netsim.FaultDrop:      starve,
		netsim.FaultStall:     starve,
		netsim.FaultPartition: starve,
		netsim.FaultReset:     {core.ClassReset, core.ClassTimeout},
		netsim.FaultCorrupt:   mangle,
		netsim.FaultReorder:   mangle,
	}

	for _, kind := range kinds {
		for _, pt := range points {
			t.Run(fmt.Sprintf("%s/%s", kind, pt.name), func(t *testing.T) {
				base := goleak.Base()
				spec := netsim.FaultSpec{Kind: kind, Offset: pt.offset, Seed: 7, Dir: netsim.DirAToB}
				mb := e.middlebox(t, "mb.example", core.ClientSide)
				clientEnd, serverEnd := buildFaultChain(spec, mb)

				ccfg := e.clientConfig()
				ccfg.HandshakeTimeout = 1500 * time.Millisecond
				scfg := e.serverConfig()
				scfg.HandshakeTimeout = 1500 * time.Millisecond

				srvCh := make(chan *core.Session, 1)
				go func() {
					s, _ := core.Accept(serverEnd, scfg)
					srvCh <- s
				}()

				start := time.Now()
				sess, err := core.Dial(clientEnd, ccfg)
				if pt.midData {
					if err != nil {
						t.Fatalf("handshake should clear a fault at offset %d: %v", pt.offset, err)
					}
					// Watchdog: a wedged write (FaultStall) can only be
					// unblocked by closing the transport.
					watchdog := time.AfterFunc(4*time.Second, func() { sess.Close() })
					defer watchdog.Stop()
					sess.SetReadDeadline(time.Now().Add(1500 * time.Millisecond)) //nolint:errcheck
					payload := make([]byte, 800)
					_, err = sess.Write(payload)
					if err == nil {
						var buf [64]byte
						_, err = sess.Read(buf[:])
					}
				}
				elapsed := time.Since(start)
				if err == nil {
					t.Fatal("injected fault produced no error")
				}
				if elapsed > 8*time.Second {
					t.Fatalf("error took %v to surface", elapsed)
				}
				cls := core.ClassifyError(err)
				ok := false
				for _, c := range allowed[kind] {
					ok = ok || c == cls
				}
				if !ok {
					t.Fatalf("error class %s (err: %v) not allowed for %s", cls, err, kind)
				}

				if sess != nil {
					if r := sess.Stats().TeardownReason; r == "" {
						t.Fatal("failed session has no teardown reason")
					}
					sess.Close()
				}
				clientEnd.Close()
				serverEnd.Close()
				select {
				case srv := <-srvCh:
					if srv != nil {
						srv.Close()
					}
				case <-time.After(8 * time.Second):
					t.Fatal("server Accept never returned")
				}
				waitGoroutines(t, base)
			})
		}
	}
}

// TestFaultDeterministicReplay: acceptance criterion of the substrate —
// the same seed over the same traffic yields the same error class, the
// same teardown reason, and the same counters, ten runs out of ten.
func TestFaultDeterministicReplay(t *testing.T) {
	e := newEnv(t)
	mkMb := func() *core.Middlebox { return e.middlebox(t, "mb.example", core.ClientSide) }
	h := measureClientHandshakeBytes(t, e, mkMb)
	spec := netsim.FaultSpec{
		Kind:   netsim.FaultCorrupt,
		Offset: h + 200, // inside the 800-byte application record's ciphertext
		Seed:   99,
		Stride: 64,
		Dir:    netsim.DirAToB,
	}

	type outcome struct {
		class    core.ErrorClass
		teardown string
		records  int64
		faults   int64
		mbFaults int64
	}
	var outcomes []outcome
	for run := 0; run < 10; run++ {
		mb := mkMb()
		clientEnd, serverEnd := buildFaultChain(spec, mb)
		srvCh := make(chan *core.Session, 1)
		go func() {
			s, _ := core.Accept(serverEnd, e.serverConfig())
			srvCh <- s
		}()
		sess, err := core.Dial(clientEnd, e.clientConfig())
		if err != nil {
			t.Fatalf("run %d: handshake must clear a mid-data fault: %v", run, err)
		}
		// One Write → one record, so the corruption lands at a fixed
		// position inside a fixed record layout.
		if _, err := sess.Write(make([]byte, 800)); err != nil {
			t.Fatalf("run %d: write: %v", run, err)
		}
		sess.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		var buf [64]byte
		_, rerr := sess.Read(buf[:])
		if rerr == nil {
			t.Fatalf("run %d: corrupted record produced no read error", run)
		}
		stats := sess.Stats()
		outcomes = append(outcomes, outcome{
			class:    core.ClassifyError(rerr),
			teardown: stats.TeardownReason,
			records:  stats.RecordsRelayed,
			faults:   stats.FaultsObserved,
			mbFaults: mb.Stats().FaultsObserved,
		})
		sess.Close()
		clientEnd.Close()
		serverEnd.Close()
		if srv := <-srvCh; srv != nil {
			srv.Close()
		}
	}

	first := outcomes[0]
	if first.class != core.ClassRemoteAlert {
		t.Fatalf("corrupted hop record surfaced as %s (%+v), want the middlebox's propagated alert", first.class, first)
	}
	if !strings.HasPrefix(first.teardown, "remote_alert:") {
		t.Fatalf("teardown reason %q lacks the alert description", first.teardown)
	}
	if first.faults != 1 || first.mbFaults != 1 {
		t.Fatalf("fault counters = %+v, want exactly one at client and middlebox", first)
	}
	for i, o := range outcomes[1:] {
		if o != first {
			t.Fatalf("run %d diverged: %+v vs run 0 %+v — seeded faults must replay exactly", i+1, o, first)
		}
	}
}

// TestMidSessionHopDeath: a middlebox whose upstream hop dies
// mid-session must propagate a fatal alert down the chain — the
// client, blocked in Read, fails fast on a protocol-level signal, not
// a deadline — then tear down without leaking relay goroutines.
func TestMidSessionHopDeath(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	mb := e.middlebox(t, "mb.example", core.ClientSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	exchange(t, client, server, "steady state", "ack")

	readErr := make(chan error, 1)
	go func() {
		var buf [32]byte
		_, err := client.Read(buf[:])
		readErr <- err
	}()
	// Kill the middlebox→server hop with a reset. The server transport
	// conn is that hop's other end.
	server.SetReadDeadline(time.Now().Add(time.Millisecond)) //nolint:errcheck
	serverTransportOf(t, mb, server).Reset()

	select {
	case err := <-readErr:
		cls := core.ClassifyError(err)
		if cls != core.ClassRemoteAlert {
			t.Fatalf("client read after hop death = %v (class %s), want the propagated alert", err, cls)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client read still blocked 5s after hop death")
	}
	st := client.Stats()
	if !strings.HasPrefix(st.TeardownReason, "remote_alert:") || st.FaultsObserved != 1 {
		t.Fatalf("client stats after hop death: %+v", st)
	}
	if mb.Stats().FaultsObserved != 1 {
		t.Fatalf("middlebox stats: %+v", mb.Stats())
	}
	client.Close()
	server.Close()
	waitGoroutines(t, base)
}

// serverTransportOf digs the *netsim.Conn out of the server session's
// transport so the test can reset the mb→server hop from outside.
func serverTransportOf(t *testing.T, _ *core.Middlebox, server *core.Session) *netsim.Conn {
	t.Helper()
	nc, ok := server.Transport().(*netsim.Conn)
	if !ok {
		t.Fatalf("server transport is %T, want *netsim.Conn", server.Transport())
	}
	return nc
}

// TestHandshakePhaseDeadline: a peer that goes silent pre-handshake
// produces a typed HandshakeTimeoutError naming the stuck phase, and
// the dialer's goroutines unwind.
func TestHandshakePhaseDeadline(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	clientEnd, serverEnd := netsim.Pipe()
	defer serverEnd.Close()

	ccfg := e.clientConfig()
	ccfg.HandshakeTimeout = 200 * time.Millisecond
	start := time.Now()
	_, err := core.Dial(clientEnd, ccfg)
	if err == nil {
		t.Fatal("Dial against a silent peer succeeded")
	}
	var hte *core.HandshakeTimeoutError
	if !errors.As(err, &hte) {
		t.Fatalf("err = %v (%T), want *HandshakeTimeoutError", err, err)
	}
	if hte.Phase != core.PhasePrimaryHandshake {
		t.Fatalf("timed-out phase = %s, want %s", hte.Phase, core.PhasePrimaryHandshake)
	}
	if !hte.Timeout() {
		t.Fatal("HandshakeTimeoutError must satisfy net.Error.Timeout")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	clientEnd.Close()
	waitGoroutines(t, base)
}

// TestDialRetryRecoversFromTransientFaults: reset-class failures are
// retried with backoff; the third, clean path succeeds.
func TestDialRetryRecoversFromTransientFaults(t *testing.T) {
	e := newEnv(t)
	srvSessions := make(chan *core.Session, 8)
	attempts := 0
	dial := func() (net.Conn, error) {
		attempts++
		var spec netsim.FaultSpec
		if attempts < 3 {
			spec = netsim.FaultSpec{Kind: netsim.FaultReset, Dir: netsim.DirAToB}
		}
		mb := e.middlebox(t, "mb.example", core.ClientSide)
		clientEnd, serverEnd := buildFaultChain(spec, mb)
		scfg := e.serverConfig()
		scfg.HandshakeTimeout = 2 * time.Second
		go func() {
			if s, err := core.Accept(serverEnd, scfg); err == nil {
				srvSessions <- s
			}
		}()
		return clientEnd, nil
	}
	ccfg := e.clientConfig()
	ccfg.HandshakeTimeout = 2 * time.Second
	sess, err := core.DialRetry(dial, ccfg, core.RetryPolicy{Attempts: 5, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer sess.Close()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two resets, one success)", attempts)
	}
	srv := <-srvSessions
	defer srv.Close()
	exchange(t, sess, srv, "after retry", "ok")
}

// TestDialRetryStopsOnDeterministicFailure: a failure retrying cannot
// fix (the application vetoing the middlebox) aborts on attempt one.
func TestDialRetryStopsOnDeterministicFailure(t *testing.T) {
	e := newEnv(t)
	attempts := 0
	dial := func() (net.Conn, error) {
		attempts++
		mb := e.middlebox(t, "unwanted.example", core.ClientSide)
		clientEnd, serverEnd := buildFaultChain(netsim.FaultSpec{}, mb)
		go func() {
			core.Accept(serverEnd, e.serverConfig()) //nolint:errcheck
		}()
		return clientEnd, nil
	}
	ccfg := e.clientConfig()
	ccfg.Approve = func(core.MiddleboxSummary) bool { return false }
	if _, err := core.DialRetry(dial, ccfg, core.RetryPolicy{Attempts: 5, Backoff: time.Millisecond}); err == nil {
		t.Fatal("DialRetry succeeded past an application veto")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (deterministic failures must not retry)", attempts)
	}
}

// TestClassifyError pins the classification table the teardown paths
// and retry predicates depend on.
func TestClassifyError(t *testing.T) {
	_, closed := netsim.Pipe()
	closed.Close()
	_, err := closed.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read on closed pipe succeeded")
	}

	cases := []struct {
		err  error
		want core.ErrorClass
	}{
		{nil, core.ClassOK},
		{fmt.Errorf("wrap: %w", &core.HandshakeTimeoutError{Phase: core.PhaseKeyDistribution, Limit: time.Second}), core.ClassTimeout},
	}
	for _, c := range cases {
		if got := core.ClassifyError(c.err); got != c.want {
			t.Errorf("ClassifyError(%v) = %s, want %s", c.err, got, c.want)
		}
	}
	if got := core.ClassifyError(err); got != core.ClassCleanClose && got != core.ClassReset {
		t.Errorf("closed-pipe read classified as %s", got)
	}
	if core.ClassTimeout.Transient() != true || core.ClassReset.Transient() != true {
		t.Error("timeout and reset must be transient")
	}
	if core.ClassIntegrity.Transient() || core.ClassRemoteAlert.Transient() || core.ClassCleanClose.Transient() {
		t.Error("deterministic failure classes must not be transient")
	}
}

// TestRetryPolicyDeterministicBackoff: the backoff schedule is a pure
// function of the policy — reproducibility over jitter.
func TestRetryPolicyDeterministicBackoff(t *testing.T) {
	rp := core.RetryPolicy{Attempts: 5, Backoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	want := []time.Duration{100, 200, 300, 300} // ms, capped
	for i, w := range want {
		if got := rp.Delay(i); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}
