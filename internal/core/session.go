package core

import (
	"net"
	"sync/atomic"
	"time"

	"repro/internal/tls12"
)

// SessionStats is the observable counter surface of one party's view
// of a session chain: how much it moved, what it resealed, what went
// wrong, and why the session ended. Endpoints expose it via
// Session.Stats; the middlebox aggregate lives in MiddleboxStats.
// Every field is a deterministic function of the traffic (and, under
// injected faults, of the fault seed) — never of batch boundaries or
// goroutine scheduling — so a seeded fault run reproduces its stats
// exactly.
type SessionStats struct {
	// RecordsRelayed counts records crossing this party's record
	// layer, both directions.
	RecordsRelayed int64
	// Reseals counts records opened under one hop key and resealed
	// under another. Always zero at an endpoint; populated for
	// middleboxes.
	Reseals int64
	// FaultsObserved counts fault-classified errors observed (at most
	// one per session at an endpoint: the one that killed it).
	FaultsObserved int64
	// TeardownReason classifies the error that ended the session
	// (ClassifyError vocabulary, e.g. "clean_close",
	// "remote_alert:bad_record_mac"); empty while the session lives.
	TeardownReason string
	// ResumedPrimary counts primary handshakes resumed from a session
	// ticket (0 or 1 at an endpoint).
	ResumedPrimary int64
	// ResumedHops counts secondary handshakes resumed from chain-ticket
	// hop tickets.
	ResumedHops int64
	// AttestSessions and ProxySigSessions count sessions by negotiated
	// accountability mode (0 or 1 at an endpoint; the session-host
	// aggregate sums them across sessions).
	AttestSessions   int64
	ProxySigSessions int64
}

// Session is an established mbTLS session from an endpoint's
// perspective. It carries application data over the primary session's
// connection, whose record layer holds either the end-to-end session
// keys (no middleboxes on this side) or the endpoint's adjacent per-hop
// keys.
type Session struct {
	conn      *tls12.Conn
	m         *mux
	transport net.Conn
	mboxes    []MiddleboxSummary

	// Accountability state, fixed at establishment time: the mode the
	// session ran, and (proxysig only) the close-time audit obligation.
	acct  Accountability
	audit *sessionAudit

	// Fast-path provenance, fixed at establishment time.
	resumedPrimary bool
	resumedHops    int

	faults   atomic.Int64
	teardown atomic.Pointer[string]
}

// noteErr records the first teardown-worthy error; fault-classified
// ones also count toward FaultsObserved. Only the first error is
// recorded, so the stats are independent of how many reads race in
// after the session dies.
func (s *Session) noteErr(err error) {
	cls := ClassifyError(err)
	if cls == ClassOK {
		return
	}
	reason := describeTeardown(err)
	if s.teardown.CompareAndSwap(nil, &reason) && cls.isFault() {
		s.faults.Add(1)
	}
}

// Read reads application data.
func (s *Session) Read(p []byte) (int, error) {
	n, err := s.conn.Read(p)
	if err != nil {
		s.noteErr(err)
	}
	return n, err
}

// Write writes application data.
func (s *Session) Write(p []byte) (int, error) {
	n, err := s.conn.Write(p)
	if err != nil {
		s.noteErr(err)
	}
	return n, err
}

// Close settles the session's accountability audit (proxysig: collect
// and verify each hop's signed evidence, then wipe the delegation
// key), sends close_notify, and closes the transport. An
// accountability failure is reported in preference to transport close
// errors: the session still tears down, but Close returns the
// AccountabilityError and the teardown reason records it.
func (s *Session) Close() error {
	evErr := s.collectEvidence()
	if evErr != nil {
		s.noteErr(evErr)
	}
	local := ClassCleanClose.String()
	s.teardown.CompareAndSwap(nil, &local)
	err := s.conn.Close()
	if s.transport != nil {
		if cerr := s.transport.Close(); err == nil {
			err = cerr
		}
	}
	if evErr != nil {
		return evErr
	}
	return err
}

// Transport returns the session's underlying transport conn, letting
// connection managers (and fault-injection harnesses) reach below the
// session — e.g. to inspect or kill the first hop.
func (s *Session) Transport() net.Conn { return s.transport }

// SetDeadline bounds both directions, like net.Conn.
func (s *Session) SetDeadline(t time.Time) error { return s.transport.SetDeadline(t) }

// SetReadDeadline bounds blocked reads on the underlying transport,
// so a mid-session stall (a hop that silently stops delivering)
// surfaces as a timeout error instead of hanging forever.
func (s *Session) SetReadDeadline(t time.Time) error { return s.transport.SetReadDeadline(t) }

// SetWriteDeadline forwards to the transport.
func (s *Session) SetWriteDeadline(t time.Time) error { return s.transport.SetWriteDeadline(t) }

// Stats snapshots the session's counters.
func (s *Session) Stats() SessionStats {
	in, out := s.conn.RecordCounts()
	st := SessionStats{
		RecordsRelayed: in + out,
		FaultsObserved: s.faults.Load(),
		ResumedHops:    int64(s.resumedHops),
	}
	if s.resumedPrimary {
		st.ResumedPrimary = 1
	}
	if s.acct == AccountProxySig {
		st.ProxySigSessions = 1
	} else {
		st.AttestSessions = 1
	}
	if r := s.teardown.Load(); r != nil {
		st.TeardownReason = *r
	}
	return st
}

// ConnectionState returns the primary session's state.
func (s *Session) ConnectionState() tls12.ConnectionState { return s.conn.ConnectionState() }

// Middleboxes lists this endpoint's session middleboxes in path order
// (from this endpoint outward toward the bridge).
func (s *Session) Middleboxes() []MiddleboxSummary {
	out := make([]MiddleboxSummary, len(s.mboxes))
	copy(out, s.mboxes)
	return out
}

// ExportPrimaryKeys exports the end-to-end (bridge) session keys. An
// endpoint always knows these — it ran the primary handshake — which
// is precisely why the paper warns that clients can read or inject
// traffic on any hop of their own side (§4.2, "Middlebox State
// Poisoning"). The adversary harness uses this to demonstrate the
// cache-poisoning limitation; exporters for key-logging tooling are
// the benign use.
func (s *Session) ExportPrimaryKeys() (*tls12.SessionKeys, error) {
	return s.conn.ExportSessionKeys()
}
