package core

import (
	"net"

	"repro/internal/tls12"
)

// Session is an established mbTLS session from an endpoint's
// perspective. It carries application data over the primary session's
// connection, whose record layer holds either the end-to-end session
// keys (no middleboxes on this side) or the endpoint's adjacent per-hop
// keys.
type Session struct {
	conn      *tls12.Conn
	m         *mux
	transport net.Conn
	mboxes    []MiddleboxSummary
}

// Read reads application data.
func (s *Session) Read(p []byte) (int, error) { return s.conn.Read(p) }

// Write writes application data.
func (s *Session) Write(p []byte) (int, error) { return s.conn.Write(p) }

// Close sends close_notify and closes the transport.
func (s *Session) Close() error {
	err := s.conn.Close()
	if s.transport != nil {
		if cerr := s.transport.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ConnectionState returns the primary session's state.
func (s *Session) ConnectionState() tls12.ConnectionState { return s.conn.ConnectionState() }

// Middleboxes lists this endpoint's session middleboxes in path order
// (from this endpoint outward toward the bridge).
func (s *Session) Middleboxes() []MiddleboxSummary {
	out := make([]MiddleboxSummary, len(s.mboxes))
	copy(out, s.mboxes)
	return out
}

// ExportPrimaryKeys exports the end-to-end (bridge) session keys. An
// endpoint always knows these — it ran the primary handshake — which
// is precisely why the paper warns that clients can read or inject
// traffic on any hop of their own side (§4.2, "Middlebox State
// Poisoning"). The adversary harness uses this to demonstrate the
// cache-poisoning limitation; exporters for key-logging tooling are
// the benign use.
func (s *Session) ExportPrimaryKeys() (*tls12.SessionKeys, error) {
	return s.conn.ExportSessionKeys()
}
