package core

import (
	"io"
	"sync"

	"repro/internal/tls12"
)

// relayReadBufSize sizes a recordReader's buffer: room for a few
// maximum-size records so one transport Read feeds several relay
// iterations.
const relayReadBufSize = 4 * tls12.MaxRecordWireSize

// relayReadBufs recycles recordReader buffers across sessions. At
// relayReadBufSize each, these are the largest per-connection
// allocations in the process; under session churn, allocating (and
// zeroing) one per mux and per relay direction dominated the
// allocator. The buffers hold only transport wire bytes (ciphertext
// and public handshake framing), so reuse across sessions leaks
// nothing a transport peer didn't already see.
var relayReadBufs = sync.Pool{
	New: func() any {
		b := make([]byte, relayReadBufSize)
		return &b
	},
}

// recordReader incrementally parses TLS records out of a byte stream
// through one reused buffer, so the relay loop can drain every record
// already buffered — the unit that becomes one data-plane batch and one
// vectored write — without an allocation or an extra Read per record.
//
// Ownership: the RawRecord returned by next aliases the internal
// buffer. It stays valid until the first next call that follows a
// buffered() == false observation (only then may the buffer compact),
// so the drain pattern "next once, then next again while buffered()"
// keeps every record of a batch alive together.
type recordReader struct {
	src io.Reader
	buf []byte
	bp  *[]byte // pool token; nil after release
	r   int     // parse position
	w   int     // fill position
}

func newRecordReader(src io.Reader) *recordReader {
	bp := relayReadBufs.Get().(*[]byte)
	return &recordReader{src: src, buf: *bp, bp: bp}
}

// release returns the buffer to the pool. Call only when every record
// handed out by next has been consumed (the relay and demux loops call
// it on exit, when the session direction is done).
func (rr *recordReader) release() {
	if rr.bp == nil {
		return
	}
	relayReadBufs.Put(rr.bp)
	rr.bp = nil
	rr.buf = nil
	rr.r, rr.w = 0, 0
}

// detach hands the current buffer to the caller and replaces it with a
// fresh one, copying any unparsed leftover bytes across. The pipeline
// uses it at submit: the records of the batch keep aliasing the old
// buffer, which the returned pool token now owns — the commit stage
// returns it to relayReadBufs once the batch's output is on the wire —
// while the reader continues parsing from the fresh buffer.
//
// Callers must not detach while any already-returned record that is
// NOT part of the detached batch is still live: a tail record parsed
// after the batch also aliases the old buffer, so a batch ended by a
// tail must take the serial (no-detach) path instead.
func (rr *recordReader) detach() *[]byte {
	old := rr.bp
	bp := relayReadBufs.Get().(*[]byte)
	n := copy(*bp, rr.buf[rr.r:rr.w])
	rr.buf = *bp
	rr.bp = bp
	rr.r, rr.w = 0, n
	return old
}

// peekHeader parses the header at the current position without
// consuming it. ok is false when fewer than a full record's bytes are
// buffered.
func (rr *recordReader) peekHeader() (typ tls12.ContentType, length int, ok bool, err error) {
	if rr.w-rr.r < tls12.RecordHeaderLen {
		return 0, 0, false, nil
	}
	typ, length, err = tls12.ParseRecordHeader(rr.buf[rr.r : rr.r+tls12.RecordHeaderLen])
	if err != nil {
		return 0, 0, false, err
	}
	if rr.w-rr.r < tls12.RecordHeaderLen+length {
		return 0, 0, false, nil
	}
	return typ, length, true, nil
}

// buffered reports whether a complete record can be returned without
// reading from the transport or moving already-returned records.
func (rr *recordReader) buffered() bool {
	_, _, ok, err := rr.peekHeader()
	return ok && err == nil
}

// next returns the next record. The returned record and wire slices
// alias the internal buffer; see the type comment for lifetime rules.
// wire is the record's full framing (header plus body), for forwarding
// without re-marshaling.
func (rr *recordReader) next() (rec tls12.RawRecord, wire []byte, err error) {
	for {
		typ, length, ok, err := rr.peekHeader()
		if err != nil {
			return tls12.RawRecord{}, nil, err
		}
		if ok {
			start := rr.r
			rr.r += tls12.RecordHeaderLen + length
			body := rr.buf[start+tls12.RecordHeaderLen : rr.r]
			return tls12.RawRecord{Type: typ, Payload: body}, rr.buf[start:rr.r], nil
		}
		// Incomplete record: compact (previously returned records are no
		// longer protected once we get here) and refill.
		if rr.r > 0 {
			copy(rr.buf, rr.buf[rr.r:rr.w])
			rr.w -= rr.r
			rr.r = 0
		}
		n, rerr := rr.src.Read(rr.buf[rr.w:])
		rr.w += n
		if n == 0 && rerr != nil {
			if rerr == io.EOF && rr.w > 0 {
				rerr = io.ErrUnexpectedEOF
			}
			return tls12.RawRecord{}, nil, rerr
		}
	}
}
