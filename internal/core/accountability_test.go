package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hsfast"
	"repro/internal/testutil/goleak"
	"repro/internal/tls12"
)

// This file exercises the pluggable accountability layer: proxysig
// sessions end to end (client-side, server-side, mixed, resumed), the
// adversarial failure paths (expired/tampered delegations, forged
// evidence, mode mismatch), and the config-validation seams. The
// attestation mode's wire behavior is pinned separately by the golden
// transcript test.

func proxySigClient(e *env) *core.ClientConfig {
	ccfg := e.clientConfig()
	ccfg.Accountability = core.AccountProxySig
	return ccfg
}

func proxySigServer(e *env) *core.ServerConfig {
	scfg := e.serverConfig()
	scfg.Accountability = core.AccountProxySig
	return scfg
}

func proxySigOpt(cfg *core.MiddleboxConfig) {
	cfg.Accountability = core.AccountProxySig
}

func TestProxySigClientSideSession(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	mb := e.middlebox(t, "mb.example", core.ClientSide, proxySigOpt)
	client, server := runSession(t, proxySigClient(e), e.serverConfig(), mb)
	exchange(t, client, server, "proxysig data", "ok")

	if st := client.Stats(); st.ProxySigSessions != 1 || st.AttestSessions != 0 {
		t.Fatalf("client stats = %+v, want a proxysig session", st)
	}
	// The auditing endpoint closes first: evidence collection needs the
	// chain alive.
	if err := client.Close(); err != nil {
		t.Fatalf("client close (evidence settlement): %v", err)
	}
	server.Close()
	st := mb.Stats()
	if st.ProxySig != 1 {
		t.Fatalf("middlebox stats = %+v, want one proxysig session", st)
	}
	if st.EvidenceSigned != 1 {
		t.Fatalf("middlebox stats = %+v, want one signed evidence statement", st)
	}
	waitGoroutines(t, base)
}

func TestProxySigServerSideSession(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	mb := e.middlebox(t, "srv-mb.example", core.ServerSide, proxySigOpt)
	client, server := runSession(t, e.clientConfig(), proxySigServer(e), mb)
	exchange(t, client, server, "server-side proxysig", "ok")

	if st := server.Stats(); st.ProxySigSessions != 1 {
		t.Fatalf("server stats = %+v, want a proxysig session", st)
	}
	if err := server.Close(); err != nil {
		t.Fatalf("server close (evidence settlement): %v", err)
	}
	client.Close()
	if st := mb.Stats(); st.ProxySig != 1 || st.EvidenceSigned != 1 {
		t.Fatalf("middlebox stats = %+v, want one proxysig session with evidence", st)
	}
	waitGoroutines(t, base)
}

func TestProxySigMixedChain(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	cmb := e.middlebox(t, "client-mb.example", core.ClientSide, proxySigOpt)
	smb := e.middlebox(t, "server-mb.example", core.ServerSide, proxySigOpt)
	client, server := runSession(t, proxySigClient(e), proxySigServer(e), cmb, smb)
	exchange(t, client, server, "both sides audited", "ok")

	// Each endpoint audits its own side. The client closes first and
	// must settle cleanly; the server's settlement races the chain
	// teardown the client's close started, so only its return is
	// awaited, not its verdict.
	if err := client.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	server.Close() //nolint:errcheck
	if st := cmb.Stats(); st.ProxySig != 1 || st.EvidenceSigned != 1 {
		t.Fatalf("client-side middlebox stats = %+v", st)
	}
	if st := smb.Stats(); st.ProxySig != 1 {
		t.Fatalf("server-side middlebox stats = %+v", st)
	}
	waitGoroutines(t, base)
}

// TestProxySigEvidenceCountsTraffic pins that the evidence digests are
// fed: a session that moved records yields evidence whose record
// counts the endpoint accepted (a middlebox that under- or over-counts
// would sign different digests next time the endpoint compares runs).
func TestProxySigEvidenceCountsTraffic(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "mb.example", core.ClientSide, proxySigOpt)
	client, server := runSession(t, proxySigClient(e), e.serverConfig(), mb)
	for i := 0; i < 3; i++ {
		exchange(t, client, server, "ping", "pong")
	}
	if err := client.Close(); err != nil {
		t.Fatalf("close after traffic: %v", err)
	}
	server.Close()
	if st := mb.Stats(); st.RecordsRekeyed == 0 {
		t.Fatalf("middlebox resealed nothing: %+v", st)
	}
}

func TestProxySigExpiredDelegation(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	mb := e.middlebox(t, "mb.example", core.ClientSide, proxySigOpt)
	ccfg := proxySigClient(e)
	// Back-date the endpoint clock so the warrant's NotAfter is an hour
	// in the past by the time the middlebox validates it.
	ccfg.AccountabilityClock = func() time.Time { return time.Now().Add(-2 * time.Hour) }

	clientEnd, serverEnd := buildChain(mb)
	srvCh := make(chan *core.Session, 1)
	go func() {
		s, _ := core.Accept(serverEnd, e.serverConfig())
		srvCh <- s
	}()
	_, err := core.Dial(clientEnd, ccfg)
	if err == nil {
		t.Fatal("Dial with an expired delegation succeeded")
	}
	if cls := core.ClassifyError(err); cls != core.ClassRemoteAlert {
		t.Fatalf("expired delegation classified as %s (err: %v), want %s", cls, err, core.ClassRemoteAlert)
	}
	var ae *tls12.AlertError
	if !errors.As(err, &ae) || ae.Description != tls12.AlertCertificateExpired {
		t.Fatalf("err = %v, want a remote certificate_expired alert", err)
	}
	clientEnd.Close()
	serverEnd.Close()
	if s := <-srvCh; s != nil {
		s.Close()
	}
	waitGoroutines(t, base)
}

func TestProxySigTamperedDelegation(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	// The middlebox substitutes the warrant it echoes in evidence: its
	// signature stays honest, but the bytes no longer match what the
	// endpoint minted.
	mb := e.middlebox(t, "mb.example", core.ClientSide, proxySigOpt, func(cfg *core.MiddleboxConfig) {
		cfg.AccountabilityFaults = &core.AccountabilityFaults{
			MutateDelegation: func(d []byte) []byte {
				d = append([]byte(nil), d...)
				d[1] ^= 0x80 // flip a bit inside the warrant body
				return d
			},
		}
	})
	client, server := runSession(t, proxySigClient(e), e.serverConfig(), mb)
	exchange(t, client, server, "data", "ok")

	err := client.Close()
	if err == nil {
		t.Fatal("Close accepted evidence echoing a substituted delegation")
	}
	var ace *core.AccountabilityError
	if !errors.As(err, &ace) {
		t.Fatalf("err = %v (%T), want *AccountabilityError", err, err)
	}
	if cls := core.ClassifyError(err); cls != core.ClassIntegrity {
		t.Fatalf("tampered delegation classified as %s, want %s", cls, core.ClassIntegrity)
	}
	if r := client.Stats().TeardownReason; !strings.HasPrefix(r, "integrity") {
		t.Fatalf("teardown reason %q, want an integrity classification", r)
	}
	server.Close()
	waitGoroutines(t, base)
}

func TestProxySigForgedEvidence(t *testing.T) {
	e := newEnv(t)
	base := goleak.Base()
	// The middlebox corrupts its evidence signature — indistinguishable
	// from evidence forged by a party without the certificate key.
	mb := e.middlebox(t, "mb.example", core.ClientSide, proxySigOpt, func(cfg *core.MiddleboxConfig) {
		cfg.AccountabilityFaults = &core.AccountabilityFaults{
			MutateEvidence: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				b[len(b)-1] ^= 0x01 // corrupt the trailing signature byte
				return b
			},
		}
	})
	client, server := runSession(t, proxySigClient(e), e.serverConfig(), mb)
	exchange(t, client, server, "data", "ok")

	err := client.Close()
	if err == nil {
		t.Fatal("Close accepted evidence with a forged signature")
	}
	var ace *core.AccountabilityError
	if !errors.As(err, &ace) {
		t.Fatalf("err = %v (%T), want *AccountabilityError", err, err)
	}
	if cls := core.ClassifyError(err); cls != core.ClassIntegrity {
		t.Fatalf("forged evidence classified as %s, want %s", cls, core.ClassIntegrity)
	}
	server.Close()
	waitGoroutines(t, base)
}

// TestAccountabilityMismatch covers both directions of the negotiation
// mismatch on both middlebox sides: the refused endpoint fails its
// establishment with the middlebox's accountability_mismatch alert.
func TestAccountabilityMismatch(t *testing.T) {
	cases := []struct {
		name     string
		side     core.Mode
		mbProxy  bool // middlebox configured for proxysig
		endProxy bool // endpoint negotiates proxysig
	}{
		{"client-side/attest-mb-proxysig-client", core.ClientSide, false, true},
		{"client-side/proxysig-mb-attest-client", core.ClientSide, true, false},
		{"server-side/attest-mb-proxysig-server", core.ServerSide, false, true},
		{"server-side/proxysig-mb-attest-server", core.ServerSide, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			base := goleak.Base()
			var opts []func(*core.MiddleboxConfig)
			if tc.mbProxy {
				opts = append(opts, proxySigOpt)
			}
			mb := e.middlebox(t, "mb.example", tc.side, opts...)
			ccfg := e.clientConfig()
			scfg := e.serverConfig()
			if tc.endProxy {
				if tc.side == core.ClientSide {
					ccfg.Accountability = core.AccountProxySig
				} else {
					scfg.Accountability = core.AccountProxySig
				}
			}
			clientEnd, serverEnd := buildChain(mb)
			type res struct {
				sess *core.Session
				err  error
			}
			cch := make(chan res, 1)
			sch := make(chan res, 1)
			go func() {
				s, err := core.Dial(clientEnd, ccfg)
				cch <- res{s, err}
			}()
			go func() {
				s, err := core.Accept(serverEnd, scfg)
				sch <- res{s, err}
			}()
			cr, sr := <-cch, <-sch

			// The endpoint on the middlebox's side is the one refused.
			refused := cr.err
			if tc.side == core.ServerSide {
				refused = sr.err
			}
			if refused == nil {
				t.Fatal("mismatched accountability modes established a session")
			}
			if cls := core.ClassifyError(refused); cls != core.ClassRemoteAlert {
				t.Fatalf("mismatch classified as %s (err: %v), want %s", cls, refused, core.ClassRemoteAlert)
			}
			var ae *tls12.AlertError
			if !errors.As(refused, &ae) || ae.Description != tls12.AlertAccountabilityMismatch {
				t.Fatalf("err = %v, want a remote accountability_mismatch alert", refused)
			}
			if cr.sess != nil {
				cr.sess.Close()
			}
			if sr.sess != nil {
				sr.sess.Close()
			}
			clientEnd.Close()
			serverEnd.Close()
			waitGoroutines(t, base)
		})
	}
}

func TestProxySigConfigConflicts(t *testing.T) {
	e := newEnv(t)
	clientEnd, serverEnd := buildChain()
	defer clientEnd.Close()
	defer serverEnd.Close()

	ccfg := proxySigClient(e)
	ccfg.RequireMiddleboxAttestation = true
	if _, err := core.Dial(clientEnd, ccfg); err == nil || !strings.Contains(err.Error(), "RequireMiddleboxAttestation") {
		t.Fatalf("proxysig + RequireMiddleboxAttestation: err = %v, want a config error", err)
	}

	ccfg = proxySigClient(e)
	ccfg.NeighborKeys = true
	if _, err := core.Dial(clientEnd, ccfg); err == nil || !strings.Contains(err.Error(), "neighbor") {
		t.Fatalf("proxysig + NeighborKeys: err = %v, want a config error", err)
	}

	scfg := proxySigServer(e)
	scfg.RequireMiddleboxAttestation = true
	if _, err := core.Accept(serverEnd, scfg); err == nil || !strings.Contains(err.Error(), "RequireMiddleboxAttestation") {
		t.Fatalf("server proxysig + RequireMiddleboxAttestation: err = %v, want a config error", err)
	}
}

func TestParseAccountability(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want core.Accountability
	}{{"attest", core.AccountAttest}, {"proxysig", core.AccountProxySig}} {
		got, err := core.ParseAccountability(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAccountability(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() round trip = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := core.ParseAccountability("enclave"); err == nil {
		t.Fatal("ParseAccountability accepted an unknown mode")
	}
}

// TestProxySigChainResumption: a chain ticket minted under proxysig
// carries the middlebox's certificate key, so a resumed hop — which
// presents no certificates — can still be delegated to and audited.
func TestProxySigChainResumption(t *testing.T) {
	e := newEnv(t)
	stek, err := hsfast.NewSTEK(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb := e.middlebox(t, "mb.example", core.ClientSide, proxySigOpt, func(cfg *core.MiddleboxConfig) {
		cfg.TicketKeys = stek
	})
	scfg := e.serverConfig()
	scfg.TLS.EnableTickets = true
	copy(scfg.TLS.TicketKey[:], "proxysig-chain-resume-stek-12345")

	var ct *core.ChainTicket
	ccfg := proxySigClient(e)
	ccfg.OnNewChainTicket = func(c *core.ChainTicket) { ct = c }
	client, server := runSession(t, ccfg, scfg, mb)
	exchange(t, client, server, "full proxysig chain", "ok")
	if err := client.Close(); err != nil {
		t.Fatalf("full-chain close: %v", err)
	}
	server.Close()
	if ct == nil || len(ct.Hops) != 1 {
		t.Fatalf("no chain ticket collected: %+v", ct)
	}
	if len(ct.Hops[0].LeafPub) == 0 {
		t.Fatal("proxysig chain ticket lacks the middlebox leaf key")
	}

	ccfg = proxySigClient(e)
	ccfg.ChainTicket = ct
	client, server = runSession(t, ccfg, scfg, mb)
	st := client.Stats()
	if st.ResumedPrimary != 1 || st.ResumedHops != 1 {
		t.Fatalf("client stats = %+v, want primary and hop both resumed", st)
	}
	if st.ProxySigSessions != 1 {
		t.Fatalf("resumed session stats = %+v, want proxysig", st)
	}
	exchange(t, client, server, "resumed proxysig chain", "ok")
	// The resumed hop's delegation was addressed via the ticket's
	// cached leaf key; evidence settlement must still verify.
	if err := client.Close(); err != nil {
		t.Fatalf("resumed-chain close (evidence settlement): %v", err)
	}
	server.Close()
	if got := mb.Stats().EvidenceSigned; got != 2 {
		t.Fatalf("EvidenceSigned = %d, want 2 (full + resumed)", got)
	}
}

// TestAttestResumptionStillWorks pins the other half of the regression
// requirement: chain resumption under the default attestation mode is
// untouched by the refactor (the full pin lives in chainresume_test.go;
// this guards the mode-dispatch seam specifically).
func TestAttestResumptionStillWorks(t *testing.T) {
	e := newEnv(t)
	stek, err := hsfast.NewSTEK(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb := e.middlebox(t, "mb.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.TicketKeys = stek
	})
	scfg := e.serverConfig()
	scfg.TLS.EnableTickets = true
	copy(scfg.TLS.TicketKey[:], "attest-chain-resume-stek-1234567")

	var ct *core.ChainTicket
	ccfg := e.clientConfig()
	ccfg.OnNewChainTicket = func(c *core.ChainTicket) { ct = c }
	client, server := runSession(t, ccfg, scfg, mb)
	client.Close()
	server.Close()
	if ct == nil || len(ct.Hops) != 1 {
		t.Fatalf("no chain ticket collected: %+v", ct)
	}

	ccfg = e.clientConfig()
	ccfg.ChainTicket = ct
	client, server = runSession(t, ccfg, scfg, mb)
	defer client.Close()
	defer server.Close()
	st := client.Stats()
	if st.ResumedPrimary != 1 || st.ResumedHops != 1 || st.AttestSessions != 1 {
		t.Fatalf("client stats = %+v, want an attest-mode resumed chain", st)
	}
	exchange(t, client, server, "attest resumed", "ok")
}
