package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/tls12"
)

// This file is the failure-path vocabulary of the session chain: a
// classification of every error the chain can surface, per-phase
// handshake deadlines, and bounded retry. Together with the netsim
// fault substrate it makes failure behavior deterministic — each fault
// class maps to a defined error class at each layer (DESIGN.md §7)
// rather than to whichever goroutine happened to lose a race.

// ErrorClass buckets session-chain errors by operational meaning:
// what a caller (or a relay deciding which alert to propagate) should
// do about them, independent of which layer produced them.
type ErrorClass int

// Error classes, roughly ordered from benign to severe.
const (
	// ClassOK is a nil error.
	ClassOK ErrorClass = iota
	// ClassCleanClose is an orderly shutdown: close_notify, EOF.
	ClassCleanClose
	// ClassTimeout is a deadline expiry — a read deadline, a handshake
	// phase deadline, or a data-plane wait.
	ClassTimeout
	// ClassReset is an abrupt transport death: connection reset, write
	// on a closed pipe, unexpected EOF mid-record.
	ClassReset
	// ClassOverload is admission-control rejection by a session host:
	// the host is at its max-concurrent-sessions cap, or draining
	// toward shutdown. Surfaced locally as OverloadError/DrainingError
	// and remotely as the overloaded/draining alerts.
	ClassOverload
	// ClassIntegrity is cryptographic or framing damage: MAC failures,
	// corrupt headers, oversized records.
	ClassIntegrity
	// ClassRemoteAlert is a fatal alert received from the peer (or
	// propagated by a relay on the path).
	ClassRemoteAlert
	// ClassProtocol is a local protocol violation: unexpected messages,
	// bad parameters, failed verification.
	ClassProtocol
	// ClassInternal is everything else.
	ClassInternal
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassCleanClose:
		return "clean_close"
	case ClassTimeout:
		return "timeout"
	case ClassReset:
		return "reset"
	case ClassOverload:
		return "overload"
	case ClassIntegrity:
		return "integrity"
	case ClassRemoteAlert:
		return "remote_alert"
	case ClassProtocol:
		return "protocol"
	case ClassInternal:
		return "internal"
	}
	return "class(?)"
}

// Transient reports whether retrying over a fresh transport could
// plausibly succeed. Integrity and protocol failures are
// deterministic; retrying only re-runs them. Overload is transient by
// nature: the host's admission pressure changes as sessions finish.
func (c ErrorClass) Transient() bool {
	return c == ClassTimeout || c == ClassReset || c == ClassOverload
}

// isFault reports whether the class represents a path fault rather
// than a clean shutdown.
func (c ErrorClass) isFault() bool { return c != ClassOK && c != ClassCleanClose }

// ClassifyError maps an error from Dial, Accept, Session I/O, or a
// relay goroutine to its ErrorClass. It sees through fmt.Errorf
// wrapping at every layer.
func ClassifyError(err error) ErrorClass {
	if err == nil {
		return ClassOK
	}
	var hte *HandshakeTimeoutError
	if errors.As(err, &hte) {
		return ClassTimeout
	}
	var oe *OverloadError
	if errors.As(err, &oe) {
		return ClassOverload
	}
	var de *DrainingError
	if errors.As(err, &de) {
		return ClassOverload
	}
	// A proxysig accountability failure (forged evidence, substituted
	// delegation) is cryptographic damage to the audit chain.
	var ace *AccountabilityError
	if errors.As(err, &ace) {
		return ClassIntegrity
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	if errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return ClassReset
	}
	if errors.Is(err, io.EOF) {
		return ClassCleanClose
	}
	var ae *tls12.AlertError
	if errors.As(err, &ae) {
		// Admission-control alerts classify as overload whichever side
		// reports them: a dialer that receives overloaded/draining from
		// a host should see the same class the host's Submit returned.
		switch ae.Description {
		case tls12.AlertOverloaded, tls12.AlertDraining:
			return ClassOverload
		}
		if ae.Remote {
			return ClassRemoteAlert
		}
		switch ae.Description {
		case tls12.AlertBadRecordMAC, tls12.AlertDecryptError,
			tls12.AlertRecordOverflow, tls12.AlertDecodeError,
			tls12.AlertProtocolVersion:
			return ClassIntegrity
		}
		return ClassProtocol
	}
	return ClassInternal
}

// describeTeardown renders an error as a stable teardown-reason
// string: the class, refined with the alert description when one is
// attached (e.g. "remote_alert:bad_record_mac").
func describeTeardown(err error) string {
	cls := ClassifyError(err)
	var ae *tls12.AlertError
	if errors.As(err, &ae) {
		return fmt.Sprintf("%s:%s", cls, ae.Description)
	}
	return cls.String()
}

// alertForClass maps a fault class to the alert a relay propagates
// down the chain when that fault kills a session.
func alertForClass(c ErrorClass) tls12.AlertDescription {
	switch c {
	case ClassIntegrity:
		return tls12.AlertBadRecordMAC
	case ClassProtocol:
		return tls12.AlertUnexpectedMessage
	default:
		return tls12.AlertInternalError
	}
}

// OverloadError is the typed rejection a session host returns when a
// new connection would exceed its max-concurrent-sessions cap. It
// classifies as ClassOverload (transient: sessions finishing relieve
// the pressure) and implements net.Error so generic handling treats it
// as temporary, not a timeout.
type OverloadError struct {
	// Host names the rejecting host.
	Host string
	// Active and Max describe the admission state at rejection.
	Active, Max int
}

// Error implements the error interface.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("core: session host %q overloaded (%d/%d sessions)", e.Host, e.Active, e.Max)
}

// Timeout implements net.Error.
func (e *OverloadError) Timeout() bool { return false }

// Temporary implements net.Error.
func (e *OverloadError) Temporary() bool { return true }

// DrainingError is the typed rejection a session host returns for
// connections arriving after Shutdown began: in-flight sessions are
// finishing, new admissions are refused. Like OverloadError it
// classifies as ClassOverload; retrying reaches a restarted instance
// or another host.
type DrainingError struct {
	// Host names the draining host.
	Host string
}

// Error implements the error interface.
func (e *DrainingError) Error() string {
	return fmt.Sprintf("core: session host %q is draining", e.Host)
}

// Timeout implements net.Error.
func (e *DrainingError) Timeout() bool { return false }

// Temporary implements net.Error.
func (e *DrainingError) Temporary() bool { return true }

// HandshakePhase names the deadline-bounded phases of session
// establishment.
type HandshakePhase string

// Establishment phases, in order.
const (
	PhasePrimaryHandshake    HandshakePhase = "primary-handshake"
	PhaseSecondaryHandshakes HandshakePhase = "secondary-handshakes"
	PhaseKeyDistribution     HandshakePhase = "key-distribution"
)

// DefaultHandshakeTimeout bounds each establishment phase when a
// config leaves HandshakeTimeout zero.
const DefaultHandshakeTimeout = 30 * time.Second

// handshakeLimit resolves a config's HandshakeTimeout field: zero
// means the default, negative disables phase deadlines.
func handshakeLimit(d time.Duration) time.Duration {
	switch {
	case d == 0:
		return DefaultHandshakeTimeout
	case d < 0:
		return 0
	}
	return d
}

// HandshakeTimeoutError reports which establishment phase overran its
// deadline. It implements net.Error, so generic timeout handling
// (errors.As + Timeout()) classifies it without knowing about mbTLS.
type HandshakeTimeoutError struct {
	Phase HandshakePhase
	Limit time.Duration
}

// Error implements the error interface.
func (e *HandshakeTimeoutError) Error() string {
	return fmt.Sprintf("core: %s exceeded %v deadline", e.Phase, e.Limit)
}

// Timeout implements net.Error.
func (e *HandshakeTimeoutError) Timeout() bool { return true }

// Temporary implements net.Error.
func (e *HandshakeTimeoutError) Temporary() bool { return true }

// hsWatch arms a per-phase deadline over session establishment. The
// endpoint goroutines spend establishment parked in reads on mux
// pipes, where no read deadline can reach (the pipes are not
// net.Conns); when a phase overruns, the watcher fails the mux and
// closes the transport, which unblocks every parked read, and err()
// lets the caller surface the typed timeout instead of the secondary
// closed-pipe error the unblocking produced. A nil watcher (deadlines
// disabled) is inert.
type hsWatch struct {
	limit     time.Duration
	m         *mux
	transport net.Conn

	mu    sync.Mutex
	timer *time.Timer
	phase HandshakePhase
	fired *HandshakeTimeoutError
	done  bool
}

// watchHandshake starts a watcher; limit <= 0 disables it.
func watchHandshake(limit time.Duration, m *mux, transport net.Conn) *hsWatch {
	if limit <= 0 {
		return nil
	}
	return &hsWatch{limit: limit, m: m, transport: transport}
}

// enter (re)arms the deadline for the next phase.
func (w *hsWatch) enter(phase HandshakePhase) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done || w.fired != nil {
		return
	}
	w.phase = phase
	if w.timer != nil {
		w.timer.Stop()
	}
	w.timer = time.AfterFunc(w.limit, w.fire)
}

func (w *hsWatch) fire() {
	w.mu.Lock()
	if w.done || w.fired != nil {
		w.mu.Unlock()
		return
	}
	w.fired = &HandshakeTimeoutError{Phase: w.phase, Limit: w.limit}
	w.mu.Unlock()
	w.m.fail(w.fired)
	w.transport.Close()
}

// stop disarms the watcher (establishment finished, either way).
func (w *hsWatch) stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.done = true
	if w.timer != nil {
		w.timer.Stop()
	}
	w.mu.Unlock()
}

// err returns the timeout that fired, or nil.
func (w *hsWatch) err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fired != nil {
		return w.fired
	}
	return nil
}

// RetryPolicy bounds session-establishment retries.
type RetryPolicy struct {
	// Attempts is the total number of tries; values below 1 mean 1.
	Attempts int
	// Backoff is the delay before the first retry, doubling on each
	// subsequent one. Zero means 100ms.
	Backoff time.Duration
	// MaxBackoff caps the delay; zero means 5s.
	MaxBackoff time.Duration
}

func (rp RetryPolicy) attempts() int {
	if rp.Attempts < 1 {
		return 1
	}
	return rp.Attempts
}

// Delay returns the backoff before retry number retry (0-based),
// deterministically: exponential, capped, no jitter — reproducibility
// is worth more to this codebase than thundering-herd protection.
func (rp RetryPolicy) Delay(retry int) time.Duration {
	d := rp.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	maxD := rp.MaxBackoff
	if maxD <= 0 {
		maxD = 5 * time.Second
	}
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= maxD {
			return maxD
		}
	}
	if d > maxD {
		return maxD
	}
	return d
}

// DialRetry establishes a client session over transports from dial,
// retrying with exponential backoff while the failure is transient
// (ClassTimeout, ClassReset — the classes a fresh path can fix).
// Deterministic failures (alerts, MAC damage, rejected middleboxes)
// abort immediately.
func DialRetry(dial func() (net.Conn, error), cfg *ClientConfig, rp RetryPolicy) (*Session, error) {
	var err error
	for attempt := 0; attempt < rp.attempts(); attempt++ {
		if attempt > 0 {
			time.Sleep(rp.Delay(attempt - 1))
		}
		var transport net.Conn
		if transport, err = dial(); err != nil {
			if !ClassifyError(err).Transient() {
				return nil, err
			}
			continue
		}
		var sess *Session
		if sess, err = Dial(transport, cfg); err == nil {
			return sess, nil
		}
		if !ClassifyError(err).Transient() {
			return nil, err
		}
	}
	return nil, err
}

// AcceptRetry is DialRetry's server-side mirror: it accepts successive
// transports from accept until a session establishes, a non-transient
// failure occurs, or attempts run out. A server loop uses it to ride
// out clients that die mid-handshake without surfacing each corpse.
func AcceptRetry(accept func() (net.Conn, error), cfg *ServerConfig, rp RetryPolicy) (*Session, error) {
	var err error
	for attempt := 0; attempt < rp.attempts(); attempt++ {
		if attempt > 0 {
			time.Sleep(rp.Delay(attempt - 1))
		}
		var transport net.Conn
		if transport, err = accept(); err != nil {
			return nil, err // listener failure: not a per-connection fault
		}
		var sess *Session
		if sess, err = Accept(transport, cfg); err == nil {
			return sess, nil
		}
		if !ClassifyError(err).Transient() {
			return nil, err
		}
	}
	return nil, err
}
