package core

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/certs"
	"repro/internal/enclave"
	"repro/internal/tls12"
	"repro/internal/wire"
)

// This file is the pluggable accountability layer: the per-session
// policy that lets an endpoint hold its middleboxes to account. The
// paper's mechanism (P3B) is SGX attestation, hard-wired until this
// refactor; mdTLS (PAPERS.md, arXiv 2306.03573) shows proxy signatures
// are a cheaper alternative. Both now live behind accountabilityMode:
//
//   - attest: middleboxes attest their enclave during the secondary
//     handshake; the endpoint verifies quotes and (optionally) demands
//     them. Wire behavior is byte-identical to the pre-refactor code.
//   - proxysig: after approval the endpoint mints an ephemeral
//     delegation key, signs one warrant per hop, and at close collects
//     evidence each middlebox signed over that warrant and digests of
//     the records it emitted.
//
// The mode is negotiated per session (and per side) through the
// MiddleboxSupport flags octet of whichever ClientHello starts each
// secondary handshake: the primary hello for client-side hops, the
// server's fresh secondary hello for server-side hops. Each endpoint
// audits its own side's hops, so a legacy peer is never affected.

// Accountability selects how an endpoint holds middleboxes to account.
type Accountability int

// Accountability modes. The zero value is the paper's attestation
// path, so existing configs are unchanged.
const (
	// AccountAttest is the enclave/attestation mode (paper §3.4
	// "Secure Environment Attestation").
	AccountAttest Accountability = iota
	// AccountProxySig is the mdTLS-style proxy-signature mode:
	// endpoint-signed delegation warrants, middlebox-signed evidence,
	// verified at close.
	AccountProxySig
)

// String names the mode as accepted by the daemons' -accountability
// flag.
func (a Accountability) String() string {
	if a == AccountProxySig {
		return "proxysig"
	}
	return "attest"
}

// ParseAccountability parses a daemon flag value.
func ParseAccountability(s string) (Accountability, error) {
	switch s {
	case "attest":
		return AccountAttest, nil
	case "proxysig":
		return AccountProxySig, nil
	}
	return 0, fmt.Errorf("core: unknown accountability mode %q", s)
}

// AccountabilityError reports a proxysig accountability failure the
// endpoint detected: a middlebox that returned no or unverifiable
// evidence, evidence echoing a different warrant than the one minted,
// or a hop the endpoint could not delegate to. It classifies as
// ClassIntegrity — the path's accountability chain is cryptographically
// broken, and retrying re-runs the same failure.
type AccountabilityError struct {
	// Hop names the middlebox the failure concerns.
	Hop string
	// Reason describes the failure.
	Reason string
	// Err is the underlying cause, when any.
	Err error
}

// Error implements the error interface.
func (e *AccountabilityError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: accountability failure at %q: %s: %v", e.Hop, e.Reason, e.Err)
	}
	return fmt.Sprintf("core: accountability failure at %q: %s", e.Hop, e.Reason)
}

// Unwrap exposes the underlying cause.
func (e *AccountabilityError) Unwrap() error { return e.Err }

// Delegation warrants are minted fresh per session; the validity
// window only needs to cover session establishment, with skew slack
// for middlebox clocks. Expiry is checked by the middlebox at receipt,
// not at close, so long-lived sessions are unaffected.
const (
	delegationSkew     = 5 * time.Minute
	delegationValidity = time.Hour
)

// PhaseEvidenceCollection is the close-time phase in which a proxysig
// endpoint collects signed evidence from its hops; a wedged hop
// surfaces as a HandshakeTimeoutError naming this phase.
const PhaseEvidenceCollection HandshakePhase = "evidence-collection"

// Accountability frames ride MBTLSKeyMaterial records on the
// secondary sessions, discriminated from key material by their leading
// uint16: KeyMaterial payloads begin with the TLS version (0x0303),
// these begin with a frame kind. No new record types, so legacy
// relays forward them like any other subchannel traffic.
const (
	acctFrameDelegation  uint16 = 0xAC01 // endpoint → middlebox: delegation warrant
	acctFrameAck         uint16 = 0xAC02 // middlebox → endpoint: warrant accepted
	acctFrameEvidenceReq uint16 = 0xAC03 // endpoint → middlebox: evidence request
	acctFrameEvidence    uint16 = 0xAC04 // middlebox → endpoint: signed evidence
)

func acctFrame(kind uint16, body []byte) []byte {
	b := wire.NewBuilder(make([]byte, 0, 4+len(body)))
	b.AddUint16(kind)
	b.AddUint16Prefixed(func(b *wire.Builder) { b.AddBytes(body) })
	return b.Bytes()
}

func parseAcctFrame(payload []byte) (uint16, []byte, error) {
	p := wire.NewParser(payload)
	var kind uint16
	var body []byte
	if !p.ReadUint16(&kind) || !p.ReadUint16Prefixed(&body) || !p.Empty() {
		return 0, nil, errors.New("core: malformed accountability frame")
	}
	return kind, body, nil
}

// accountabilityMode is the pluggable per-session accountability
// policy an endpoint runs. Implementations hook the three places the
// handshake state machines need to differ: primary-hello annotation
// (negotiation), secondary-handshake configuration (per-hop credential
// production/verification), and post-key-distribution credential
// establishment (whose audit state the Session then verifies at
// close).
type accountabilityMode interface {
	// kind identifies the mode for negotiation and metrics.
	kind() Accountability
	// annotatePrimary adjusts the client's primary-handshake config
	// (the hello that doubles as every client-side secondary hello).
	annotatePrimary(tcfg *tls12.Config)
	// configureSecondary adjusts the endpoint's secondary-handshake
	// template after secondaryClientConfig's common scrubbing.
	configureSecondary(cfg *tls12.Config)
	// checkHop validates one completed (possibly resumed) hop before
	// the application's Approve callback runs.
	checkHop(sum MiddleboxSummary) error
	// establishCredentials runs after key distribution, delivering
	// per-hop credentials over the retained secondary connections. It
	// returns the audit state the session settles at close, or nil
	// when the mode needs none.
	establishCredentials(secs []secondaryResult, ct *ChainTicket) (*sessionAudit, error)
}

// attestMode is the paper's enclave/attestation path, extracted from
// the previously hard-wired client/server logic with identical wire
// behavior.
type attestMode struct {
	require  bool
	verifier *enclave.Verifier
}

func (m *attestMode) kind() Accountability { return AccountAttest }

func (m *attestMode) annotatePrimary(tcfg *tls12.Config) {
	// Invite every discovered middlebox to attest, even when the
	// origin server does not (paper §3.4).
	tcfg.OfferAttestation = true
}

func (m *attestMode) configureSecondary(cfg *tls12.Config) {
	if m.require {
		cfg.RequestAttestation = true
		if m.verifier != nil {
			cfg.VerifyQuote = m.verifier.VerifyQuote
		}
	} else if m.verifier != nil {
		// Attestation optional but verified when presented.
		cfg.VerifyQuote = m.verifier.VerifyQuote
	}
}

func (m *attestMode) checkHop(sum MiddleboxSummary) error {
	if m.require && !sum.Attested {
		return fmt.Errorf("core: middlebox %q did not attest", sum.Name)
	}
	return nil
}

func (m *attestMode) establishCredentials([]secondaryResult, *ChainTicket) (*sessionAudit, error) {
	return nil, nil
}

// proxySigMode is the mdTLS-style proxy-signature path.
type proxySigMode struct {
	// clock overrides time.Now for delegation validity windows (test
	// and fault-injection surface; see ClientConfig.AccountabilityClock).
	clock func() time.Time
	// limit bounds close-time evidence collection (the resolved
	// HandshakeTimeout).
	limit time.Duration
}

func (m *proxySigMode) kind() Accountability { return AccountProxySig }

func (m *proxySigMode) now() time.Time {
	if m.clock != nil {
		return m.clock()
	}
	return time.Now()
}

func (m *proxySigMode) annotatePrimary(tcfg *tls12.Config) {
	tcfg.MiddleboxSupport.ProxySig = true
}

func (m *proxySigMode) configureSecondary(cfg *tls12.Config) {
	// The server's client-role secondary hellos are built fresh, so
	// the negotiation flag must ride a minimal MiddleboxSupport
	// extension there. Client-side secondaries reuse the primary
	// hello and ignore this field.
	cfg.MiddleboxSupport = &tls12.MiddleboxSupport{ProxySig: true}
}

func (m *proxySigMode) checkHop(MiddleboxSummary) error { return nil }

func (m *proxySigMode) establishCredentials(secs []secondaryResult, ct *ChainTicket) (*sessionAudit, error) {
	if len(secs) == 0 {
		return nil, nil
	}
	key, err := certs.NewDelegationKey(nil)
	if err != nil {
		return nil, err
	}
	audit := &sessionAudit{key: key, limit: m.limit}
	fail := func(err error) (*sessionAudit, error) {
		key.Wipe()
		return nil, err
	}
	now := m.now()
	for _, r := range secs {
		leaf, err := hopLeafKey(r.summary, ct)
		if err != nil {
			return fail(err)
		}
		var binding [32]byte
		if _, err := io.ReadFull(rand.Reader, binding[:]); err != nil {
			return fail(err)
		}
		deleg, err := key.SignDelegation(leaf, binding, now.Add(-delegationSkew), now.Add(delegationValidity))
		if err != nil {
			return fail(err)
		}
		if err := r.conn.WriteKeyMaterial(acctFrame(acctFrameDelegation, deleg)); err != nil {
			return fail(fmt.Errorf("core: delegation to %q: %w", r.summary.Name, err))
		}
		// The ack read is what surfaces a middlebox that rejected the
		// warrant (expired, wrong key): its fatal alert arrives here.
		ack, err := r.conn.ReadKeyMaterial()
		if err != nil {
			return fail(fmt.Errorf("core: delegation ack from %q: %w", r.summary.Name, err))
		}
		kind, _, err := parseAcctFrame(ack)
		if err != nil || kind != acctFrameAck {
			return fail(&AccountabilityError{Hop: r.summary.Name, Reason: "middlebox did not acknowledge delegation"})
		}
		audit.hops = append(audit.hops, hopAudit{
			name:       r.summary.Name,
			conn:       r.conn,
			leafPub:    leaf,
			delegation: deleg,
		})
	}
	return audit, nil
}

// hopLeafKey resolves the Ed25519 key a delegation authorizes: the
// middlebox's leaf certificate key on a full handshake, or the cached
// LeafPub from the chain ticket on a resumed hop (resumption carries
// no certificates; ticket possession proves the peer is the middlebox
// the key was recorded from).
func hopLeafKey(sum MiddleboxSummary, ct *ChainTicket) (ed25519.PublicKey, error) {
	if len(sum.Certificates) > 0 {
		if pk, ok := sum.Certificates[0].PublicKey.(ed25519.PublicKey); ok {
			return pk, nil
		}
		return nil, &AccountabilityError{Hop: sum.Name, Reason: "middlebox certificate key is not Ed25519"}
	}
	if h := ct.Hop(sum.Name); h != nil && len(h.LeafPub) == ed25519.PublicKeySize {
		return ed25519.PublicKey(h.LeafPub), nil
	}
	return nil, &AccountabilityError{Hop: sum.Name, Reason: "no middlebox key available for delegation"}
}

// hopLeafPub records the bytes of a hop's Ed25519 certificate key for
// a new chain ticket: from the verified leaf certificate on a full
// handshake, or carried forward from the redeemed ticket on a resumed
// hop. Nil when unavailable or not Ed25519 (the chain still resumes;
// only proxysig delegation needs the key).
func hopLeafPub(sum MiddleboxSummary, ct *ChainTicket) []byte {
	if len(sum.Certificates) > 0 {
		if pk, ok := sum.Certificates[0].PublicKey.(ed25519.PublicKey); ok {
			return append([]byte(nil), pk...)
		}
		return nil
	}
	if h := ct.Hop(sum.Name); h != nil && len(h.LeafPub) > 0 {
		return append([]byte(nil), h.LeafPub...)
	}
	return nil
}

// newClientAccountability resolves and validates a client config's
// accountability mode.
func newClientAccountability(cfg *ClientConfig) (accountabilityMode, error) {
	switch cfg.Accountability {
	case AccountAttest:
		return &attestMode{require: cfg.RequireMiddleboxAttestation, verifier: cfg.MiddleboxVerifier}, nil
	case AccountProxySig:
		if cfg.RequireMiddleboxAttestation {
			return nil, errors.New("core: RequireMiddleboxAttestation conflicts with the proxysig accountability mode")
		}
		if cfg.NeighborKeys {
			return nil, errors.New("core: neighbor-keys mode does not support proxysig accountability")
		}
		return &proxySigMode{clock: cfg.AccountabilityClock, limit: handshakeLimit(cfg.HandshakeTimeout)}, nil
	}
	return nil, fmt.Errorf("core: unknown accountability mode %d", cfg.Accountability)
}

// newServerAccountability mirrors newClientAccountability for Accept.
func newServerAccountability(cfg *ServerConfig) (accountabilityMode, error) {
	switch cfg.Accountability {
	case AccountAttest:
		return &attestMode{require: cfg.RequireMiddleboxAttestation, verifier: cfg.MiddleboxVerifier}, nil
	case AccountProxySig:
		if cfg.RequireMiddleboxAttestation {
			return nil, errors.New("core: RequireMiddleboxAttestation conflicts with the proxysig accountability mode")
		}
		return &proxySigMode{clock: cfg.AccountabilityClock, limit: handshakeLimit(cfg.HandshakeTimeout)}, nil
	}
	return nil, fmt.Errorf("core: unknown accountability mode %d", cfg.Accountability)
}

// sessionAudit is a proxysig session's close-time obligation: the
// delegation key to wipe and, per hop, the retained secondary
// connection, the key the warrant authorizes, and the warrant bytes
// the evidence must echo.
type sessionAudit struct {
	key   *certs.DelegationKey
	limit time.Duration
	hops  []hopAudit
	done  bool
}

type hopAudit struct {
	name       string
	conn       *tls12.Conn
	leafPub    ed25519.PublicKey
	delegation []byte
}

// collectEvidence settles a proxysig session's audit: it requests
// signed evidence from every hop, verifies each middlebox's signature
// and that the evidence echoes the warrant this endpoint minted, and
// wipes the delegation key. Runs at most once, from Session.Close.
// The secondary connections live on mux pipes that carry no read
// deadlines, so a wedged hop is bounded by failing the mux — Close is
// tearing the session down anyway.
func (s *Session) collectEvidence() error {
	a := s.audit
	if a == nil || a.done {
		return nil
	}
	a.done = true
	defer a.key.Wipe()
	if a.limit > 0 {
		timeout := time.AfterFunc(a.limit, func() {
			s.m.fail(&HandshakeTimeoutError{Phase: PhaseEvidenceCollection, Limit: a.limit})
		})
		defer timeout.Stop()
	}
	var firstErr error
	for i := range a.hops {
		if err := s.hopEvidence(&a.hops[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Session) hopEvidence(h *hopAudit) error {
	if err := h.conn.WriteKeyMaterial(acctFrame(acctFrameEvidenceReq, nil)); err != nil {
		return fmt.Errorf("core: evidence request to %q: %w", h.name, err)
	}
	raw, err := h.conn.ReadKeyMaterial()
	if err != nil {
		return fmt.Errorf("core: evidence from %q: %w", h.name, err)
	}
	kind, body, err := parseAcctFrame(raw)
	if err != nil || kind != acctFrameEvidence {
		return &AccountabilityError{Hop: h.name, Reason: "middlebox returned no evidence"}
	}
	ev, err := certs.VerifyEvidence(h.leafPub, body)
	if err != nil {
		return &AccountabilityError{Hop: h.name, Reason: "evidence signature invalid", Err: err}
	}
	if !certs.EvidenceMatchesDelegation(ev, h.delegation) {
		return &AccountabilityError{Hop: h.name, Reason: "evidence echoes a different delegation than this endpoint minted"}
	}
	return nil
}

// AccountabilityFaults injects adversarial proxysig behavior into a
// middlebox, for the fault-matrix suites: a middlebox that substitutes
// the delegation it echoes in evidence, or corrupts its evidence
// signature. Production configs leave this nil.
type AccountabilityFaults struct {
	// MutateDelegation rewrites the stored warrant bytes before the
	// middlebox signs evidence over them (an honest signature over a
	// substituted warrant).
	MutateDelegation func([]byte) []byte
	// MutateEvidence rewrites the signed evidence blob before it is
	// sent (a forged or corrupted signature).
	MutateEvidence func([]byte) []byte
}
