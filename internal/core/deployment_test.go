package core_test

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/sessionhost"
)

// serveMiddlebox runs a middlebox behind a session host (the only
// accept-loop shape the repo supports) and tears it down with the
// test.
func serveMiddlebox(t *testing.T, mb *core.Middlebox, ln net.Listener, dial func() (net.Conn, error)) *sessionhost.Host {
	t.Helper()
	host, err := sessionhost.New(sessionhost.Config{
		Name:    mb.Name(),
		Handler: sessionhost.NewMiddleboxHandler(mb, dial),
	})
	if err != nil {
		t.Fatal(err)
	}
	go host.Serve(ln)                  //nolint:errcheck
	t.Cleanup(func() { host.Close() }) //nolint:errcheck
	return host
}

// TestDeploymentPreconfiguredMiddlebox reproduces §3.4's pre-configured
// client-side middlebox flow: the client knows the proxy in advance
// (e.g., from user configuration), lists it in the MiddleboxSupport
// extension, and opens its connection directly to the proxy, which
// relays to the origin by address.
func TestDeploymentPreconfiguredMiddlebox(t *testing.T) {
	e := newEnv(t)
	network := netsim.NewNetwork()

	// Origin server.
	serverLn, err := network.Listen("origin.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	originHost, err := sessionhost.New(sessionhost.Config{
		Name: "origin",
		Handler: sessionhost.NewServerHandler(e.serverConfig(), func(sess *core.Session) error {
			return httpx.Serve(sess, func(req *httpx.Request) *httpx.Response {
				return &httpx.Response{StatusCode: 200, Header: httpx.Header{}, Body: []byte("origin says hi")}
			})
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	go originHost.Serve(serverLn)            //nolint:errcheck
	t.Cleanup(func() { originHost.Close() }) //nolint:errcheck

	// The configured proxy, serving many clients.
	proxy := e.middlebox(t, "proxy.example", core.ClientSide)
	proxyLn, err := network.Listen("proxy.example:3128")
	if err != nil {
		t.Fatal(err)
	}
	defer proxyLn.Close()
	proxyHost := serveMiddlebox(t, proxy, proxyLn, func() (net.Conn, error) {
		return network.Dial("proxy.example", "origin.example:443")
	})

	// Several clients connect to the proxy they were configured with.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := network.Dial(fmt.Sprintf("client-%d", i), "proxy.example:3128")
			if err != nil {
				errs <- err
				return
			}
			ccfg := e.clientConfig()
			ccfg.KnownMiddleboxes = []string{"proxy.example:3128"}
			sess, err := core.Dial(conn, ccfg)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			defer sess.Close()
			if got := sess.Middleboxes(); len(got) != 1 || got[0].Name != "proxy.example" {
				errs <- fmt.Errorf("client %d middleboxes: %+v", i, got)
				return
			}
			resp, err := httpx.Do(sess, &httpx.Request{Method: "GET", Path: "/", Host: "origin.example", Header: httpx.Header{}})
			if err != nil {
				errs <- fmt.Errorf("client %d fetch: %w", i, err)
				return
			}
			if resp.StatusCode != 200 || string(resp.Body) != "origin says hi" {
				errs <- fmt.Errorf("client %d response: %d %q", i, resp.StatusCode, resp.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := proxy.Stats().MbTLSSessions; got != 4 {
		t.Fatalf("proxy served %d mbTLS sessions, want 4", got)
	}
	if got := proxyHost.Metrics().Accepted; got != 4 {
		t.Fatalf("proxy host admitted %d sessions, want 4", got)
	}
}

// TestDeploymentChainedProxies runs two middleboxes as independent
// Serve processes with a client traversing both.
func TestDeploymentChainedProxies(t *testing.T) {
	e := newEnv(t)
	network := netsim.NewNetwork()

	serverLn, err := network.Listen("origin.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	go func() {
		conn, err := serverLn.Accept()
		if err != nil {
			return
		}
		sess, err := core.Accept(conn, e.serverConfig())
		if err != nil {
			return
		}
		defer sess.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(sess, buf); err != nil {
			return
		}
		sess.Write(buf) //nolint:errcheck
	}()

	outer := e.middlebox(t, "outer.example", core.ClientSide)
	inner := e.middlebox(t, "inner.example", core.ClientSide)
	outerLn, err := network.Listen("outer.example:3128")
	if err != nil {
		t.Fatal(err)
	}
	defer outerLn.Close()
	innerLn, err := network.Listen("inner.example:3128")
	if err != nil {
		t.Fatal(err)
	}
	defer innerLn.Close()
	serveMiddlebox(t, outer, outerLn, func() (net.Conn, error) {
		return network.Dial("outer.example", "inner.example:3128")
	})
	serveMiddlebox(t, inner, innerLn, func() (net.Conn, error) {
		return network.Dial("inner.example", "origin.example:443")
	})

	conn, err := network.Dial("client", "outer.example:3128")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.Dial(conn, e.clientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	mbs := sess.Middleboxes()
	if len(mbs) != 2 || mbs[0].Name != "outer.example" || mbs[1].Name != "inner.example" {
		t.Fatalf("middleboxes = %+v", mbs)
	}
	if _, err := sess.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(sess, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
}
