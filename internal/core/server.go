package core

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync/atomic"

	"repro/internal/secmem"
	"repro/internal/tls12"
)

// Accept establishes an mbTLS session as the server over an accepted
// transport connection. Server-side middleboxes announce themselves on
// subchannels before the ClientHello arrives (paper §3.4,
// "Server-Side Middleboxes"); the server runs a client-role secondary
// handshake toward each, then distributes server-side per-hop keys.
//
// If cfg.AcceptMiddleboxes is false, announcements make the handshake
// fail or are skipped according to cfg.TLS.LenientUnknownRecords —
// the two legacy-server behaviors the paper observes.
func Accept(transport net.Conn, cfg *ServerConfig) (*Session, error) {
	if cfg == nil || cfg.TLS == nil {
		return nil, errors.New("core: ServerConfig.TLS is required")
	}
	acct, err := newServerAccountability(cfg)
	if err != nil {
		return nil, err
	}
	tcfg := *cfg.TLS

	m := newMux(transport)
	hw := watchHandshake(handshakeLimit(cfg.HandshakeTimeout), m, transport)
	defer hw.stop()
	prl := tls12.NewRecordLayer(m.primary)
	pconn := tls12.Server(prl, &tcfg)

	primaryDone := make(chan error, 1)
	go func() { primaryDone <- pconn.Handshake() }()

	secCfg := secondaryClientConfig(cfg.TLS, cfg.MiddleboxTLS, acct)
	// The secondary handshakes toward middleboxes must not carry the
	// server's SNI or offer tickets.
	secCfg.ServerName = ""
	secCfg.EnableTickets = false

	// Neighbor-keys mode (§4.2): the last client-side middlebox opens
	// subchannel 0 for a hop handshake in which the server plays its
	// usual server role.
	type neighborResult struct {
		hop *HopKeys
		err error
	}
	neighborCh := make(chan neighborResult, 1)
	var neighborStarted atomic.Bool

	results := make(chan secondaryResult, maxSubchannels)
	stop := make(chan struct{})
	go watchSubchannels(m, stop, results, func(sub uint8) secondaryResult {
		if sub == neighborSubchannel {
			neighborStarted.Store(true)
			go func() {
				ncfg := tls12.Config{
					Certificate:  cfg.TLS.Certificate,
					CipherSuites: cfg.TLS.CipherSuites,
					Stopwatch:    cfg.TLS.Stopwatch,
				}
				hop, err := runNeighborServer(m.subchannel(neighborSubchannel, false), &ncfg)
				neighborCh <- neighborResult{hop, err}
			}()
			return secondaryResult{sub: sub, skip: true}
		}
		if !cfg.AcceptMiddleboxes {
			return secondaryResult{sub: sub, skip: true}
		}
		return runServerSecondary(m, sub, secCfg)
	})

	fail := func(err error) (*Session, error) {
		// Surface the typed phase timeout over the secondary error its
		// unblocking produced (see Dial).
		if te := hw.err(); te != nil {
			err = te
		}
		m.fail(err)
		transport.Close()
		return nil, err
	}

	hw.enter(PhasePrimaryHandshake)
	if err := <-primaryDone; err != nil {
		return fail(err)
	}
	close(stop)
	hw.enter(PhaseSecondaryHandshakes)

	var secs []secondaryResult
	for r := range results {
		if r.skip {
			continue
		}
		if r.err != nil {
			return fail(fmt.Errorf("core: middlebox handshake (subchannel %d): %w", r.sub, r.err))
		}
		secs = append(secs, r)
	}
	// Higher subchannel IDs were self-assigned closer to the server,
	// so ascending order runs from the bridge toward the server
	// (paper Figure 4: S0, S1, ...).
	sort.Slice(secs, func(i, j int) bool { return secs[i].sub < secs[j].sub })

	for i := range secs {
		if err := acct.checkHop(secs[i].summary); err != nil {
			return fail(err)
		}
		if cfg.Approve != nil && !cfg.Approve(secs[i].summary) {
			return fail(fmt.Errorf("core: middlebox %q rejected by application", secs[i].summary.Name))
		}
	}

	hw.enter(PhaseKeyDistribution)
	hello := pconn.ConnectionState().ClientHello
	neighborMode := hello != nil && hello.MiddleboxSupport != nil && hello.MiddleboxSupport.NeighborKeys
	switch {
	case neighborMode:
		if len(secs) > 0 {
			return fail(errors.New("core: server-side middleboxes are unsupported in neighbor-keys mode"))
		}
		if neighborStarted.Load() {
			r := <-neighborCh
			if r.err != nil {
				return fail(r.err)
			}
			readCS, err := tls12.NewCipherState(r.hop.Suite, r.hop.C2SKey, r.hop.C2SIV, r.hop.C2SSeq)
			if err != nil {
				r.hop.Wipe()
				return fail(err)
			}
			writeCS, err := tls12.NewCipherState(r.hop.Suite, r.hop.S2CKey, r.hop.S2CIV, r.hop.S2CSeq)
			if err != nil {
				r.hop.Wipe()
				return fail(err)
			}
			pconn.InstallDataCiphers(readCS, writeCS)
			r.hop.Wipe() // keys now live only in the installed cipher states
		}
		// Without a neighbor handshake there are no client-side
		// middleboxes; the primary session keys remain in place.
	default:
		if err := distributeServerKeys(pconn, secs); err != nil {
			return fail(err)
		}
	}
	// Server-side hops have no chain ticket; credentials always target
	// the leaf certificate key seen on the (full) secondary handshake.
	audit, err := acct.establishCredentials(secs, nil)
	if err != nil {
		return fail(err)
	}
	hw.stop()

	sess := &Session{conn: pconn, m: m, transport: transport, acct: acct.kind(), audit: audit}
	// Report middleboxes in path order from the server outward.
	for i := len(secs) - 1; i >= 0; i-- {
		sess.mboxes = append(sess.mboxes, secs[i].summary)
	}
	return sess, nil
}

// runServerSecondary consumes a middlebox announcement on a subchannel
// and completes a client-role handshake toward the middlebox.
func runServerSecondary(m *mux, sub uint8, cfg *tls12.Config) secondaryResult {
	pipe := m.subchannel(sub, false)
	rl := tls12.NewRecordLayer(pipe)
	rec, err := rl.ReadRecord()
	if err != nil {
		return secondaryResult{sub: sub, err: err}
	}
	if rec.Type != tls12.TypeMiddleboxAnnouncement {
		return secondaryResult{sub: sub, err: fmt.Errorf("core: expected middlebox announcement, got %s", rec.Type)}
	}
	conn := tls12.Client(rl, cfg)
	if err := conn.Handshake(); err != nil {
		return secondaryResult{sub: sub, err: err}
	}
	return secondaryResult{sub: sub, conn: conn, summary: summarize(sub, conn.ConnectionState())}
}

// distributeServerKeys mirrors distributeClientKeys for the server
// side: secs must be ordered from the bridge toward the server.
func distributeServerKeys(pconn *tls12.Conn, secs []secondaryResult) error {
	if len(secs) == 0 {
		return nil
	}
	sk, err := pconn.ExportSessionKeys()
	if err != nil {
		return err
	}
	suite := sk.Suite
	// hops[0] is the bridge; hops[i] for i>0 are fresh server-side
	// hops; hops[len(secs)] is adjacent to the server.
	hops := make([]*HopKeys, len(secs)+1)
	// Wiping the hops on every exit also clears sk: the bridge hop
	// aliases the exported session-key slices.
	defer func() {
		for _, h := range hops {
			h.Wipe()
		}
	}()
	hops[0] = BridgeHopKeys(sk)
	for i := 1; i <= len(secs); i++ {
		if hops[i], err = GenerateHopKeys(suite); err != nil {
			return err
		}
	}

	for i, r := range secs {
		// Down faces the client side (hops[i]); Up faces the server
		// side (hops[i+1]).
		km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *hops[i], Up: *hops[i+1]}
		buf := km.marshal()
		err := r.conn.WriteKeyMaterial(buf)
		secmem.Wipe(buf)
		if err != nil {
			return fmt.Errorf("core: key distribution to %q: %w", r.summary.Name, err)
		}
	}

	last := hops[len(secs)]
	readCS, err := tls12.NewCipherState(suite, last.C2SKey, last.C2SIV, last.C2SSeq)
	if err != nil {
		return err
	}
	writeCS, err := tls12.NewCipherState(suite, last.S2CKey, last.S2CIV, last.S2CSeq)
	if err != nil {
		return err
	}
	pconn.InstallDataCiphers(readCS, writeCS)
	return nil
}
