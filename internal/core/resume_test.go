package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tls12"
)

// TestSessionResumptionWithMiddlebox reproduces §3.5 "Session
// Resumption": the primary handshake becomes an abbreviated
// ticket-resumption handshake while the middlebox still joins via
// discovery and receives fresh key material.
func TestSessionResumptionWithMiddlebox(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)

	scfg := e.serverConfig()
	scfg.TLS.EnableTickets = true
	copy(scfg.TLS.TicketKey[:], "0123456789abcdef0123456789abcdef")

	var ticket *tls12.SessionTicket
	ccfg := e.clientConfig()
	ccfg.TLS.EnableTickets = true
	ccfg.TLS.OnNewTicket = func(tk *tls12.SessionTicket) { ticket = tk }

	// Full handshake: obtain a ticket through the middlebox.
	client, server := runSession(t, ccfg, scfg, mb)
	exchange(t, client, server, "full handshake data", "ok-full")
	client.Close()
	server.Close()
	if ticket == nil {
		t.Fatal("no session ticket issued through the middlebox path")
	}

	// Abbreviated handshake: the primary session resumes; the
	// middlebox joins again and gets fresh per-hop keys.
	ccfg2 := e.clientConfig()
	ccfg2.TLS.EnableTickets = true
	ccfg2.TLS.SessionTicket = ticket
	client, server = runSession(t, ccfg2, scfg, mb)
	defer client.Close()
	defer server.Close()

	if !client.ConnectionState().Resumed {
		t.Fatal("primary session was not resumed")
	}
	if got := client.Middleboxes(); len(got) != 1 || got[0].Name != "proxy.example" {
		t.Fatalf("middlebox did not rejoin the resumed session: %+v", got)
	}
	exchange(t, client, server, "resumed session data", "ok-resumed")
}

// TestResumptionWithServerSideMiddlebox covers the abbreviated
// handshake on the announcement path.
func TestResumptionWithServerSideMiddlebox(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "cdn.example", core.ServerSide)

	scfg := e.serverConfig()
	scfg.TLS.EnableTickets = true
	copy(scfg.TLS.TicketKey[:], "fedcba9876543210fedcba9876543210")

	var ticket *tls12.SessionTicket
	ccfg := e.clientConfig()
	ccfg.TLS.EnableTickets = true
	ccfg.TLS.OnNewTicket = func(tk *tls12.SessionTicket) { ticket = tk }

	client, server := runSession(t, ccfg, scfg, mb)
	exchange(t, client, server, "first pass", "ok")
	client.Close()
	server.Close()
	if ticket == nil {
		t.Fatal("no ticket issued")
	}

	ccfg2 := e.clientConfig()
	ccfg2.TLS.EnableTickets = true
	ccfg2.TLS.SessionTicket = ticket
	client, server = runSession(t, ccfg2, scfg, mb)
	defer client.Close()
	defer server.Close()
	if !server.ConnectionState().Resumed {
		t.Fatal("server did not resume")
	}
	if got := server.Middleboxes(); len(got) != 1 {
		t.Fatalf("server-side middlebox missing from resumed session: %+v", got)
	}
	exchange(t, client, server, "resumed pass", "ok2")
}
