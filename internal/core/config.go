// Package core implements mbTLS (Middlebox TLS), the protocol from
// "And Then There Were More: Secure Communication for More Than Two
// Parties" (CoNEXT 2017): TLS sessions that application-layer
// middleboxes join explicitly, with in-band discovery, per-hop keys for
// path integrity, and SGX-based protection of middleboxes running on
// untrusted infrastructure.
//
// The three entry points mirror the paper's roles: Dial (client),
// Accept (server), and Middlebox (an on-path relay). Clients and
// servers interoperate with legacy tls12 endpoints (property P5): a
// session needs only one upgraded endpoint for that endpoint's
// middleboxes to participate.
package core

import (
	"crypto/x509"
	"time"

	"repro/internal/enclave"
	"repro/internal/tls12"
)

// Processor transforms application data crossing a middlebox. Process
// receives each plaintext chunk traveling in the given direction and
// returns the bytes to forward (which may be empty to withhold output,
// or larger than the input — the relay refragments into records).
// Implementations are per-session and need not be safe for concurrent
// use from both directions... they are called from two goroutines, one
// per direction, so implementations sharing state must lock.
type Processor interface {
	Process(dir Direction, chunk []byte) ([]byte, error)
}

// ProcessorFunc adapts a function to the Processor interface.
type ProcessorFunc func(Direction, []byte) ([]byte, error)

// Process implements Processor.
func (f ProcessorFunc) Process(dir Direction, chunk []byte) ([]byte, error) {
	return f(dir, chunk)
}

// MiddleboxSummary describes one middlebox that joined a session, as
// presented to the approving endpoint (paper §3.5 "Trust").
type MiddleboxSummary struct {
	// Subchannel is the mbTLS subchannel the middlebox used.
	Subchannel uint8
	// Name is the middlebox certificate's common name (the MSP
	// identity, property P3A).
	Name string
	// Certificates is the middlebox's verified chain.
	Certificates []*x509.Certificate
	// Attested reports whether the secondary handshake included a
	// verified SGX attestation (property P3B).
	Attested bool
	// Measurement is the attested code measurement (zero if not
	// attested).
	Measurement enclave.Measurement
}

// ClientConfig configures an mbTLS client endpoint.
type ClientConfig struct {
	// TLS configures the primary (end-to-end) handshake: server
	// verification, cipher suites, tickets. Required.
	TLS *tls12.Config
	// KnownMiddleboxes lists middlebox addresses known a priori; they
	// are advertised in the MiddleboxSupport extension. The caller is
	// responsible for routing the connection through the first of
	// them (paper §3.4: the client opens its TCP connection to the
	// middlebox).
	KnownMiddleboxes []string
	// MiddleboxTLS is the template config for secondary sessions with
	// middleboxes (trust roots for MSP certificates). If nil, TLS is
	// used with the ServerName check dropped, since middlebox
	// certificates name the MSP, not the origin server.
	MiddleboxTLS *tls12.Config
	// RequireMiddleboxAttestation demands that every middlebox
	// terminate its secondary session inside an attested enclave
	// (properties P1A/P2/P3B for outsourced middleboxes).
	RequireMiddleboxAttestation bool
	// MiddleboxVerifier validates middlebox quotes. Required when
	// RequireMiddleboxAttestation is set.
	MiddleboxVerifier *enclave.Verifier
	// Approve is consulted for each middlebox after certificate (and
	// attestation) verification; returning false aborts the session.
	// Nil approves all verified middleboxes.
	Approve func(MiddleboxSummary) bool
	// Accountability selects how this endpoint holds its middleboxes
	// to account: AccountAttest (the default, the paper's SGX
	// attestation path) or AccountProxySig (mdTLS-style delegation
	// warrants and close-time signed evidence). See accountability.go.
	Accountability Accountability
	// AccountabilityClock overrides time.Now for delegation validity
	// windows in proxysig mode. Nil means time.Now. A fault-injection
	// surface: tests mint expired warrants by back-dating the clock.
	AccountabilityClock func() time.Time
	// NeighborKeys selects neighbor-negotiated hop keys instead of
	// endpoint-distributed ones (§4.2's state-poisoning mitigation;
	// see internal/core/neighbor.go). Requires an mbTLS server and
	// client-side middleboxes only. Incompatible with AccountProxySig.
	NeighborKeys bool
	// ChainTicket resumes a previously established session chain: the
	// primary session and every client-side middlebox hop the ticket
	// covers skip ECDHE, signatures, and verification. Hops whose
	// tickets have gone stale fall back to full handshakes
	// individually. TLS.SessionTicket, when also set, takes precedence
	// for the primary.
	ChainTicket *ChainTicket
	// OnNewChainTicket receives the chain ticket assembled from this
	// session's NewSessionTicket messages (primary plus per-hop), for
	// resuming the whole chain later. Setting it implies
	// TLS.EnableTickets. The callback runs before Dial returns; the
	// ticket's master secrets are live key material — hold them
	// accordingly and Wipe retired tickets.
	OnNewChainTicket func(*ChainTicket)
	// HandshakeTimeout bounds each phase of session establishment
	// (primary handshake, secondary handshakes, key distribution).
	// Zero applies DefaultHandshakeTimeout; negative disables the
	// deadlines. On expiry Dial fails with a HandshakeTimeoutError
	// naming the phase.
	HandshakeTimeout time.Duration
}

// ServerConfig configures an mbTLS server endpoint.
type ServerConfig struct {
	// TLS configures the primary handshake; Certificate is required.
	TLS *tls12.Config
	// AcceptMiddleboxes enables processing of MiddleboxAnnouncements.
	// When false the server behaves like a strict legacy endpoint.
	AcceptMiddleboxes bool
	// MiddleboxTLS is the template config for the client-role
	// secondary handshakes the server runs toward announced
	// middleboxes (trust roots for MSP certificates). If nil, TLS is
	// used with the ServerName check dropped.
	MiddleboxTLS *tls12.Config
	// RequireMiddleboxAttestation and MiddleboxVerifier mirror the
	// client-side fields.
	RequireMiddleboxAttestation bool
	MiddleboxVerifier           *enclave.Verifier
	// Accountability and AccountabilityClock mirror the client-side
	// fields for the server's own (server-side) middleboxes.
	Accountability      Accountability
	AccountabilityClock func() time.Time
	// Approve is consulted for each announced middlebox; nil approves
	// all verified middleboxes.
	Approve func(MiddleboxSummary) bool
	// HandshakeTimeout mirrors ClientConfig.HandshakeTimeout for
	// Accept.
	HandshakeTimeout time.Duration
}

// secondaryClientConfig derives the tls12 config for a secondary
// session in which this endpoint plays the client role. The
// accountability mode contributes its per-hop credential hooks
// (attestation request/verification, or the proxysig negotiation
// flag) after the common scrubbing.
func secondaryClientConfig(primary, template *tls12.Config, acct accountabilityMode) *tls12.Config {
	var cfg tls12.Config
	if template != nil {
		cfg = *template
	} else if primary != nil {
		cfg = *primary
		// Middlebox certificates name the MSP, not the origin server.
		cfg.ServerName = ""
	}
	cfg.MiddleboxSupport = nil
	cfg.SessionTicket = nil
	// Hop resumption state is injected per-chain by the caller; the
	// primary's ticket callback must not fire for hop tickets.
	cfg.HopTickets = nil
	cfg.OnNewTicket = nil
	acct.configureSecondary(&cfg)
	return &cfg
}

// summarize builds a MiddleboxSummary from a completed secondary
// session.
func summarize(sub uint8, state tls12.ConnectionState) MiddleboxSummary {
	s := MiddleboxSummary{Subchannel: sub}
	if len(state.PeerCertificates) > 0 {
		s.Certificates = state.PeerCertificates
		s.Name = state.PeerCertificates[0].Subject.CommonName
	}
	if len(state.AttestationQuote) > 0 {
		if q, err := enclave.ParseQuote(state.AttestationQuote); err == nil {
			s.Attested = true
			s.Measurement = q.Measurement
		}
	}
	return s
}
