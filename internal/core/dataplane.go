package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/enclave"
	"repro/internal/tls12"
)

// maxRecordPlaintext mirrors the TLS fragment limit for resealed
// records.
const maxRecordPlaintext = tls12.MaxPlaintext

// batchResult accounts for one handleBatch call. Both counters are
// exact even when the batch fails partway: opened counts the input
// records fully opened and resealed before the failure, appended the
// output records framed into dst. Counting this way keeps the stats
// surface deterministic — totals depend on the record stream, not on
// how the relay happened to slice it into batches.
type batchResult struct {
	appended int // records framed into dst
	opened   int // input records fully opened and resealed
}

// dataPlaneHandler is a middlebox's per-session data plane: it opens
// protected records arriving on one hop, optionally transforms
// application data, and reseals for the next hop (paper Figure 4).
//
// handleBatch processes a batch of records in one call, appending the
// resealed records in wire form (header included) to dst and returning
// the extended buffer plus the batch accounting. Input payloads are
// decrypted in place and destroyed; the appended bytes never alias
// them, so the caller may reuse its read buffers as soon as the call
// returns. On error, dst still carries the records resealed before
// the failure — the caller must flush them, because they consumed
// sealing sequence numbers. Batching is what makes the enclave variant
// cheap: the whole batch crosses the boundary as a single ecall.
//
// appendAlert seals an alert under the given direction's sealing
// state and appends its wire form to dst. A relay uses it fatally to
// tell the next hop the path died (DESIGN.md §7), and at warning level
// to seal the close_notify a force-closed session sends at the drain
// deadline; either way it must go through the data plane because a
// plaintext alert would be a MAC failure for a peer holding hop keys.
type dataPlaneHandler interface {
	handleBatch(dir Direction, recs []tls12.RawRecord, dst []byte) ([]byte, batchResult, error)
	appendAlert(dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, dst []byte) ([]byte, error)
}

// dataPlane is the host-memory implementation.
type dataPlane struct {
	// Per-direction locks. Each direction is normally driven by its own
	// single relay goroutine, but fault propagation seals an alert in
	// both directions from whichever goroutine saw the failure, so the
	// sealing states need protection. One uncontended lock per batch is
	// free next to the AEAD work.
	c2sMu sync.Mutex
	s2cMu sync.Mutex

	// Opening states for inbound records and sealing states for
	// outbound records, per direction. For a middlebox, client→server
	// records are opened with the downstream (client-side) hop key and
	// sealed with the upstream hop key.
	openC2S *tls12.CipherState
	sealC2S *tls12.CipherState
	openS2C *tls12.CipherState
	sealS2C *tls12.CipherState

	proc Processor
}

// newDataPlane wires a middlebox data plane from received key material.
func newDataPlane(km *KeyMaterial, proc Processor) (*dataPlane, error) {
	downC2S, downS2C, err := km.Down.cipherStates()
	if err != nil {
		return nil, err
	}
	upC2S, upS2C, err := km.Up.cipherStates()
	if err != nil {
		return nil, err
	}
	return &dataPlane{
		openC2S: downC2S,
		sealC2S: upC2S,
		openS2C: upS2C,
		sealS2C: downS2C,
		proc:    proc,
	}, nil
}

// appendSealedRecord seals one outbound fragment and appends its full
// wire form (header, explicit nonce, ciphertext, tag) to dst with no
// intermediate copy.
func appendSealedRecord(dst []byte, cs *tls12.CipherState, typ tls12.ContentType, plaintext []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(typ), byte(tls12.VersionTLS12>>8), byte(tls12.VersionTLS12&0xff), 0, 0)
	dst = cs.SealAppend(dst, typ, plaintext)
	binary.BigEndian.PutUint16(dst[start+3:start+5], uint16(len(dst)-start-tls12.RecordHeaderLen))
	return dst
}

// dirLock returns the lock guarding a direction's cipher states.
func (dp *dataPlane) dirLock(dir Direction) *sync.Mutex {
	if dir == DirServerToClient {
		return &dp.s2cMu
	}
	return &dp.c2sMu
}

// handleBatch implements dataPlaneHandler. A MAC failure is fatal for
// the session: per-hop keys are what enforce path integrity (P4), so a
// record arriving under the wrong key must kill the connection, not be
// forwarded.
func (dp *dataPlane) handleBatch(dir Direction, recs []tls12.RawRecord, dst []byte) ([]byte, batchResult, error) {
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	openCS, sealCS := dp.openC2S, dp.sealC2S
	if dir == DirServerToClient {
		openCS, sealCS = dp.openS2C, dp.sealS2C
	}
	var res batchResult
	for _, rec := range recs {
		plaintext, err := openCS.OpenInPlace(rec.Type, rec.Payload)
		if err != nil {
			return dst, res, fmt.Errorf("core: hop MAC check failed (%s, %s): %w", dir, rec.Type, err)
		}
		out := plaintext
		if rec.Type == tls12.TypeApplicationData && dp.proc != nil {
			out, err = dp.proc.Process(dir, plaintext)
			if err != nil {
				return dst, res, fmt.Errorf("core: middlebox processor: %w", err)
			}
		}
		// Every inbound record yields at least one outbound record, even
		// when the payload is empty: non-data records (alerts) reseal
		// verbatim, and an empty application-data record — legal TLS,
		// sometimes sent as a traffic-analysis countermeasure — must
		// still reach the next hop with the sequence numbers it consumed.
		for first := true; first || len(out) > 0; first = false {
			frag := out
			if len(frag) > maxRecordPlaintext {
				frag = frag[:maxRecordPlaintext]
			}
			out = out[len(frag):]
			dst = appendSealedRecord(dst, sealCS, rec.Type, frag)
			res.appended++
		}
		res.opened++
	}
	return dst, res, nil
}

// appendAlert implements dataPlaneHandler.
func (dp *dataPlane) appendAlert(dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, dst []byte) ([]byte, error) {
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	sealCS := dp.sealC2S
	if dir == DirServerToClient {
		sealCS = dp.sealS2C
	}
	body := [2]byte{byte(level), byte(desc)}
	return appendSealedRecord(dst, sealCS, tls12.TypeAlert, body[:]), nil
}

// enclaveDataPlane keeps the cipher states and processor inside an SGX
// enclave; every record crossing the middlebox enters and leaves the
// enclave (the workload measured by the paper's Figure 7). Each
// session's plane lives under its own enclave-memory key, since one
// enclave serves every session of the middlebox concurrently.
type enclaveDataPlane struct {
	e   *enclave.Enclave
	key string
}

// dpCounter disambiguates concurrent sessions' data planes within one
// enclave.
var dpCounter atomic.Uint64

// installEnclaveDataPlane constructs the data plane inside the enclave.
func installEnclaveDataPlane(e *enclave.Enclave, km *KeyMaterial, proc Processor) (*enclaveDataPlane, error) {
	dp, err := newDataPlane(km, proc)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("mbtls:dataplane:%d", dpCounter.Add(1))
	e.Enter(func(mem enclave.Memory) {
		mem.Put(key, dp)
	})
	return &enclaveDataPlane{e: e, key: key}, nil
}

// handleBatch implements dataPlaneHandler via a single ecall for the
// whole batch — the boundary-crossing cost is amortized across every
// record the relay drained, which is what lets Figure 7's enclave
// configuration track the no-enclave one. The cipher states advance
// per record, protected by the inner plane's per-direction locks.
func (edp *enclaveDataPlane) handleBatch(dir Direction, recs []tls12.RawRecord, dst []byte) (out []byte, res batchResult, err error) {
	out = dst
	edp.e.Enter(func(mem enclave.Memory) {
		dp, ok := mem.Get(edp.key).(*dataPlane)
		if !ok {
			err = fmt.Errorf("core: enclave data plane missing")
			return
		}
		out, res, err = dp.handleBatch(dir, recs, dst)
	})
	return out, res, err
}

// appendAlert implements dataPlaneHandler inside the enclave.
func (edp *enclaveDataPlane) appendAlert(dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, dst []byte) (out []byte, err error) {
	out = dst
	edp.e.Enter(func(mem enclave.Memory) {
		dp, ok := mem.Get(edp.key).(*dataPlane)
		if !ok {
			err = fmt.Errorf("core: enclave data plane missing")
			return
		}
		out, err = dp.appendAlert(dir, level, desc, dst)
	})
	return out, err
}
