package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/enclave"
	"repro/internal/tls12"
)

// maxRecordPlaintext mirrors the TLS fragment limit for resealed
// records.
const maxRecordPlaintext = 16384

// dataPlaneHandler is a middlebox's per-session data plane: it opens a
// protected record arriving on one hop, optionally transforms
// application data, and reseals for the next hop (paper Figure 4).
type dataPlaneHandler interface {
	handleRecord(dir Direction, rec tls12.RawRecord) ([]tls12.RawRecord, error)
}

// dataPlane is the host-memory implementation.
type dataPlane struct {
	// Opening states for inbound records and sealing states for
	// outbound records, per direction. For a middlebox, client→server
	// records are opened with the downstream (client-side) hop key and
	// sealed with the upstream hop key.
	openC2S *tls12.CipherState
	sealC2S *tls12.CipherState
	openS2C *tls12.CipherState
	sealS2C *tls12.CipherState

	proc Processor
}

// newDataPlane wires a middlebox data plane from received key material.
func newDataPlane(km *KeyMaterial, proc Processor) (*dataPlane, error) {
	downC2S, downS2C, err := km.Down.cipherStates()
	if err != nil {
		return nil, err
	}
	upC2S, upS2C, err := km.Up.cipherStates()
	if err != nil {
		return nil, err
	}
	return &dataPlane{
		openC2S: downC2S,
		sealC2S: upC2S,
		openS2C: upS2C,
		sealS2C: downS2C,
		proc:    proc,
	}, nil
}

// handleRecord implements dataPlaneHandler. A MAC failure is fatal for
// the session: per-hop keys are what enforce path integrity (P4), so a
// record arriving under the wrong key must kill the connection, not be
// forwarded.
func (dp *dataPlane) handleRecord(dir Direction, rec tls12.RawRecord) ([]tls12.RawRecord, error) {
	openCS, sealCS := dp.openC2S, dp.sealC2S
	if dir == DirServerToClient {
		openCS, sealCS = dp.openS2C, dp.sealS2C
	}
	plaintext, err := openCS.Open(rec.Type, rec.Payload)
	if err != nil {
		return nil, fmt.Errorf("core: hop MAC check failed (%s, %s): %w", dir, rec.Type, err)
	}
	out := plaintext
	if rec.Type == tls12.TypeApplicationData && dp.proc != nil {
		out, err = dp.proc.Process(dir, plaintext)
		if err != nil {
			return nil, fmt.Errorf("core: middlebox processor: %w", err)
		}
	}
	var recs []tls12.RawRecord
	if rec.Type != tls12.TypeApplicationData {
		// Non-data records (alerts) are resealed verbatim, even when
		// empty.
		return []tls12.RawRecord{{Type: rec.Type, Payload: sealCS.Seal(rec.Type, out)}}, nil
	}
	for len(out) > 0 {
		frag := out
		if len(frag) > maxRecordPlaintext {
			frag = frag[:maxRecordPlaintext]
		}
		out = out[len(frag):]
		recs = append(recs, tls12.RawRecord{Type: rec.Type, Payload: sealCS.Seal(rec.Type, frag)})
	}
	return recs, nil
}

// enclaveDataPlane keeps the cipher states and processor inside an SGX
// enclave; every record crossing the middlebox enters and leaves the
// enclave (the workload measured by the paper's Figure 7). Each
// session's plane lives under its own enclave-memory key, since one
// enclave serves every session of the middlebox concurrently.
type enclaveDataPlane struct {
	e   *enclave.Enclave
	key string
}

// dpCounter disambiguates concurrent sessions' data planes within one
// enclave.
var dpCounter atomic.Uint64

// installEnclaveDataPlane constructs the data plane inside the enclave.
func installEnclaveDataPlane(e *enclave.Enclave, km *KeyMaterial, proc Processor) (*enclaveDataPlane, error) {
	dp, err := newDataPlane(km, proc)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("mbtls:dataplane:%d", dpCounter.Add(1))
	e.Enter(func(mem enclave.Memory) {
		mem.Put(key, dp)
	})
	return &enclaveDataPlane{e: e, key: key}, nil
}

// handleRecord implements dataPlaneHandler via an ecall. The cipher
// states advance per record, so each direction must be driven by one
// goroutine — which the relay guarantees.
func (edp *enclaveDataPlane) handleRecord(dir Direction, rec tls12.RawRecord) (recs []tls12.RawRecord, err error) {
	edp.e.Enter(func(mem enclave.Memory) {
		dp, ok := mem.Get(edp.key).(*dataPlane)
		if !ok {
			err = fmt.Errorf("core: enclave data plane missing")
			return
		}
		recs, err = dp.handleRecord(dir, rec)
	})
	return recs, err
}
