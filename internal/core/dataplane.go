package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/enclave"
	"repro/internal/tls12"
)

// maxRecordPlaintext mirrors the TLS fragment limit for resealed
// records.
const maxRecordPlaintext = tls12.MaxPlaintext

// batchResult accounts for one handleBatch call. Both counters are
// exact even when the batch fails partway: opened counts the input
// records fully opened and resealed before the failure, appended the
// output records framed into dst. Counting this way keeps the stats
// surface deterministic — totals depend on the record stream, not on
// how the relay happened to slice it into batches.
type batchResult struct {
	appended int // records framed into dst
	opened   int // input records fully opened and resealed
}

// dataPlaneHandler is a middlebox's per-session data plane: it opens
// protected records arriving on one hop, optionally transforms
// application data, and reseals for the next hop (paper Figure 4).
//
// handleBatch processes a batch of records in one call, appending the
// resealed records in wire form (header included) to dst and returning
// the extended buffer plus the batch accounting. Input payloads are
// decrypted in place and destroyed; the appended bytes never alias
// them, so the caller may reuse its read buffers as soon as the call
// returns. On error, dst still carries the records resealed before
// the failure — the caller must flush them, because they consumed
// sealing sequence numbers. Batching is what makes the enclave variant
// cheap: the whole batch crosses the boundary as a single ecall.
//
// appendAlert seals an alert under the given direction's sealing
// state and appends its wire form to dst. A relay uses it fatally to
// tell the next hop the path died (DESIGN.md §7), and at warning level
// to seal the close_notify a force-closed session sends at the drain
// deadline; either way it must go through the data plane because a
// plaintext alert would be a MAC failure for a peer holding hop keys.
// The remaining four methods are the parallel pipeline's split of
// handleBatch into an intake half and a worker half (DESIGN.md §14).
// reserveBatch runs on the relay goroutine and claims the sequence
// numbers the batch will consume — the open range from arrival order,
// the seal range from the predicted output geometry — and returns
// ok=false when the batch cannot be processed out of order (a
// Processor is installed: stateful processors need ordered input and
// transforming ones make the seal-range prediction impossible), in
// which case nothing is reserved and the caller must use handleBatch.
// processBatchAt then runs on any worker goroutine, any number
// concurrently, using only the reservation and caller-owned scratch.
// sealSeq/resetSealSeq let the fault path read the committed sealing
// position and rewind an abandoned reservation so a subsequently
// sealed alert still verifies at the peer.
type dataPlaneHandler interface {
	handleBatch(dir Direction, recs []tls12.RawRecord, dst []byte) ([]byte, batchResult, error)
	appendAlert(dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, dst []byte) ([]byte, error)
	reserveBatch(dir Direction, recs []tls12.RawRecord) (batchReservation, bool)
	processBatchAt(dir Direction, recs []tls12.RawRecord, rsv batchReservation, sc *tls12.CryptoScratch, dst []byte) ([]byte, batchResult, error)
	sealSeq(dir Direction) uint64
	resetSealSeq(dir Direction, seq uint64)
}

// batchReservation is the sequence-number claim reserveBatch hands to
// processBatchAt: the first open sequence (arrival order), the first
// seal sequence, and the exact number of output records the batch will
// seal. The prediction is exact because without a Processor every
// inbound record reseals to ceil(plaintextLen/maxRecordPlaintext)
// records (minimum one), and plaintext length is determined by wire
// length.
type batchReservation struct {
	openStart uint64
	sealStart uint64
	outCount  int
}

// dataPlane is the host-memory implementation.
type dataPlane struct {
	// Per-direction locks. Each direction is normally driven by its own
	// single relay goroutine, but fault propagation seals an alert in
	// both directions from whichever goroutine saw the failure, so the
	// sealing states need protection. One uncontended lock per batch is
	// free next to the AEAD work.
	c2sMu sync.Mutex
	s2cMu sync.Mutex

	// Opening states for inbound records and sealing states for
	// outbound records, per direction. For a middlebox, client→server
	// records are opened with the downstream (client-side) hop key and
	// sealed with the upstream hop key.
	openC2S *tls12.CipherState
	sealC2S *tls12.CipherState
	openS2C *tls12.CipherState
	sealS2C *tls12.CipherState

	proc Processor
}

// newDataPlane wires a middlebox data plane from received key material.
func newDataPlane(km *KeyMaterial, proc Processor) (*dataPlane, error) {
	downC2S, downS2C, err := km.Down.cipherStates()
	if err != nil {
		return nil, err
	}
	upC2S, upS2C, err := km.Up.cipherStates()
	if err != nil {
		return nil, err
	}
	return &dataPlane{
		openC2S: downC2S,
		sealC2S: upC2S,
		openS2C: upS2C,
		sealS2C: downS2C,
		proc:    proc,
	}, nil
}

// appendSealedRecord seals one outbound fragment and appends its full
// wire form (header, explicit nonce, ciphertext, tag) to dst with no
// intermediate copy.
func appendSealedRecord(dst []byte, cs *tls12.CipherState, typ tls12.ContentType, plaintext []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(typ), byte(tls12.VersionTLS12>>8), byte(tls12.VersionTLS12&0xff), 0, 0)
	dst = cs.SealAppend(dst, typ, plaintext)
	binary.BigEndian.PutUint16(dst[start+3:start+5], uint16(len(dst)-start-tls12.RecordHeaderLen))
	return dst
}

// appendSealedRecordAt is appendSealedRecord at an explicit sequence
// number with caller-owned scratch — the pipeline-worker variant.
func appendSealedRecordAt(dst []byte, cs *tls12.CipherState, sc *tls12.CryptoScratch, seq uint64, typ tls12.ContentType, plaintext []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(typ), byte(tls12.VersionTLS12>>8), byte(tls12.VersionTLS12&0xff), 0, 0)
	dst = cs.SealAppendAt(sc, dst, seq, typ, plaintext)
	binary.BigEndian.PutUint16(dst[start+3:start+5], uint16(len(dst)-start-tls12.RecordHeaderLen))
	return dst
}

// dirLock returns the lock guarding a direction's cipher states.
func (dp *dataPlane) dirLock(dir Direction) *sync.Mutex {
	if dir == DirServerToClient {
		return &dp.s2cMu
	}
	return &dp.c2sMu
}

// states returns the open/seal cipher states for a direction. Callers
// must hold the direction's lock unless using only the explicit-
// sequence methods on the returned states.
func (dp *dataPlane) states(dir Direction) (openCS, sealCS *tls12.CipherState) {
	if dir == DirServerToClient {
		return dp.openS2C, dp.sealS2C
	}
	return dp.openC2S, dp.sealC2S
}

// predictOutRecords returns the number of records resealing one inbound
// payload produces when no Processor is installed: at least one, and
// one more per full fragment beyond maxRecordPlaintext. A payload too
// short to open predicts one — the open will fail, and the fault path
// rewinds the over-reserved seal range.
func predictOutRecords(payloadLen, overhead int) int {
	pt := payloadLen - overhead
	if pt <= maxRecordPlaintext {
		return 1
	}
	return (pt + maxRecordPlaintext - 1) / maxRecordPlaintext
}

// handleBatch implements dataPlaneHandler. A MAC failure is fatal for
// the session: per-hop keys are what enforce path integrity (P4), so a
// record arriving under the wrong key must kill the connection, not be
// forwarded.
func (dp *dataPlane) handleBatch(dir Direction, recs []tls12.RawRecord, dst []byte) ([]byte, batchResult, error) {
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	openCS, sealCS := dp.openC2S, dp.sealC2S
	if dir == DirServerToClient {
		openCS, sealCS = dp.openS2C, dp.sealS2C
	}
	var res batchResult
	for _, rec := range recs {
		plaintext, err := openCS.OpenInPlace(rec.Type, rec.Payload)
		if err != nil {
			return dst, res, fmt.Errorf("core: hop MAC check failed (%s, %s): %w", dir, rec.Type, err)
		}
		out := plaintext
		if rec.Type == tls12.TypeApplicationData && dp.proc != nil {
			out, err = dp.proc.Process(dir, plaintext)
			if err != nil {
				return dst, res, fmt.Errorf("core: middlebox processor: %w", err)
			}
		}
		// Every inbound record yields at least one outbound record, even
		// when the payload is empty: non-data records (alerts) reseal
		// verbatim, and an empty application-data record — legal TLS,
		// sometimes sent as a traffic-analysis countermeasure — must
		// still reach the next hop with the sequence numbers it consumed.
		for first := true; first || len(out) > 0; first = false {
			frag := out
			if len(frag) > maxRecordPlaintext {
				frag = frag[:maxRecordPlaintext]
			}
			out = out[len(frag):]
			dst = appendSealedRecord(dst, sealCS, rec.Type, frag)
			res.appended++
		}
		res.opened++
	}
	return dst, res, nil
}

// reserveBatch implements dataPlaneHandler. The open range is one
// sequence per inbound record; the seal range is the exact output
// geometry predicted from wire lengths. Reservation happens under the
// direction lock so it serializes against the serial path and against
// other reservations, but the claimed ranges are then consumed with no
// lock at all.
func (dp *dataPlane) reserveBatch(dir Direction, recs []tls12.RawRecord) (batchReservation, bool) {
	if dp.proc != nil {
		return batchReservation{}, false
	}
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	openCS, sealCS := dp.states(dir)
	var rsv batchReservation
	overhead := sealCS.Overhead()
	for _, rec := range recs {
		rsv.outCount += predictOutRecords(len(rec.Payload), overhead)
	}
	rsv.openStart = openCS.ReserveSeq(uint64(len(recs)))
	rsv.sealStart = sealCS.ReserveSeq(uint64(rsv.outCount))
	return rsv, true
}

// processBatchAt implements dataPlaneHandler: handleBatch against a
// reservation instead of live cipher-state sequences. It takes no lock
// — any number of workers may run it concurrently for the same
// direction, each with its own scratch — and produces output
// byte-identical to handleBatch processing the same records at the
// same sequence positions. Error text matches handleBatch so fault
// classification is path-independent.
func (dp *dataPlane) processBatchAt(dir Direction, recs []tls12.RawRecord, rsv batchReservation, sc *tls12.CryptoScratch, dst []byte) ([]byte, batchResult, error) {
	openCS, sealCS := dp.states(dir)
	var res batchResult
	openSeq, sealSeq := rsv.openStart, rsv.sealStart
	for _, rec := range recs {
		plaintext, err := openCS.OpenInPlaceAt(sc, openSeq, rec.Type, rec.Payload)
		if err != nil {
			return dst, res, fmt.Errorf("core: hop MAC check failed (%s, %s): %w", dir, rec.Type, err)
		}
		openSeq++
		out := plaintext
		for first := true; first || len(out) > 0; first = false {
			frag := out
			if len(frag) > maxRecordPlaintext {
				frag = frag[:maxRecordPlaintext]
			}
			out = out[len(frag):]
			dst = appendSealedRecordAt(dst, sealCS, sc, sealSeq, rec.Type, frag)
			sealSeq++
			res.appended++
		}
		res.opened++
	}
	return dst, res, nil
}

// sealSeq implements dataPlaneHandler.
func (dp *dataPlane) sealSeq(dir Direction) uint64 {
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	_, sealCS := dp.states(dir)
	return sealCS.Seq()
}

// resetSealSeq implements dataPlaneHandler: the fault-path rewind over
// reserved-but-uncommitted sealing sequences.
func (dp *dataPlane) resetSealSeq(dir Direction, seq uint64) {
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	_, sealCS := dp.states(dir)
	sealCS.SetSeq(seq)
}

// appendAlert implements dataPlaneHandler.
func (dp *dataPlane) appendAlert(dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, dst []byte) ([]byte, error) {
	mu := dp.dirLock(dir)
	mu.Lock()
	defer mu.Unlock()
	sealCS := dp.sealC2S
	if dir == DirServerToClient {
		sealCS = dp.sealS2C
	}
	body := [2]byte{byte(level), byte(desc)}
	return appendSealedRecord(dst, sealCS, tls12.TypeAlert, body[:]), nil
}

// enclaveDataPlane keeps the cipher states and processor inside an SGX
// enclave; every record crossing the middlebox enters and leaves the
// enclave (the workload measured by the paper's Figure 7). Each
// session's plane lives under its own enclave-memory key, since one
// enclave serves every session of the middlebox concurrently.
type enclaveDataPlane struct {
	e   *enclave.Enclave
	key string
}

// dpCounter disambiguates concurrent sessions' data planes within one
// enclave.
var dpCounter atomic.Uint64

// installEnclaveDataPlane constructs the data plane inside the enclave.
func installEnclaveDataPlane(e *enclave.Enclave, km *KeyMaterial, proc Processor) (*enclaveDataPlane, error) {
	dp, err := newDataPlane(km, proc)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("mbtls:dataplane:%d", dpCounter.Add(1))
	e.Enter(func(mem enclave.Memory) {
		mem.Put(key, dp)
	})
	return &enclaveDataPlane{e: e, key: key}, nil
}

// handleBatch implements dataPlaneHandler via a single ecall for the
// whole batch — the boundary-crossing cost is amortized across every
// record the relay drained, which is what lets Figure 7's enclave
// configuration track the no-enclave one. The cipher states advance
// per record, protected by the inner plane's per-direction locks.
func (edp *enclaveDataPlane) handleBatch(dir Direction, recs []tls12.RawRecord, dst []byte) (out []byte, res batchResult, err error) {
	out = dst
	edp.e.Enter(func(mem enclave.Memory) {
		dp, ok := mem.Get(edp.key).(*dataPlane)
		if !ok {
			err = fmt.Errorf("core: enclave data plane missing")
			return
		}
		out, res, err = dp.handleBatch(dir, recs, dst)
	})
	return out, res, err
}

// reserveBatch implements dataPlaneHandler: one ecall claims the
// batch's sequence ranges. Together with processBatchAt this costs two
// boundary crossings per batch instead of the serial path's one — the
// price of letting a worker run the crypto off the relay goroutine —
// but the per-record amortization Figure 7 depends on is preserved:
// crossings stay O(batches), never O(records).
func (edp *enclaveDataPlane) reserveBatch(dir Direction, recs []tls12.RawRecord) (rsv batchReservation, ok bool) {
	edp.e.Enter(func(mem enclave.Memory) {
		dp, inner := mem.Get(edp.key).(*dataPlane)
		if !inner {
			return
		}
		rsv, ok = dp.reserveBatch(dir, recs)
	})
	return rsv, ok
}

// processBatchAt implements dataPlaneHandler: the whole batch crosses
// the boundary as the worker's single ecall. Enclave.Enter does not
// serialize callers, so workers processing different batches of the
// same session proceed concurrently inside the enclave — safe because
// processBatchAt touches only immutable state plus the reservation.
func (edp *enclaveDataPlane) processBatchAt(dir Direction, recs []tls12.RawRecord, rsv batchReservation, sc *tls12.CryptoScratch, dst []byte) (out []byte, res batchResult, err error) {
	out = dst
	edp.e.Enter(func(mem enclave.Memory) {
		dp, ok := mem.Get(edp.key).(*dataPlane)
		if !ok {
			err = fmt.Errorf("core: enclave data plane missing")
			return
		}
		out, res, err = dp.processBatchAt(dir, recs, rsv, sc, dst)
	})
	return out, res, err
}

// sealSeq implements dataPlaneHandler inside the enclave.
func (edp *enclaveDataPlane) sealSeq(dir Direction) (seq uint64) {
	edp.e.Enter(func(mem enclave.Memory) {
		if dp, ok := mem.Get(edp.key).(*dataPlane); ok {
			seq = dp.sealSeq(dir)
		}
	})
	return seq
}

// resetSealSeq implements dataPlaneHandler inside the enclave.
func (edp *enclaveDataPlane) resetSealSeq(dir Direction, seq uint64) {
	edp.e.Enter(func(mem enclave.Memory) {
		if dp, ok := mem.Get(edp.key).(*dataPlane); ok {
			dp.resetSealSeq(dir, seq)
		}
	})
}

// appendAlert implements dataPlaneHandler inside the enclave.
func (edp *enclaveDataPlane) appendAlert(dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, dst []byte) (out []byte, err error) {
	out = dst
	edp.e.Enter(func(mem enclave.Memory) {
		dp, ok := mem.Get(edp.key).(*dataPlane)
		if !ok {
			err = fmt.Errorf("core: enclave data plane missing")
			return
		}
		out, err = dp.appendAlert(dir, level, desc, dst)
	})
	return out, err
}
