package core_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/netsim"
	"repro/internal/tls12"
)

// env bundles the PKI and attestation fixtures shared by the tests.
type env struct {
	ca         *certs.CA
	authority  *enclave.Authority
	serverCert *tls12.Certificate
}

func newEnv(t *testing.T) *env {
	t.Helper()
	ca, err := certs.NewCA("mbtls test root")
	if err != nil {
		t.Fatal(err)
	}
	authority, err := enclave.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &env{ca: ca, authority: authority, serverCert: serverCert}
}

func (e *env) clientConfig() *core.ClientConfig {
	return &core.ClientConfig{
		TLS: &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"},
	}
}

func (e *env) serverConfig() *core.ServerConfig {
	return &core.ServerConfig{
		TLS:               &tls12.Config{Certificate: e.serverCert},
		AcceptMiddleboxes: true,
		MiddleboxTLS:      &tls12.Config{RootCAs: e.ca.Pool()},
	}
}

func (e *env) middlebox(t *testing.T, name string, mode core.Mode, opts ...func(*core.MiddleboxConfig)) *core.Middlebox {
	t.Helper()
	cert, err := e.ca.Issue(name, []string{name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.MiddleboxConfig{Name: name, Mode: mode, Certificate: cert}
	for _, o := range opts {
		o(&cfg)
	}
	mb, err := core.NewMiddlebox(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mb
}

// buildChain wires client → middleboxes → server over in-memory pipes
// and starts each middlebox's relay.
func buildChain(mboxes ...*core.Middlebox) (clientEnd, serverEnd net.Conn) {
	left, right := netsim.Pipe()
	clientEnd = left
	prev := right
	for _, mb := range mboxes {
		upL, upR := netsim.Pipe()
		go mb.Handle(prev, upL) //nolint:errcheck
		prev = upR
	}
	return clientEnd, prev
}

// runSession dials and accepts concurrently, returning both sessions.
func runSession(t *testing.T, ccfg *core.ClientConfig, scfg *core.ServerConfig, mboxes ...*core.Middlebox) (*core.Session, *core.Session) {
	t.Helper()
	clientEnd, serverEnd := buildChain(mboxes...)
	type res struct {
		sess *core.Session
		err  error
	}
	cch := make(chan res, 1)
	sch := make(chan res, 1)
	go func() {
		s, err := core.Dial(clientEnd, ccfg)
		cch <- res{s, err}
	}()
	go func() {
		s, err := core.Accept(serverEnd, scfg)
		sch <- res{s, err}
	}()
	var cr, sr res
	select {
	case cr = <-cch:
	case <-time.After(10 * time.Second):
		t.Fatal("client handshake timed out")
	}
	select {
	case sr = <-sch:
	case <-time.After(10 * time.Second):
		t.Fatal("server handshake timed out")
	}
	if cr.err != nil || sr.err != nil {
		t.Fatalf("session setup: client=%v server=%v", cr.err, sr.err)
	}
	return cr.sess, sr.sess
}

// exchange verifies bidirectional application data through the session.
func exchange(t *testing.T, client, server io.ReadWriter, msg, reply string) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		if _, err := client.Write([]byte(msg)); err != nil {
			done <- err
			return
		}
		buf := make([]byte, len(reply))
		if _, err := io.ReadFull(client, buf); err != nil {
			done <- fmt.Errorf("client read: %w", err)
			return
		}
		if string(buf) != reply {
			done <- fmt.Errorf("client got %q, want %q", buf, reply)
			return
		}
		done <- nil
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("server got %q, want %q", buf, msg)
	}
	if _, err := server.Write([]byte(reply)); err != nil {
		t.Fatalf("server write: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSessionNoMiddlebox(t *testing.T) {
	e := newEnv(t)
	client, server := runSession(t, e.clientConfig(), e.serverConfig())
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "hello mbtls", "hello client")
	if n := len(client.Middleboxes()); n != 0 {
		t.Fatalf("client reports %d middleboxes, want 0", n)
	}
}

func TestSessionOneClientSideMiddlebox(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "GET / HTTP/1.1\r\n\r\n", "HTTP/1.1 200 OK\r\n\r\n")

	mbs := client.Middleboxes()
	if len(mbs) != 1 || mbs[0].Name != "proxy.example" {
		t.Fatalf("client middleboxes = %+v, want proxy.example", mbs)
	}
	if len(server.Middleboxes()) != 0 {
		t.Fatal("server should not know about client-side middleboxes (endpoint isolation, §4.2)")
	}
	if mb.Stats().MbTLSSessions != 1 {
		t.Fatalf("middlebox stats: %+v", mb.Stats())
	}
}

func TestSessionTwoClientSideMiddleboxes(t *testing.T) {
	e := newEnv(t)
	mb1 := e.middlebox(t, "mbox-c1.example", core.ClientSide) // adjacent to client
	mb0 := e.middlebox(t, "mbox-c0.example", core.ClientSide) // adjacent to bridge
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb1, mb0)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "data through two middleboxes", "ack")

	mbs := client.Middleboxes()
	if len(mbs) != 2 {
		t.Fatalf("client reports %d middleboxes, want 2", len(mbs))
	}
	// Path order from the client outward: mb1 then mb0 (Figure 4).
	if mbs[0].Name != "mbox-c1.example" || mbs[1].Name != "mbox-c0.example" {
		t.Fatalf("middlebox order = [%s %s], want [mbox-c1 mbox-c0]", mbs[0].Name, mbs[1].Name)
	}
}

func TestSessionOneServerSideMiddlebox(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "cdn.example", core.ServerSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "request", "response")

	if len(client.Middleboxes()) != 0 {
		t.Fatal("client should not know about server-side middleboxes")
	}
	mbs := server.Middleboxes()
	if len(mbs) != 1 || mbs[0].Name != "cdn.example" {
		t.Fatalf("server middleboxes = %+v", mbs)
	}
}

func TestSessionTwoServerSideMiddleboxes(t *testing.T) {
	e := newEnv(t)
	mbS0 := e.middlebox(t, "mbox-s0.example", core.ServerSide) // adjacent to bridge
	mbS1 := e.middlebox(t, "mbox-s1.example", core.ServerSide) // adjacent to server
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mbS0, mbS1)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "two server-side middleboxes", "ok")

	mbs := server.Middleboxes()
	if len(mbs) != 2 {
		t.Fatalf("server reports %d middleboxes, want 2", len(mbs))
	}
	// Path order from the server outward: S1 then S0.
	if mbs[0].Name != "mbox-s1.example" || mbs[1].Name != "mbox-s0.example" {
		t.Fatalf("middlebox order = [%s %s], want [mbox-s1 mbox-s0]", mbs[0].Name, mbs[1].Name)
	}
}

func TestSessionMixedMiddleboxes(t *testing.T) {
	e := newEnv(t)
	mbC := e.middlebox(t, "client-proxy.example", core.ClientSide)
	mbS := e.middlebox(t, "server-cdn.example", core.ServerSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mbC, mbS)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "mixed path", "mixed reply")

	if got := client.Middleboxes(); len(got) != 1 || got[0].Name != "client-proxy.example" {
		t.Fatalf("client middleboxes = %+v", got)
	}
	if got := server.Middleboxes(); len(got) != 1 || got[0].Name != "server-cdn.example" {
		t.Fatalf("server middleboxes = %+v", got)
	}
}

func TestSessionFourMiddleboxes(t *testing.T) {
	e := newEnv(t)
	c1 := e.middlebox(t, "c1.example", core.ClientSide)
	c0 := e.middlebox(t, "c0.example", core.ClientSide)
	s0 := e.middlebox(t, "s0.example", core.ServerSide)
	s1 := e.middlebox(t, "s1.example", core.ServerSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), c1, c0, s0, s1)
	defer client.Close()
	defer server.Close()
	// Several round trips to exercise sequence numbers on every hop.
	for i := 0; i < 5; i++ {
		exchange(t, client, server, fmt.Sprintf("ping %d with some padding", i), fmt.Sprintf("pong %d", i))
	}
}

// TestLegacyServer: an mbTLS client with client-side middleboxes
// interoperates with a completely unmodified TLS server (P5).
func TestLegacyServer(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)
	clientEnd, serverEnd := buildChain(mb)

	serverErr := make(chan error, 1)
	legacy := tls12.NewServerConn(serverEnd, &tls12.Config{Certificate: e.serverCert})
	go func() {
		if err := legacy.Handshake(); err != nil {
			serverErr <- err
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(legacy, buf); err != nil {
			serverErr <- err
			return
		}
		if string(buf) != "hello" {
			serverErr <- fmt.Errorf("legacy server got %q", buf)
			return
		}
		_, err := legacy.Write([]byte("world"))
		serverErr <- err
	}()

	sess, err := core.Dial(clientEnd, e.clientConfig())
	if err != nil {
		t.Fatalf("Dial through middlebox to legacy server: %v", err)
	}
	defer sess.Close()
	if got := sess.Middleboxes(); len(got) != 1 {
		t.Fatalf("middleboxes = %+v", got)
	}
	if _, err := sess.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(sess, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("client got %q, want world", buf)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("legacy server: %v", err)
	}
}

// TestLegacyClient: an unmodified TLS client traverses a server-side
// middlebox and reaches an mbTLS server (P5).
func TestLegacyClient(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "cdn.example", core.ServerSide)
	clientEnd, serverEnd := buildChain(mb)

	type res struct {
		sess *core.Session
		err  error
	}
	sch := make(chan res, 1)
	go func() {
		s, err := core.Accept(serverEnd, e.serverConfig())
		sch <- res{s, err}
	}()

	legacy := tls12.NewClientConn(clientEnd, &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"})
	if err := legacy.Handshake(); err != nil {
		t.Fatalf("legacy client handshake: %v", err)
	}
	sr := <-sch
	if sr.err != nil {
		t.Fatalf("mbTLS server: %v", sr.err)
	}
	defer sr.sess.Close()
	if got := sr.sess.Middleboxes(); len(got) != 1 || got[0].Name != "cdn.example" {
		t.Fatalf("server middleboxes = %+v", got)
	}
	exchange(t, legacy, sr.sess, "legacy hello", "mbtls reply")
}

// TestLegacyClientTransparent: a client-side middlebox sees no
// MiddleboxSupport extension and becomes a transparent relay.
func TestLegacyClientTransparent(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)
	clientEnd, serverEnd := buildChain(mb)

	serverErr := make(chan error, 1)
	legacyServer := tls12.NewServerConn(serverEnd, &tls12.Config{Certificate: e.serverCert})
	go func() {
		if err := legacyServer.Handshake(); err != nil {
			serverErr <- err
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(legacyServer, buf); err != nil {
			serverErr <- err
			return
		}
		_, err := legacyServer.Write(bytes.ToUpper(buf))
		serverErr <- err
	}()

	legacyClient := tls12.NewClientConn(clientEnd, &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"})
	if err := legacyClient.Handshake(); err != nil {
		t.Fatalf("legacy-to-legacy through middlebox: %v", err)
	}
	if _, err := legacyClient.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(legacyClient, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PING" {
		t.Fatalf("got %q", buf)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	if mb.Stats().MbTLSSessions != 0 {
		t.Fatal("middlebox should not have joined a legacy session")
	}
}

// TestLegacyServerStrict: a strict legacy server fails the handshake on
// an announcement; after the middlebox caches the failure, a retry
// succeeds transparently (paper §3.4).
func TestLegacyServerStrict(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "cdn.example", core.ServerSide)

	dialOnce := func() error {
		clientEnd, serverEnd := buildChain(mb)
		legacyServer := tls12.NewServerConn(serverEnd, &tls12.Config{Certificate: e.serverCert})
		serverErr := make(chan error, 1)
		go func() { serverErr <- legacyServer.Handshake() }()
		legacyClient := tls12.NewClientConn(clientEnd, &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"})
		cErr := legacyClient.Handshake()
		<-serverErr
		return cErr
	}

	if err := dialOnce(); err == nil {
		t.Fatal("first handshake through announcing middlebox should fail against a strict legacy server")
	}
	// Retry: the middlebox cached the failure and stays transparent.
	if err := dialOnce(); err != nil {
		t.Fatalf("retry should succeed transparently: %v", err)
	}
	if mb.Stats().AnnounceSkipped == 0 {
		t.Fatal("negative announcement cache was not used")
	}
}

// TestLegacyServerLenient: a lenient legacy server skips announcement
// records; the session proceeds without the middlebox.
func TestLegacyServerLenient(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "cdn2.example", core.ServerSide)
	clientEnd, serverEnd := buildChain(mb)

	legacyServer := tls12.NewServerConn(serverEnd, &tls12.Config{
		Certificate:           e.serverCert,
		LenientUnknownRecords: true,
	})
	serverErr := make(chan error, 1)
	go func() {
		if err := legacyServer.Handshake(); err != nil {
			serverErr <- err
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(legacyServer, buf); err != nil {
			serverErr <- err
			return
		}
		_, err := legacyServer.Write([]byte("pong"))
		serverErr <- err
	}()

	legacyClient := tls12.NewClientConn(clientEnd, &tls12.Config{RootCAs: e.ca.Pool(), ServerName: "origin.example"})
	if err := legacyClient.Handshake(); err != nil {
		t.Fatalf("handshake with lenient legacy server: %v", err)
	}
	if _, err := legacyClient.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(legacyClient, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

// TestProcessor: a middlebox processor transforms application data.
func TestProcessor(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "rewriter.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.NewProcessor = func() core.Processor {
			return core.ProcessorFunc(func(dir core.Direction, chunk []byte) ([]byte, error) {
				if dir == core.DirClientToServer {
					return bytes.ReplaceAll(chunk, []byte("cat"), []byte("dog")), nil
				}
				return chunk, nil
			})
		}
	})
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()

	go client.Write([]byte("the cat sat")) //nolint:errcheck
	buf := make([]byte, 11)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "the dog sat" {
		t.Fatalf("server got %q, want %q", buf, "the dog sat")
	}
}

// TestAttestation: an enclave-backed middlebox attests during the
// secondary handshake and the client's policy accepts it (P3B).
func TestAttestation(t *testing.T) {
	e := newEnv(t)
	platform, err := e.authority.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	image := enclave.CodeImage{Name: "mbtls-proxy", Version: "1.0", Config: "aes256-only"}
	encl := platform.CreateEnclave(image)

	mb := e.middlebox(t, "sgx-proxy.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.Enclave = encl
	})

	ccfg := e.clientConfig()
	ccfg.RequireMiddleboxAttestation = true
	ccfg.MiddleboxVerifier = &enclave.Verifier{
		Authority: e.authority.PublicKey(),
		Allowed:   []enclave.Measurement{image.Measurement()},
	}

	client, server := runSession(t, ccfg, e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "attested path", "ok")

	mbs := client.Middleboxes()
	if len(mbs) != 1 || !mbs[0].Attested {
		t.Fatalf("middlebox not attested: %+v", mbs)
	}
	if mbs[0].Measurement != image.Measurement() {
		t.Fatal("measurement mismatch")
	}
}

// TestAttestationRequiredButMissing: a non-enclave middlebox cannot
// join a session whose client requires attestation.
func TestAttestationRequiredButMissing(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "plain-proxy.example", core.ClientSide)
	clientEnd, serverEnd := buildChain(mb)

	go func() {
		core.Accept(serverEnd, e.serverConfig()) //nolint:errcheck
	}()

	ccfg := e.clientConfig()
	ccfg.RequireMiddleboxAttestation = true
	ccfg.MiddleboxVerifier = &enclave.Verifier{Authority: make([]byte, 32)}
	_, err := core.Dial(clientEnd, ccfg)
	if err == nil {
		t.Fatal("client accepted an unattested middlebox despite requiring attestation")
	}
}

// TestAttestationWrongCode: an enclave running unexpected code is
// rejected by the measurement policy.
func TestAttestationWrongCode(t *testing.T) {
	e := newEnv(t)
	platform, err := e.authority.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	expected := enclave.CodeImage{Name: "mbtls-proxy", Version: "1.0", Config: "aes256-only"}
	malicious := enclave.CodeImage{Name: "mbtls-proxy", Version: "1.0-evil", Config: "aes256-only"}
	encl := platform.CreateEnclave(malicious)

	mb := e.middlebox(t, "sgx-proxy.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.Enclave = encl
	})
	clientEnd, serverEnd := buildChain(mb)
	go func() {
		core.Accept(serverEnd, e.serverConfig()) //nolint:errcheck
	}()

	ccfg := e.clientConfig()
	ccfg.RequireMiddleboxAttestation = true
	ccfg.MiddleboxVerifier = &enclave.Verifier{
		Authority: e.authority.PublicKey(),
		Allowed:   []enclave.Measurement{expected.Measurement()},
	}
	_, err = core.Dial(clientEnd, ccfg)
	if err == nil {
		t.Fatal("client accepted a middlebox running unexpected code")
	}
	if !strings.Contains(err.Error(), "") {
		t.Fatal() // unreachable; keeps err used meaningfully
	}
}

// TestApproveRejection: the application veto aborts the session.
func TestApproveRejection(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "unwanted.example", core.ClientSide)
	clientEnd, serverEnd := buildChain(mb)
	go func() {
		core.Accept(serverEnd, e.serverConfig()) //nolint:errcheck
	}()

	ccfg := e.clientConfig()
	ccfg.Approve = func(s core.MiddleboxSummary) bool { return false }
	if _, err := core.Dial(clientEnd, ccfg); err == nil {
		t.Fatal("session succeeded despite application rejecting the middlebox")
	}
}

// TestApproveSummary: the approval callback sees the verified identity.
func TestApproveSummary(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "visible.example", core.ClientSide)
	var mu sync.Mutex
	var seen []core.MiddleboxSummary
	ccfg := e.clientConfig()
	ccfg.Approve = func(s core.MiddleboxSummary) bool {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
		return true
	}
	client, server := runSession(t, ccfg, e.serverConfig(), mb)
	defer client.Close()
	defer server.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].Name != "visible.example" || len(seen[0].Certificates) == 0 {
		t.Fatalf("approval summaries = %+v", seen)
	}
}

// TestLargeTransferThroughMiddleboxes pushes multi-record payloads
// through a two-middlebox path in both directions.
func TestLargeTransferThroughMiddleboxes(t *testing.T) {
	e := newEnv(t)
	mbC := e.middlebox(t, "c.example", core.ClientSide)
	mbS := e.middlebox(t, "s.example", core.ServerSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mbC, mbS)
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 200<<10)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	done := make(chan error, 1)
	go func() {
		if _, err := client.Write(payload); err != nil {
			done <- err
			return
		}
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(client, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, payload) {
			done <- fmt.Errorf("echo corrupted")
			return
		}
		done <- nil
	}()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("upload corrupted")
	}
	if _, err := server.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCloseNotifyPropagates: close_notify crosses rekeying middleboxes.
func TestCloseNotifyPropagates(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), mb)
	exchange(t, client, server, "before close", "okay")

	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := server.Read(buf)
		readDone <- err
	}()
	client.Close()
	if err := <-readDone; err != io.EOF {
		t.Fatalf("server read after client close = %v, want io.EOF", err)
	}
	server.Close()
}

// TestVaultExposure: without an enclave, hop keys are visible in the
// middlebox's host memory; with an enclave, they are not (P1A).
func TestVaultExposure(t *testing.T) {
	e := newEnv(t)
	plain := e.middlebox(t, "plain.example", core.ClientSide)
	client, server := runSession(t, e.clientConfig(), e.serverConfig(), plain)
	exchange(t, client, server, "secret data", "ok")
	client.Close()
	server.Close()
	dump := plain.Vault().DumpHostMemory()
	if len(dump) == 0 {
		t.Fatal("host-memory middlebox should expose keys in a memory dump")
	}

	platform, err := e.authority.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl := platform.CreateEnclave(enclave.CodeImage{Name: "p", Version: "1"})
	protected := e.middlebox(t, "sgx.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.Enclave = encl
	})
	client, server = runSession(t, e.clientConfig(), e.serverConfig(), protected)
	exchange(t, client, server, "secret data", "ok")
	client.Close()
	server.Close()
	if dump := protected.Vault().DumpHostMemory(); len(dump) != 0 {
		t.Fatalf("enclave middlebox leaked %d secrets to host memory", len(dump))
	}
}
