package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/hsfast"
	"repro/internal/netsim"
	"repro/internal/testutil/goleak"
)

// chainFixture bundles the attested-middlebox-with-STEK setup the
// chain-resumption tests share: a server that issues primary tickets,
// an enclave middlebox that issues hop tickets, and a client that
// requires attestation and collects chain tickets.
type chainFixture struct {
	e    *env
	stek *hsfast.STEK
	mb   *core.Middlebox
	scfg *core.ServerConfig
}

func newChainFixture(t *testing.T) *chainFixture {
	t.Helper()
	e := newEnv(t)
	platform, err := e.authority.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	image := enclave.CodeImage{Name: "mbtls-proxy", Version: "1.0"}
	encl := platform.CreateEnclave(image)
	stek, err := hsfast.NewSTEK(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb := e.middlebox(t, "sgx-proxy.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.Enclave = encl
		cfg.TicketKeys = stek
	})
	scfg := e.serverConfig()
	scfg.TLS.EnableTickets = true
	copy(scfg.TLS.TicketKey[:], "chain-resumption-primary-stek-00")
	return &chainFixture{e: e, stek: stek, mb: mb, scfg: scfg}
}

// clientConfig builds a chain-collecting client config; onTicket
// receives each assembled chain ticket.
func (f *chainFixture) clientConfig(onTicket func(*core.ChainTicket)) *core.ClientConfig {
	ccfg := f.e.clientConfig()
	ccfg.RequireMiddleboxAttestation = true
	ccfg.MiddleboxVerifier = &enclave.Verifier{Authority: f.e.authority.PublicKey()}
	ccfg.OnNewChainTicket = onTicket
	return ccfg
}

// establish runs one full session and returns the chain ticket it
// issued.
func (f *chainFixture) establish(t *testing.T) *core.ChainTicket {
	t.Helper()
	var ct *core.ChainTicket
	client, server := runSession(t, f.clientConfig(func(c *core.ChainTicket) { ct = c }), f.scfg, f.mb)
	exchange(t, client, server, "full chain", "ok")
	client.Close()
	server.Close()
	if ct == nil || ct.Primary == nil {
		t.Fatalf("no chain ticket collected: %+v", ct)
	}
	if len(ct.Hops) != 1 || ct.Hops[0].Name != "sgx-proxy.example" || !ct.Hops[0].Attested {
		t.Fatalf("chain ticket hops = %+v, want one attested sgx-proxy.example hop", ct.Hops)
	}
	return ct
}

// TestChainTicketResumption is the tentpole's end-to-end path: one
// chain ticket resumes the primary session and the middlebox hop in a
// single reconnect, the attestation requirement is satisfied from the
// ticket's cached facts, and a fresh chain ticket is reissued.
func TestChainTicketResumption(t *testing.T) {
	f := newChainFixture(t)
	ct := f.establish(t)

	var ct2 *core.ChainTicket
	ccfg := f.clientConfig(func(c *core.ChainTicket) { ct2 = c })
	ccfg.ChainTicket = ct
	client, server := runSession(t, ccfg, f.scfg, f.mb)
	defer client.Close()
	defer server.Close()

	st := client.Stats()
	if st.ResumedPrimary != 1 || st.ResumedHops != 1 {
		t.Fatalf("client stats = %+v, want primary and hop both resumed", st)
	}
	if mbs := client.Middleboxes(); len(mbs) != 1 || mbs[0].Name != "sgx-proxy.example" || !mbs[0].Attested {
		t.Fatalf("resumed chain lost the middlebox identity: %+v", mbs)
	}
	exchange(t, client, server, "resumed chain data", "ok-resumed")
	// Checked after the exchange: the middlebox bumps SessionsResumed
	// before installing the data plane, so a completed round trip
	// orders the counter update before this read. Reading right after
	// the client handshake races with the middlebox goroutine.
	if f.mb.Stats().SessionsResumed != 1 {
		t.Fatalf("middlebox stats = %+v, want one resumed secondary", f.mb.Stats())
	}

	// The resumed session reissues the whole chain ticket, so clients
	// can keep resuming indefinitely under rotating STEKs.
	if ct2 == nil || len(ct2.Hops) != 1 {
		t.Fatalf("resumed session issued no fresh chain ticket: %+v", ct2)
	}
	if string(ct2.Hops[0].Ticket) == string(ct.Hops[0].Ticket) {
		t.Fatal("fresh hop ticket identical to the redeemed one")
	}
	if !ct2.Hops[0].Attested {
		t.Fatal("reissued chain ticket lost the attestation fact")
	}
}

// TestChainTicketStaleSTEKFallsBack rotates the middlebox STEK past
// its grace window: the hop ticket dies silently, that hop falls back
// to a full (re-attesting) handshake, and the primary still resumes.
func TestChainTicketStaleSTEKFallsBack(t *testing.T) {
	f := newChainFixture(t)
	ct := f.establish(t)

	for i := 0; i < 2; i++ {
		if err := f.stek.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	ccfg := f.clientConfig(nil)
	ccfg.ChainTicket = ct
	client, server := runSession(t, ccfg, f.scfg, f.mb)
	defer client.Close()
	defer server.Close()

	st := client.Stats()
	if st.ResumedPrimary != 1 || st.ResumedHops != 0 {
		t.Fatalf("client stats = %+v, want resumed primary + full hop handshake", st)
	}
	if mbs := client.Middleboxes(); len(mbs) != 1 || !mbs[0].Attested || len(mbs[0].Certificates) == 0 {
		t.Fatalf("full-handshake fallback skipped verification: %+v", mbs)
	}
	exchange(t, client, server, "post-rotation", "ok")
}

// TestChainTicketCorruptedHopTicketFallsBack flips a hop-ticket byte:
// the middlebox must refuse it silently and run the full handshake.
func TestChainTicketCorruptedHopTicketFallsBack(t *testing.T) {
	f := newChainFixture(t)
	ct := f.establish(t)
	ct.Hops[0].Ticket[len(ct.Hops[0].Ticket)/2] ^= 0x40

	ccfg := f.clientConfig(nil)
	ccfg.ChainTicket = ct
	client, server := runSession(t, ccfg, f.scfg, f.mb)
	defer client.Close()
	defer server.Close()
	if st := client.Stats(); st.ResumedPrimary != 1 || st.ResumedHops != 0 {
		t.Fatalf("client stats = %+v, want corrupted hop ticket to fall back", st)
	}
	exchange(t, client, server, "corrupted hop ticket", "ok")
}

// TestChainTicketCorruptedPrimaryFallsBack is the mirror image: the
// primary ticket is damaged, the hop one is not. The hops resume
// independently of the primary's fallback.
func TestChainTicketCorruptedPrimaryFallsBack(t *testing.T) {
	f := newChainFixture(t)
	ct := f.establish(t)
	ct.Primary.Ticket[0] ^= 0x01

	ccfg := f.clientConfig(nil)
	ccfg.ChainTicket = ct
	client, server := runSession(t, ccfg, f.scfg, f.mb)
	defer client.Close()
	defer server.Close()
	if st := client.Stats(); st.ResumedPrimary != 0 || st.ResumedHops != 1 {
		t.Fatalf("client stats = %+v, want full primary + resumed hop", st)
	}
	exchange(t, client, server, "corrupted primary ticket", "ok")
}

// TestChainResumeFaultMatrix drives injected transport faults through
// resuming handshakes: every fault surfaces as a classified transient
// or fatal error (or the resumption silently degrades but completes) —
// never a hang — and no relay goroutine outlives the attempt.
func TestChainResumeFaultMatrix(t *testing.T) {
	f := newChainFixture(t)
	ct := f.establish(t)

	kinds := []netsim.FaultKind{netsim.FaultReset, netsim.FaultDrop, netsim.FaultCorrupt}
	allowed := map[netsim.FaultKind][]core.ErrorClass{
		netsim.FaultReset: {core.ClassReset, core.ClassTimeout, core.ClassCleanClose},
		netsim.FaultDrop:  {core.ClassReset, core.ClassTimeout, core.ClassCleanClose},
		netsim.FaultCorrupt: {
			core.ClassIntegrity, core.ClassProtocol, core.ClassRemoteAlert,
			core.ClassTimeout, core.ClassReset, core.ClassCleanClose,
		},
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			base := goleak.Base()
			// Offset 60 lands inside the resuming ClientHello: the hop
			// dies mid-resume, before any subchannel settles.
			spec := netsim.FaultSpec{Kind: kind, Offset: 60, Seed: 11, Dir: netsim.DirAToB}
			clientEnd, serverEnd := buildFaultChain(spec, f.mb)

			ccfg := f.clientConfig(nil)
			ccfg.ChainTicket = ct
			ccfg.HandshakeTimeout = 1500 * time.Millisecond
			scfg := f.scfg
			scfg.HandshakeTimeout = 1500 * time.Millisecond

			srvCh := make(chan *core.Session, 1)
			go func() {
				s, _ := core.Accept(serverEnd, scfg)
				srvCh <- s
			}()
			start := time.Now()
			sess, err := core.Dial(clientEnd, ccfg)
			if elapsed := time.Since(start); elapsed > 8*time.Second {
				t.Fatalf("mid-resume fault took %v to settle", elapsed)
			}
			if err == nil {
				// Corruption inside an extension can degrade rather than
				// kill: the session must still be usable.
				sess.Close()
			} else {
				cls := core.ClassifyError(err)
				ok := false
				for _, c := range allowed[kind] {
					ok = ok || c == cls
				}
				if !ok {
					t.Fatalf("mid-resume %s fault: class %s (err %v) not allowed", kind, cls, err)
				}
			}
			clientEnd.Close()
			serverEnd.Close()
			select {
			case srv := <-srvCh:
				if srv != nil {
					srv.Close()
				}
			case <-time.After(8 * time.Second):
				t.Fatal("server Accept never returned after mid-resume fault")
			}
			waitGoroutines(t, base)
		})
	}
}
