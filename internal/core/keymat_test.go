package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tls12"
)

func TestKeyMaterialRoundTrip(t *testing.T) {
	down, err := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	if err != nil {
		t.Fatal(err)
	}
	up, err := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	if err != nil {
		t.Fatal(err)
	}
	up.C2SSeq, up.S2CSeq = 17, 23 // bridge hop continues counters
	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *down, Up: *up}

	got, err := parseKeyMaterial(km.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != tls12.VersionTLS12 {
		t.Fatal("version corrupted")
	}
	for _, pair := range []struct {
		name string
		a, b *HopKeys
	}{{"down", &km.Down, &got.Down}, {"up", &km.Up, &got.Up}} {
		if !bytes.Equal(pair.a.C2SKey, pair.b.C2SKey) || !bytes.Equal(pair.a.S2CKey, pair.b.S2CKey) ||
			!bytes.Equal(pair.a.C2SIV, pair.b.C2SIV) || !bytes.Equal(pair.a.S2CIV, pair.b.S2CIV) {
			t.Fatalf("%s hop keys corrupted", pair.name)
		}
		if pair.a.C2SSeq != pair.b.C2SSeq || pair.a.S2CSeq != pair.b.S2CSeq {
			t.Fatalf("%s hop sequence numbers corrupted", pair.name)
		}
		if pair.a.Suite != pair.b.Suite {
			t.Fatalf("%s suite corrupted", pair.name)
		}
	}
}

// TestPropertyKeyMaterialRoundTrip fuzzes sequence numbers and key
// bytes through the codec.
func TestPropertyKeyMaterialRoundTrip(t *testing.T) {
	f := func(k1, k2, k3, k4 [32]byte, iv [4]byte, s1, s2, s3, s4 uint64) bool {
		km := &KeyMaterial{
			Version: tls12.VersionTLS12,
			Down: HopKeys{
				Suite:  tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
				C2SKey: k1[:], C2SIV: iv[:], C2SSeq: s1,
				S2CKey: k2[:], S2CIV: iv[:], S2CSeq: s2,
			},
			Up: HopKeys{
				Suite:  tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
				C2SKey: k3[:], C2SIV: iv[:], C2SSeq: s3,
				S2CKey: k4[:], S2CIV: iv[:], S2CSeq: s4,
			},
		}
		got, err := parseKeyMaterial(km.marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Down.C2SKey, k1[:]) && bytes.Equal(got.Down.S2CKey, k2[:]) &&
			bytes.Equal(got.Up.C2SKey, k3[:]) && bytes.Equal(got.Up.S2CKey, k4[:]) &&
			got.Down.C2SSeq == s1 && got.Down.S2CSeq == s2 &&
			got.Up.C2SSeq == s3 && got.Up.S2CSeq == s4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyMaterialMalformed(t *testing.T) {
	down, _ := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256)
	up, _ := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256)
	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *down, Up: *up}
	full := km.marshal()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := parseKeyMaterial(full[:cut]); err == nil {
			t.Fatalf("truncated key material (%d bytes) parsed", cut)
		}
	}
	// Trailing garbage rejected.
	if _, err := parseKeyMaterial(append(full, 0xFF)); err == nil {
		t.Fatal("key material with trailing bytes parsed")
	}
	// Implausible geometry rejected.
	bogus := append([]byte(nil), full...)
	bogus[4] = 0xFF // key_len high byte
	if _, err := parseKeyMaterial(bogus[:16]); err == nil {
		t.Fatal("implausible key length accepted")
	}
}

func TestGenerateHopKeysUnique(t *testing.T) {
	a, err := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.C2SKey, b.C2SKey) || bytes.Equal(a.S2CKey, b.S2CKey) {
		t.Fatal("hop keys repeat across generations")
	}
	if bytes.Equal(a.C2SKey, a.S2CKey) {
		t.Fatal("directions share a key within one hop")
	}
	if a.C2SSeq != 0 || a.S2CSeq != 0 {
		t.Fatal("fresh hops must start at sequence zero")
	}
}

func TestGenerateHopKeysSuiteGeometry(t *testing.T) {
	k128, err := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256)
	if err != nil {
		t.Fatal(err)
	}
	if len(k128.C2SKey) != 16 {
		t.Fatalf("AES-128 key length = %d", len(k128.C2SKey))
	}
	k256, err := GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384)
	if err != nil {
		t.Fatal(err)
	}
	if len(k256.C2SKey) != 32 {
		t.Fatalf("AES-256 key length = %d", len(k256.C2SKey))
	}
	if _, err := GenerateHopKeys(0x1234); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestBridgeHopKeysPreservesSequences(t *testing.T) {
	sk := &tls12.SessionKeys{
		Suite:          tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
		ClientWriteKey: bytes.Repeat([]byte{1}, 32),
		ClientWriteIV:  bytes.Repeat([]byte{2}, 4),
		ServerWriteKey: bytes.Repeat([]byte{3}, 32),
		ServerWriteIV:  bytes.Repeat([]byte{4}, 4),
		ClientSeq:      1,
		ServerSeq:      1,
	}
	hk := BridgeHopKeys(sk)
	if hk.C2SSeq != 1 || hk.S2CSeq != 1 {
		t.Fatal("bridge hop lost the primary session's sequence numbers")
	}
	if !bytes.Equal(hk.C2SKey, sk.ClientWriteKey) || !bytes.Equal(hk.S2CKey, sk.ServerWriteKey) {
		t.Fatal("bridge hop keys do not match the session keys")
	}
}
