package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/tls12"
)

func TestMuxPrimaryPassThrough(t *testing.T) {
	a, b := netsim.Pipe()
	defer a.Close()
	defer b.Close()
	m := newMux(a)

	// Primary writes are raw record bytes on the wire.
	rl := tls12.NewRecordLayer(m.primary)
	if err := rl.WriteRecord(tls12.TypeHandshake, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	raw, err := tls12.ReadRawRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Type != tls12.TypeHandshake || !bytes.Equal(raw.Payload, []byte("hello")) {
		t.Fatalf("raw = %+v", raw)
	}

	// Inbound non-encapsulated records reach the primary pipe intact.
	reply := tls12.RawRecord{Type: tls12.TypeAlert, Payload: []byte{1, 0}}
	if _, err := b.Write(reply.Marshal()); err != nil {
		t.Fatal(err)
	}
	rec, err := rl.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != tls12.TypeAlert || !bytes.Equal(rec.Payload, []byte{1, 0}) {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestMuxSubchannelRouting(t *testing.T) {
	a, b := netsim.Pipe()
	defer a.Close()
	defer b.Close()
	m := newMux(a)

	// Peer opens subchannels 3 and 7 with inner records.
	inner3 := tls12.RawRecord{Type: tls12.TypeHandshake, Payload: []byte("three")}
	inner7 := tls12.RawRecord{Type: tls12.TypeHandshake, Payload: []byte("seven")}
	for _, msg := range []struct {
		sub   uint8
		inner tls12.RawRecord
	}{{3, inner3}, {7, inner7}} {
		payload := append([]byte{msg.sub}, msg.inner.Marshal()...)
		enc := tls12.RawRecord{Type: tls12.TypeEncapsulated, Payload: payload}
		if _, err := b.Write(enc.Marshal()); err != nil {
			t.Fatal(err)
		}
	}

	// Both announced on newSub, in order.
	var seen []uint8
	for i := 0; i < 2; i++ {
		select {
		case sub := <-m.newSub:
			seen = append(seen, sub)
		case <-time.After(2 * time.Second):
			t.Fatalf("subchannel %d not announced", i)
		}
	}
	if seen[0] != 3 || seen[1] != 7 {
		t.Fatalf("announced %v", seen)
	}

	// Each pipe carries its own inner record stream.
	rl3 := tls12.NewRecordLayer(m.subchannel(3, false))
	rec, err := rl3.ReadRecord()
	if err != nil || string(rec.Payload) != "three" {
		t.Fatalf("sub 3: %v %q", err, rec.Payload)
	}
	rl7 := tls12.NewRecordLayer(m.subchannel(7, false))
	rec, err = rl7.ReadRecord()
	if err != nil || string(rec.Payload) != "seven" {
		t.Fatalf("sub 7: %v %q", err, rec.Payload)
	}

	// Writes into a subchannel leave as Encapsulated outer records.
	if err := rl7.WriteRecord(tls12.TypeHandshake, []byte("up")); err != nil {
		t.Fatal(err)
	}
	raw, err := tls12.ReadRawRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Type != tls12.TypeEncapsulated || raw.Payload[0] != 7 {
		t.Fatalf("outer = %+v", raw)
	}
	inner, err := tls12.ReadRawRecord(bytes.NewReader(raw.Payload[1:]))
	if err != nil || string(inner.Payload) != "up" {
		t.Fatalf("inner = %+v (%v)", inner, err)
	}
}

func TestMuxLocalSubchannelNotAnnounced(t *testing.T) {
	a, b := netsim.Pipe()
	defer a.Close()
	defer b.Close()
	m := newMux(a)

	// Locally created subchannels (announce=false) never appear on
	// newSub, even when inbound data later arrives for them.
	pipe := m.subchannel(5, false)
	payload := append([]byte{5}, tls12.RawRecord{Type: tls12.TypeHandshake, Payload: []byte("x")}.Marshal()...)
	if _, err := b.Write(tls12.RawRecord{Type: tls12.TypeEncapsulated, Payload: payload}.Marshal()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(pipe, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case sub := <-m.newSub:
		t.Fatalf("locally opened subchannel %d was announced", sub)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMuxFailurePropagates(t *testing.T) {
	a, b := netsim.Pipe()
	m := newMux(a)
	pipe := m.subchannel(2, false)
	b.Close()
	a.Close()
	buf := make([]byte, 1)
	if _, err := m.primary.Read(buf); err == nil {
		t.Fatal("primary pipe survived transport failure")
	}
	if _, err := pipe.Read(buf); err == nil {
		t.Fatal("subchannel pipe survived transport failure")
	}
	// newSub closes so watchers exit.
	select {
	case _, ok := <-m.newSub:
		if ok {
			t.Fatal("unexpected subchannel after failure")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("newSub not closed on failure")
	}
}

func TestMuxSubchannelIDsSorted(t *testing.T) {
	a, b := netsim.Pipe()
	defer a.Close()
	defer b.Close()
	m := newMux(a)
	for _, id := range []uint8{9, 2, 5} {
		m.subchannel(id, false)
	}
	got := m.subchannelIDs()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("ids = %v", got)
	}
	_ = b
}

func TestDirectionString(t *testing.T) {
	if DirClientToServer.String() == DirServerToClient.String() {
		t.Fatal("directions stringify identically")
	}
	if ClientSide.String() == ServerSide.String() {
		t.Fatal("modes stringify identically")
	}
}

func TestNewMiddleboxValidation(t *testing.T) {
	if _, err := NewMiddlebox(MiddleboxConfig{}); err == nil {
		t.Fatal("middlebox without certificate accepted")
	}
}
