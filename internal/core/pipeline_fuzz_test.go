package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/tls12"
)

// FuzzParallelReseal is the differential oracle for the parallel AEAD
// pipeline (DESIGN.md §14): for an arbitrary record sequence — sizes,
// batch boundaries, alert records, and mid-stream corruption all fuzzer
// chosen — the pipelined path (reserveBatch at intake, processBatchAt
// on concurrent workers, commit in arrival order) must produce the
// byte-identical output stream and the identical terminal error as the
// serial handleBatch path. Both planes run the same key material, so
// "identical" really is byte-for-byte, not just structural.

// fuzzRecSpec is one record decoded from fuzz input.
type fuzzRecSpec struct {
	size     int  // plaintext bytes
	alert    bool // seal as a warning alert instead of application data
	corrupt  bool // flip one ciphertext byte after sealing
	endBatch bool // batch boundary after this record
}

const (
	fuzzMaxRecords = 48
	fuzzMaxSize    = 2000
)

// decodeRecSpecs turns fuzz bytes into record specs: three bytes per
// record (size lo, size hi, flags).
func decodeRecSpecs(data []byte) []fuzzRecSpec {
	var specs []fuzzRecSpec
	for len(data) >= 3 && len(specs) < fuzzMaxRecords {
		size := (int(data[0]) | int(data[1])<<8) % (fuzzMaxSize + 1)
		flags := data[2]
		specs = append(specs, fuzzRecSpec{
			size:     size,
			alert:    flags&1 != 0,
			corrupt:  flags&2 != 0,
			endBatch: flags&4 != 0,
		})
		data = data[3:]
	}
	return specs
}

// fuzzKit builds two data planes over the same key material plus the
// source cipher state that seals inbound records for the chosen
// direction.
func fuzzKit(t *testing.T, dir Direction) (serial, parallel *dataPlane, src *tls12.CipherState) {
	t.Helper()
	hopA, err := GenerateHopKeys(testSuite)
	if err != nil {
		t.Fatal(err)
	}
	hopB, err := GenerateHopKeys(testSuite)
	if err != nil {
		t.Fatal(err)
	}
	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *hopA, Up: *hopB}
	if serial, err = newDataPlane(km, nil); err != nil {
		t.Fatal(err)
	}
	if parallel, err = newDataPlane(km, nil); err != nil {
		t.Fatal(err)
	}
	// The plane opens C2S with the downstream hop key and S2C with the
	// upstream one, so the source seals under whichever key the chosen
	// direction opens.
	key, iv := hopA.C2SKey, hopA.C2SIV
	if dir == DirServerToClient {
		key, iv = hopB.S2CKey, hopB.S2CIV
	}
	if src, err = tls12.NewCipherState(testSuite, key, iv, 0); err != nil {
		t.Fatal(err)
	}
	return serial, parallel, src
}

func FuzzParallelReseal(f *testing.F) {
	enc := func(specs ...fuzzRecSpec) []byte {
		var b []byte
		for _, s := range specs {
			var flags byte
			if s.alert {
				flags |= 1
			}
			if s.corrupt {
				flags |= 2
			}
			if s.endBatch {
				flags |= 4
			}
			b = append(b, byte(s.size), byte(s.size>>8), flags)
		}
		return b
	}
	// Clean multi-batch stream.
	f.Add(byte(0), enc(fuzzRecSpec{size: 100}, fuzzRecSpec{size: 1500, endBatch: true},
		fuzzRecSpec{size: 0}, fuzzRecSpec{size: 700}))
	// Corruption mid-batch: partial output plus a MAC error.
	f.Add(byte(0), enc(fuzzRecSpec{size: 64}, fuzzRecSpec{size: 64, corrupt: true},
		fuzzRecSpec{size: 64}))
	// Corruption in a later batch: earlier batches must still commit.
	f.Add(byte(1), enc(fuzzRecSpec{size: 900, endBatch: true}, fuzzRecSpec{size: 32},
		fuzzRecSpec{size: 800, corrupt: true, endBatch: true}, fuzzRecSpec{size: 5}))
	// Alerts interleaved with data, both directions.
	f.Add(byte(1), enc(fuzzRecSpec{size: 2, alert: true}, fuzzRecSpec{size: 1200, endBatch: true},
		fuzzRecSpec{size: 2, alert: true, corrupt: true}))

	f.Fuzz(func(t *testing.T, dirByte byte, data []byte) {
		specs := decodeRecSpecs(data)
		if len(specs) == 0 {
			t.Skip()
		}
		dir := DirClientToServer
		if dirByte&1 != 0 {
			dir = DirServerToClient
		}
		serialDP, parDP, src := fuzzKit(t, dir)

		// Seal the stream once; both paths get independent copies because
		// opening destroys payloads in place.
		var serialBatches, parBatches [][]tls12.RawRecord
		var curSerial, curPar []tls12.RawRecord
		for _, spec := range specs {
			typ := tls12.TypeApplicationData
			plain := bytes.Repeat([]byte{0x5A}, spec.size)
			if spec.alert {
				typ = tls12.TypeAlert
				plain = []byte{byte(tls12.AlertLevelWarning), 0}
			}
			sealed := src.Seal(typ, plain)
			if spec.corrupt && len(sealed) > 0 {
				sealed[len(sealed)/2] ^= 0x80
			}
			curSerial = append(curSerial, tls12.RawRecord{Type: typ, Payload: append([]byte(nil), sealed...)})
			curPar = append(curPar, tls12.RawRecord{Type: typ, Payload: sealed})
			if spec.endBatch || len(curSerial) == pipelineJobRecords {
				serialBatches = append(serialBatches, curSerial)
				parBatches = append(parBatches, curPar)
				curSerial, curPar = nil, nil
			}
		}
		if len(curSerial) > 0 {
			serialBatches = append(serialBatches, curSerial)
			parBatches = append(parBatches, curPar)
		}

		// Serial reference: the relay stops at the first failed batch,
		// flushing the partial output that consumed sealing sequences.
		var serialOut []byte
		var serialRes batchResult
		var serialErr error
		for _, b := range serialBatches {
			var res batchResult
			serialOut, res, serialErr = serialDP.handleBatch(dir, b, serialOut)
			serialRes.appended += res.appended
			serialRes.opened += res.opened
			if serialErr != nil {
				break
			}
		}

		// Parallel path: reserve every batch in intake order (the relay
		// reads ahead of the crypto), run the crypto concurrently, commit
		// in arrival order with the gate's semantics — a failed batch
		// flushes its partial output, rewinds the seal position, and
		// poisons the direction so later batches drop.
		type jobResult struct {
			out []byte
			res batchResult
			err error
		}
		reservations := make([]batchReservation, len(parBatches))
		for i, b := range parBatches {
			rsv, ok := parDP.reserveBatch(dir, b)
			if !ok {
				t.Fatal("reserveBatch declined a processor-free batch")
			}
			reservations[i] = rsv
		}
		results := make([]jobResult, len(parBatches))
		var wg sync.WaitGroup
		for i := range parBatches {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sc := new(tls12.CryptoScratch)
				r := &results[i]
				r.out, r.res, r.err = parDP.processBatchAt(dir, parBatches[i], reservations[i], sc, nil)
			}(i)
		}
		wg.Wait()
		var parOut []byte
		var parRes batchResult
		var parErr error
		for i := range results {
			if parErr != nil {
				break // poisoned direction: commit drops the output
			}
			r := &results[i]
			parOut = append(parOut, r.out...)
			parRes.appended += r.res.appended
			parRes.opened += r.res.opened
			if r.err != nil {
				parErr = r.err
				parDP.resetSealSeq(dir, reservations[i].sealStart+uint64(r.res.appended))
			}
		}

		if !bytes.Equal(serialOut, parOut) {
			t.Fatalf("output streams diverge: serial %d bytes, parallel %d bytes", len(serialOut), len(parOut))
		}
		if serialRes != parRes {
			t.Fatalf("accounting diverges: serial %+v, parallel %+v", serialRes, parRes)
		}
		switch {
		case (serialErr == nil) != (parErr == nil):
			t.Fatalf("terminal outcome diverges: serial err %v, parallel err %v", serialErr, parErr)
		case serialErr != nil:
			if ClassifyError(serialErr) != ClassifyError(parErr) {
				t.Fatalf("error classes diverge: serial %s (%v), parallel %s (%v)",
					ClassifyError(serialErr), serialErr, ClassifyError(parErr), parErr)
			}
			if serialErr.Error() != parErr.Error() {
				t.Fatalf("error text diverges: %q vs %q", serialErr, parErr)
			}
		default:
			// Clean run: after the fact, both planes' sealing positions
			// must agree (the pipeline's rewind bookkeeping never ran).
			if s, p := serialDP.sealSeq(dir), parDP.sealSeq(dir); s != p {
				t.Fatalf("seal positions diverge: serial %d, parallel %d", s, p)
			}
		}
	})
}
