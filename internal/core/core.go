package core
