package core

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/secmem"
	"repro/internal/tls12"
)

// secondaryResult is the outcome of one secondary handshake.
type secondaryResult struct {
	sub     uint8
	conn    *tls12.Conn
	summary MiddleboxSummary
	err     error
	// ticket is the NewSessionTicket the middlebox issued on this
	// secondary session, when chain-ticket collection is on.
	ticket *tls12.SessionTicket
	// skip marks subchannels intentionally ignored (announcements at a
	// server configured not to accept middleboxes).
	skip bool
}

// watchSubchannels dispatches each peer-opened subchannel to handle and
// closes results once stop is signaled and all handlers finished. The
// single goroutine owns the WaitGroup, so no handler can start after
// the final Wait.
func watchSubchannels(m *mux, stop <-chan struct{}, results chan<- secondaryResult, handle func(uint8) secondaryResult) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		close(results)
	}()
	dispatch := func(sub uint8) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- handle(sub)
		}()
	}
	for {
		select {
		case sub, ok := <-m.newSub:
			if !ok {
				return
			}
			dispatch(sub)
		case <-stop:
			// Subchannels opened during the handshake may still be
			// queued; drain them before closing the window.
			for {
				select {
				case sub, ok := <-m.newSub:
					if !ok {
						return
					}
					dispatch(sub)
				default:
					return
				}
			}
		}
	}
}

// Dial establishes an mbTLS session as the client over an existing
// transport connection (paper §3.4). The transport should reach the
// server, possibly through on-path middleboxes, or reach the first
// pre-configured middlebox from cfg.KnownMiddleboxes.
//
// The primary handshake and all secondary (middlebox) handshakes run
// interleaved over the single connection; no round trips are added
// (property P7). If the server is a legacy TLS endpoint the session
// still succeeds, with client-side middleboxes bridging to it over the
// primary session key (property P5).
func Dial(transport net.Conn, cfg *ClientConfig) (*Session, error) {
	if cfg == nil || cfg.TLS == nil {
		return nil, errors.New("core: ClientConfig.TLS is required")
	}
	acct, err := newClientAccountability(cfg)
	if err != nil {
		return nil, err
	}
	tcfg := *cfg.TLS
	ct := cfg.ChainTicket
	if ct != nil && tcfg.SessionTicket == nil {
		tcfg.SessionTicket = ct.Primary
	}
	tcfg.MiddleboxSupport = &tls12.MiddleboxSupport{
		Middleboxes:  cfg.KnownMiddleboxes,
		NeighborKeys: cfg.NeighborKeys,
		HopTickets:   ct.offeredHopTickets(),
	}
	acct.annotatePrimary(&tcfg)

	// Chain-ticket collection: capture the primary's NewSessionTicket
	// here and each hop's on its secondary (below), then assemble them
	// in path order once the chain is approved.
	var primaryTicket *tls12.SessionTicket
	collect := cfg.OnNewChainTicket != nil
	if collect {
		tcfg.EnableTickets = true
		userOnNew := tcfg.OnNewTicket
		tcfg.OnNewTicket = func(st *tls12.SessionTicket) {
			primaryTicket = st // handshake goroutine; read after primaryDone
			if userOnNew != nil {
				userOnNew(st)
			}
		}
	}

	hello, helloRaw, err := tls12.NewClientHello(&tcfg)
	if err != nil {
		return nil, err
	}
	// The optimistic hello of the MiddleboxSupport extension is the
	// primary ClientHello itself, serving double duty (paper §3.4).
	m := newMux(transport)
	hw := watchHandshake(handshakeLimit(cfg.HandshakeTimeout), m, transport)
	defer hw.stop()
	// Arm the phase deadline before the first write: a stalled transport
	// can wedge the hello itself, and nothing else would unblock it.
	hw.enter(PhasePrimaryHandshake)
	prl := tls12.NewRecordLayer(m.primary)
	if err := prl.WriteRecord(tls12.TypeHandshake, helloRaw); err != nil {
		if te := hw.err(); te != nil {
			err = te
		}
		transport.Close()
		return nil, err
	}
	pconn := tls12.ClientWithSentHello(prl, &tcfg, hello, helloRaw)

	primaryDone := make(chan error, 1)
	go func() { primaryDone <- pconn.Handshake() }()

	// Watch for middleboxes joining on subchannels. Middleboxes inject
	// their secondary ServerHello before forwarding the primary
	// ServerHello, so every subchannel exists at the mux before the
	// primary handshake can complete.
	secCfg := secondaryClientConfig(cfg.TLS, cfg.MiddleboxTLS, acct)
	secCfg.HopTickets = ct.hopTicketMap()
	results := make(chan secondaryResult, maxSubchannels)
	stop := make(chan struct{})
	go watchSubchannels(m, stop, results, func(sub uint8) secondaryResult {
		return runClientSecondary(m, sub, secCfg, hello, helloRaw, collect)
	})

	fail := func(err error) (*Session, error) {
		// When a phase deadline fired, the watcher killed the mux and
		// the error observed here is whatever secondary failure that
		// unblocking produced; surface the typed timeout instead.
		if te := hw.err(); te != nil {
			err = te
		}
		m.fail(err)
		transport.Close()
		return nil, err
	}

	if err := <-primaryDone; err != nil {
		return fail(err)
	}
	close(stop)
	hw.enter(PhaseSecondaryHandshakes)

	var secs []secondaryResult
	for r := range results {
		if r.skip {
			continue
		}
		if r.err != nil {
			return fail(fmt.Errorf("core: middlebox handshake (subchannel %d): %w", r.sub, r.err))
		}
		secs = append(secs, r)
	}
	// Higher subchannel IDs were self-assigned closer to the client
	// (paper §3.4, "Client-Side Middleboxes"), so descending order is
	// path order from the client outward.
	sort.Slice(secs, func(i, j int) bool { return secs[i].sub > secs[j].sub })

	// A resumed secondary handshake carries no certificates or quote;
	// possession of the hop ticket's master secret proves the peer is
	// the middlebox verified on the original session, so the approval
	// facts come from the chain ticket that was redeemed.
	resumedHops := 0
	for i := range secs {
		hop := secs[i].conn.ConnectionState().ResumedHop
		if hop == "" {
			continue
		}
		h := ct.Hop(hop)
		if h == nil {
			return fail(fmt.Errorf("core: middlebox resumed unknown hop %q", hop))
		}
		resumedHops++
		secs[i].summary.Name = h.Name
		secs[i].summary.Attested = h.Attested
		secs[i].summary.Measurement = h.Measurement
	}

	for i := range secs {
		if err := acct.checkHop(secs[i].summary); err != nil {
			return fail(err)
		}
		if cfg.Approve != nil && !cfg.Approve(secs[i].summary) {
			return fail(fmt.Errorf("core: middlebox %q rejected by application", secs[i].summary.Name))
		}
	}

	hw.enter(PhaseKeyDistribution)
	if cfg.NeighborKeys {
		if err := clientNeighborKeys(m, pconn, secCfg, len(secs) > 0); err != nil {
			return fail(err)
		}
	} else if err := distributeClientKeys(pconn, secs); err != nil {
		return fail(err)
	}
	// Per-hop accountability credentials (proxysig delegation warrants)
	// ride the same retained secondary connections, still under the
	// key-distribution phase deadline.
	audit, err := acct.establishCredentials(secs, ct)
	if err != nil {
		return fail(err)
	}
	hw.stop()

	sess := &Session{
		conn:           pconn,
		m:              m,
		transport:      transport,
		acct:           acct.kind(),
		audit:          audit,
		resumedPrimary: pconn.ConnectionState().Resumed,
		resumedHops:    resumedHops,
	}
	for _, r := range secs {
		sess.mboxes = append(sess.mboxes, r.summary)
	}

	if collect {
		nct := &ChainTicket{Primary: primaryTicket}
		for _, r := range secs {
			if r.ticket == nil {
				continue
			}
			nct.Hops = append(nct.Hops, ChainHop{
				Name:         r.summary.Name,
				Ticket:       r.ticket.Ticket,
				CipherSuite:  r.ticket.CipherSuite,
				MasterSecret: r.ticket.MasterSecret,
				Attested:     r.summary.Attested,
				Measurement:  r.summary.Measurement,
				LeafPub:      hopLeafPub(r.summary, ct),
			})
		}
		if nct.Primary != nil || len(nct.Hops) > 0 {
			cfg.OnNewChainTicket(nct)
		}
	}
	return sess, nil
}

// runClientSecondary completes one secondary handshake in which the
// discovered middlebox plays the server role against the (already
// sent) primary ClientHello.
func runClientSecondary(m *mux, sub uint8, cfg *tls12.Config, hello *tls12.ClientHello, helloRaw []byte, collectTicket bool) secondaryResult {
	pipe := m.subchannel(sub, false)
	rl := tls12.NewRecordLayer(pipe)
	r := secondaryResult{sub: sub}
	if collectTicket {
		c := *cfg
		c.EnableTickets = true
		c.OnNewTicket = func(st *tls12.SessionTicket) { r.ticket = st }
		cfg = &c
	}
	conn := tls12.ClientWithSentHello(rl, cfg, hello, helloRaw)
	if err := conn.Handshake(); err != nil {
		return secondaryResult{sub: sub, err: err}
	}
	r.conn = conn
	r.summary = summarize(sub, conn.ConnectionState())
	return r
}

// clientNeighborKeys establishes the client's adjacent hop key by a
// neighbor handshake with the first middlebox over subchannel 0
// (§4.2's alternative mode). With no middleboxes, the primary session
// keys remain in place and no neighbor handshake runs.
func clientNeighborKeys(m *mux, pconn *tls12.Conn, secCfg *tls12.Config, haveMboxes bool) error {
	if !haveMboxes {
		return nil
	}
	ncfg := *secCfg
	ncfg.RequestAttestation = false // identity was verified on the secondary session
	hop, err := runNeighborClient(m.subchannel(neighborSubchannel, false), &ncfg)
	if err != nil {
		return err
	}
	defer hop.Wipe() // cipher states copy the keys; nothing else needs them
	writeCS, err := tls12.NewCipherState(hop.Suite, hop.C2SKey, hop.C2SIV, hop.C2SSeq)
	if err != nil {
		return err
	}
	readCS, err := tls12.NewCipherState(hop.Suite, hop.S2CKey, hop.S2CIV, hop.S2CSeq)
	if err != nil {
		return err
	}
	pconn.InstallDataCiphers(readCS, writeCS)
	return nil
}

// distributeClientKeys generates the client-side per-hop keys, sends
// each middlebox its MBTLSKeyMaterial over the secondary session, and
// installs the client's own adjacent-hop ciphers (paper Figure 4).
func distributeClientKeys(pconn *tls12.Conn, secs []secondaryResult) error {
	if len(secs) == 0 {
		return nil // endpoint keeps the primary session keys
	}
	sk, err := pconn.ExportSessionKeys()
	if err != nil {
		return err
	}
	suite := sk.Suite
	hops := make([]*HopKeys, len(secs)+1)
	// Wiping the hops on every exit also clears sk: the bridge hop
	// aliases the exported session-key slices.
	defer func() {
		for _, h := range hops {
			h.Wipe()
		}
	}()
	for i := 0; i < len(secs); i++ {
		if hops[i], err = GenerateHopKeys(suite); err != nil {
			return err
		}
	}
	hops[len(secs)] = BridgeHopKeys(sk)

	for i, r := range secs {
		km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *hops[i], Up: *hops[i+1]}
		buf := km.marshal()
		err := r.conn.WriteKeyMaterial(buf)
		secmem.Wipe(buf)
		if err != nil {
			return fmt.Errorf("core: key distribution to %q: %w", r.summary.Name, err)
		}
	}

	// The client's own data plane now speaks the first hop's keys.
	writeCS, err := tls12.NewCipherState(suite, hops[0].C2SKey, hops[0].C2SIV, hops[0].C2SSeq)
	if err != nil {
		return err
	}
	readCS, err := tls12.NewCipherState(suite, hops[0].S2CKey, hops[0].S2CIV, hops[0].S2CSeq)
	if err != nil {
		return err
	}
	pconn.InstallDataCiphers(readCS, writeCS)
	return nil
}
