package core

import (
	"fmt"
	"io"

	"repro/internal/tls12"
)

// Neighbor-negotiated hop keys — the alternative key-establishment mode
// the paper sketches to defeat middlebox state poisoning (§4.2): "alter
// the handshake protocol so that middleboxes establish keys with their
// neighbors rather than endpoints generating and distributing session
// keys; this means each party only knows the key(s) for the hop(s)
// adjacent to it. The downside is the client has lost the ability to
// directly [control] the full path."
//
// In this implementation the mode is selected by the client
// (ClientConfig.NeighborKeys), signaled in the MiddleboxSupport
// extension, and works as follows:
//
//   - Discovery, secondary handshakes, attestation, and approval are
//     unchanged — identity still flows endpoint↔middlebox.
//   - Instead of MBTLSKeyMaterial distribution, each adjacent pair on
//     the path runs a TLS handshake of its own over the reserved
//     subchannel 0, which relays treat as hop-local (never forwarded).
//     The downstream party plays the client role; the upstream party
//     authenticates with its certificate.
//   - Each hop's data-plane keys are that hop session's record keys, so
//     no party ever holds a non-adjacent hop's keys. In particular the
//     client cannot forge "server responses" toward its own
//     middleboxes — the poisoning attack the mode exists to stop
//     (verified in the adversary tests).
//
// Scope: client-side middleboxes with an mbTLS server. A legacy server
// cannot run a neighbor handshake (its hop would need the endpoint-
// known primary key, reintroducing the exposure), and server-side
// middleboxes are rejected in this mode.
const neighborSubchannel uint8 = 0

// hopFromSession converts a completed neighbor TLS session into hop
// keys. The session's client role is the hop's downstream party, so
// the session's client-write direction is the hop's client→server
// direction.
func hopFromSession(conn *tls12.Conn) (*HopKeys, error) {
	sk, err := conn.ExportSessionKeys()
	if err != nil {
		return nil, err
	}
	// The neighbor session exists only to produce these keys; its
	// master secret has no further use.
	conn.Wipe()
	return &HopKeys{
		Suite:  sk.Suite,
		C2SKey: sk.ClientWriteKey,
		C2SIV:  sk.ClientWriteIV,
		C2SSeq: sk.ClientSeq,
		S2CKey: sk.ServerWriteKey,
		S2CIV:  sk.ServerWriteIV,
		S2CSeq: sk.ServerSeq,
	}, nil
}

// runNeighborClient performs the downstream (client-role) side of a
// neighbor hop handshake.
func runNeighborClient(rw io.ReadWriter, cfg *tls12.Config) (*HopKeys, error) {
	conn := tls12.Client(tls12.NewRecordLayer(rw), cfg)
	if err := conn.Handshake(); err != nil {
		return nil, fmt.Errorf("core: neighbor handshake (client role): %w", err)
	}
	return hopFromSession(conn)
}

// runNeighborServer performs the upstream (server-role) side of a
// neighbor hop handshake.
func runNeighborServer(rw io.ReadWriter, cfg *tls12.Config) (*HopKeys, error) {
	conn := tls12.Server(tls12.NewRecordLayer(rw), cfg)
	if err := conn.Handshake(); err != nil {
		return nil, fmt.Errorf("core: neighbor handshake (server role): %w", err)
	}
	return hopFromSession(conn)
}
