package core

import (
	"crypto/rand"
	"fmt"
	"io"
	"runtime"

	"repro/internal/enclave"
	"repro/internal/tls12"
)

// BenchHarness is a standalone middlebox data plane for the Figure 7
// throughput experiment: a record source playing the clients, the
// middlebox stage under test (forward vs decrypt/re-encrypt, inside or
// outside an enclave), and a sink playing the server. Only
// ProcessBatch belongs in the timed region; SealInto and DrainWire
// account for the client and server machines of the paper's testbed.
//
// All three stages work over caller-provided buffers, so a
// steady-state benchmark loop performs zero heap allocations.
type BenchHarness struct {
	srcSeal  *tls12.CipherState // client sealing toward the middlebox
	sinkOpen *tls12.CipherState // server opening what the middlebox sent

	reencrypt bool
	encl      *enclave.Enclave
	dp        dataPlaneHandler
}

// NewBenchHarness builds the harness. reencrypt selects the paper's
// "Encryption" middlebox behavior (decrypt on hop A, re-encrypt on hop
// B); otherwise records are forwarded untouched ("No Encryption"). A
// non-nil enclave routes the middlebox stage through it.
func NewBenchHarness(encl *enclave.Enclave, suite uint16, reencrypt bool) (*BenchHarness, error) {
	hopA, err := GenerateHopKeys(suite)
	if err != nil {
		return nil, err
	}
	hopB, err := GenerateHopKeys(suite)
	if err != nil {
		return nil, err
	}
	h := &BenchHarness{reencrypt: reencrypt, encl: encl}
	if h.srcSeal, err = tls12.NewCipherState(suite, hopA.C2SKey, hopA.C2SIV, 0); err != nil {
		return nil, err
	}
	if !reencrypt {
		// Forwarding middlebox: the sink opens hop A directly.
		if h.sinkOpen, err = tls12.NewCipherState(suite, hopA.C2SKey, hopA.C2SIV, 0); err != nil {
			return nil, err
		}
		return h, nil
	}
	if h.sinkOpen, err = tls12.NewCipherState(suite, hopB.C2SKey, hopB.C2SIV, 0); err != nil {
		return nil, err
	}
	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *hopA, Up: *hopB}
	if encl != nil {
		h.dp, err = installEnclaveDataPlane(encl, km, nil)
	} else {
		h.dp, err = newDataPlane(km, nil)
	}
	if err != nil {
		return nil, err
	}
	return h, nil
}

// SealInto appends one framed client record to buf (untimed client
// work) and returns the extended buffer plus the record, whose payload
// aliases it.
func (h *BenchHarness) SealInto(buf, plaintext []byte) ([]byte, tls12.RawRecord) {
	start := len(buf)
	buf = appendSealedRecord(buf, h.srcSeal, tls12.TypeApplicationData, plaintext)
	return buf, tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: buf[start+tls12.RecordHeaderLen : len(buf)],
	}
}

// ProcessBatch runs a batch of records through the middlebox stage
// under test — the timed region of the Figure 7 experiment — appending
// the framed output records to dst. The input payloads are consumed
// (decrypted in place on the re-encrypt path).
func (h *BenchHarness) ProcessBatch(recs []tls12.RawRecord, dst []byte) ([]byte, int, error) {
	if h.reencrypt {
		out, res, err := h.dp.handleBatch(DirClientToServer, recs, dst)
		return out, res.appended, err
	}
	// Forwarding only. With an enclave, the batch still traverses the
	// enclave application — one ecall round trip for the whole batch and
	// a copy — matching the paper's "No Encryption + Enclave"
	// configuration with the amortized boundary crossing.
	if h.encl != nil {
		h.encl.Enter(func(enclave.Memory) {
			for _, rec := range recs {
				dst = rec.AppendWire(dst)
			}
		})
		return dst, len(recs), nil
	}
	for _, rec := range recs {
		dst = rec.AppendWire(dst)
	}
	return dst, len(recs), nil
}

// DrainWire opens every framed record in buf at the sink (untimed
// server work), destroying buf's contents, and returns the total
// plaintext byte count.
func (h *BenchHarness) DrainWire(buf []byte) (int, error) {
	total := 0
	for len(buf) > 0 {
		typ, length, err := tls12.ParseRecordHeader(buf)
		if err != nil {
			return total, err
		}
		plaintext, err := h.sinkOpen.OpenInPlace(typ, buf[tls12.RecordHeaderLen:tls12.RecordHeaderLen+length])
		if err != nil {
			return total, err
		}
		total += len(plaintext)
		buf = buf[tls12.RecordHeaderLen+length:]
	}
	return total, nil
}

// Fig7MeasureAllocs runs rounds batches of batch records of size
// bufSize through a fresh harness and reports the steady-state heap
// allocations per middlebox operation (one processed record), measured
// with runtime.MemStats. It backs the allocs/op column of the
// machine-readable Figure 7 baseline.
func Fig7MeasureAllocs(encl *enclave.Enclave, suite uint16, reencrypt bool, bufSize, batch, rounds int) (float64, error) {
	h, err := NewBenchHarness(encl, suite, reencrypt)
	if err != nil {
		return 0, err
	}
	plaintext := RandomPlaintext(bufSize)
	srcBuf := make([]byte, 0, batch*(tls12.RecordHeaderLen+bufSize+64))
	dst := make([]byte, 0, cap(srcBuf))
	recs := make([]tls12.RawRecord, 0, batch)

	run := func() error {
		srcBuf = srcBuf[:0]
		recs = recs[:0]
		for i := 0; i < batch; i++ {
			var rec tls12.RawRecord
			srcBuf, rec = h.SealInto(srcBuf, plaintext)
			recs = append(recs, rec)
		}
		var n int
		dst, n, err = h.ProcessBatch(recs, dst[:0])
		if err != nil {
			return err
		}
		if n != batch && !h.reencrypt {
			return fmt.Errorf("core: bench processed %d of %d records", n, batch)
		}
		_, err = h.DrainWire(dst)
		return err
	}
	// Warm up buffers and pools outside the measured region.
	for i := 0; i < 3; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	before := heapMallocs()
	for i := 0; i < rounds; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	after := heapMallocs()
	return float64(after-before) / float64(rounds*batch), nil
}

// heapMallocs snapshots the cumulative heap allocation count.
func heapMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// RandomPlaintext returns a buffer of random bytes for the workload
// generator.
func RandomPlaintext(n int) []byte {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic(err)
	}
	return b
}
