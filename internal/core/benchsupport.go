package core

import (
	"crypto/rand"
	"io"

	"repro/internal/enclave"
	"repro/internal/tls12"
)

// BenchHarness is a standalone middlebox data plane for the Figure 7
// throughput experiment: a record source playing the clients, the
// middlebox stage under test (forward vs decrypt/re-encrypt, inside or
// outside an enclave), and a sink playing the server. Only
// MiddleboxProcess belongs in the timed region; Seal and Open account
// for the client and server machines of the paper's testbed.
type BenchHarness struct {
	srcSeal  *tls12.CipherState // client sealing toward the middlebox
	sinkOpen *tls12.CipherState // server opening what the middlebox sent

	reencrypt bool
	encl      *enclave.Enclave
	dp        dataPlaneHandler
}

// NewBenchHarness builds the harness. reencrypt selects the paper's
// "Encryption" middlebox behavior (decrypt on hop A, re-encrypt on hop
// B); otherwise records are forwarded untouched ("No Encryption"). A
// non-nil enclave routes the middlebox stage through it.
func NewBenchHarness(encl *enclave.Enclave, suite uint16, reencrypt bool) (*BenchHarness, error) {
	hopA, err := GenerateHopKeys(suite)
	if err != nil {
		return nil, err
	}
	hopB, err := GenerateHopKeys(suite)
	if err != nil {
		return nil, err
	}
	h := &BenchHarness{reencrypt: reencrypt, encl: encl}
	if h.srcSeal, err = tls12.NewCipherState(suite, hopA.C2SKey, hopA.C2SIV, 0); err != nil {
		return nil, err
	}
	if !reencrypt {
		// Forwarding middlebox: the sink opens hop A directly.
		if h.sinkOpen, err = tls12.NewCipherState(suite, hopA.C2SKey, hopA.C2SIV, 0); err != nil {
			return nil, err
		}
		return h, nil
	}
	if h.sinkOpen, err = tls12.NewCipherState(suite, hopB.C2SKey, hopB.C2SIV, 0); err != nil {
		return nil, err
	}
	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *hopA, Up: *hopB}
	if encl != nil {
		h.dp, err = installEnclaveDataPlane(encl, km, nil)
	} else {
		h.dp, err = newDataPlane(km, nil)
	}
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Seal produces one client record of the given plaintext (untimed
// client work).
func (h *BenchHarness) Seal(plaintext []byte) tls12.RawRecord {
	return tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: h.srcSeal.Seal(tls12.TypeApplicationData, plaintext),
	}
}

// MiddleboxProcess runs one record through the middlebox stage under
// test — the timed region of the Figure 7 experiment.
func (h *BenchHarness) MiddleboxProcess(rec tls12.RawRecord) ([]tls12.RawRecord, error) {
	if h.reencrypt {
		return h.dp.handleRecord(DirClientToServer, rec)
	}
	// Forwarding only. With an enclave, the record still traverses the
	// enclave application (one ecall round trip and a copy), matching
	// the paper's "No Encryption + Enclave" configuration.
	if h.encl != nil {
		var out []byte
		h.encl.Enter(func(enclave.Memory) {
			out = append([]byte(nil), rec.Payload...)
		})
		return []tls12.RawRecord{{Type: rec.Type, Payload: out}}, nil
	}
	return []tls12.RawRecord{rec}, nil
}

// Open validates one middlebox output record at the sink (untimed
// server work). It returns the plaintext length.
func (h *BenchHarness) Open(rec tls12.RawRecord) (int, error) {
	plaintext, err := h.sinkOpen.Open(rec.Type, rec.Payload)
	if err != nil {
		return 0, err
	}
	return len(plaintext), nil
}

// RandomPlaintext returns a buffer of random bytes for the workload
// generator.
func RandomPlaintext(n int) []byte {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic(err)
	}
	return b
}
