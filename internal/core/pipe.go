package core

import (
	"io"
	"sync"
)

// pipeBuf is a one-directional-read, function-backed-write byte stream.
// The mbTLS mux feeds demultiplexed record bytes into it with feed, and
// a tls12.RecordLayer reads from it as if it were a socket. Writes are
// redirected through writeFn, which the mux uses to wrap each written
// record into an Encapsulated outer record (paper §3.4, "Control
// Messaging").
type pipeBuf struct {
	mu   sync.Mutex
	cond *sync.Cond
	// buf[start:] is the readable data. Consuming from the front moves
	// start instead of reslicing buf, so the backing array (and its
	// capacity) is reused once drained rather than leaked a prefix at a
	// time.
	buf   []byte
	start int
	err   error

	writeFn func([]byte) error

	firstWrite sync.Once
	// onFirstWrite, if set, runs after the first write has reached the
	// transport. Middleboxes use it to order their injected secondary
	// ServerHello ahead of the forwarded primary ServerHello (paper
	// §3.4: "inject their own secondary ServerHello ... and finally
	// forward the primary ServerHello").
	onFirstWrite func()
}

func newPipeBuf(writeFn func([]byte) error) *pipeBuf {
	p := &pipeBuf{writeFn: writeFn}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Read blocks until data or an error is available.
func (p *pipeBuf) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.start == len(p.buf) {
		if p.err != nil {
			return 0, p.err
		}
		p.cond.Wait()
	}
	n := copy(b, p.buf[p.start:])
	p.start += n
	if p.start == len(p.buf) {
		p.buf = p.buf[:0]
		p.start = 0
	}
	return n, nil
}

// Write forwards the bytes through writeFn.
func (p *pipeBuf) Write(b []byte) (int, error) {
	if err := p.writeFn(b); err != nil {
		return 0, err
	}
	if p.onFirstWrite != nil {
		p.firstWrite.Do(p.onFirstWrite)
	}
	return len(b), nil
}

// feed appends a copy of the received bytes for Read (b may alias a
// caller buffer that is reused immediately).
func (p *pipeBuf) feed(b []byte) {
	p.mu.Lock()
	// Reclaim the consumed prefix when it dominates the buffer, keeping
	// growth amortized O(1) per byte without unbounded dead space.
	if p.start > 0 && p.start >= len(p.buf)-p.start {
		n := copy(p.buf, p.buf[p.start:])
		p.buf = p.buf[:n]
		p.start = 0
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// fail terminates the pipe; pending and future Reads return err (after
// buffered data drains).
func (p *pipeBuf) fail(err error) {
	if err == nil {
		err = io.EOF
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
