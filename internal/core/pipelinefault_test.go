package core_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/testutil/goleak"
)

// Race coverage for the parallel relay pipeline: both directions of a
// pipelined session (dedicated multi-worker pool, bulk traffic in
// flight both ways) hit netsim faults — ciphertext corruption landing
// mid-batch and a hop dying mid-pipeline — and must surface typed
// errors at the endpoints, keep alert ordering intact (the client must
// never see a MAC failure caused by our own out-of-sequence alert),
// and leak no goroutines. Run under -race, this is the pipeline's
// concurrency gate.

// buildTrackedChain is buildFaultChain for a single middlebox with the
// Handle goroutine tracked: tests that own a RelayPool must not Close
// it until Handle has returned — the relay submits to the pool, and
// only Handle's return gives a happens-before edge past the last
// submit. (The count-based goleak accounting provides no such edge.)
func buildTrackedChain(spec netsim.FaultSpec, mb *core.Middlebox) (clientEnd, serverEnd net.Conn, done chan struct{}) {
	left, right := netsim.FaultPipe(spec)
	upL, upR := netsim.Pipe()
	done = make(chan struct{})
	go func() {
		defer close(done)
		mb.Handle(right, upL) //nolint:errcheck
	}()
	return left, upR, done
}

// awaitHandle waits for a tracked middlebox Handle to return.
func awaitHandle(t *testing.T, done chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(8 * time.Second):
		t.Fatal("middlebox Handle still running 8s after session teardown")
	}
}

// pumpOutcome collects one endpoint pair's bulk-traffic terminal state.
type pumpOutcome struct {
	clientWrite, clientRead error
	serverWrite, serverRead error
}

// pumpBothDirections pushes bulk data client→server and server→client
// concurrently until every pump hits an error (the injected fault or
// the resulting teardown), keeping several records in flight per
// direction so faults land while the pipeline is busy.
func pumpBothDirections(t *testing.T, client, server *core.Session) pumpOutcome {
	t.Helper()
	watchdog := time.AfterFunc(8*time.Second, func() {
		client.Close()
		server.Close()
	})
	defer watchdog.Stop()

	writer := func(s *core.Session, ch chan<- error) {
		buf := make([]byte, 32*1024)
		for i := 0; i < 512; i++ {
			if _, err := s.Write(buf); err != nil {
				ch <- err
				return
			}
		}
		ch <- nil
	}
	reader := func(s *core.Session, ch chan<- error) {
		buf := make([]byte, 64*1024)
		for {
			if _, err := s.Read(buf); err != nil {
				ch <- err
				return
			}
		}
	}
	cw, cr := make(chan error, 1), make(chan error, 1)
	sw, sr := make(chan error, 1), make(chan error, 1)
	go writer(client, cw)
	go reader(client, cr)
	go writer(server, sw)
	go reader(server, sr)

	var out pumpOutcome
	for i := 0; i < 4; i++ {
		select {
		case out.clientWrite = <-cw:
			cw = nil
		case out.clientRead = <-cr:
			cr = nil
		case out.serverWrite = <-sw:
			sw = nil
		case out.serverRead = <-sr:
			sr = nil
		case <-time.After(10 * time.Second):
			t.Fatal("bulk pumps still running 10s after fault injection")
		}
	}
	return out
}

// requireFaultClass asserts an error is present and classifies into one
// of the allowed classes.
func requireFaultClass(t *testing.T, name string, err error, allowed ...core.ErrorClass) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: pump completed without observing the fault", name)
	}
	cls := core.ClassifyError(err)
	for _, c := range allowed {
		if cls == c {
			return
		}
	}
	t.Fatalf("%s: error class %s (err: %v) not allowed", name, cls, err)
}

// TestPipelineCorruptMidBatch: ciphertext corruption lands inside a
// bulk burst on the client→middlebox hop while both directions have
// jobs in the pipeline. The middlebox's MAC check must kill the
// session through the commit path: partial batch flushed, alert sealed
// at the committed position, both endpoints unwound, no leaks.
func TestPipelineCorruptMidBatch(t *testing.T) {
	e := newEnv(t)
	pool := core.NewRelayPool(4)
	defer pool.Close()
	base := goleak.Base()
	// Handshake bytes don't depend on the relay configuration, so the
	// measurement session runs serial — it must not touch the pool this
	// test closes.
	h := measureClientHandshakeBytes(t, e, func() *core.Middlebox {
		return e.middlebox(t, "mb.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
			cfg.SerialRelay = true
		})
	})

	// Offset lands ~24KiB into the bulk stream: past the first few
	// records, inside a burst the relay drains as multi-record batches.
	spec := netsim.FaultSpec{Kind: netsim.FaultCorrupt, Offset: h + 24*1024, Seed: 11, Dir: netsim.DirAToB}
	mb := e.middlebox(t, "mb.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.RelayPool = pool
	})
	clientEnd, serverEnd, handleDone := buildTrackedChain(spec, mb)

	srvCh := make(chan *core.Session, 1)
	go func() {
		s, _ := core.Accept(serverEnd, e.serverConfig())
		srvCh <- s
	}()
	client, err := core.Dial(clientEnd, e.clientConfig())
	if err != nil {
		t.Fatalf("handshake must clear a mid-data fault: %v", err)
	}
	server := <-srvCh
	if server == nil {
		t.Fatal("server handshake failed")
	}

	out := pumpBothDirections(t, client, server)
	// The corruption is detected by the middlebox's hop-MAC check (or,
	// if it mangles framing, the record reader); endpoints see the
	// propagated alert or the teardown's transport-level close.
	mangle := []core.ErrorClass{
		core.ClassIntegrity, core.ClassProtocol, core.ClassRemoteAlert,
		core.ClassReset, core.ClassCleanClose, core.ClassTimeout,
	}
	requireFaultClass(t, "client write", out.clientWrite, mangle...)
	requireFaultClass(t, "client read", out.clientRead, mangle...)
	requireFaultClass(t, "server write", out.serverWrite, mangle...)
	requireFaultClass(t, "server read", out.serverRead, mangle...)
	if mb.Stats().FaultsObserved < 1 {
		t.Fatalf("middlebox observed no fault: %+v", mb.Stats())
	}
	if st := pool.Stats(); st.RecordsProcessed == 0 {
		t.Fatal("relay pool processed no records — the pipeline never engaged")
	}

	client.Close()
	server.Close()
	clientEnd.Close()
	serverEnd.Close()
	awaitHandle(t, handleDone)
	waitGoroutines(t, base)
}

// TestPipelineHopDeathMidStream: the middlebox→server hop resets while
// bulk traffic is pipelined in both directions. The committer detects
// the dead upstream, the fault path rewinds reserved-but-uncommitted
// seal sequences, and the alert sealed toward the client must still
// verify — a client-side integrity error here would mean the rewind
// put the alert at the wrong sequence number.
func TestPipelineHopDeathMidStream(t *testing.T) {
	e := newEnv(t)
	pool := core.NewRelayPool(4)
	defer pool.Close()
	base := goleak.Base()
	mb := e.middlebox(t, "mb.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.RelayPool = pool
	})
	clientEnd, serverEnd, handleDone := buildTrackedChain(netsim.FaultSpec{}, mb)
	type res struct {
		sess *core.Session
		err  error
	}
	sch := make(chan res, 1)
	go func() {
		s, err := core.Accept(serverEnd, e.serverConfig())
		sch <- res{s, err}
	}()
	client, err := core.Dial(clientEnd, e.clientConfig())
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	sr := <-sch
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	server := sr.sess
	exchange(t, client, server, "steady state", "ack")

	// Kill the mb→server hop after the pipelines have traffic in
	// flight.
	killed := make(chan struct{})
	hop := serverTransportOf(t, mb, server)
	go func() {
		defer close(killed)
		time.Sleep(20 * time.Millisecond)
		hop.Reset()
	}()

	out := pumpBothDirections(t, client, server)
	<-killed
	// The client-facing hop stayed healthy, so the client must see a
	// protocol-level signal (the propagated alert) or the teardown's
	// close — never a MAC failure, which would mean a mis-sequenced
	// alert.
	clean := []core.ErrorClass{core.ClassRemoteAlert, core.ClassReset, core.ClassCleanClose, core.ClassTimeout}
	requireFaultClass(t, "client write", out.clientWrite, clean...)
	requireFaultClass(t, "client read", out.clientRead, clean...)
	requireFaultClass(t, "server write", out.serverWrite, clean...)
	requireFaultClass(t, "server read", out.serverRead, clean...)
	if mb.Stats().FaultsObserved < 1 {
		t.Fatalf("middlebox observed no fault: %+v", mb.Stats())
	}
	if st := pool.Stats(); st.RecordsProcessed == 0 {
		t.Fatal("relay pool processed no records — the pipeline never engaged")
	}

	client.Close()
	server.Close()
	awaitHandle(t, handleDone)
	waitGoroutines(t, base)
}
