package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tls12"
)

// neighborEnv builds client/server configs with the §4.2 neighbor-keys
// mode enabled.
func neighborConfigs(e *env) (*core.ClientConfig, *core.ServerConfig) {
	ccfg := e.clientConfig()
	ccfg.NeighborKeys = true
	ccfg.MiddleboxTLS = &tls12.Config{RootCAs: e.ca.Pool()}
	scfg := e.serverConfig()
	return ccfg, scfg
}

// TestNeighborKeysSession: the neighbor-keys mode establishes a working
// session through one middlebox, with discovery and data exchange
// intact.
func TestNeighborKeysSession(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.NeighborRoots = e.ca.Pool()
	})
	ccfg, scfg := neighborConfigs(e)
	client, server := runSession(t, ccfg, scfg, mb)
	defer client.Close()
	defer server.Close()

	if got := client.Middleboxes(); len(got) != 1 || got[0].Name != "proxy.example" {
		t.Fatalf("middleboxes = %+v", got)
	}
	for i := 0; i < 3; i++ {
		exchange(t, client, server,
			fmt.Sprintf("neighbor-mode request %d", i),
			fmt.Sprintf("neighbor-mode reply %d", i))
	}
}

// TestNeighborKeysTwoMiddleboxes: every adjacent pair, including
// middlebox↔middlebox, negotiates its own hop.
func TestNeighborKeysTwoMiddleboxes(t *testing.T) {
	e := newEnv(t)
	mb1 := e.middlebox(t, "m1.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.NeighborRoots = e.ca.Pool()
	})
	mb0 := e.middlebox(t, "m0.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.NeighborRoots = e.ca.Pool()
	})
	ccfg, scfg := neighborConfigs(e)
	client, server := runSession(t, ccfg, scfg, mb1, mb0)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "through two neighbor-keyed middleboxes", "ack")
}

// TestNeighborKeysNoMiddlebox: the mode degrades to ordinary mbTLS when
// no middlebox joins (primary session keys remain).
func TestNeighborKeysNoMiddlebox(t *testing.T) {
	e := newEnv(t)
	ccfg, scfg := neighborConfigs(e)
	client, server := runSession(t, ccfg, scfg)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "no middlebox, neighbor flag set", "fine")
}

// TestNeighborKeysEndpointsLackHopKeys is the point of the mode: the
// client's exported primary (bridge) keys can no longer decrypt or
// forge traffic on the middlebox→server hop, so the §4.2 poisoning
// attack fails. The companion attack test lives in internal/adversary;
// here we verify the key separation directly.
func TestNeighborKeysEndpointsLackHopKeys(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "proxy.example", core.ClientSide, func(cfg *core.MiddleboxConfig) {
		cfg.NeighborRoots = e.ca.Pool()
	})
	ccfg, scfg := neighborConfigs(e)
	client, server := runSession(t, ccfg, scfg, mb)
	defer client.Close()
	defer server.Close()
	exchange(t, client, server, "probe data for key separation", "ok")

	// The middlebox's upstream hop keys must be unrelated to the
	// primary session keys the client knows.
	clientKeys, err := client.ExportPrimaryKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Vault names are namespaced per session ("session/<id>/hop/...");
	// this test runs one session, so suffix lookup is unambiguous.
	dump := mb.Vault().DumpHostMemory()
	var upC2S, downC2S []byte
	for name, v := range dump {
		if strings.HasSuffix(name, "/hop/up-c2s") {
			upC2S = v
		}
		if strings.HasSuffix(name, "/hop/down-c2s") {
			downC2S = v
		}
	}
	if upC2S == nil {
		t.Fatal("middlebox vault lacks upstream hop key")
	}
	if string(upC2S) == string(clientKeys.ClientWriteKey) || string(upC2S) == string(clientKeys.ServerWriteKey) {
		t.Fatal("upstream hop key equals a primary session key: the client could still forge")
	}
	if string(downC2S) == string(upC2S) {
		t.Fatal("hops share keys in neighbor mode")
	}
}

// TestNeighborKeysServerSideMiddleboxStaysOut: server-side middleboxes
// are out of scope for the mode and must degrade to transparent relays
// rather than break the session.
func TestNeighborKeysServerSideMiddleboxStaysOut(t *testing.T) {
	e := newEnv(t)
	mbS := e.middlebox(t, "cdn.example", core.ServerSide)
	ccfg, scfg := neighborConfigs(e)
	client, server := runSession(t, ccfg, scfg, mbS)
	defer client.Close()
	defer server.Close()
	if n := len(server.Middleboxes()); n != 0 {
		t.Fatalf("server-side middlebox joined a neighbor-keys session: %d", n)
	}
	exchange(t, client, server, "transparent server-side middlebox", "ok")
}
