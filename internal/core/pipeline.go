// Order-preserving parallel AEAD pipeline for the middlebox relay
// (DESIGN.md §14). Per-record open/reseal is embarrassingly parallel
// once sequence numbers are assigned at intake: the open nonce is the
// arrival sequence and the seal nonce the commit sequence, both
// deterministic, so a batch's crypto can run on any worker while the
// relay keeps reading. Three stages share the work per direction:
//
//	intake  (relay goroutine)  reserve sequence ranges, detach the read
//	                           buffer, enqueue the job
//	crypto  (RelayPool worker) open/reseal against the reservation,
//	                           out of order, lock-free
//	commit  (commit goroutine) release resealed output, fold proxysig
//	                           digests, and recycle buffers in strict
//	                           arrival order
//
// The commit gate tracks the committed sealing position per direction
// so fault paths can rewind reserved-but-uncommitted sequences and
// seal an alert that still verifies at the peer.
package core

import (
	"context"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tls12"
)

const (
	// pipelineJobRecords caps the records one pipeline job carries.
	// Smaller than maxRelayBatch so one read-buffer drain splits into
	// several jobs that different workers chew concurrently.
	pipelineJobRecords = 8
	// pipelineDepth bounds in-flight jobs per direction: the relay
	// blocks submitting once this many are uncommitted, which bounds
	// both memory (each job owns one read buffer and one reseal
	// buffer) and the rewind window on faults.
	pipelineDepth = 8
	// latSamples sizes the reseal-latency reservoir (power of two).
	latSamples = 4096
)

// token signals job completion through a reused one-slot channel.
type token struct{}

// relayJob is one unit of pipeline work: up to pipelineJobRecords
// records sharing a detached read buffer, a sequence reservation, and
// a persistent reseal buffer. Jobs are slot-recycled per direction, so
// the steady state allocates nothing.
type relayJob struct {
	dir  Direction
	dp   dataPlaneHandler
	recs [pipelineJobRecords]tls12.RawRecord
	n    int
	rsv  batchReservation

	// readBuf is the relay read buffer the records' payloads alias,
	// detached from the recordReader at submit; the commit stage
	// returns it to relayReadBufs once the output is on the wire.
	readBuf *[]byte
	// out is the reseal buffer, owned by the slot for its lifetime.
	out []byte

	res       batchResult
	err       error
	submitted time.Time
	done      chan token // buffered(1): worker signals, committer waits
}

// RelayPool is a host-scoped crypto worker pool. Sessions submit
// record batches; workers run the open/reseal against pre-reserved
// sequence ranges. One pool serves every session of a host (or the
// whole process, via SharedRelayPool), so parallelism is bounded by
// configuration rather than by session count.
type RelayPool struct {
	jobs    chan *relayJob
	workers int
	wg      sync.WaitGroup
	once    sync.Once
	started time.Time

	jobsDone     atomic.Int64
	recordsDone  atomic.Int64
	busyNanos    atomic.Int64
	queued       atomic.Int64
	inFlight     atomic.Int64
	maxInFlight  atomic.Int64
	submitStalls atomic.Int64
	windowStalls atomic.Int64

	latIdx atomic.Uint64
	lat    [latSamples]atomic.Int64
}

// NewRelayPool starts a pool with the given worker count; workers <= 0
// derives the count from GOMAXPROCS. Close the pool only after every
// session that can submit to it has drained.
func NewRelayPool(workers int) *RelayPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &RelayPool{
		jobs:    make(chan *relayJob, 4*workers),
		workers: workers,
		started: time.Now(),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	sharedRelayPoolMu sync.Mutex
	sharedRelayPool   *RelayPool
	sharedRelaySize   int
)

// SharedRelayPool returns the process-wide pool, created on first use
// with GOMAXPROCS-derived workers (or the size set by
// ConfigureSharedRelayPool). It is never closed.
func SharedRelayPool() *RelayPool {
	sharedRelayPoolMu.Lock()
	defer sharedRelayPoolMu.Unlock()
	if sharedRelayPool == nil {
		sharedRelayPool = NewRelayPool(sharedRelaySize)
	}
	return sharedRelayPool
}

// ConfigureSharedRelayPool sets the worker count the shared pool is
// created with. It has no effect once the pool exists; call it at
// process startup (the daemons wire -relay-workers through it when no
// host-owned pool is in play).
func ConfigureSharedRelayPool(workers int) {
	sharedRelayPoolMu.Lock()
	defer sharedRelayPoolMu.Unlock()
	if sharedRelayPool == nil {
		sharedRelaySize = workers
	}
}

// Close stops the workers. Submitting after Close panics; hosts close
// their pool only after the session drain completes.
func (p *RelayPool) Close() {
	p.once.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// Workers returns the pool's worker count.
func (p *RelayPool) Workers() int { return p.workers }

// worker runs crypto jobs until the pool closes. Each worker owns one
// heap-resident scratch — per-call stack buffers would escape through
// the cipher.AEAD interface and cost an allocation per record.
func (p *RelayPool) worker() {
	defer p.wg.Done()
	sc := new(tls12.CryptoScratch)
	pprof.Do(context.Background(), pprof.Labels("mbtls_stage", "pipeline-worker"), func(context.Context) {
		for j := range p.jobs {
			p.queued.Add(-1)
			start := time.Now()
			j.out, j.res, j.err = j.dp.processBatchAt(j.dir, j.recs[:j.n], j.rsv, sc, j.out[:0])
			p.busyNanos.Add(time.Since(start).Nanoseconds())
			p.jobsDone.Add(1)
			p.recordsDone.Add(int64(j.n))
			j.done <- token{}
		}
	})
}

// enqueue hands a job to the workers, counting a stall when every
// worker is busy and the queue is full.
func (p *RelayPool) enqueue(j *relayJob) {
	p.queued.Add(1)
	select {
	case p.jobs <- j:
	default:
		p.submitStalls.Add(1)
		p.jobs <- j
	}
}

// noteLatency records one job's submit→commit latency in the
// reservoir.
func (p *RelayPool) noteLatency(d time.Duration) {
	idx := (p.latIdx.Add(1) - 1) % latSamples
	p.lat[idx].Store(int64(d))
}

// RelayPoolStats is a point-in-time snapshot of pool activity.
type RelayPoolStats struct {
	Workers          int
	JobsProcessed    int64
	RecordsProcessed int64
	// Utilization is the busy fraction across all workers since the
	// pool started (1.0 = every worker always busy).
	Utilization float64
	// QueueDepth is the jobs enqueued but not yet picked up;
	// InFlight counts submitted-but-uncommitted jobs (pipeline depth)
	// and MaxInFlight its high-water mark.
	QueueDepth  int64
	InFlight    int64
	MaxInFlight int64
	// SubmitStalls counts jobs that found every worker busy;
	// WindowStalls counts submissions that waited for a commit to free
	// a pipeline slot.
	SubmitStalls int64
	WindowStalls int64
	// ResealP50/P99 are per-job submit→commit latency quantiles over a
	// sliding reservoir.
	ResealP50 time.Duration
	ResealP99 time.Duration
}

// Stats snapshots the pool counters.
func (p *RelayPool) Stats() RelayPoolStats {
	s := RelayPoolStats{
		Workers:          p.workers,
		JobsProcessed:    p.jobsDone.Load(),
		RecordsProcessed: p.recordsDone.Load(),
		QueueDepth:       p.queued.Load(),
		InFlight:         p.inFlight.Load(),
		MaxInFlight:      p.maxInFlight.Load(),
		SubmitStalls:     p.submitStalls.Load(),
		WindowStalls:     p.windowStalls.Load(),
	}
	if elapsed := time.Since(p.started); elapsed > 0 && p.workers > 0 {
		s.Utilization = float64(p.busyNanos.Load()) / (float64(elapsed) * float64(p.workers))
	}
	n := p.latIdx.Load()
	if n > latSamples {
		n = latSamples
	}
	samples := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		if v := p.lat[i].Load(); v > 0 {
			samples = append(samples, v)
		}
	}
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s.ResealP50 = time.Duration(samples[len(samples)/2])
		s.ResealP99 = time.Duration(samples[len(samples)*99/100])
	}
	return s
}

// commitGate is one direction's seal-position bookkeeping. sealSeq is
// the committed sealing sequence (everything below it is on the wire),
// reserved the reservation high-water; they differ only while
// pipelined jobs are in flight. err poisons the direction: data
// commits drop their output (the session is dying and an alert may
// already hold the next sequence number). The mutex is held only for
// bookkeeping plus alert sealing, never across a conn write.
type commitGate struct {
	flushMu   sync.Mutex
	inited    bool
	sealSeq   uint64
	reserved  uint64
	err       error
	alertSent bool
}

// dirPipeline is one relay direction's pipeline state, owned by the
// relay goroutine except where noted. Slot recycling between the relay
// and the commit goroutine rides two channels: submitCh carries jobs
// in ticket (arrival) order, freeCh returns committed slots.
type dirPipeline struct {
	s    *mbSession
	dir  Direction
	pool *RelayPool
	gate *commitGate

	// serialOnly latches after reserveBatch declines (a Processor is
	// installed): stateful processors need ordered input, so every
	// batch takes the serial path.
	serialOnly bool

	free  []*relayJob
	total int

	submitCh      chan *relayJob
	freeCh        chan *relayJob
	committerUp   bool
	committerDone chan struct{}
}

func newDirPipeline(s *mbSession, dir Direction, pool *RelayPool) *dirPipeline {
	return &dirPipeline{
		s:             s,
		dir:           dir,
		pool:          pool,
		gate:          s.gate(dir),
		submitCh:      make(chan *relayJob, pipelineDepth),
		freeCh:        make(chan *relayJob, pipelineDepth),
		committerDone: make(chan struct{}),
	}
}

// slot returns a job slot to submit into: a recycled one when
// available, a fresh one while ramping up to pipelineDepth, else it
// blocks until the commit stage frees one (the pipeline's
// backpressure).
func (pl *dirPipeline) slot() *relayJob {
	for {
		select {
		case j := <-pl.freeCh:
			pl.free = append(pl.free, j)
			continue
		default:
		}
		break
	}
	if n := len(pl.free); n > 0 {
		j := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return j
	}
	if pl.total < pipelineDepth {
		pl.total++
		return &relayJob{out: pl.s.mb.bufs.GetRecordBuf(), done: make(chan token, 1)}
	}
	pl.pool.windowStalls.Add(1)
	return <-pl.freeCh
}

// submit reserves the batch's sequence ranges and hands it to the
// worker pool, detaching the reader's buffer so the records stay valid
// while the relay reads ahead. Returns submitted=false (and reserves
// nothing) when the data plane declines out-of-order processing.
// Relay-goroutine only: reservation order is commit order.
func (pl *dirPipeline) submit(dp dataPlaneHandler, rr *recordReader, batch []tls12.RawRecord) (bool, error) {
	if err := pl.takeErr(); err != nil {
		return false, err
	}
	j := pl.slot()
	rsv, ok := dp.reserveBatch(pl.dir, batch)
	if !ok {
		pl.free = append(pl.free, j)
		return false, nil
	}
	g := pl.gate
	g.flushMu.Lock()
	g.reserved = rsv.sealStart + uint64(rsv.outCount)
	g.flushMu.Unlock()
	j.dir, j.dp, j.rsv = pl.dir, dp, rsv
	j.n = copy(j.recs[:], batch)
	j.readBuf = rr.detach()
	j.submitted = time.Now()
	if !pl.committerUp {
		pl.committerUp = true
		go pl.commitLoop()
	}
	d := pl.pool.inFlight.Add(1)
	for {
		m := pl.pool.maxInFlight.Load()
		if d <= m || pl.pool.maxInFlight.CompareAndSwap(m, d) {
			break
		}
	}
	pl.submitCh <- j
	pl.pool.enqueue(j)
	return true, nil
}

// flush blocks until every submitted job has committed, then reports
// the direction's poison error if any. The relay calls it before any
// serial write to its direction, so slow-path output never overtakes
// pipelined output.
func (pl *dirPipeline) flush() error {
	for pl.total-len(pl.free) > 0 {
		pl.free = append(pl.free, <-pl.freeCh)
	}
	return pl.takeErr()
}

// takeErr reads the direction's poison error.
func (pl *dirPipeline) takeErr() error {
	g := pl.gate
	g.flushMu.Lock()
	err := g.err
	g.flushMu.Unlock()
	return err
}

// commitLoop is the per-direction commit goroutine: it waits for each
// job in ticket order, releases its output, and recycles the slot. It
// exits when the relay closes submitCh at teardown.
func (pl *dirPipeline) commitLoop() {
	pprof.Do(context.Background(), pprof.Labels(
		"mbtls_session", strconv.FormatUint(pl.s.id, 10),
		"mbtls_dir", pl.dir.String(),
		"mbtls_stage", "commit",
	), func(context.Context) {
		for j := range pl.submitCh {
			<-j.done
			pl.commit(j)
			pl.freeCh <- j
		}
	})
	close(pl.committerDone)
}

// commit releases one job's resealed output in arrival order: update
// the committed seal position, fold the proxysig digest, write the
// wire bytes, and recycle the read buffer. A failed job flushes its
// partial output (those records consumed sealing sequence numbers),
// rewinds the reserved-but-unsealed range, poisons the direction, and
// tears the session down the same way the serial path would.
func (pl *dirPipeline) commit(j *relayJob) {
	s, dir, g := pl.s, pl.dir, pl.gate
	defer func() {
		if j.readBuf != nil {
			relayReadBufs.Put(j.readBuf)
			j.readBuf = nil
		}
		pl.pool.inFlight.Add(-1)
	}()
	pl.pool.noteLatency(time.Since(j.submitted))

	g.flushMu.Lock()
	if g.err != nil {
		// Poisoned (a fault alert may already hold the next sequence
		// number): drop the output, recycle the buffers.
		g.flushMu.Unlock()
		return
	}
	committed := j.rsv.sealStart + uint64(j.res.appended)
	g.sealSeq = committed
	if j.err != nil {
		// Rewind under the gate so a racing alert seals contiguously
		// after the records this batch did commit.
		j.dp.resetSealSeq(dir, committed)
		g.reserved = committed
		g.err = j.err
		s.faultHandled.Store(true)
	}
	g.flushMu.Unlock()

	out := j.out
	s.mb.recordsRekeyed.Add(int64(j.res.opened))
	s.mb.bytesProcessed.Add(int64(len(out) - j.res.appended*recordHeaderLen))
	if s.proxySig.Load() && len(out) > 0 {
		s.noteResealed(dir, out, j.res.appended)
	}
	var werr error
	if len(out) > 0 {
		conn, mu := s.outbound(dir)
		werr = s.writeWire(conn, mu, out)
	}
	if j.err != nil {
		pl.failSession(j.err)
		return
	}
	if werr != nil {
		g.flushMu.Lock()
		fresh := g.err == nil
		if fresh {
			g.err = werr
			s.faultHandled.Store(true)
		}
		g.flushMu.Unlock()
		if fresh {
			pl.failSession(werr)
		}
	}
}

// failSession runs the session-fatal sequence for an error detected at
// commit time — the relay goroutine may be blocked reading a healthy
// transport, so the committer must classify, propagate, and close
// itself (run dedups via faultHandled).
func (pl *dirPipeline) failSession(err error) {
	if cls := ClassifyError(err); cls.isFault() {
		pl.s.mb.faultsObserved.Add(1)
		pl.s.propagateFault(alertForClass(cls))
	}
	pl.s.closeAll()
}

// shutdown ends the pipeline at relay exit. It must not block on the
// committer: a commit write can be wedged in a dead transport until
// run's closeAll, which only happens after the relay reports its
// error. Slot buffers are reclaimed by a reaper the session's teardown
// waits for (run blocks on s.bg after closeAll).
func (pl *dirPipeline) shutdown() {
	if !pl.committerUp {
		pl.reclaim()
		return
	}
	close(pl.submitCh)
	pl.s.bg.Add(1)
	go func() {
		defer pl.s.bg.Done()
		<-pl.committerDone
		for pl.total-len(pl.free) > 0 {
			pl.free = append(pl.free, <-pl.freeCh)
		}
		pl.reclaim()
	}()
}

// reclaim returns every idle slot's buffers to their pools.
func (pl *dirPipeline) reclaim() {
	for _, j := range pl.free {
		if j.readBuf != nil {
			relayReadBufs.Put(j.readBuf)
			j.readBuf = nil
		}
		if j.out != nil {
			pl.s.mb.bufs.PutRecordBuf(j.out)
			j.out = nil
		}
	}
	pl.free = pl.free[:0]
}

// dirIndex maps a Direction to a dense array index.
func dirIndex(dir Direction) int {
	if dir == DirServerToClient {
		return 1
	}
	return 0
}

// gate returns a direction's commit gate.
func (s *mbSession) gate(dir Direction) *commitGate {
	return &s.gates[dirIndex(dir)]
}

// initGates seeds both gates' seal positions from the freshly
// installed data plane (key material carries arbitrary starting
// sequence numbers). Runs before the plane is published, so every
// observer of dp sees initialized gates.
func (s *mbSession) initGates(dp dataPlaneHandler) {
	for _, dir := range []Direction{DirClientToServer, DirServerToClient} {
		g := s.gate(dir)
		g.flushMu.Lock()
		if !g.inited {
			g.sealSeq = dp.sealSeq(dir)
			g.reserved = g.sealSeq
			g.inited = true
		}
		g.flushMu.Unlock()
	}
}

// sealAlertOrdered seals an alert at the committed sealing position,
// rewinding any reserved-but-uncommitted range first so the alert
// verifies at the peer, and poisons the direction so later data
// commits drop their (now out-of-sequence) output. It replaces the
// direct appendAlert calls on the fault and force-close paths.
func (s *mbSession) sealAlertOrdered(dp dataPlaneHandler, dir Direction, level tls12.AlertLevel, desc tls12.AlertDescription, buf []byte) error {
	g := s.gate(dir)
	g.flushMu.Lock()
	if g.alertSent {
		g.flushMu.Unlock()
		return nil
	}
	if g.inited && g.reserved != g.sealSeq {
		dp.resetSealSeq(dir, g.sealSeq)
		g.reserved = g.sealSeq
	}
	wire, err := dp.appendAlert(dir, level, desc, buf)
	if err != nil {
		g.flushMu.Unlock()
		return err
	}
	g.sealSeq++
	g.reserved++
	g.alertSent = true
	if g.err == nil {
		g.err = io.ErrClosedPipe
	}
	g.flushMu.Unlock()
	conn, mu := s.outbound(dir)
	return s.writeWire(conn, mu, wire)
}

// relay wraps the relay loop in pprof labels so -cpuprofile output
// attributes data-plane work per session, direction, and stage.
func (s *mbSession) relay(dir Direction) (err error) {
	pprof.Do(context.Background(), pprof.Labels(
		"mbtls_session", strconv.FormatUint(s.id, 10),
		"mbtls_dir", dir.String(),
		"mbtls_stage", "relay",
	), func(context.Context) {
		err = s.relayLoop(dir)
	})
	return err
}
